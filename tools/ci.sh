#!/usr/bin/env bash
# Tier-1 CI: regular build + full test suite, then an ASan+UBSan build.
#
# Usage: tools/ci.sh [--fast] [--bench] [--soak] [--trace] [--deadlock]
#   --fast   skip the chaos-labelled tests in the sanitizer pass (they run
#            the full fault-injection scenarios and dominate its runtime)
#   --bench  additionally run the bench-labelled smoke tests against the
#            (optimized) default build and check BENCH_*.json output
#   --soak   additionally run the replayable chaos soak matrix (seeds x
#            fault mixes, every cell replay-verified) on the default build
#   --trace  additionally smoke the flight recorder: a seeded E6 run with
#            rg-debug --trace-out, validated as loadable Chrome trace JSON
#            and byte-identical across two same-seed runs
#   --deadlock  additionally run just the deadlock-labelled tests (hazard
#            prediction + replay confirmation + recovery soak) in isolation
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BENCH=0
SOAK=0
TRACE=0
DEADLOCK=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    --soak) SOAK=1 ;;
    --trace) TRACE=1 ;;
    --deadlock) DEADLOCK=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

if [[ "$BENCH" == 1 ]]; then
  echo "== bench: smoke runs of the perf-critical binaries =="
  ctest --preset bench
  for f in build/bench/BENCH_hotpath.json build/bench/BENCH_slowdown.json \
           build/bench/BENCH_resilience.json \
           build/bench/BENCH_observability.json \
           build/bench/BENCH_deadlock.json; do
    [[ -s "$f" ]] || { echo "missing bench result: $f" >&2; exit 1; }
  done
fi

if [[ "$TRACE" == 1 ]]; then
  echo "== trace: flight-recorder smoke (seeded E6 run, Perfetto JSON) =="
  trace_dir=$(mktemp -d)
  trap 'rm -rf "$trace_dir"' EXIT
  build/tools/rg-debug --testcase 5 --config hwlc+dr --seed 11 \
    --trace-out "$trace_dir/run1.json" > /dev/null
  build/tools/rg-debug --testcase 5 --config hwlc+dr --seed 11 \
    --trace-out "$trace_dir/run2.json" > /dev/null
  cmp "$trace_dir/run1.json" "$trace_dir/run2.json" \
    || { echo "same-seed traces differ" >&2; exit 1; }
  python3 - "$trace_dir/run1.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty traceEvents"
assert all(e["ph"] in ("i", "M") for e in events), "unexpected phase"
assert any(e["ph"] == "i" for e in events), "no instant events"
print(f"trace OK: {len(events)} events, byte-identical across runs")
PY
fi

if [[ "$SOAK" == 1 ]]; then
  echo "== soak: replayable chaos matrix (seeds x fault mixes) =="
  ctest --preset soak
fi

if [[ "$DEADLOCK" == 1 ]]; then
  echo "== deadlock: hazard prediction + replay oracle + recovery soak =="
  ctest --preset deadlock
fi

echo "== sanitize: ASan + UBSan build + ctest =="
cmake --preset sanitize
cmake --build --preset sanitize -j
if [[ "$FAST" == 1 ]]; then
  ctest --preset sanitize-fast -j
else
  ctest --preset sanitize -j
fi

echo "CI OK"
