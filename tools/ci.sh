#!/usr/bin/env bash
# Tier-1 CI: regular build + full test suite, then an ASan+UBSan build.
#
# Usage: tools/ci.sh [--fast]
#   --fast   skip the chaos-labelled tests in the sanitizer pass (they run
#            the full fault-injection scenarios and dominate its runtime)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo "== sanitize: ASan + UBSan build + ctest =="
cmake --preset sanitize
cmake --build --preset sanitize -j
if [[ "$FAST" == 1 ]]; then
  ctest --preset sanitize-fast -j
else
  ctest --preset sanitize -j
fi

echo "CI OK"
