// rg-debug — the paper's debugging process as a command-line tool.
//
// Runs a SIPp test case against the instrumented proxy under a chosen
// detector configuration and prints the warning summary and the
// Helgrind-style log (optionally to a file, like Helgrind's --log-file).
//
// Usage:
//   rg-debug [options]
//     --testcase N       1..8 (default 2); 0 = run all eight
//     --seed S           schedule seed (default 7)
//     --config C         original | hwlc | hwlc+dr | extended  (default hwlc+dr)
//     --mode M           thread-per-request | thread-pool      (default t-p-r)
//     --faults F         paper | none                          (default paper)
//     --parallelism P    worker threads (default 8)
//     --suppressions F   Valgrind-style suppression file
//     --gen-suppressions F  write suppressions for all reported locations
//     --log FILE         write the warning log to FILE instead of stdout
//     --deadlock-tool    also run the lock-order checker
//     --hazard H         seed a proxy lock-inversion hazard (repeatable):
//                        registrar-vs-upstream | shutdown-inversion |
//                        gate-locked | recover
//     --trace-out FILE   write the flight-recorder Chrome trace JSON
//     --metrics-out FILE write the unified metrics registry as JSON
//     --explain N        provenance for warning N (0-based): for data races
//                        the recorded events that drove its lockset to
//                        empty; for lock-order / predicted-deadlock reports
//                        the cycle's acquisition history (lock operations
//                        of the participating threads and locks)
//     --profile          print the per-tool hook profile (events/cycles)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/table.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: rg-debug [--testcase N] [--seed S] [--config C] [--mode M]\n"
      "                [--faults paper|none] [--parallelism P]\n"
      "                [--suppressions FILE] [--gen-suppressions FILE]\n"
      "                [--log FILE] [--deadlock-tool] [--hazard H]\n"
      "                [--trace-out FILE] [--metrics-out FILE]\n"
      "                [--explain N] [--profile]\n"
      "  configs: original | hwlc | hwlc+dr | extended\n"
      "  modes:   thread-per-request | thread-pool\n"
      "  hazards: registrar-vs-upstream | shutdown-inversion | gate-locked\n"
      "           | recover\n");
  std::exit(code);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rg-debug: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;

  int testcase = 2;
  sipp::ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  std::string config_name = "hwlc+dr";
  std::string log_path;
  std::string gen_suppressions_path;
  std::string trace_path;
  std::string metrics_path;
  long explain_index = -1;
  bool profile = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--testcase") {
      testcase = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--config") {
      config_name = next();
      if (config_name == "original")
        cfg.detector = core::HelgrindConfig::original();
      else if (config_name == "hwlc")
        cfg.detector = core::HelgrindConfig::hwlc();
      else if (config_name == "hwlc+dr")
        cfg.detector = core::HelgrindConfig::hwlc_dr();
      else if (config_name == "extended")
        cfg.detector = core::HelgrindConfig::extended();
      else
        usage(2);
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "thread-per-request")
        cfg.mode = sipp::DispatchMode::ThreadPerRequest;
      else if (mode == "thread-pool")
        cfg.mode = sipp::DispatchMode::ThreadPool;
      else
        usage(2);
    } else if (arg == "--faults") {
      const std::string faults = next();
      if (faults == "paper")
        cfg.faults = sip::FaultConfig::paper();
      else if (faults == "none")
        cfg.faults = sip::FaultConfig::none();
      else
        usage(2);
    } else if (arg == "--parallelism") {
      cfg.parallelism = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--suppressions") {
      cfg.suppressions = slurp(next());
    } else if (arg == "--gen-suppressions") {
      gen_suppressions_path = next();
    } else if (arg == "--log") {
      log_path = next();
    } else if (arg == "--deadlock-tool") {
      cfg.deadlock_tool = true;
    } else if (arg == "--hazard") {
      const std::string hazard = next();
      if (hazard == "registrar-vs-upstream") {
        cfg.hazards.registrar_vs_upstream = true;
        if (cfg.upstream.targets == 0) cfg.upstream.targets = 1;
      } else if (hazard == "shutdown-inversion") {
        cfg.hazards.shutdown_inversion = true;
      } else if (hazard == "gate-locked") {
        cfg.hazards.gate_locked = true;
      } else if (hazard == "recover") {
        cfg.hazards.recover = true;
      } else {
        usage(2);
      }
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--explain") {
      explain_index = std::atol(next());
      if (explain_index < 0) usage(2);
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      usage(2);
    }
  }
  if (testcase < 0 || testcase > sipp::kTestCaseCount) usage(2);

  // Observability: attach the recorder whenever the trace or a warning
  // provenance dump was requested, the registry for --metrics-out and the
  // profiler for --profile. All are off (nullptr) otherwise so the classic
  // paths run exactly as before.
  obs::RecorderConfig rec_cfg;
  rec_cfg.capacity = 1u << 18;
  obs::FlightRecorder recorder(rec_cfg);
  obs::MetricsRegistry metrics;
  obs::HookProfiler profiler;
  if (!trace_path.empty() || explain_index >= 0) cfg.recorder = &recorder;
  if (!metrics_path.empty()) cfg.metrics = &metrics;
  if (profile) cfg.profiler = &profiler;

  support::Table summary("rg-debug — configuration '" + config_name + "'");
  summary.header({"Test case", "locations", "total", "suppressed",
                  "lock-order", "responses", "outcome"});

  std::string full_log;
  std::string all_suppressions;
  std::vector<core::Report> all_reports;
  const int first = testcase == 0 ? 1 : testcase;
  const int last = testcase == 0 ? sipp::kTestCaseCount : testcase;
  for (int n = first; n <= last; ++n) {
    const sipp::Scenario scenario = sipp::build_testcase(n, cfg.seed);
    const sipp::ExperimentResult result = sipp::run_scenario(scenario, cfg);
    summary.row(scenario.name, result.reported_locations,
                result.total_warnings, result.suppressed_warnings,
                result.lock_order_reports, result.responses,
                result.sim.completed() ? "completed" : "ABORTED");
    full_log += "===== " + scenario.name + " (" +
                sipp::testcase_description(n) + ") =====\n";
    full_log += result.report_text;
    full_log += '\n';
    all_suppressions += result.generated_suppressions;
    for (const core::Report& r : result.reports) all_reports.push_back(r);
  }

  std::printf("%s\n", summary.render().c_str());

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    out << recorder.chrome_trace_json();
    std::printf(
        "trace written to %s (%llu events recorded, %llu dropped, "
        "hash %016llx)\n",
        trace_path.c_str(),
        static_cast<unsigned long long>(recorder.recorded()),
        static_cast<unsigned long long>(recorder.dropped()),
        static_cast<unsigned long long>(recorder.hash()));
  }
  if (!metrics_path.empty()) {
    metrics.write_json(metrics_path);
    std::printf("metrics written to %s (%zu series)\n", metrics_path.c_str(),
                metrics.size());
  }
  if (profile) std::printf("%s\n", profiler.render().c_str());
  if (explain_index >= 0) {
    if (static_cast<std::size_t>(explain_index) >= all_reports.size()) {
      std::fprintf(stderr,
                   "rg-debug: --explain %ld out of range (%zu warnings)\n",
                   explain_index, all_reports.size());
      return 1;
    }
    const core::Report& r = all_reports[explain_index];
    if (r.kind != core::Report::Kind::DataRace) {
      std::printf("=== explain warning %ld: %s ===\n", explain_index,
                  core::to_string(r.kind));
      if (!r.extra.empty()) std::printf("%s\n", r.extra.c_str());
      if (r.recorder_cursor == 0) {
        std::printf(
            "no provenance: warning fired with no recorder attached\n");
      } else {
        // The cycle's acquisition history: lock operations and lock-graph
        // milestones of the participating threads and locks (everything,
        // for naive inversions that carry no cycle).
        auto in_cycle = [&](const obs::Event& e) {
          if (r.cycle_locks.empty() && r.cycle_threads.empty()) return true;
          if (std::find(r.cycle_threads.begin(), r.cycle_threads.end(),
                        e.tid) != r.cycle_threads.end())
            return true;
          return std::find(r.cycle_locks.begin(), r.cycle_locks.end(),
                           e.a) != r.cycle_locks.end();
        };
        const std::vector<obs::Event> events = recorder.last_events(
            r.recorder_cursor,
            [&](const obs::Event& e) {
              switch (e.kind) {
                case obs::EventKind::PreLock:
                case obs::EventKind::PostLock:
                case obs::EventKind::Unlock:
                case obs::EventKind::DeadlockAcquire:
                  return in_cycle(e);
                case obs::EventKind::DeadlockCycle:
                  return true;
                default:
                  return false;
              }
            },
            48);
        for (const obs::Event& e : events)
          std::printf("  %s\n", recorder.describe(e).c_str());
        std::printf("%zu events (lock operations of the cycle's threads and "
                    "locks) before the warning\n",
                    events.size());
      }
    } else {
      std::printf("=== explain warning %ld: %s on %u bytes at %s ===\n",
                  explain_index, core::to_string(r.kind), r.access.size,
                  support::global_sites().describe(r.access.site).c_str());
      if (r.recorder_cursor == 0) {
        std::printf(
            "no provenance: warning fired with no recorder attached\n");
      } else {
        const std::vector<obs::Event> events = recorder.explain(
            r.access.addr, r.access.size, r.recorder_cursor, 32);
        for (const obs::Event& e : events)
          std::printf("  %s\n", recorder.describe(e).c_str());
        std::printf("%zu events (accesses on the racing address + lock "
                    "operations of its threads) before the warning\n",
                    events.size());
      }
    }
  }

  if (!gen_suppressions_path.empty()) {
    std::ofstream out(gen_suppressions_path, std::ios::binary);
    out << all_suppressions;
    std::printf("suppressions written to %s\n",
                gen_suppressions_path.c_str());
  }
  if (log_path.empty()) {
    std::printf("%s", full_log.c_str());
  } else {
    std::ofstream out(log_path, std::ios::binary);
    out << full_log;
    std::printf("warning log written to %s\n", log_path.c_str());
  }
  return 0;
}
