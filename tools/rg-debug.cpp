// rg-debug — the paper's debugging process as a command-line tool.
//
// Runs a SIPp test case against the instrumented proxy under a chosen
// detector configuration and prints the warning summary and the
// Helgrind-style log (optionally to a file, like Helgrind's --log-file).
//
// Usage:
//   rg-debug [options]
//     --testcase N       1..8 (default 2); 0 = run all eight
//     --seed S           schedule seed (default 7)
//     --config C         original | hwlc | hwlc+dr | extended  (default hwlc+dr)
//     --mode M           thread-per-request | thread-pool      (default t-p-r)
//     --faults F         paper | none                          (default paper)
//     --parallelism P    worker threads (default 8)
//     --suppressions F   Valgrind-style suppression file
//     --gen-suppressions F  write suppressions for all reported locations
//     --log FILE         write the warning log to FILE instead of stdout
//     --deadlock-tool    also run the lock-order checker

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/table.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: rg-debug [--testcase N] [--seed S] [--config C] [--mode M]\n"
      "                [--faults paper|none] [--parallelism P]\n"
      "                [--suppressions FILE] [--gen-suppressions FILE]\n"
      "                [--log FILE] [--deadlock-tool]\n"
      "  configs: original | hwlc | hwlc+dr | extended\n"
      "  modes:   thread-per-request | thread-pool\n");
  std::exit(code);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rg-debug: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;

  int testcase = 2;
  sipp::ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  std::string config_name = "hwlc+dr";
  std::string log_path;
  std::string gen_suppressions_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--testcase") {
      testcase = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--config") {
      config_name = next();
      if (config_name == "original")
        cfg.detector = core::HelgrindConfig::original();
      else if (config_name == "hwlc")
        cfg.detector = core::HelgrindConfig::hwlc();
      else if (config_name == "hwlc+dr")
        cfg.detector = core::HelgrindConfig::hwlc_dr();
      else if (config_name == "extended")
        cfg.detector = core::HelgrindConfig::extended();
      else
        usage(2);
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "thread-per-request")
        cfg.mode = sipp::DispatchMode::ThreadPerRequest;
      else if (mode == "thread-pool")
        cfg.mode = sipp::DispatchMode::ThreadPool;
      else
        usage(2);
    } else if (arg == "--faults") {
      const std::string faults = next();
      if (faults == "paper")
        cfg.faults = sip::FaultConfig::paper();
      else if (faults == "none")
        cfg.faults = sip::FaultConfig::none();
      else
        usage(2);
    } else if (arg == "--parallelism") {
      cfg.parallelism = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--suppressions") {
      cfg.suppressions = slurp(next());
    } else if (arg == "--gen-suppressions") {
      gen_suppressions_path = next();
    } else if (arg == "--log") {
      log_path = next();
    } else if (arg == "--deadlock-tool") {
      cfg.deadlock_tool = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      usage(2);
    }
  }
  if (testcase < 0 || testcase > sipp::kTestCaseCount) usage(2);

  support::Table summary("rg-debug — configuration '" + config_name + "'");
  summary.header({"Test case", "locations", "total", "suppressed",
                  "lock-order", "responses", "outcome"});

  std::string full_log;
  std::string all_suppressions;
  const int first = testcase == 0 ? 1 : testcase;
  const int last = testcase == 0 ? sipp::kTestCaseCount : testcase;
  for (int n = first; n <= last; ++n) {
    const sipp::Scenario scenario = sipp::build_testcase(n, cfg.seed);
    const sipp::ExperimentResult result = sipp::run_scenario(scenario, cfg);
    summary.row(scenario.name, result.reported_locations,
                result.total_warnings, result.suppressed_warnings,
                result.lock_order_reports, result.responses,
                result.sim.completed() ? "completed" : "ABORTED");
    full_log += "===== " + scenario.name + " (" +
                sipp::testcase_description(n) + ") =====\n";
    full_log += result.report_text;
    full_log += '\n';
    all_suppressions += result.generated_suppressions;
  }

  std::printf("%s\n", summary.render().c_str());
  if (!gen_suppressions_path.empty()) {
    std::ofstream out(gen_suppressions_path, std::ios::binary);
    out << all_suppressions;
    std::printf("suppressions written to %s\n",
                gen_suppressions_path.c_str());
  }
  if (log_path.empty()) {
    std::printf("%s", full_log.c_str());
  } else {
    std::ofstream out(log_path, std::ios::binary);
    out << full_log;
    std::printf("warning log written to %s\n", log_path.c_str());
  }
  return 0;
}
