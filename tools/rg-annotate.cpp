// rg-annotate — the source-annotation stage of the debugging pipeline.
//
// Drop-in stage-2 of the paper's three-stage build (preprocess → annotate →
// compile): wraps every delete-expression with the destructor annotation
// helper. Designed so "a shell script that replaces the compiler call
// during the build process" can invoke it, keeping the instrumentation
// transparent to build tools and programmers.
//
// Usage:
//   rg-annotate <input.cpp> [-o <output.cpp>]       annotate one file
//   rg-annotate --check <input.cpp> ...             report rewrite counts
//   rg-annotate --no-include ...                    omit the include line
//   rg-annotate --wrapper-single NAME --wrapper-array NAME

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "annotate/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace rg::annotate;
  RewriteOptions options;
  std::string output = "-";
  std::vector<std::string> inputs;
  bool check_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rg-annotate: %s needs an argument\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-o") {
      output = next();
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--no-include") {
      options.include_line.clear();
    } else if (arg == "--wrapper-single") {
      options.single_wrapper = next();
    } else if (arg == "--wrapper-array") {
      options.array_wrapper = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rg-annotate [--check] [--no-include] [-o OUT] FILE...\n"
          "Wraps every delete-expression with the destructor annotation\n"
          "(stage 2 of the instrument/compile/execute debugging process).\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rg-annotate: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  if (inputs.empty()) {
    std::fprintf(stderr, "rg-annotate: no input files\n");
    return 2;
  }
  if (!check_only && inputs.size() > 1 && output != "-") {
    std::fprintf(stderr,
                 "rg-annotate: -o with multiple inputs is not supported\n");
    return 2;
  }

  PipelineStats stats;
  for (const std::string& input : inputs) {
    std::string error;
    const std::string out_path = check_only ? "/dev/null" : output;
    if (!annotate_file(input, out_path, options, stats, error)) {
      std::fprintf(stderr, "rg-annotate: %s\n", error.c_str());
      return 1;
    }
  }
  if (check_only) {
    std::fprintf(stderr,
                 "rg-annotate: %zu file(s), %zu changed, %zu delete and %zu "
                 "delete[] expressions annotated\n",
                 stats.files_processed, stats.files_changed,
                 stats.single_rewrites, stats.array_rewrites);
  }
  return 0;
}
