file(REMOVE_RECURSE
  "CMakeFiles/rg-debug.dir/rg-debug.cpp.o"
  "CMakeFiles/rg-debug.dir/rg-debug.cpp.o.d"
  "rg-debug"
  "rg-debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg-debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
