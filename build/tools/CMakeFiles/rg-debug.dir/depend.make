# Empty dependencies file for rg-debug.
# This may be replaced when dependencies are built.
