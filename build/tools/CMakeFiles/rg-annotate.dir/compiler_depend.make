# Empty compiler generated dependencies file for rg-annotate.
# This may be replaced when dependencies are built.
