file(REMOVE_RECURSE
  "CMakeFiles/rg-annotate.dir/rg-annotate.cpp.o"
  "CMakeFiles/rg-annotate.dir/rg-annotate.cpp.o.d"
  "rg-annotate"
  "rg-annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg-annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
