file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_table.dir/bench_fig6_table.cpp.o"
  "CMakeFiles/bench_fig6_table.dir/bench_fig6_table.cpp.o.d"
  "bench_fig6_table"
  "bench_fig6_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
