file(REMOVE_RECURSE
  "CMakeFiles/bench_detectors.dir/bench_detectors.cpp.o"
  "CMakeFiles/bench_detectors.dir/bench_detectors.cpp.o.d"
  "bench_detectors"
  "bench_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
