# Empty dependencies file for bench_stringtest.
# This may be replaced when dependencies are built.
