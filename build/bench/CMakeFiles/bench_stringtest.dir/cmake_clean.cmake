file(REMOVE_RECURSE
  "CMakeFiles/bench_stringtest.dir/bench_stringtest.cpp.o"
  "CMakeFiles/bench_stringtest.dir/bench_stringtest.cpp.o.d"
  "bench_stringtest"
  "bench_stringtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stringtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
