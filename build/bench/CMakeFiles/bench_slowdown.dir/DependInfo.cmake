
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_slowdown.cpp" "bench/CMakeFiles/bench_slowdown.dir/bench_slowdown.cpp.o" "gcc" "bench/CMakeFiles/bench_slowdown.dir/bench_slowdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sipp/CMakeFiles/rg_sipp.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/rg_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/rg_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/annotate/CMakeFiles/rg_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
