# Empty dependencies file for bench_slowdown.
# This may be replaced when dependencies are built.
