file(REMOVE_RECURSE
  "CMakeFiles/bench_slowdown.dir/bench_slowdown.cpp.o"
  "CMakeFiles/bench_slowdown.dir/bench_slowdown.cpp.o.d"
  "bench_slowdown"
  "bench_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
