# Empty compiler generated dependencies file for bench_false_negative.
# This may be replaced when dependencies are built.
