file(REMOVE_RECURSE
  "CMakeFiles/bench_false_negative.dir/bench_false_negative.cpp.o"
  "CMakeFiles/bench_false_negative.dir/bench_false_negative.cpp.o.d"
  "bench_false_negative"
  "bench_false_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
