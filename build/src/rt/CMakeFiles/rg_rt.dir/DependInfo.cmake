
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/memory.cpp" "src/rt/CMakeFiles/rg_rt.dir/memory.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/memory.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/rt/CMakeFiles/rg_rt.dir/runtime.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/runtime.cpp.o.d"
  "/root/repo/src/rt/sched.cpp" "src/rt/CMakeFiles/rg_rt.dir/sched.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/sched.cpp.o.d"
  "/root/repo/src/rt/sim.cpp" "src/rt/CMakeFiles/rg_rt.dir/sim.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/sim.cpp.o.d"
  "/root/repo/src/rt/sync.cpp" "src/rt/CMakeFiles/rg_rt.dir/sync.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/sync.cpp.o.d"
  "/root/repo/src/rt/thread.cpp" "src/rt/CMakeFiles/rg_rt.dir/thread.cpp.o" "gcc" "src/rt/CMakeFiles/rg_rt.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
