# Empty compiler generated dependencies file for rg_rt.
# This may be replaced when dependencies are built.
