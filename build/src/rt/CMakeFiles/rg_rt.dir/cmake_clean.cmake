file(REMOVE_RECURSE
  "CMakeFiles/rg_rt.dir/memory.cpp.o"
  "CMakeFiles/rg_rt.dir/memory.cpp.o.d"
  "CMakeFiles/rg_rt.dir/runtime.cpp.o"
  "CMakeFiles/rg_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/rg_rt.dir/sched.cpp.o"
  "CMakeFiles/rg_rt.dir/sched.cpp.o.d"
  "CMakeFiles/rg_rt.dir/sim.cpp.o"
  "CMakeFiles/rg_rt.dir/sim.cpp.o.d"
  "CMakeFiles/rg_rt.dir/sync.cpp.o"
  "CMakeFiles/rg_rt.dir/sync.cpp.o.d"
  "CMakeFiles/rg_rt.dir/thread.cpp.o"
  "CMakeFiles/rg_rt.dir/thread.cpp.o.d"
  "librg_rt.a"
  "librg_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
