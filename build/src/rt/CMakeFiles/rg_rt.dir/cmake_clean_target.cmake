file(REMOVE_RECURSE
  "librg_rt.a"
)
