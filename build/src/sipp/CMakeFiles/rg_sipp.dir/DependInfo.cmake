
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sipp/experiment.cpp" "src/sipp/CMakeFiles/rg_sipp.dir/experiment.cpp.o" "gcc" "src/sipp/CMakeFiles/rg_sipp.dir/experiment.cpp.o.d"
  "/root/repo/src/sipp/scenario.cpp" "src/sipp/CMakeFiles/rg_sipp.dir/scenario.cpp.o" "gcc" "src/sipp/CMakeFiles/rg_sipp.dir/scenario.cpp.o.d"
  "/root/repo/src/sipp/testcases.cpp" "src/sipp/CMakeFiles/rg_sipp.dir/testcases.cpp.o" "gcc" "src/sipp/CMakeFiles/rg_sipp.dir/testcases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sip/CMakeFiles/rg_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/annotate/CMakeFiles/rg_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/rg_shadow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
