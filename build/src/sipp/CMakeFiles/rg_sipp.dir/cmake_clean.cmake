file(REMOVE_RECURSE
  "CMakeFiles/rg_sipp.dir/experiment.cpp.o"
  "CMakeFiles/rg_sipp.dir/experiment.cpp.o.d"
  "CMakeFiles/rg_sipp.dir/scenario.cpp.o"
  "CMakeFiles/rg_sipp.dir/scenario.cpp.o.d"
  "CMakeFiles/rg_sipp.dir/testcases.cpp.o"
  "CMakeFiles/rg_sipp.dir/testcases.cpp.o.d"
  "librg_sipp.a"
  "librg_sipp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_sipp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
