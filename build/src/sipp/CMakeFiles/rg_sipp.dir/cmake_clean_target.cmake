file(REMOVE_RECURSE
  "librg_sipp.a"
)
