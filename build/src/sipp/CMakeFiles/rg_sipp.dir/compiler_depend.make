# Empty compiler generated dependencies file for rg_sipp.
# This may be replaced when dependencies are built.
