# Empty dependencies file for rg_support.
# This may be replaced when dependencies are built.
