file(REMOVE_RECURSE
  "CMakeFiles/rg_support.dir/glob.cpp.o"
  "CMakeFiles/rg_support.dir/glob.cpp.o.d"
  "CMakeFiles/rg_support.dir/intern.cpp.o"
  "CMakeFiles/rg_support.dir/intern.cpp.o.d"
  "CMakeFiles/rg_support.dir/site.cpp.o"
  "CMakeFiles/rg_support.dir/site.cpp.o.d"
  "CMakeFiles/rg_support.dir/stats.cpp.o"
  "CMakeFiles/rg_support.dir/stats.cpp.o.d"
  "CMakeFiles/rg_support.dir/strings.cpp.o"
  "CMakeFiles/rg_support.dir/strings.cpp.o.d"
  "CMakeFiles/rg_support.dir/table.cpp.o"
  "CMakeFiles/rg_support.dir/table.cpp.o.d"
  "librg_support.a"
  "librg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
