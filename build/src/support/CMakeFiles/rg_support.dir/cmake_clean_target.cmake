file(REMOVE_RECURSE
  "librg_support.a"
)
