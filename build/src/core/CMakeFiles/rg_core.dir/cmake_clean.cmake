file(REMOVE_RECURSE
  "CMakeFiles/rg_core.dir/deadlock.cpp.o"
  "CMakeFiles/rg_core.dir/deadlock.cpp.o.d"
  "CMakeFiles/rg_core.dir/djit.cpp.o"
  "CMakeFiles/rg_core.dir/djit.cpp.o.d"
  "CMakeFiles/rg_core.dir/eraser.cpp.o"
  "CMakeFiles/rg_core.dir/eraser.cpp.o.d"
  "CMakeFiles/rg_core.dir/helgrind.cpp.o"
  "CMakeFiles/rg_core.dir/helgrind.cpp.o.d"
  "CMakeFiles/rg_core.dir/hybrid.cpp.o"
  "CMakeFiles/rg_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/rg_core.dir/report.cpp.o"
  "CMakeFiles/rg_core.dir/report.cpp.o.d"
  "librg_core.a"
  "librg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
