
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deadlock.cpp" "src/core/CMakeFiles/rg_core.dir/deadlock.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/deadlock.cpp.o.d"
  "/root/repo/src/core/djit.cpp" "src/core/CMakeFiles/rg_core.dir/djit.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/djit.cpp.o.d"
  "/root/repo/src/core/eraser.cpp" "src/core/CMakeFiles/rg_core.dir/eraser.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/eraser.cpp.o.d"
  "/root/repo/src/core/helgrind.cpp" "src/core/CMakeFiles/rg_core.dir/helgrind.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/helgrind.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/rg_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rg_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shadow/CMakeFiles/rg_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
