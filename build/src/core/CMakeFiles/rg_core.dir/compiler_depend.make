# Empty compiler generated dependencies file for rg_core.
# This may be replaced when dependencies are built.
