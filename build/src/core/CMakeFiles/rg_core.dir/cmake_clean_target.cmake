file(REMOVE_RECURSE
  "librg_core.a"
)
