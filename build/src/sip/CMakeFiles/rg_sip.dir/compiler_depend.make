# Empty compiler generated dependencies file for rg_sip.
# This may be replaced when dependencies are built.
