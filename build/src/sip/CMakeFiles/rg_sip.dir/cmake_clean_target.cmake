file(REMOVE_RECURSE
  "librg_sip.a"
)
