file(REMOVE_RECURSE
  "CMakeFiles/rg_sip.dir/audit.cpp.o"
  "CMakeFiles/rg_sip.dir/audit.cpp.o.d"
  "CMakeFiles/rg_sip.dir/cow_string.cpp.o"
  "CMakeFiles/rg_sip.dir/cow_string.cpp.o.d"
  "CMakeFiles/rg_sip.dir/deadlock_monitor.cpp.o"
  "CMakeFiles/rg_sip.dir/deadlock_monitor.cpp.o.d"
  "CMakeFiles/rg_sip.dir/dialog.cpp.o"
  "CMakeFiles/rg_sip.dir/dialog.cpp.o.d"
  "CMakeFiles/rg_sip.dir/dispatch.cpp.o"
  "CMakeFiles/rg_sip.dir/dispatch.cpp.o.d"
  "CMakeFiles/rg_sip.dir/domain_data.cpp.o"
  "CMakeFiles/rg_sip.dir/domain_data.cpp.o.d"
  "CMakeFiles/rg_sip.dir/message.cpp.o"
  "CMakeFiles/rg_sip.dir/message.cpp.o.d"
  "CMakeFiles/rg_sip.dir/parser.cpp.o"
  "CMakeFiles/rg_sip.dir/parser.cpp.o.d"
  "CMakeFiles/rg_sip.dir/pool_alloc.cpp.o"
  "CMakeFiles/rg_sip.dir/pool_alloc.cpp.o.d"
  "CMakeFiles/rg_sip.dir/proxy.cpp.o"
  "CMakeFiles/rg_sip.dir/proxy.cpp.o.d"
  "CMakeFiles/rg_sip.dir/registrar.cpp.o"
  "CMakeFiles/rg_sip.dir/registrar.cpp.o.d"
  "CMakeFiles/rg_sip.dir/stats.cpp.o"
  "CMakeFiles/rg_sip.dir/stats.cpp.o.d"
  "CMakeFiles/rg_sip.dir/time_utils.cpp.o"
  "CMakeFiles/rg_sip.dir/time_utils.cpp.o.d"
  "CMakeFiles/rg_sip.dir/transaction.cpp.o"
  "CMakeFiles/rg_sip.dir/transaction.cpp.o.d"
  "librg_sip.a"
  "librg_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
