
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/audit.cpp" "src/sip/CMakeFiles/rg_sip.dir/audit.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/audit.cpp.o.d"
  "/root/repo/src/sip/cow_string.cpp" "src/sip/CMakeFiles/rg_sip.dir/cow_string.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/cow_string.cpp.o.d"
  "/root/repo/src/sip/deadlock_monitor.cpp" "src/sip/CMakeFiles/rg_sip.dir/deadlock_monitor.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/deadlock_monitor.cpp.o.d"
  "/root/repo/src/sip/dialog.cpp" "src/sip/CMakeFiles/rg_sip.dir/dialog.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/dialog.cpp.o.d"
  "/root/repo/src/sip/dispatch.cpp" "src/sip/CMakeFiles/rg_sip.dir/dispatch.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/dispatch.cpp.o.d"
  "/root/repo/src/sip/domain_data.cpp" "src/sip/CMakeFiles/rg_sip.dir/domain_data.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/domain_data.cpp.o.d"
  "/root/repo/src/sip/message.cpp" "src/sip/CMakeFiles/rg_sip.dir/message.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/message.cpp.o.d"
  "/root/repo/src/sip/parser.cpp" "src/sip/CMakeFiles/rg_sip.dir/parser.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/parser.cpp.o.d"
  "/root/repo/src/sip/pool_alloc.cpp" "src/sip/CMakeFiles/rg_sip.dir/pool_alloc.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/pool_alloc.cpp.o.d"
  "/root/repo/src/sip/proxy.cpp" "src/sip/CMakeFiles/rg_sip.dir/proxy.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/proxy.cpp.o.d"
  "/root/repo/src/sip/registrar.cpp" "src/sip/CMakeFiles/rg_sip.dir/registrar.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/registrar.cpp.o.d"
  "/root/repo/src/sip/stats.cpp" "src/sip/CMakeFiles/rg_sip.dir/stats.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/stats.cpp.o.d"
  "/root/repo/src/sip/time_utils.cpp" "src/sip/CMakeFiles/rg_sip.dir/time_utils.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/time_utils.cpp.o.d"
  "/root/repo/src/sip/transaction.cpp" "src/sip/CMakeFiles/rg_sip.dir/transaction.cpp.o" "gcc" "src/sip/CMakeFiles/rg_sip.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/rg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/annotate/CMakeFiles/rg_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
