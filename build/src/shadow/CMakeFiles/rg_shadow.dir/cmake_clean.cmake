file(REMOVE_RECURSE
  "CMakeFiles/rg_shadow.dir/lockset.cpp.o"
  "CMakeFiles/rg_shadow.dir/lockset.cpp.o.d"
  "CMakeFiles/rg_shadow.dir/segments.cpp.o"
  "CMakeFiles/rg_shadow.dir/segments.cpp.o.d"
  "librg_shadow.a"
  "librg_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
