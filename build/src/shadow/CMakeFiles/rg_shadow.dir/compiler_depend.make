# Empty compiler generated dependencies file for rg_shadow.
# This may be replaced when dependencies are built.
