file(REMOVE_RECURSE
  "librg_shadow.a"
)
