
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotate/lexer.cpp" "src/annotate/CMakeFiles/rg_annotate.dir/lexer.cpp.o" "gcc" "src/annotate/CMakeFiles/rg_annotate.dir/lexer.cpp.o.d"
  "/root/repo/src/annotate/pipeline.cpp" "src/annotate/CMakeFiles/rg_annotate.dir/pipeline.cpp.o" "gcc" "src/annotate/CMakeFiles/rg_annotate.dir/pipeline.cpp.o.d"
  "/root/repo/src/annotate/rewrite.cpp" "src/annotate/CMakeFiles/rg_annotate.dir/rewrite.cpp.o" "gcc" "src/annotate/CMakeFiles/rg_annotate.dir/rewrite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/rg_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
