# Empty compiler generated dependencies file for rg_annotate.
# This may be replaced when dependencies are built.
