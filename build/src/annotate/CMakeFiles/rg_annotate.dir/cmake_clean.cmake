file(REMOVE_RECURSE
  "CMakeFiles/rg_annotate.dir/lexer.cpp.o"
  "CMakeFiles/rg_annotate.dir/lexer.cpp.o.d"
  "CMakeFiles/rg_annotate.dir/pipeline.cpp.o"
  "CMakeFiles/rg_annotate.dir/pipeline.cpp.o.d"
  "CMakeFiles/rg_annotate.dir/rewrite.cpp.o"
  "CMakeFiles/rg_annotate.dir/rewrite.cpp.o.d"
  "librg_annotate.a"
  "librg_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
