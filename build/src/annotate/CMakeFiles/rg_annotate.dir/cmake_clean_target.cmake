file(REMOVE_RECURSE
  "librg_annotate.a"
)
