# Empty compiler generated dependencies file for annotate_pipeline.
# This may be replaced when dependencies are built.
