file(REMOVE_RECURSE
  "CMakeFiles/annotate_pipeline.dir/annotate_pipeline.cpp.o"
  "CMakeFiles/annotate_pipeline.dir/annotate_pipeline.cpp.o.d"
  "annotate_pipeline"
  "annotate_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
