file(REMOVE_RECURSE
  "CMakeFiles/threadpool_ownership.dir/threadpool_ownership.cpp.o"
  "CMakeFiles/threadpool_ownership.dir/threadpool_ownership.cpp.o.d"
  "threadpool_ownership"
  "threadpool_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threadpool_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
