# Empty compiler generated dependencies file for threadpool_ownership.
# This may be replaced when dependencies are built.
