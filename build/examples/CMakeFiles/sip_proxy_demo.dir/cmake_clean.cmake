file(REMOVE_RECURSE
  "CMakeFiles/sip_proxy_demo.dir/sip_proxy_demo.cpp.o"
  "CMakeFiles/sip_proxy_demo.dir/sip_proxy_demo.cpp.o.d"
  "sip_proxy_demo"
  "sip_proxy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_proxy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
