# Empty compiler generated dependencies file for sip_proxy_demo.
# This may be replaced when dependencies are built.
