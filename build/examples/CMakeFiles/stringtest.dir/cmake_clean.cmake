file(REMOVE_RECURSE
  "CMakeFiles/stringtest.dir/stringtest.cpp.o"
  "CMakeFiles/stringtest.dir/stringtest.cpp.o.d"
  "stringtest"
  "stringtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stringtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
