# Empty compiler generated dependencies file for stringtest.
# This may be replaced when dependencies are built.
