file(REMOVE_RECURSE
  "CMakeFiles/test_djit.dir/test_djit.cpp.o"
  "CMakeFiles/test_djit.dir/test_djit.cpp.o.d"
  "test_djit"
  "test_djit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_djit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
