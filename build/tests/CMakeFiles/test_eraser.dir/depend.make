# Empty dependencies file for test_eraser.
# This may be replaced when dependencies are built.
