file(REMOVE_RECURSE
  "CMakeFiles/test_eraser.dir/test_eraser.cpp.o"
  "CMakeFiles/test_eraser.dir/test_eraser.cpp.o.d"
  "test_eraser"
  "test_eraser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eraser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
