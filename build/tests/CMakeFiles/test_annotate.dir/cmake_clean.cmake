file(REMOVE_RECURSE
  "CMakeFiles/test_annotate.dir/test_annotate.cpp.o"
  "CMakeFiles/test_annotate.dir/test_annotate.cpp.o.d"
  "test_annotate"
  "test_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
