file(REMOVE_RECURSE
  "CMakeFiles/test_sip_components.dir/test_sip_components.cpp.o"
  "CMakeFiles/test_sip_components.dir/test_sip_components.cpp.o.d"
  "test_sip_components"
  "test_sip_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
