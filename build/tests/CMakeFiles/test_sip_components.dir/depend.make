# Empty dependencies file for test_sip_components.
# This may be replaced when dependencies are built.
