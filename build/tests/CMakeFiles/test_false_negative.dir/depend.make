# Empty dependencies file for test_false_negative.
# This may be replaced when dependencies are built.
