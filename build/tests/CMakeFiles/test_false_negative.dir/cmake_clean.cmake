file(REMOVE_RECURSE
  "CMakeFiles/test_false_negative.dir/test_false_negative.cpp.o"
  "CMakeFiles/test_false_negative.dir/test_false_negative.cpp.o.d"
  "test_false_negative"
  "test_false_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_false_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
