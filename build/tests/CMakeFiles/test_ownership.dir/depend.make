# Empty dependencies file for test_ownership.
# This may be replaced when dependencies are built.
