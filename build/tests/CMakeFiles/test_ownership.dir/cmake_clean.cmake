file(REMOVE_RECURSE
  "CMakeFiles/test_ownership.dir/test_ownership.cpp.o"
  "CMakeFiles/test_ownership.dir/test_ownership.cpp.o.d"
  "test_ownership"
  "test_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
