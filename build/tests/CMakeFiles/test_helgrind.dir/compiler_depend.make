# Empty compiler generated dependencies file for test_helgrind.
# This may be replaced when dependencies are built.
