file(REMOVE_RECURSE
  "CMakeFiles/test_helgrind.dir/test_helgrind.cpp.o"
  "CMakeFiles/test_helgrind.dir/test_helgrind.cpp.o.d"
  "test_helgrind"
  "test_helgrind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_helgrind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
