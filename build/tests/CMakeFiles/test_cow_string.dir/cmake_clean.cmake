file(REMOVE_RECURSE
  "CMakeFiles/test_cow_string.dir/test_cow_string.cpp.o"
  "CMakeFiles/test_cow_string.dir/test_cow_string.cpp.o.d"
  "test_cow_string"
  "test_cow_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cow_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
