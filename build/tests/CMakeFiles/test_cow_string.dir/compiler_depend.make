# Empty compiler generated dependencies file for test_cow_string.
# This may be replaced when dependencies are built.
