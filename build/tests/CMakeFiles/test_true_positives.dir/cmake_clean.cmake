file(REMOVE_RECURSE
  "CMakeFiles/test_true_positives.dir/test_true_positives.cpp.o"
  "CMakeFiles/test_true_positives.dir/test_true_positives.cpp.o.d"
  "test_true_positives"
  "test_true_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_true_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
