# Empty dependencies file for test_true_positives.
# This may be replaced when dependencies are built.
