file(REMOVE_RECURSE
  "CMakeFiles/test_deadlock_tool.dir/test_deadlock_tool.cpp.o"
  "CMakeFiles/test_deadlock_tool.dir/test_deadlock_tool.cpp.o.d"
  "test_deadlock_tool"
  "test_deadlock_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadlock_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
