# Empty dependencies file for test_deadlock_tool.
# This may be replaced when dependencies are built.
