// E15 — lock-order prediction overhead.
//
// The lock-graph tool's contract is "always-on prediction is affordable":
// per-acquisition history capture, guard tracking and online cycle
// adjudication must price in under the classic detector noise floor. This
// bench compares the E6/T5 mixed workload (hwlc+dr):
//
//   baseline        lock-graph tool off
//   lockgraph       lock-graph tool on (acquisition histories + refinements)
//   +hazard         lockgraph on a run with a seeded registrar-vs-upstream
//                   inversion (informational: prices the reporting path,
//                   the workload itself differs from baseline)
//
// and fails (exit 1) if the lockgraph run is more than 5% slower than the
// tool-off baseline, if attaching the tool changed the data-race warnings
// or the response stream, or if same-seed prediction runs disagree on the
// predicted cycles. Timing is best-of-rounds, interleaved so machine noise
// hits both sides.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "sipp/experiment.hpp"
#include "sipp/hazards.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_once(const rg::sipp::Scenario& scenario,
                const rg::sipp::ExperimentConfig& cfg,
                rg::sipp::ExperimentResult& out) {
  const auto start = Clock::now();
  out = rg::sipp::run_scenario(scenario, cfg);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool same_run(const rg::sipp::ExperimentResult& a,
              const rg::sipp::ExperimentResult& b) {
  return a.reported_locations == b.reported_locations &&
         a.location_keys == b.location_keys && a.sim.steps == b.sim.steps &&
         a.total_warnings == b.total_warnings && a.responses == b.responses;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  bool smoke = false;
  std::uint64_t seed = 11;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }
  const int rounds = smoke ? 10 : 15;

  sipp::ExperimentConfig base;
  base.seed = seed;
  base.detector = core::HelgrindConfig::hwlc_dr();
  const sipp::Scenario scenario = sipp::build_testcase(5, seed);

  sipp::ExperimentConfig tool = base;
  tool.deadlock_tool = true;

  // Informational hazard leg: family A on its own scenario/config (the
  // inversion needs an upstream target and fault-free traffic). Predictions
  // come from runs that do not deadlock, so scan for a completing seed.
  std::uint64_t hz_seed = 1;
  for (std::uint64_t s = 1; s <= 16; ++s) {
    const sipp::ExperimentResult probe = sipp::run_scenario(
        sipp::build_hazard_scenario(sipp::HazardFamily::RegistrarVsUpstream,
                                    s),
        sipp::hazard_config(sipp::HazardFamily::RegistrarVsUpstream, s));
    if (probe.sim.completed()) {
      hz_seed = s;
      break;
    }
  }
  const sipp::Scenario hz_scenario = sipp::build_hazard_scenario(
      sipp::HazardFamily::RegistrarVsUpstream, hz_seed);
  const sipp::ExperimentConfig hz_cfg =
      sipp::hazard_config(sipp::HazardFamily::RegistrarVsUpstream, hz_seed);

  std::printf("Lock-order prediction overhead — %s, seed %llu%s\n\n",
              scenario.name.c_str(), static_cast<unsigned long long>(seed),
              smoke ? " (smoke)" : "");

  double t_base = 1e300, t_tool = 1e300, t_hz = 1e300;
  sipp::ExperimentResult r_base, r_tool, r_hz;
  bool deterministic = true;
  std::size_t first_predicted = 0;
  std::uint64_t first_edges = 0;
  for (int i = 0; i < rounds; ++i) {
    t_base = std::min(t_base, run_once(scenario, base, r_base));
    t_tool = std::min(t_tool, run_once(scenario, tool, r_tool));
    t_hz = std::min(t_hz, run_once(hz_scenario, hz_cfg, r_hz));
    if (i == 0) {
      first_predicted = r_hz.predicted_cycles.size();
      first_edges = r_tool.lockgraph.edges;
    } else if (r_hz.predicted_cycles.size() != first_predicted ||
               r_tool.lockgraph.edges != first_edges) {
      deterministic = false;
    }
  }

  const double tool_overhead = t_tool / t_base - 1.0;
  const bool runs_equal = same_run(r_base, r_tool);

  support::Table table("time per run [s], best of " +
                       std::to_string(rounds));
  table.header({"variant", "time", "overhead", "edges", "predicted"});
  char t_s[32], o_s[32];
  std::snprintf(t_s, sizeof t_s, "%.4f", t_base);
  table.row("baseline (tool off)", t_s, "", "", "");
  std::snprintf(t_s, sizeof t_s, "%.4f", t_tool);
  std::snprintf(o_s, sizeof o_s, "%+.1f%%", 100.0 * tool_overhead);
  table.row("lock-graph tool", t_s, o_s,
            std::to_string(r_tool.lockgraph.edges),
            std::to_string(r_tool.predicted_cycles.size()));
  std::snprintf(t_s, sizeof t_s, "%.4f", t_hz);
  table.row("+ seeded inversion (info)", t_s, "",
            std::to_string(r_hz.lockgraph.edges),
            std::to_string(r_hz.predicted_cycles.size()));
  std::printf("%s\n", table.render().c_str());

  std::printf("warnings/responses identical with tool attached: %s\n",
              runs_equal ? "yes" : "NO");
  std::printf("same-seed predictions identical (%d rounds): %s\n\n", rounds,
              deterministic ? "yes" : "NO");

  support::BenchJson json("deadlock");
  json.add("seed", seed);
  json.add("smoke", smoke ? "true" : "false");
  json.add("workload", scenario.name);
  json.add("rounds", rounds);
  json.add("baseline_s", t_base);
  json.add("lockgraph_s", t_tool);
  json.add("hazard_s", t_hz);
  json.add("lockgraph_overhead", tool_overhead);
  json.add("edges", r_tool.lockgraph.edges);
  json.add("naive_inversions", r_tool.lock_order_reports);
  json.add("predicted_clean", r_tool.predicted_cycles.size());
  json.add("predicted_hazard", r_hz.predicted_cycles.size());
  json.add("runs_identical", runs_equal ? "true" : "false");
  json.add("deterministic", deterministic ? "true" : "false");
  json.write();

  bool failed = false;
  // 5% contract gate; the smoke gate gets 2x headroom for timer noise on
  // the millisecond-scale workload.
  const double budget = smoke ? 0.10 : 0.05;
  if (tool_overhead > budget) {
    std::printf("OVERHEAD VIOLATION: lock-graph run %.1f%% over the "
                "tool-off baseline (budget %.0f%%).\n",
                100.0 * tool_overhead, 100.0 * budget);
    failed = true;
  }
  if (!runs_equal) {
    std::printf("EQUIVALENCE VIOLATION: attaching the lock-graph tool "
                "changed the warnings or responses.\n");
    failed = true;
  }
  if (!deterministic) {
    std::printf("DETERMINISM VIOLATION: same-seed runs disagreed on the "
                "predicted cycles.\n");
    failed = true;
  }
  if (r_tool.predicted_cycles.size() != 0) {
    std::printf("FALSE ALARM: the clean workload produced %zu predicted "
                "cycle(s).\n",
                r_tool.predicted_cycles.size());
    failed = true;
  }
  if (r_hz.predicted_cycles.empty()) {
    std::printf("MISSED PREDICTION: the seeded inversion produced no "
                "predicted cycle.\n");
    failed = true;
  }
  return failed ? 1 : 0;
}
