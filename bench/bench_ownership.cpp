// E4 — regenerates the Figs. 10/11 comparison: the same request mix under
// thread-per-request dispatch (ownership passes via create/join: silent)
// and thread-pool dispatch (ownership passes via queue put/get that the
// baseline algorithm cannot see: false positives), plus the §5 future-work
// extension that derives happens-before edges from the hand-offs.
#include <cstdio>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 17;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Figs. 10/11 — transition of ownership (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("Workload: T2 dialogs against a fault-free proxy, so every "
              "warning is dispatch-pattern noise.\n\n");

  auto run = [&](sipp::DispatchMode mode, const core::HelgrindConfig& det) {
    sipp::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.mode = mode;
    cfg.detector = det;
    cfg.faults = sip::FaultConfig::none();
    const auto scenario = sipp::build_testcase(2, seed);
    return sipp::run_scenario(scenario, cfg).reported_locations;
  };

  const std::size_t per_request_base =
      run(sipp::DispatchMode::ThreadPerRequest, core::HelgrindConfig::hwlc_dr());
  const std::size_t pool_base =
      run(sipp::DispatchMode::ThreadPool, core::HelgrindConfig::hwlc_dr());
  const std::size_t per_request_ext = run(sipp::DispatchMode::ThreadPerRequest,
                                          core::HelgrindConfig::extended());
  const std::size_t pool_ext =
      run(sipp::DispatchMode::ThreadPool, core::HelgrindConfig::extended());

  support::Table table("ownership-transfer false positives");
  table.header({"Dispatch pattern", "HWLC+DR (baseline)",
                "+hb_message_passing (ext)"});
  table.row("thread-per-request (Fig. 10)", per_request_base, per_request_ext);
  table.row("thread-pool (Fig. 11)", pool_base, pool_ext);
  std::printf("%s\n", table.render().c_str());

  const bool shape = per_request_base == 0 && pool_base > 0 && pool_ext == 0;
  std::printf(
      "Reproduction: thread-per-request silent [%s], thread-pool flagged "
      "by the baseline [%s], extension removes the pool FPs [%s] -> %s\n",
      per_request_base == 0 ? "yes" : "NO", pool_base > 0 ? "yes" : "NO",
      pool_ext == 0 ? "yes" : "NO",
      shape ? "MATCHES the paper" : "DIVERGES");

  support::BenchJson json("ownership");
  json.add("per_request_base", per_request_base);
  json.add("pool_base", pool_base);
  json.add("per_request_ext", per_request_ext);
  json.add("pool_ext", pool_ext);
  json.add("matches_paper", shape ? "true" : "false");
  json.write();
  return shape ? 0 : 1;
}
