// E11 — hot-path overhaul: what each per-event optimization buys, and proof
// that none of them changes what the detector reports.
//
// Four comparisons on the T5 mixed scenario (the §4.5 workload):
//   scheduler fast path   on/off   (no-switch budget, fiber scheduler)
//   lockset cache         on/off   (per-thread effective-lockset memo)
//   shadow TLB            on/off   (last-page lookup cache)
//   Fig. 6 harness        serial vs OS-thread pool (3 cells per case)
// Every on/off pair asserts identical warning locations, location keys and
// scheduler steps; the parallel harness asserts rows equal to the serial
// sweep. Exit status 1 if any equivalence check fails.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double time_scenario(const rg::sipp::Scenario& scenario,
                     const rg::sipp::ExperimentConfig& cfg, int rounds,
                     rg::sipp::ExperimentResult& out) {
  double best = 1e300;
  for (int i = 0; i < rounds; ++i) {
    const auto start = Clock::now();
    out = rg::sipp::run_scenario(scenario, cfg);
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

bool same_reports(const rg::sipp::ExperimentResult& a,
                  const rg::sipp::ExperimentResult& b) {
  return a.reported_locations == b.reported_locations &&
         a.location_keys == b.location_keys && a.sim.steps == b.sim.steps &&
         a.total_warnings == b.total_warnings;
}

bool same_rows(const std::vector<rg::sipp::Fig6Row>& a,
               const std::vector<rg::sipp::Fig6Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].testcase != b[i].testcase || a[i].original != b[i].original ||
        a[i].hwlc != b[i].hwlc || a[i].hwlc_dr != b[i].hwlc_dr ||
        a[i].hw_lock_fps != b[i].hw_lock_fps ||
        a[i].destructor_fps != b[i].destructor_fps)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  bool smoke = false;
  std::uint64_t seed = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }
  const int rounds = smoke ? 1 : 3;

  std::printf("Hot-path overhaul — per-event optimizations (seed %llu%s)\n\n",
              static_cast<unsigned long long>(seed), smoke ? ", smoke" : "");

  sipp::ExperimentConfig base;
  base.seed = seed;
  base.detector = core::HelgrindConfig::hwlc_dr();
  const sipp::Scenario scenario = sipp::build_testcase(5, seed);

  support::BenchJson json("hotpath");
  json.add("seed", seed);
  json.add("smoke", smoke ? "true" : "false");
  json.add("workload", scenario.name);

  support::Table table("time per T5 run [s], optimization on vs off");
  table.header({"Optimization", "off", "on", "speedup", "identical"});
  bool all_equal = true;

  auto compare = [&](const char* name, const char* key,
                     sipp::ExperimentConfig off, sipp::ExperimentConfig on,
                     sipp::ExperimentResult& on_result) {
    sipp::ExperimentResult off_r;
    const double t_off = time_scenario(scenario, off, rounds, off_r);
    const double t_on = time_scenario(scenario, on, rounds, on_result);
    const bool equal = same_reports(off_r, on_result);
    all_equal = all_equal && equal;
    char off_s[32], on_s[32], speed[32];
    std::snprintf(off_s, sizeof off_s, "%.4f", t_off);
    std::snprintf(on_s, sizeof on_s, "%.4f", t_on);
    std::snprintf(speed, sizeof speed, "%.2fx", t_off / t_on);
    table.row(name, off_s, on_s, speed, equal ? "yes" : "NO");
    json.add(std::string(key) + "_off_s", t_off);
    json.add(std::string(key) + "_on_s", t_on);
  };

  // Scheduler no-switch fast path.
  sipp::ExperimentConfig cfg_off = base, cfg_on = base;
  cfg_off.sched_fast_path = false;
  sipp::ExperimentResult fast_r;
  compare("sched fast path", "sched_fast_path", cfg_off, cfg_on, fast_r);

  // Per-thread effective-lockset cache.
  cfg_off = base;
  cfg_off.detector.lockset_cache = false;
  sipp::ExperimentResult lockset_r;
  compare("lockset cache", "lockset_cache", cfg_off, base, lockset_r);

  // Shadow-map last-page TLB.
  cfg_off = base;
  cfg_off.detector.shadow_tlb = false;
  sipp::ExperimentResult tlb_r;
  compare("shadow TLB", "shadow_tlb", cfg_off, base, tlb_r);

  std::printf("%s\n", table.render().c_str());

  const rt::ToolStats stats = lockset_r.tool_stats;
  std::printf(
      "counters (optimizations on):\n"
      "  sched fast-path steps   %llu / %llu (%.0f%%)\n"
      "  lockset cache hit/miss  %llu / %llu\n"
      "  shadow TLB hit/miss     %llu / %llu\n\n",
      static_cast<unsigned long long>(fast_r.sim.fast_path_steps),
      static_cast<unsigned long long>(fast_r.sim.steps),
      fast_r.sim.steps == 0 ? 0.0
                            : 100.0 *
                                  static_cast<double>(
                                      fast_r.sim.fast_path_steps) /
                                  static_cast<double>(fast_r.sim.steps),
      static_cast<unsigned long long>(stats.lockset_cache_hits),
      static_cast<unsigned long long>(stats.lockset_cache_misses),
      static_cast<unsigned long long>(stats.shadow_tlb_hits),
      static_cast<unsigned long long>(stats.shadow_tlb_misses));
  json.add("sched_fast_path_steps", fast_r.sim.fast_path_steps);
  json.add("sched_steps", fast_r.sim.steps);
  json.add("lockset_cache_hits", stats.lockset_cache_hits);
  json.add("lockset_cache_misses", stats.lockset_cache_misses);
  json.add("shadow_tlb_hits", stats.shadow_tlb_hits);
  json.add("shadow_tlb_misses", stats.shadow_tlb_misses);

  // Parallel experiment harness: same rows, less wall clock.
  std::vector<int> cases;
  for (int n = 1; n <= (smoke ? 2 : sipp::kTestCaseCount); ++n)
    cases.push_back(n);
  sipp::ExperimentConfig fig6 = base;
  fig6.seed = 7;  // the seed the Fig. 6 baselines use
  fig6.detector = core::HelgrindConfig::original();

  auto t0 = Clock::now();
  const auto serial = sipp::run_fig6_rows(cases, fig6, 1);
  const double t_serial =
      std::chrono::duration<double>(Clock::now() - t0).count();
  t0 = Clock::now();
  const auto parallel = sipp::run_fig6_rows(cases, fig6, 0);
  const double t_parallel =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const bool rows_equal = same_rows(serial, parallel);
  all_equal = all_equal && rows_equal;

  std::printf(
      "Fig. 6 harness, T1..T%zu x 3 cells: serial %.3fs, pool %.3fs "
      "(%.2fx), rows identical: %s\n",
      cases.size(), t_serial, t_parallel, t_serial / t_parallel,
      rows_equal ? "yes" : "NO");
  json.add("fig6_cases", cases.size());
  json.add("fig6_serial_s", t_serial);
  json.add("fig6_parallel_s", t_parallel);
  json.add("equivalent", all_equal ? "true" : "false");
  json.write();

  if (!all_equal) {
    std::printf("\nEQUIVALENCE VIOLATION: an optimization changed the "
                "reported warnings.\n");
    return 1;
  }
  return 0;
}
