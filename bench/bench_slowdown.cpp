// E6 — the §4.5 performance experiment.
//
// The paper reports that the program runs 8-10x slower on the Valgrind VM
// without instrumentation and 20-30x slower with Helgrind analysis. We
// measure the same three stages of our substitute stack:
//   native      — plain std::thread/std::mutex (no Sim, no events),
//   VM only     — the deterministic scheduler with no tools attached,
//   VM+Helgrind — scheduler plus the HWLC+DR detector.
// Absolute factors depend on the substrate; the claim is the ordering and
// that detection dominates the added cost.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "sip/dispatch.hpp"
#include "sip/proxy.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The measured workload: a T5-style mixed scenario through the proxy.
/// Only the request-dispatch loop is timed — proxy start/shutdown involve
/// wall-clock reaper sleeps in native mode that would swamp the figure.
double run_workload(std::size_t repeats) {
  using namespace rg;
  sip::ProxyConfig cfg;
  cfg.faults = sip::FaultConfig::none();
  sip::Proxy proxy(cfg);
  proxy.start();
  sip::ThreadPerRequestDispatcher dispatcher(6);
  const sipp::Scenario scenario = sipp::build_testcase(5, 3);
  const auto start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r)
    for (const auto& phase : scenario.phases)
      (void)dispatcher.dispatch(proxy, phase);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  proxy.shutdown();
  return elapsed;
}

double seconds_native(std::size_t repeats) { return run_workload(repeats); }

double seconds_sim(std::size_t repeats, rg::rt::Tool* tool) {
  rg::rt::SimConfig cfg;
  cfg.sched.seed = 3;
  rg::rt::Sim sim(cfg);
  if (tool != nullptr) sim.attach(*tool);
  double elapsed = 0.0;
  sim.run([&] { elapsed = run_workload(repeats); });
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  std::size_t repeats = 3;
  int rounds = 3;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    repeats = 1;
    rounds = 1;
  } else {
    if (argc > 1) repeats = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2) rounds = std::atoi(argv[2]);
  }

  std::printf("§4.5 — execution overhead (workload: T5 x %zu, best of %d)\n\n",
              repeats, rounds);

  support::Accumulator native, vm_only, vm_helgrind, vm_eraser;
  for (int i = 0; i < rounds; ++i) {
    native.add(seconds_native(repeats));
    vm_only.add(seconds_sim(repeats, nullptr));
    core::HelgrindTool helgrind(core::HelgrindConfig::hwlc_dr());
    vm_helgrind.add(seconds_sim(repeats, &helgrind));
  }

  const double base = native.min();
  support::Table table("slowdown vs native execution");
  table.header({"Stage", "best time [s]", "slowdown", "paper"});
  char buf[32], factor[32];
  auto row = [&](const char* name, double t, const char* paper) {
    std::snprintf(buf, sizeof buf, "%.4f", t);
    std::snprintf(factor, sizeof factor, "%.1fx", t / base);
    table.row(name, buf, factor, paper);
  };
  row("native (no VM)", native.min(), "1x");
  row("VM only (scheduler, no tools)", vm_only.min(), "8-10x");
  row("VM + Helgrind HWLC+DR", vm_helgrind.min(), "20-30x");
  std::printf("%s\n", table.render().c_str());

  const bool ordered = vm_only.min() > native.min() &&
                       vm_helgrind.min() > vm_only.min();
  std::printf(
      "Reproduction: native < VM-only < VM+detector [%s]; the analysis "
      "multiplies the VM cost, as in the paper (\"the time consumed by "
      "analysis directly reduces the execution speed\").\n",
      ordered ? "yes" : "NO");
  std::printf(
      "Note: absolute factors are substrate-dependent; Valgrind pays binary\n"
      "translation per instruction, our VM pays a scheduling point per\n"
      "instrumented operation.\n");

  support::BenchJson json("slowdown");
  json.add("seed", std::uint64_t{3});
  json.add("repeats", repeats);
  json.add("rounds", rounds);
  json.add("native_s", native.min());
  json.add("vm_only_s", vm_only.min());
  json.add("vm_helgrind_s", vm_helgrind.min());
  json.add("vm_only_slowdown", vm_only.min() / base);
  json.add("vm_helgrind_slowdown", vm_helgrind.min() / base);
  json.add("ordered", ordered ? "true" : "false");
  json.write();
  return ordered ? 0 : 1;
}
