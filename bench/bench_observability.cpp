// E14 — observability overhead and the recorder as equivalence oracle.
//
// The flight recorder's contract is "attach it and nothing changes": no
// scheduling points, no detector-visible state, bounded per-event cost.
// This bench prices that claim on the E6/T5 mixed workload (hwlc+dr):
//
//   baseline        recorder/metrics/profiler all off
//   recorder        flight recorder attached (schedule, sync ops, allocs,
//                   detector state changes all mirrored)
//   rec+metrics     recorder + MetricsRegistry export
//   full            recorder + metrics + hook profiler (informational: the
//                   profiler brackets every tool dispatch in two cycle
//                   stamps, a cost priced by Fig. 5, not by this budget)
//
// and fails (exit 1) if the recorder or rec+metrics run is more than 5%
// slower than the baseline, if observability changed any reported warning,
// or if two same-seed recorder runs are not bit-identical (stream hash and
// Chrome trace JSON).
// Timing is best-of-rounds, interleaved so machine noise hits both sides.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_once(const rg::sipp::Scenario& scenario,
                const rg::sipp::ExperimentConfig& cfg,
                rg::sipp::ExperimentResult& out) {
  const auto start = Clock::now();
  out = rg::sipp::run_scenario(scenario, cfg);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool same_reports(const rg::sipp::ExperimentResult& a,
                  const rg::sipp::ExperimentResult& b) {
  return a.reported_locations == b.reported_locations &&
         a.location_keys == b.location_keys && a.sim.steps == b.sim.steps &&
         a.total_warnings == b.total_warnings &&
         a.responses == b.responses;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  bool smoke = false;
  std::uint64_t seed = 11;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }
  const int rounds = smoke ? 10 : 15;

  sipp::ExperimentConfig base;
  base.seed = seed;
  base.detector = core::HelgrindConfig::hwlc_dr();
  const sipp::Scenario scenario = sipp::build_testcase(5, seed);

  std::printf("Observability overhead — %s, seed %llu%s\n\n",
              scenario.name.c_str(), static_cast<unsigned long long>(seed),
              smoke ? " (smoke)" : "");

  // Interleave the variants round by round: best-of under shared noise.
  double t_base = 1e300, t_rec = 1e300, t_met = 1e300, t_full = 1e300;
  sipp::ExperimentResult r_base, r_rec, r_met, r_full;
  std::uint64_t first_hash = 0;
  std::string first_trace;
  bool deterministic = true;
  for (int i = 0; i < rounds; ++i) {
    t_base = std::min(t_base, run_once(scenario, base, r_base));

    obs::FlightRecorder recorder;
    sipp::ExperimentConfig cfg = base;
    cfg.recorder = &recorder;
    t_rec = std::min(t_rec, run_once(scenario, cfg, r_rec));
    if (i == 0) {
      first_hash = r_rec.recorder_hash;
      first_trace = recorder.chrome_trace_json();
    } else if (r_rec.recorder_hash != first_hash ||
               recorder.chrome_trace_json() != first_trace) {
      deterministic = false;
    }

    obs::FlightRecorder recorder2;
    obs::MetricsRegistry metrics;
    cfg.recorder = &recorder2;
    cfg.metrics = &metrics;
    t_met = std::min(t_met, run_once(scenario, cfg, r_met));

    obs::FlightRecorder recorder3;
    obs::MetricsRegistry metrics2;
    obs::HookProfiler profiler;
    cfg.recorder = &recorder3;
    cfg.metrics = &metrics2;
    cfg.profiler = &profiler;
    t_full = std::min(t_full, run_once(scenario, cfg, r_full));
  }

  const double rec_overhead = t_rec / t_base - 1.0;
  const double met_overhead = t_met / t_base - 1.0;
  const double full_overhead = t_full / t_base - 1.0;
  const bool reports_equal = same_reports(r_base, r_rec) &&
                             same_reports(r_base, r_met) &&
                             same_reports(r_base, r_full);

  support::Table table("time per run [s], best of " +
                       std::to_string(rounds));
  table.header({"variant", "time", "overhead", "events"});
  char t_s[32], o_s[32];
  std::snprintf(t_s, sizeof t_s, "%.4f", t_base);
  table.row("baseline (obs off)", t_s, "", "");
  std::snprintf(t_s, sizeof t_s, "%.4f", t_rec);
  std::snprintf(o_s, sizeof o_s, "%+.1f%%", 100.0 * rec_overhead);
  table.row("flight recorder", t_s, o_s,
            std::to_string(r_rec.recorder_events));
  std::snprintf(t_s, sizeof t_s, "%.4f", t_met);
  std::snprintf(o_s, sizeof o_s, "%+.1f%%", 100.0 * met_overhead);
  table.row("recorder+metrics", t_s, o_s,
            std::to_string(r_met.recorder_events));
  std::snprintf(t_s, sizeof t_s, "%.4f", t_full);
  std::snprintf(o_s, sizeof o_s, "%+.1f%%", 100.0 * full_overhead);
  table.row("+ hook profiler (Fig. 5)", t_s, o_s,
            std::to_string(r_full.recorder_events));
  std::printf("%s\n", table.render().c_str());

  std::printf("reports identical across variants: %s\n",
              reports_equal ? "yes" : "NO");
  std::printf("same-seed recorder runs bit-identical (%d rounds): %s\n\n",
              rounds, deterministic ? "yes" : "NO");

  support::BenchJson json("observability");
  json.add("seed", seed);
  json.add("smoke", smoke ? "true" : "false");
  json.add("workload", scenario.name);
  json.add("rounds", rounds);
  json.add("baseline_s", t_base);
  json.add("recorder_s", t_rec);
  json.add("recorder_metrics_s", t_met);
  json.add("full_s", t_full);
  json.add("recorder_overhead", rec_overhead);
  json.add("recorder_metrics_overhead", met_overhead);
  json.add("full_overhead", full_overhead);
  json.add("recorder_events", r_rec.recorder_events);
  json.add("recorder_dropped", r_rec.recorder_dropped);
  json.add("recorder_hash", first_hash);
  json.add("reports_identical", reports_equal ? "true" : "false");
  json.add("deterministic", deterministic ? "true" : "false");
  json.write();

  bool failed = false;
  // The contract gate is 5% on the full run; the smoke gate gets 2x
  // headroom because best-of-10 on a ~4ms workload still carries a few
  // percent of timer noise.
  const double budget = smoke ? 0.10 : 0.05;
  if (rec_overhead > budget) {
    std::printf("OVERHEAD VIOLATION: recorder run %.1f%% over the "
                "recorder-off baseline (budget %.0f%%).\n",
                100.0 * rec_overhead, 100.0 * budget);
    failed = true;
  }
  if (met_overhead > budget) {
    std::printf("OVERHEAD VIOLATION: recorder+metrics run %.1f%% over the "
                "recorder-off baseline (budget %.0f%%).\n",
                100.0 * met_overhead, 100.0 * budget);
    failed = true;
  }
  if (!reports_equal) {
    std::printf("EQUIVALENCE VIOLATION: attaching observability changed "
                "the reported warnings.\n");
    failed = true;
  }
  if (!deterministic) {
    std::printf("DETERMINISM VIOLATION: same-seed recorder runs were not "
                "bit-identical.\n");
    failed = true;
  }
  return failed ? 1 : 0;
}
