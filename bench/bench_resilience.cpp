// Resilience tier — goodput under rising fault rates on both hops.
//
// Sweeps one T5 heavy-mixed-traffic scenario through the resilient proxy
// (3 upstream targets, breakers, failover, Retry-After-honoring client)
// while the injected fault rate climbs from calm to 30% on the client and
// proxy<->upstream hops together. The claim: goodput (calls ending in a
// 2xx final) degrades *monotonically* — shedding, failover and degraded
// registrar serves turn faults into a gentle slope, not a cliff to zero —
// and every call still converges to an accounted terminal state.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/helgrind.hpp"
#include "rt/chaos.hpp"
#include "sip/faults.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::uint32_t fault_permille = 0;
  double seconds = 0.0;
  double goodput = 0.0;  // 2xx finals / calls
  rg::sipp::ExperimentResult result;
};

SweepPoint run_point(std::uint32_t permille, std::uint64_t seed) {
  using namespace rg;
  const sipp::Scenario scenario = sipp::build_testcase(5, seed);
  sipp::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.faults = sip::FaultConfig::none();
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  cfg.chaos_client = true;
  cfg.parallelism = 6;
  // Fault rate applied to both hops at once: UDP weather between UA and
  // proxy, plus drop/error/delay on the forwarding hop.
  cfg.chaos.seed = seed;
  cfg.chaos.drop_permille = permille / 2;
  cfg.chaos.delay_permille = permille;
  cfg.chaos.max_delay_ticks = 100;
  cfg.chaos.upstream_drop_permille = permille;
  cfg.chaos.upstream_error_permille = permille / 2;
  cfg.chaos.upstream_delay_permille = permille;
  cfg.upstream.targets = 3;
  cfg.upstream.seed = seed;
  cfg.upstream.breaker.failure_threshold = 2;
  cfg.upstream.breaker.open_cooldown_ticks = 100;
  cfg.upstream.breaker.max_cooldown_ticks = 800;

  SweepPoint point;
  point.fault_permille = permille;
  const auto start = Clock::now();
  point.result = sipp::run_scenario(scenario, cfg);
  point.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::uint64_t ok_finals = 0;
  for (const sipp::CallRecord& rec : point.result.chaos.calls)
    if (rec.outcome == sipp::CallOutcome::Final && rec.final_status < 300)
      ++ok_finals;
  const std::size_t calls = point.result.chaos.calls.size();
  point.goodput =
      calls == 0 ? 0.0 : static_cast<double>(ok_finals) / calls;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  bool smoke = false;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      seed = std::strtoull(argv[i], nullptr, 10);
  }

  std::printf(
      "Resilience — goodput vs fault rate, T5 workload, 3 upstream targets, "
      "seed %llu%s\n\n",
      static_cast<unsigned long long>(seed), smoke ? ", smoke" : "");

  const std::vector<std::uint32_t> rates =
      smoke ? std::vector<std::uint32_t>{0, 300}
            : std::vector<std::uint32_t>{0, 50, 100, 200, 300};

  support::BenchJson json("resilience");
  json.add("seed", seed);
  json.add("smoke", smoke ? "true" : "false");
  json.add("upstream_targets", 3);

  support::Table table("goodput under rising two-hop fault rates");
  table.header({"fault rate", "time [s]", "calls", "goodput", "fwd", "retry",
                "failover", "degraded", "opens", "gave-up", "converged"});

  bool all_converged = true;
  bool monotone = true;
  double prev_goodput = 1.0;
  double last_goodput = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const SweepPoint p = run_point(rates[i], seed);
    const auto& c = p.result.chaos;
    all_converged =
        all_converged && c.converged() && p.result.sim.completed();
    // Monotone within noise: a higher fault rate may never *help* goodput
    // by more than a 2% ripple.
    if (i > 0 && p.goodput > prev_goodput + 0.02) monotone = false;
    prev_goodput = p.goodput;
    last_goodput = p.goodput;

    char t[32], g[32];
    std::snprintf(t, sizeof t, "%.4f", p.seconds);
    std::snprintf(g, sizeof g, "%.3f", p.goodput);
    table.row(std::to_string(rates[i] / 10) + "." +
                  std::to_string(rates[i] % 10) + "%",
              t, std::to_string(c.calls.size()), g,
              std::to_string(p.result.upstream_forwards),
              std::to_string(p.result.upstream_retries),
              std::to_string(p.result.upstream_failovers),
              std::to_string(p.result.degraded_serves),
              std::to_string(p.result.breaker_opens),
              std::to_string(c.give_ups), c.converged() ? "yes" : "NO");
    json.add("goodput_" + std::to_string(rates[i]) + "pm", p.goodput);
  }
  std::printf("%s\n", table.render().c_str());

  const bool no_cliff = last_goodput > 0.0;
  std::printf(
      "Goodput degrades monotonically [%s] and stays non-zero at a 30%% "
      "fault rate [%s]; every call converges to an accounted terminal "
      "state [%s].\n",
      monotone ? "yes" : "NO", no_cliff ? "yes" : "NO",
      all_converged ? "yes" : "NO");

  json.add("monotone", monotone ? "true" : "false");
  json.add("no_cliff", no_cliff ? "true" : "false");
  json.add("all_converged", all_converged ? "true" : "false");
  json.write();
  return monotone && no_cliff && all_converged ? 0 : 1;
}
