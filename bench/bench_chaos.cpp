// Robustness tier — convergence under deterministic fault injection.
//
// Runs the same mixed scenario through the fixed proxy (all seeded faults
// off) under increasingly hostile seeded network weather, with the UA-style
// retransmitting client and the HWLC+DR detector attached. The claim: every
// call converges (final response, shed 503, or a logged timer-B/F give-up),
// the detector stays silent, and with overload control on the transaction
// table never exceeds its watermark while shedding keeps the proxy live.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/helgrind.hpp"
#include "rt/chaos.hpp"
#include "sip/faults.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct RowResult {
  double seconds = 0.0;
  rg::sipp::ExperimentResult result;
};

RowResult run_row(const rg::rt::ChaosConfig& chaos,
                  const rg::sip::OverloadConfig& overload,
                  std::uint64_t seed) {
  using namespace rg;
  const sipp::Scenario scenario = sipp::build_testcase(5, seed);
  sipp::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.faults = sip::FaultConfig::none();
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  cfg.chaos = chaos;
  cfg.chaos_client = true;  // UA driver even for the calm row
  cfg.overload = overload;
  cfg.parallelism = 6;
  RowResult out;
  const auto start = Clock::now();
  out.result = sipp::run_scenario(scenario, cfg);
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "Chaos convergence — fixed proxy, HWLC+DR attached, T5 workload, "
      "seed %llu\n\n",
      static_cast<unsigned long long>(seed));

  struct Row {
    const char* name;
    rt::ChaosConfig chaos;
    sip::OverloadConfig overload;
  };
  sip::OverloadConfig guarded;
  guarded.tx_watermark = 4;
  const Row rows[] = {
      {"calm (no faults)", rt::ChaosConfig::none(seed), {}},
      {"light weather", rt::ChaosConfig::light(seed), {}},
      {"heavy weather", rt::ChaosConfig::heavy(seed), {}},
      {"heavy + overload guard", rt::ChaosConfig::heavy(seed), guarded},
  };

  support::Table table("per-call convergence under injected faults");
  table.header({"Network", "time [s]", "calls", "deliv", "rexmit", "gave-up",
                "shed", "tx-peak", "warn", "converged"});
  bool all_converged = true;
  bool all_quiet = true;
  for (const Row& row : rows) {
    const RowResult r = run_row(row.chaos, row.overload, seed);
    const auto& c = r.result.chaos;
    all_converged = all_converged && c.converged() && r.result.sim.completed();
    all_quiet = all_quiet && r.result.reported_locations == 0;
    char t[32];
    std::snprintf(t, sizeof t, "%.4f", r.seconds);
    table.row(row.name, t, std::to_string(c.calls.size()),
              std::to_string(c.deliveries), std::to_string(c.retransmissions),
              std::to_string(c.give_ups), std::to_string(r.result.proxy_sheds),
              std::to_string(r.result.transaction_peak),
              std::to_string(r.result.reported_locations),
              c.converged() ? "yes" : "NO");
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Every call ends in a final response, a shed 503, or a logged "
      "timer-B/F give-up [%s]; the race-free build stays warning-free under "
      "injected loss, duplication, delay, reordering and stalls [%s].\n",
      all_converged ? "yes" : "NO", all_quiet ? "yes" : "NO");
  std::printf(
      "Replays are seed-exact: rerun with the same seed to get the same "
      "injection trace and the same per-call outcomes.\n");

  support::BenchJson json("chaos");
  json.add("seed", seed);
  json.add("all_converged", all_converged ? "true" : "false");
  json.add("all_quiet", all_quiet ? "true" : "false");
  json.write();
  return all_converged && all_quiet ? 0 : 1;
}
