// E9 — the §2.2 detector comparison, made concrete.
//
// Runs the T1..T8 suite under every detection algorithm discussed in the
// paper: the unrefined Eraser lockset, the three Helgrind configurations,
// the DJIT happens-before baseline, and the hybrid combination
// (Multi-Race / O'Callahan-Choi style). Reports distinct warning locations
// per detector: lockset over-approximates, happens-before under-
// approximates relative to it, the hybrid classifies.
#include <cstdio>

#include "core/eraser.hpp"
#include "core/helgrind.hpp"
#include "core/hybrid.hpp"
#include "rt/sim.hpp"
#include "sip/dispatch.hpp"
#include "sip/proxy.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

/// Runs a scenario with a given tool attached; returns distinct locations.
template <typename Tool>
std::size_t run_tool(Tool& tool, int testcase, std::uint64_t seed) {
  using namespace rg;
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    sip::ProxyConfig pcfg;
    pcfg.faults = sip::FaultConfig::paper();
    sip::Proxy proxy(pcfg);
    proxy.start();
    sip::ThreadPerRequestDispatcher dispatcher(8);
    const sipp::Scenario scenario = sipp::build_testcase(testcase, seed);
    for (const auto& phase : scenario.phases)
      (void)dispatcher.dispatch(proxy, phase);
    proxy.shutdown();
  });
  return 0;  // callers read the tool's own counters
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("§2.2 — detection algorithms compared (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  support::Table table("distinct warning locations per detector");
  table.header({"Test case", "Eraser basic", "Helgrind orig", "HWLC+DR",
                "DJIT", "hybrid conf", "hybrid poss"});

  std::size_t total_eraser = 0, total_orig = 0, total_dr = 0, total_djit = 0;
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) {
    core::EraserBasicTool eraser;
    run_tool(eraser, n, seed);
    core::HelgrindTool original(core::HelgrindConfig::original());
    run_tool(original, n, seed);
    core::HelgrindTool dr(core::HelgrindConfig::hwlc_dr());
    run_tool(dr, n, seed);
    core::DjitTool djit;
    run_tool(djit, n, seed);
    core::HybridConfig hybrid_cfg;
    hybrid_cfg.lockset = core::HelgrindConfig::hwlc_dr();
    core::HybridTool hybrid(hybrid_cfg);
    run_tool(hybrid, n, seed);

    table.row("T" + std::to_string(n),
              eraser.reports().distinct_locations(),
              original.reports().distinct_locations(),
              dr.reports().distinct_locations(),
              djit.reports().distinct_locations(), hybrid.confirmed_count(),
              hybrid.possible_count());
    total_eraser += eraser.reports().distinct_locations();
    total_orig += original.reports().distinct_locations();
    total_dr += dr.reports().distinct_locations();
    total_djit += djit.reports().distinct_locations();
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Expected shape (\"DJIT ... detects data races on a subset of "
              "shared locations that are reported by the lock-set "
              "approach\"):\n");
  std::printf("  Eraser basic (%zu) >= Helgrind original (%zu) >= "
              "HWLC+DR (%zu); DJIT (%zu) reports only apparent races.\n",
              total_eraser, total_orig, total_dr, total_djit);
  const bool shape = total_eraser >= total_orig && total_orig >= total_dr;
  std::printf("-> %s\n", shape ? "MATCHES the paper" : "DIVERGES");

  support::BenchJson json("detectors");
  json.add("seed", seed);
  json.add("total_eraser", total_eraser);
  json.add("total_original", total_orig);
  json.add("total_hwlc_dr", total_dr);
  json.add("total_djit", total_djit);
  json.add("matches_paper", shape ? "true" : "false");
  json.write();
  return shape ? 0 : 1;
}
