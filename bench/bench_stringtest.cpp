// E3 — regenerates Figs. 8/9: the stringtest.cpp program (a std::string
// copied between threads) produces exactly one "Possible data race writing"
// warning at the reference-counter increment under the original mutex
// model of the hardware bus lock, and none under the paper's read-write
// model (HWLC).
#include <cstdio>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/cow_string.hpp"
#include "support/bench_json.hpp"

namespace {

/// Fig. 8, transliterated onto the instrumented runtime: a string is
/// created by main, read-copied by a worker thread, and copied again by
/// main while the worker may still hold its copy.
void stringtest_body() {
  using namespace rg;
  sip::cow_string text("contents");

  rt::thread worker(
      [&] {
        // std::string text = *(std::string*)arguments;
        sip::cow_string local = text;
        (void)local.size();
      },
      "workerThread");

  rt::sleep_ticks(1000);  // sleep(1);
  sip::cow_string text_copy = text;  // <- reported conflict (Fig. 8 line 22)

  worker.join();
}

std::size_t run_under(rg::core::BusLockModel model, std::string* report) {
  using namespace rg;
  core::HelgrindConfig cfg;
  cfg.bus_lock_model = model;
  core::HelgrindTool tool(cfg);
  rt::Sim sim;
  sim.attach(tool);
  sim.run(stringtest_body);
  *report = tool.reports().render(sim.runtime());
  return tool.reports().distinct_locations();
}

}  // namespace

int main() {
  std::printf("Figs. 8/9 — shared std::string reference counting\n\n");

  std::string report;
  const std::size_t original =
      run_under(rg::core::BusLockModel::Mutex, &report);
  std::printf("Original Helgrind (bus lock as mutex): %zu warning(s)\n",
              original);
  std::printf("%s", report.c_str());
  std::printf("(paper Fig. 9: \"Possible data race writing variable ... in "
              "_M_grab ... Previous state: shared RO, no locks\")\n\n");

  const std::size_t corrected =
      run_under(rg::core::BusLockModel::RwLock, &report);
  std::printf("Corrected (HWLC, bus lock as rw-lock):  %zu warning(s)\n\n",
              corrected);

  const bool shape_holds = original == 1 && corrected == 0;
  std::printf("Reproduction: original flags the refcount %s, HWLC silences "
              "it %s -> %s\n",
              original >= 1 ? "[yes]" : "[NO]",
              corrected == 0 ? "[yes]" : "[NO]",
              shape_holds ? "MATCHES the paper" : "DIVERGES");

  rg::support::BenchJson json("stringtest");
  json.add("original_warnings", original);
  json.add("hwlc_warnings", corrected);
  json.add("matches_paper", shape_holds ? "true" : "false");
  json.write();
  return shape_holds ? 0 : 1;
}
