// Ablation study — what each algorithmic ingredient of the detector buys,
// measured on the full T1..T8 suite. Rows:
//
//   eraser-basic        the §2.3.2 first listing (no states, no segments)
//   + states            Fig. 1 memory-state machine, thread-level ownership
//   + thread segments   the VisualThreads refinement (Fig. 2)
//   + HWLC              corrected hardware bus lock + rwlock API
//   + DR                destructor annotations (the paper's configuration)
//   + message HB        the §5 future-work extension
//
// Each ingredient should monotonically remove warnings; the two the paper
// contributes (HWLC, DR) should account for the 65-81% band (Fig. 6).
#include <cstdio>
#include <numeric>

#include "core/eraser.hpp"
#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "sip/dispatch.hpp"
#include "sip/proxy.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

template <typename Tool>
void run_suite(Tool& tool, std::uint64_t seed, int testcase) {
  using namespace rg;
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    sip::ProxyConfig pcfg;
    pcfg.faults = sip::FaultConfig::paper();
    sip::Proxy proxy(pcfg);
    proxy.start();
    sip::ThreadPerRequestDispatcher dispatcher(8);
    const sipp::Scenario scenario = sipp::build_testcase(testcase, seed);
    for (const auto& phase : scenario.phases)
      (void)dispatcher.dispatch(proxy, phase);
    proxy.shutdown();
  });
}

std::size_t total_for(const rg::core::HelgrindConfig& cfg,
                      std::uint64_t seed) {
  // Each test case is an independent Sim with its own tool instance; fan
  // them over a pool and sum (per-case determinism unchanged).
  std::vector<std::size_t> per_case(rg::sipp::kTestCaseCount, 0);
  rg::support::parallel_for_index(
      per_case.size(), 0, [&](std::size_t i) {
        rg::core::HelgrindTool tool(cfg);
        run_suite(tool, seed, static_cast<int>(i) + 1);
        per_case[i] = tool.reports().distinct_locations();
      });
  return std::accumulate(per_case.begin(), per_case.end(), std::size_t{0});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Ablation over T1..T8 (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  support::Table table("distinct warning locations, cumulative ingredients");
  table.header({"Detector variant", "total locations", "delta"});

  std::vector<std::size_t> eraser_cases(sipp::kTestCaseCount, 0);
  support::parallel_for_index(
      eraser_cases.size(), 0, [&](std::size_t i) {
        core::EraserBasicTool tool;
        run_suite(tool, seed, static_cast<int>(i) + 1);
        eraser_cases[i] = tool.reports().distinct_locations();
      });
  const std::size_t eraser_total = std::accumulate(
      eraser_cases.begin(), eraser_cases.end(), std::size_t{0});
  std::size_t prev = eraser_total;
  table.row("eraser-basic (no states)", eraser_total, "-");

  support::BenchJson json("ablation");
  json.add("seed", seed);
  json.add("eraser_basic", eraser_total);

  auto add_row = [&](const char* name, const core::HelgrindConfig& cfg) {
    const std::size_t total = total_for(cfg, seed);
    const long long delta =
        static_cast<long long>(total) - static_cast<long long>(prev);
    char delta_text[24];
    std::snprintf(delta_text, sizeof delta_text, "%+lld", delta);
    table.row(name, total, delta_text);
    json.add(name, total);
    prev = total;
    return total;
  };

  core::HelgrindConfig states_only = core::HelgrindConfig::original();
  states_only.thread_segments = false;
  add_row("+ Fig. 1 states (no segments)", states_only);

  add_row("+ thread segments (= original Helgrind)",
          core::HelgrindConfig::original());
  const std::size_t original = prev;

  add_row("+ HWLC (bus lock as rw-lock)", core::HelgrindConfig::hwlc());
  const std::size_t dr = add_row("+ DR (destructor annotations)",
                                 core::HelgrindConfig::hwlc_dr());
  add_row("+ message-passing HB (§5 extension)",
          core::HelgrindConfig::extended());

  std::printf("%s\n", table.render().c_str());

  const double reduction =
      original == 0 ? 0.0 : 1.0 - static_cast<double>(dr) / original;
  std::printf("The paper's two contributions (HWLC + DR) remove %.0f%% of "
              "the original tool's warnings (paper: 65-81%%).\n",
              reduction * 100.0);
  json.add("hwlc_dr_reduction", reduction);
  json.write();
  return 0;
}
