// E2 — regenerates the Fig. 5 stacked-bar data: for each test case, the
// reported locations split into
//   - false positives removed by the hardware-bus-lock correction,
//   - false positives removed by the destructor annotations,
//   - correctly reported data races (what remains under HWLC+DR).
// The attribution is computed exactly the way the figure was constructed:
// by differencing the location sets of consecutive configurations.
#include <algorithm>
#include <cstdio>
#include <string>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Fig. 5 — composition of reported locations (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  sipp::ExperimentConfig base;
  base.seed = seed;

  // All 8 x 3 cells fanned over a pool, computed once for both renditions.
  std::vector<int> cases;
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) cases.push_back(n);
  const std::vector<sipp::Fig6Row> rows = sipp::run_fig6_rows(cases, base);

  support::BenchJson json("fig5_breakdown");
  json.add("seed", seed);

  support::Table table("Fig. 5 — stacked composition");
  table.header({"Test case", "FP (hardware lock)", "FP (destructor)",
                "correctly reported", "total"});
  for (const sipp::Fig6Row& row : rows) {
    table.row(row.testcase, row.hw_lock_fps, row.destructor_fps,
              row.remaining,
              row.hw_lock_fps + row.destructor_fps + row.remaining);
    json.add(row.testcase + "_hw_lock_fps", row.hw_lock_fps);
    json.add(row.testcase + "_destructor_fps", row.destructor_fps);
    json.add(row.testcase + "_remaining", row.remaining);
  }
  std::printf("%s\n", table.render().c_str());

  // ASCII rendition of the stacked bars (the paper's chart).
  std::printf("Stacked bars (#=correct, d=destructor FP, h=hw-lock FP):\n");
  for (const sipp::Fig6Row& row : rows) {
    std::string bar;
    bar.append(row.remaining, '#');
    bar.append(row.destructor_fps, 'd');
    bar.append(row.hw_lock_fps, 'h');
    std::printf("  %-3s |%s\n", row.testcase.c_str(), bar.c_str());
  }
  json.write();
  return 0;
}
