// E2 — regenerates the Fig. 5 stacked-bar data: for each test case, the
// reported locations split into
//   - false positives removed by the hardware-bus-lock correction,
//   - false positives removed by the destructor annotations,
//   - correctly reported data races (what remains under HWLC+DR).
// The attribution is computed exactly the way the figure was constructed:
// by differencing the location sets of consecutive configurations.
#include <algorithm>
#include <cstdio>
#include <string>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Fig. 5 — composition of reported locations (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  sipp::ExperimentConfig base;
  base.seed = seed;

  support::Table table("Fig. 5 — stacked composition");
  table.header({"Test case", "FP (hardware lock)", "FP (destructor)",
                "correctly reported", "total"});
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) {
    const sipp::Fig6Row row = sipp::run_fig6_row(n, base);
    table.row(row.testcase, row.hw_lock_fps, row.destructor_fps,
              row.remaining,
              row.hw_lock_fps + row.destructor_fps + row.remaining);
  }
  std::printf("%s\n", table.render().c_str());

  // ASCII rendition of the stacked bars (the paper's chart).
  std::printf("Stacked bars (#=correct, d=destructor FP, h=hw-lock FP):\n");
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) {
    const sipp::Fig6Row row = sipp::run_fig6_row(n, base);
    std::string bar;
    bar.append(row.remaining, '#');
    bar.append(row.destructor_fps, 'd');
    bar.append(row.hw_lock_fps, 'h');
    std::printf("  %-3s |%s\n", row.testcase.c_str(), bar.c_str());
  }
  return 0;
}
