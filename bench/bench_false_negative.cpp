// E5 — the §4.3 false-negative study.
//
// One thread writes a shared location without a lock while another writes
// it holding one. Whether the refined (state-machine) algorithm reports the
// race depends on the observed order, i.e. on the schedule; the unrefined
// Eraser algorithm is order-independent. We sweep seeds and report the
// detection fraction of each detector.
#include <cstdio>

#include "core/eraser.hpp"
#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

namespace {

template <typename Tool>
bool detects(Tool& tool, std::uint64_t seed) {
  using namespace rg;
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    rt::mutex m("m");
    rt::tracked<int> shared;
    rt::thread unlocked([&] {
      for (int i = 0; i < 3; ++i) {
        shared.store(1);
        rt::yield();
      }
    });
    rt::thread locked([&] {
      for (int i = 0; i < 3; ++i) {
        rt::lock_guard g(m);
        shared.store(2);
        rt::yield();
      }
    });
    unlocked.join();
    locked.join();
  });
  return tool.reports().distinct_locations() > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;
  int seeds = 64;
  if (argc > 1) seeds = std::atoi(argv[1]);

  std::printf("§4.3 — order-dependent false negatives (%d schedules)\n\n",
              seeds);

  int helgrind_hits = 0;
  int eraser_hits = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    core::HelgrindTool helgrind(core::HelgrindConfig::hwlc_dr());
    if (detects(helgrind, static_cast<std::uint64_t>(seed))) ++helgrind_hits;
    core::EraserBasicTool eraser;
    if (detects(eraser, static_cast<std::uint64_t>(seed))) ++eraser_hits;
  }

  support::Table table("detection fraction over schedules");
  table.header({"Detector", "detected", "missed", "fraction"});
  char frac[16];
  std::snprintf(frac, sizeof frac, "%.0f%%",
                100.0 * helgrind_hits / seeds);
  table.row("Helgrind (states + segments)", helgrind_hits,
            seeds - helgrind_hits, frac);
  std::snprintf(frac, sizeof frac, "%.0f%%", 100.0 * eraser_hits / seeds);
  table.row("Eraser basic (no states)", eraser_hits, seeds - eraser_hits,
            frac);
  std::printf("%s\n", table.render().c_str());

  const bool shape = eraser_hits == seeds && helgrind_hits > 0 &&
                     helgrind_hits < seeds;
  std::printf(
      "Reproduction: the refined algorithm misses the race under some\n"
      "schedules (\"not guaranteed to happen in the development\n"
      "environment\") while basic Eraser reports it under every one -> %s\n",
      shape ? "MATCHES the paper" : "DIVERGES");

  support::BenchJson json("false_negative");
  json.add("seeds", seeds);
  json.add("helgrind_hits", helgrind_hits);
  json.add("eraser_hits", eraser_hits);
  json.add("matches_paper", shape ? "true" : "false");
  json.write();
  return shape ? 0 : 1;
}
