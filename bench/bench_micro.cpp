// E10 — microbenchmarks of the detector's hot paths (google-benchmark):
// shadow-memory lookups, lockset interning/intersection (with the memo
// cache that makes Eraser practical), segment happens-before queries,
// scheduler context switches, SIP parsing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"
#include "shadow/lockset.hpp"
#include "shadow/segments.hpp"
#include "shadow/shadow_map.hpp"
#include "sip/parser.hpp"
#include "sipp/experiment.hpp"
#include "sipp/scenario.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"

namespace {

void BM_ShadowMapAccess(benchmark::State& state) {
  rg::shadow::ShadowMap<int> map;
  rg::rt::Addr addr = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.at(addr));
    addr = (addr + 64) & 0xFFFFF;
  }
}
BENCHMARK(BM_ShadowMapAccess);

void BM_LocksetIntern(benchmark::State& state) {
  rg::shadow::LocksetTable table;
  rg::rt::LockId next = 0;
  for (auto _ : state) {
    rg::shadow::LockVec v{next % 64, (next + 7) % 64};
    benchmark::DoNotOptimize(table.intern(std::move(v)));
    ++next;
  }
}
BENCHMARK(BM_LocksetIntern);

void BM_LocksetIntersectCached(benchmark::State& state) {
  rg::shadow::LocksetTable table;
  const auto a = table.intern({1, 2, 3, 4});
  const auto b = table.intern({3, 4, 5, 6});
  for (auto _ : state) benchmark::DoNotOptimize(table.intersect(a, b));
}
BENCHMARK(BM_LocksetIntersectCached);

void BM_SegmentHappensBefore(benchmark::State& state) {
  rg::shadow::SegmentGraph graph;
  const auto main_seg = graph.start_thread(0, rg::shadow::kNoSegment);
  std::vector<rg::shadow::SegmentId> segs{main_seg};
  for (rg::rt::ThreadId t = 1; t <= 16; ++t) {
    segs.push_back(graph.start_thread(t, graph.current(0)));
    graph.advance(0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.happens_before(segs[i % segs.size()],
                             segs[(i + 5) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_SegmentHappensBefore);

void BM_SipParse(benchmark::State& state) {
  rg::sipp::MessageFactory mf;
  const std::string wire = mf.invite("alice", "bob", "bench-call", 1);
  for (auto _ : state) {
    auto result = rg::sip::parse_message(wire);
    benchmark::DoNotOptimize(result.message);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_SipParse);

void BM_SipSerialize(benchmark::State& state) {
  rg::sipp::MessageFactory mf;
  const auto parsed = rg::sip::parse_message(mf.invite("a", "b", "c", 1));
  for (auto _ : state)
    benchmark::DoNotOptimize(parsed.message->serialize());
}
BENCHMARK(BM_SipSerialize);

void BM_HelgrindAccessPath(benchmark::State& state) {
  // Cost of one fully-shared access through the detector state machine.
  rg::core::HelgrindTool tool(rg::core::HelgrindConfig::hwlc_dr());
  rg::rt::Runtime runtime;
  runtime.attach(tool);
  const auto t0 = runtime.register_thread("main", rg::rt::kNoThread, 0);
  const auto t1 = runtime.register_thread("w", t0, 0);
  const auto lock = runtime.register_lock("m", false);
  runtime.post_lock(t0, lock, rg::rt::LockMode::Exclusive, 0);
  rg::rt::Addr addr = 0x10000;
  rg::rt::MemoryAccess access{t0, addr, 4, rg::rt::AccessKind::Write, false,
                              0};
  (void)t1;
  for (auto _ : state) {
    access.addr = addr;
    runtime.access(access);
    addr = 0x10000 + (addr + 8) % 4096;
  }
}
BENCHMARK(BM_HelgrindAccessPath);

void BM_SimContextSwitch(benchmark::State& state) {
  // Ping-pong between two simulated threads; each iteration is two
  // scheduler switches. Run once with a big budget and report per-switch
  // cost via manual timing.
  const std::size_t switches_per_run = 20000;
  for (auto _ : state) {
    rg::rt::SimConfig cfg;
    cfg.sched.strategy = rg::rt::SchedStrategy::RoundRobin;
    cfg.sched.switch_period = 1;
    rg::rt::Sim sim(cfg);
    sim.run([&] {
      rg::rt::tracked<int> cell;
      rg::rt::thread a([&] {
        for (std::size_t i = 0; i < switches_per_run / 2; ++i) cell.store(1);
      });
      rg::rt::thread b([&] {
        for (std::size_t i = 0; i < switches_per_run / 2; ++i) cell.store(2);
      });
      a.join();
      b.join();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(switches_per_run));
}
BENCHMARK(BM_SimContextSwitch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Hot-path cache effectiveness on a real detector run (T1, HWLC+DR):
  // the microbenchmarks above time the primitives, these counters show how
  // often the fast paths actually hit under proxy traffic.
  rg::sipp::ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.detector = rg::core::HelgrindConfig::hwlc_dr();
  const rg::sipp::ExperimentResult r =
      rg::sipp::run_scenario(rg::sipp::build_testcase(1, cfg.seed), cfg);
  const rg::rt::ToolStats stats = r.tool_stats;
  std::printf(
      "\nhot-path counters (T1, HWLC+DR, seed %llu):\n"
      "  sched fast-path steps   %llu / %llu\n"
      "  lockset cache hit/miss  %llu / %llu\n"
      "  shadow TLB hit/miss     %llu / %llu\n",
      static_cast<unsigned long long>(cfg.seed),
      static_cast<unsigned long long>(r.sim.fast_path_steps),
      static_cast<unsigned long long>(r.sim.steps),
      static_cast<unsigned long long>(stats.lockset_cache_hits),
      static_cast<unsigned long long>(stats.lockset_cache_misses),
      static_cast<unsigned long long>(stats.shadow_tlb_hits),
      static_cast<unsigned long long>(stats.shadow_tlb_misses));

  rg::support::BenchJson json("micro");
  json.add("seed", cfg.seed);
  json.add("sched_fast_path_steps", r.sim.fast_path_steps);
  json.add("sched_steps", r.sim.steps);
  json.add("lockset_cache_hits", stats.lockset_cache_hits);
  json.add("lockset_cache_misses", stats.lockset_cache_misses);
  json.add("shadow_tlb_hits", stats.shadow_tlb_hits);
  json.add("shadow_tlb_misses", stats.shadow_tlb_misses);
  json.write();
  return 0;
}
