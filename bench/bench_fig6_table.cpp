// E1 — regenerates the Fig. 6 table: reported possible-data-race locations
// for test cases T1..T8 under the three detector configurations
// (Original Helgrind / corrected hardware bus lock / + destructor
// annotations), plus the paper's headline 65-81% total-reduction figure.
//
// Absolute counts differ from the paper (its proxy was a proprietary
// 500 kLOC code base); the claims being reproduced are the *shape*:
//   - Original >= HWLC >= HWLC+DR for every test case,
//   - HWLC+DR removes more than half of the HWLC column,
//   - total false positives removed land in the 65-81% band.
#include <cstdio>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Fig. 6 — reported possible data race locations\n");
  std::printf("(seed %llu; paper values for reference: T1 483/448/120 ... "
              "T8 357/270/78)\n\n",
              static_cast<unsigned long long>(seed));

  sipp::ExperimentConfig base;
  base.seed = seed;

  support::Table table("Fig. 6 — warnings per configuration");
  table.header({"Test case", "Original", "HWLC", "HWLC+DR", "reduction"});

  double min_reduction = 1.0, max_reduction = 0.0;
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) {
    const sipp::Fig6Row row = sipp::run_fig6_row(n, base);
    char reduction[16];
    std::snprintf(reduction, sizeof reduction, "%.0f%%",
                  row.reduction() * 100.0);
    table.row(row.testcase, row.original, row.hwlc, row.hwlc_dr, reduction);
    min_reduction = std::min(min_reduction, row.reduction());
    max_reduction = std::max(max_reduction, row.reduction());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Total false-positive reduction across test cases: %.0f%% .. %.0f%%\n"
      "(paper: \"in the range of 65%% to 81%% of the total number of "
      "warnings\")\n\n",
      min_reduction * 100.0, max_reduction * 100.0);
  std::printf("CSV:\n%s", table.render_csv().c_str());
  return 0;
}
