// E1 — regenerates the Fig. 6 table: reported possible-data-race locations
// for test cases T1..T8 under the three detector configurations
// (Original Helgrind / corrected hardware bus lock / + destructor
// annotations), plus the paper's headline 65-81% total-reduction figure.
//
// Absolute counts differ from the paper (its proxy was a proprietary
// 500 kLOC code base); the claims being reproduced are the *shape*:
//   - Original >= HWLC >= HWLC+DR for every test case,
//   - HWLC+DR removes more than half of the HWLC column,
//   - total false positives removed land in the 65-81% band.
#include <cstdio>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"
#include "support/bench_json.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  std::uint64_t seed = 7;
  std::size_t workers = 0;  // 0 = hardware concurrency
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) workers = std::strtoull(argv[2], nullptr, 10);

  std::printf("Fig. 6 — reported possible data race locations\n");
  std::printf("(seed %llu; paper values for reference: T1 483/448/120 ... "
              "T8 357/270/78)\n\n",
              static_cast<unsigned long long>(seed));

  sipp::ExperimentConfig base;
  base.seed = seed;

  support::Table table("Fig. 6 — warnings per configuration");
  table.header({"Test case", "Original", "HWLC", "HWLC+DR", "reduction"});

  // The 8 x 3 experiment cells are independent Sims; fan them over a pool
  // (per-cell determinism unchanged — see run_fig6_rows).
  std::vector<int> cases;
  for (int n = 1; n <= sipp::kTestCaseCount; ++n) cases.push_back(n);
  const std::vector<sipp::Fig6Row> rows =
      sipp::run_fig6_rows(cases, base, workers);

  support::BenchJson json("fig6_table");
  json.add("seed", seed);
  double min_reduction = 1.0, max_reduction = 0.0;
  for (const sipp::Fig6Row& row : rows) {
    char reduction[16];
    std::snprintf(reduction, sizeof reduction, "%.0f%%",
                  row.reduction() * 100.0);
    table.row(row.testcase, row.original, row.hwlc, row.hwlc_dr, reduction);
    min_reduction = std::min(min_reduction, row.reduction());
    max_reduction = std::max(max_reduction, row.reduction());
    json.add(row.testcase + "_original", row.original);
    json.add(row.testcase + "_hwlc", row.hwlc);
    json.add(row.testcase + "_hwlc_dr", row.hwlc_dr);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Total false-positive reduction across test cases: %.0f%% .. %.0f%%\n"
      "(paper: \"in the range of 65%% to 81%% of the total number of "
      "warnings\")\n\n",
      min_reduction * 100.0, max_reduction * 100.0);
  std::printf("CSV:\n%s", table.render_csv().c_str());
  json.add("min_reduction", min_reduction);
  json.add("max_reduction", max_reduction);
  json.write();
  return 0;
}
