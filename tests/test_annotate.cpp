// Lexer and delete-expression rewriter (the instrumentation stage).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "annotate/lexer.hpp"
#include "annotate/pipeline.hpp"
#include "annotate/rewrite.hpp"

namespace rg::annotate {
namespace {

// --- lexer ---------------------------------------------------------------------

std::vector<Token> significant(std::string_view src) {
  std::vector<Token> out;
  for (const Token& t : lex(src))
    if (t.significant()) out.push_back(t);
  return out;
}

TEST(Lexer, CoversEveryByte) {
  const std::string_view src =
      "int main() { /* c */ return 0; } // done\n\"str\"";
  std::size_t covered = 0;
  for (const Token& t : lex(src)) covered += t.text.size();
  EXPECT_EQ(covered, src.size());
}

TEST(Lexer, Identifiers) {
  const auto toks = significant("foo _bar baz123");
  ASSERT_EQ(toks.size(), 3u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::Identifier);
  EXPECT_EQ(toks[1].text, "_bar");
}

TEST(Lexer, Numbers) {
  const auto toks = significant("42 0x1F 3.14 1e-5 0b1010 1'000'000");
  ASSERT_EQ(toks.size(), 6u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::Number) << t.text;
}

TEST(Lexer, StringsWithEscapes) {
  const auto toks = significant(R"("hello \"quoted\" world" 'x' '\n')");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::String);
  EXPECT_EQ(toks[1].kind, TokKind::CharLit);
  EXPECT_EQ(toks[2].kind, TokKind::CharLit);
}

TEST(Lexer, DeleteInsideStringIsNotAnIdentifier) {
  const auto toks = significant("\"please delete me\" x");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::String);
  EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, Comments) {
  const auto toks = significant("a // delete x\nb /* delete y */ c");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, RawStrings) {
  const auto toks = significant(R"xx(R"(delete p;)" after)xx");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::String);
  EXPECT_EQ(toks[1].text, "after");
}

TEST(Lexer, RawStringsWithDelimiter) {
  const auto toks = significant("R\"ab(text )\" more)ab\" tail");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::String);
  EXPECT_EQ(toks[1].text, "tail");
}

TEST(Lexer, PrefixedLiterals) {
  const auto toks = significant("L\"wide\" u8\"utf\" U'c'");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::String);
  EXPECT_EQ(toks[1].kind, TokKind::String);
  EXPECT_EQ(toks[2].kind, TokKind::CharLit);
}

TEST(Lexer, PreprocessorLines) {
  const auto all = lex("#include <x>\nint a;\n  #define D(y) \\\n    (y)\nb;");
  int pp = 0;
  for (const Token& t : all)
    if (t.kind == TokKind::Preprocessor) ++pp;
  EXPECT_EQ(pp, 2);
  // The continuation belongs to the #define token.
  const auto sig = significant("#define A \\\n delete p\nint x;");
  ASSERT_EQ(sig.size(), 3u);  // int, x, ;
  EXPECT_EQ(sig[0].text, "int");
}

TEST(Lexer, HashInExpressionIsNotPreprocessor) {
  const auto toks = significant("a # b");  // not at line start
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokKind::Punct);
}

TEST(Lexer, MultiCharPunctuators) {
  const auto toks = significant("a->b <<= c :: d ->* e");
  std::vector<std::string_view> puncts;
  for (const auto& t : toks)
    if (t.kind == TokKind::Punct) puncts.push_back(t.text);
  ASSERT_EQ(puncts.size(), 4u);
  EXPECT_EQ(puncts[0], "->");
  EXPECT_EQ(puncts[1], "<<=");
  EXPECT_EQ(puncts[2], "::");
  EXPECT_EQ(puncts[3], "->*");
}

TEST(Lexer, UnterminatedStringTolerated) {
  const auto toks = lex("\"oops\nnext");
  EXPECT_FALSE(toks.empty());
  EXPECT_EQ(toks.back().kind, TokKind::End);
}

// --- rewriter ------------------------------------------------------------------

RewriteOptions bare() {
  RewriteOptions o;
  o.single_wrapper = "WRAP";
  o.array_wrapper = "WRAPA";
  o.include_line.clear();
  return o;
}

TEST(Rewriter, Figure4Transformation) {
  const auto r = annotate_deletes("void g(char* p)\n{\n  delete p;\n}\n",
                                  bare());
  EXPECT_EQ(r.single_rewrites, 1u);
  EXPECT_NE(r.text.find("delete WRAP(p);"), std::string::npos);
}

TEST(Rewriter, ArrayDelete) {
  const auto r = annotate_deletes("delete [] arr;", bare());
  EXPECT_EQ(r.array_rewrites, 1u);
  EXPECT_NE(r.text.find("delete [] WRAPA(arr);"), std::string::npos);
}

TEST(Rewriter, DeletedFunctionsUntouched) {
  const char* src =
      "struct S {\n"
      "  S(const S&) = delete;\n"
      "  S& operator=(const S&) = delete;\n"
      "};\n";
  const auto r = annotate_deletes(src, bare());
  EXPECT_EQ(r.total(), 0u);
  EXPECT_EQ(r.text, src);
}

TEST(Rewriter, OperatorDeleteUntouched) {
  const char* src =
      "void operator delete(void*) noexcept;\n"
      "void operator delete[](void*) noexcept;\n";
  const auto r = annotate_deletes(src, bare());
  EXPECT_EQ(r.total(), 0u);
}

TEST(Rewriter, StringsAndCommentsUntouched) {
  const char* src =
      "const char* s = \"delete p;\";\n"
      "// delete q;\n"
      "/* delete r; */\n";
  const auto r = annotate_deletes(src, bare());
  EXPECT_EQ(r.total(), 0u);
  EXPECT_EQ(r.text, src);
}

TEST(Rewriter, ComplexOperands) {
  const auto r = annotate_deletes(
      "delete (p);\n"
      "delete this->member;\n"
      "delete arr[i];\n"
      "delete container.at(key);\n",
      bare());
  EXPECT_EQ(r.single_rewrites, 4u);
  EXPECT_NE(r.text.find("WRAP((p))"), std::string::npos);
  EXPECT_NE(r.text.find("WRAP(this->member)"), std::string::npos);
  EXPECT_NE(r.text.find("WRAP(arr[i])"), std::string::npos);
  EXPECT_NE(r.text.find("WRAP(container.at(key))"), std::string::npos);
}

TEST(Rewriter, ConditionalExpression) {
  const auto r = annotate_deletes("cond ? delete a : delete b;", bare());
  EXPECT_EQ(r.single_rewrites, 2u);
  EXPECT_NE(r.text.find("delete WRAP(a) :"), std::string::npos);
  EXPECT_NE(r.text.find("delete WRAP(b);"), std::string::npos);
}

TEST(Rewriter, DeleteInsideCall) {
  const auto r = annotate_deletes("f(delete p, x);", bare());
  EXPECT_EQ(r.single_rewrites, 1u);
  EXPECT_NE(r.text.find("f(delete WRAP(p), x);"), std::string::npos);
}

TEST(Rewriter, MultipleDeletesOneStatement) {
  const auto r = annotate_deletes("delete a, delete b;", bare());
  EXPECT_EQ(r.single_rewrites, 2u);
}

TEST(Rewriter, IncludeLinePrependedOnlyWhenChanged) {
  RewriteOptions opts = bare();
  opts.include_line = "#include \"annotate/runtime.hpp\"";
  const auto changed = annotate_deletes("delete p;", opts);
  EXPECT_EQ(changed.text.find("#include \"annotate/runtime.hpp\"\n"), 0u);
  const auto unchanged = annotate_deletes("int x;", opts);
  EXPECT_EQ(unchanged.text, "int x;");
}

TEST(Rewriter, EverythingElseBytePreserved) {
  const std::string src =
      "  /* keep */\tint  x=1;\n  delete  p ;  // trailing\n";
  const auto r = annotate_deletes(src, bare());
  // Removing the inserted wrapper text restores the original exactly.
  std::string undone = r.text;
  const auto open = undone.find("WRAP(");
  ASSERT_NE(open, std::string::npos);
  undone.erase(open, 5);
  const auto close = undone.find(')', open);
  ASSERT_NE(close, std::string::npos);
  undone.erase(close, 1);
  EXPECT_EQ(undone, src);
}

TEST(Rewriter, DefaultWrappersCompileAgainstRuntime) {
  const auto r = annotate_deletes("delete p;");
  EXPECT_NE(r.text.find("::rg::annotate::ca_deletor_single(p)"),
            std::string::npos);
}

TEST(Rewriter, TemplateArgumentsInOperand) {
  const auto r =
      annotate_deletes("delete static_cast<Node<int>*>(p);", bare());
  EXPECT_EQ(r.single_rewrites, 1u);
  // The full cast expression is wrapped.
  EXPECT_NE(r.text.find("WRAP(static_cast<Node<int>*>(p))"),
            std::string::npos);
}

// --- pipeline -------------------------------------------------------------------

TEST(Pipeline, FileRoundTrip) {
  const std::string in_path = ::testing::TempDir() + "/rg_annotate_in.cpp";
  const std::string out_path = ::testing::TempDir() + "/rg_annotate_out.cpp";
  {
    std::ofstream out(in_path);
    out << "void g(char* p) { delete p; }\n";
  }
  RewriteOptions opts;
  PipelineStats stats;
  std::string error;
  ASSERT_TRUE(annotate_file(in_path, out_path, opts, stats, error)) << error;
  EXPECT_EQ(stats.files_processed, 1u);
  EXPECT_EQ(stats.files_changed, 1u);
  EXPECT_EQ(stats.single_rewrites, 1u);
  std::ifstream result(out_path);
  std::string text((std::istreambuf_iterator<char>(result)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("ca_deletor_single(p)"), std::string::npos);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(Pipeline, MissingInputReportsError) {
  RewriteOptions opts;
  PipelineStats stats;
  std::string error;
  EXPECT_FALSE(
      annotate_file("/nonexistent/file.cpp", "-", opts, stats, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rg::annotate
