// E7/E8 — every §4.1 true-positive class is detected exactly when its
// fault is seeded, and the detector goes quiet when it is fixed.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/proxy.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"

namespace rg::sip {
namespace {

struct FaultRunResult {
  std::size_t locations = 0;
  std::vector<core::Report> reports;
  std::string log;
};

/// Runs a small mixed workload against the proxy with the given faults and
/// returns the HWLC+DR report (so false-positive classes are already
/// silenced and what remains is the fault catalogue).
FaultRunResult run_with_faults(const FaultConfig& faults,
                               std::string* log = nullptr,
                               std::uint64_t seed = 21) {
  core::HelgrindTool tool(core::HelgrindConfig::hwlc_dr());
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    ProxyConfig pcfg;
    pcfg.faults = faults;
    Proxy proxy(pcfg);
    proxy.start();
    sipp::MessageFactory mf;
    std::vector<rt::thread> workers;
    for (int i = 0; i < 6; ++i)
      workers.emplace_back([&proxy, &mf, i] {
        const std::string u = "user" + std::to_string(i);
        proxy.handle_wire(mf.register_request(u, "r" + u, 1));
        proxy.handle_wire(mf.invite("c" + u, u, "call" + u, 1));
        proxy.handle_wire(mf.ack("c" + u, u, "call" + u, 1));
        proxy.handle_wire(mf.bye("c" + u, u, "call" + u, 2));
      });
    for (auto& w : workers) w.join();
    rt::sleep_ticks(500);  // let the reaper/watchdog run
    proxy.shutdown();
  });
  FaultRunResult out;
  out.locations = tool.reports().distinct_locations();
  out.reports = tool.reports().reports();
  out.log = tool.reports().render(sim.runtime());
  if (log != nullptr) *log = out.log;
  return out;
}

bool any_report_mentions(const FaultRunResult& result,
                         const std::string& needle) {
  for (const core::Report& r : result.reports) {
    for (support::SiteId frame : r.stack) {
      const auto site = support::global_sites().get(frame);
      if (std::string(support::symbol_text(site.function)).find(needle) !=
              std::string::npos ||
          std::string(support::symbol_text(site.file)).find(needle) !=
              std::string::npos)
        return true;
    }
  }
  return false;
}

TEST(TruePositives, CleanBuildIsQuiet) {
  const auto tool = run_with_faults(FaultConfig::none());
  EXPECT_EQ(tool.locations, 0u);
}

TEST(TruePositives, Fig7DomainMapRaceDetected) {
  FaultConfig faults = FaultConfig::none();
  faults.unprotected_domain_map = true;
  const auto tool = run_with_faults(faults);
  EXPECT_GE(tool.locations, 1u);
  EXPECT_TRUE(any_report_mentions(tool, "domain_data"));
}

TEST(TruePositives, UnsafeTimeFunctionDetected) {
  FaultConfig faults = FaultConfig::none();
  faults.unsafe_time_function = true;
  const auto tool = run_with_faults(faults);
  EXPECT_GE(tool.locations, 1u);
}

TEST(TruePositives, BenignStatsRacesDetected) {
  FaultConfig faults = FaultConfig::none();
  faults.benign_stats_races = true;
  const auto tool = run_with_faults(faults);
  EXPECT_GE(tool.locations, 1u);
  EXPECT_TRUE(any_report_mentions(tool, "stats"));
}

TEST(TruePositives, RacyDeadlockMonitorDetected) {
  // "One of the first reported data races was in the application's
  // deadlock detection code."
  FaultConfig faults = FaultConfig::none();
  faults.racy_deadlock_monitor = true;
  const auto tool = run_with_faults(faults);
  EXPECT_GE(tool.locations, 1u);
  EXPECT_TRUE(any_report_mentions(tool, "deadlock_monitor"));
}

TEST(TruePositives, ShutdownOrderRaceDetected) {
  FaultConfig faults = FaultConfig::none();
  faults.shutdown_order_race = true;
  const auto tool = run_with_faults(faults);
  EXPECT_GE(tool.locations, 1u);
}

TEST(TruePositives, InitOrderRaceIsScheduleDependent) {
  // §4.1.1: "This error was not directly found by the tool, but occurred
  // due to the different schedule" — across seeds it shows up sometimes.
  FaultConfig faults = FaultConfig::none();
  faults.init_order_race = true;
  std::size_t found = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto tool = run_with_faults(faults, nullptr, seed);
    if (tool.locations > 0) ++found;
  }
  // The race exists; some schedules expose it, none invents other races.
  EXPECT_GE(found, 1u);
  EXPECT_LE(found, 8u);
}

TEST(TruePositives, ThirdPartyDeletesRemainAsResidualFps) {
  // "Parts of the program where the source code is not available will not
  // benefit from this annotation."
  FaultConfig faults = FaultConfig::none();
  faults.third_party_unannotated_deletes = true;
  core::HelgrindTool tool(core::HelgrindConfig::hwlc_dr());
  rt::SimConfig cfg;
  cfg.sched.seed = 3;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    ProxyConfig pcfg;
    pcfg.faults = faults;
    Proxy proxy(pcfg);
    proxy.start();
    sipp::MessageFactory mf;
    std::vector<rt::thread> workers;
    for (int i = 0; i < 4; ++i)
      workers.emplace_back([&proxy, &mf, i] {
        proxy.handle_wire(mf.options("u" + std::to_string(i),
                                     "o" + std::to_string(i), 1));
      });
    for (auto& w : workers) w.join();
    proxy.shutdown();
  });
  FaultRunResult result;
  result.locations = tool.reports().distinct_locations();
  result.reports = tool.reports().reports();
  EXPECT_GE(result.locations, 1u);
  EXPECT_TRUE(any_report_mentions(result, "OptionsHandler"));
}

TEST(TruePositives, PoolReuseFpAppearsAndForceNewFixesIt) {
  // The §4 libstdc++ allocation-strategy issue and its environment-
  // variable fix.
  auto run_pool = [&](bool reuse) {
    FaultConfig faults = FaultConfig::none();
    faults.pooled_allocator_reuse = reuse;
    faults.benign_stats_races = false;
    sipp::ExperimentConfig cfg;
    cfg.seed = 9;
    cfg.faults = faults;
    cfg.detector = core::HelgrindConfig::hwlc_dr();
    const auto scenario = sipp::build_testcase(5, cfg.seed);
    return sipp::run_scenario(scenario, cfg).reported_locations;
  };
  const std::size_t with_reuse = run_pool(true);
  const std::size_t with_force_new = run_pool(false);
  EXPECT_GT(with_reuse, with_force_new);
  EXPECT_EQ(with_force_new, 0u);
}

TEST(TruePositives, FixingFaultsRemovesTheirWarnings) {
  // "It is generally a good idea to rerun the test suite after fixing a
  // problem. Then, all warnings related to the corrected defect will
  // disappear."
  const auto before = run_with_faults(FaultConfig::paper());
  FaultConfig partially_fixed = FaultConfig::paper();
  partially_fixed.unsafe_time_function = false;
  partially_fixed.benign_stats_races = false;
  const auto after = run_with_faults(partially_fixed);
  EXPECT_LT(after.locations, before.locations);
}

}  // namespace
}  // namespace rg::sip
