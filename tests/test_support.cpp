// Unit tests for the rg::support utilities.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "support/glob.hpp"
#include "support/intern.hpp"
#include "support/prng.hpp"
#include "support/site.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rg::support {
namespace {

// --- Interner ----------------------------------------------------------------

TEST(Interner, EmptyStringIsSymbolZero) {
  Interner interner;
  EXPECT_EQ(interner.intern(""), 0u);
  EXPECT_EQ(interner.text(0), "");
}

TEST(Interner, SameStringSameSymbol) {
  Interner interner;
  const Symbol a = interner.intern("mutex-a");
  const Symbol b = interner.intern("mutex-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("mutex-a"), a);
  EXPECT_EQ(interner.intern("mutex-b"), b);
}

TEST(Interner, TextRoundTrips) {
  Interner interner;
  const Symbol s = interner.intern("some::function(int)");
  EXPECT_EQ(interner.text(s), "some::function(int)");
}

TEST(Interner, ViewsSurviveGrowth) {
  Interner interner;
  const Symbol first = interner.intern("first");
  const std::string_view view = interner.text(first);
  for (int i = 0; i < 1000; ++i) interner.intern("filler" + std::to_string(i));
  EXPECT_EQ(view, "first");
  EXPECT_EQ(interner.text(first), "first");
}

TEST(Interner, SizeCountsDistinct) {
  Interner interner;
  const std::size_t base = interner.size();
  interner.intern("x");
  interner.intern("y");
  interner.intern("x");
  EXPECT_EQ(interner.size(), base + 2);
}

// --- SiteRegistry -------------------------------------------------------------

TEST(SiteRegistry, UnknownSiteIsZero) {
  EXPECT_EQ(kUnknownSite, 0u);
  EXPECT_EQ(global_sites().describe(kUnknownSite),
            "<unknown> (<unknown>:0)");
}

TEST(SiteRegistry, SameLocationSameId) {
  const SiteId a = site_id("f", "file.cpp", 10);
  const SiteId b = site_id("f", "file.cpp", 10);
  const SiteId c = site_id("f", "file.cpp", 11);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SiteRegistry, DescribeFormat) {
  const SiteId id = site_id("handler", "proxy.cpp", 42);
  EXPECT_EQ(global_sites().describe(id), "handler (proxy.cpp:42)");
}

TEST(SiteRegistry, HereMacroIsStable) {
  const SiteId a = RG_HERE();
  const SiteId b = RG_HERE();
  EXPECT_NE(a, b);  // different lines
  auto same_line = [] { return RG_HERE(); };
  EXPECT_EQ(same_line(), same_line());
}

// --- small_vector --------------------------------------------------------------

TEST(SmallVector, StartsEmptyInline) {
  small_vector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushAndIndex) {
  small_vector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  ASSERT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallVector, SpillsToHeap) {
  small_vector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyPreservesContents) {
  small_vector<std::string, 2> v;
  v.push_back("a");
  v.push_back("b");
  v.push_back("c");  // heap
  small_vector<std::string, 2> copy(v);
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[0], "a");
  EXPECT_EQ(copy[2], "c");
  // Deep copy: mutating the copy leaves the original alone.
  copy[0] = "z";
  EXPECT_EQ(v[0], "a");
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  small_vector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const int* data = v.data();
  small_vector<int, 2> moved(std::move(v));
  EXPECT_EQ(moved.data(), data);  // heap buffer stolen
  EXPECT_EQ(moved.size(), 10u);
}

TEST(SmallVector, MoveInlineCopiesElements) {
  small_vector<std::string, 4> v;
  v.push_back("hello");
  small_vector<std::string, 4> moved(std::move(v));
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "hello");
}

TEST(SmallVector, PopBack) {
  small_vector<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVector, ResizeGrowsAndShrinks) {
  small_vector<int, 4> v;
  v.resize(6, 7);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[5], 7);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, EqualityIsElementwise) {
  small_vector<int, 4> a{1, 2, 3};
  small_vector<int, 4> b{1, 2, 3};
  small_vector<int, 4> c{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

/// Property: small_vector behaves like std::vector under a random op
/// sequence, for several seeds and inline capacities.
class SmallVectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallVectorProperty, MatchesStdVector) {
  Xoshiro256 rng(GetParam());
  small_vector<int, 3> actual;
  std::vector<int> expected;
  for (int step = 0; step < 500; ++step) {
    const auto op = rng.below(4);
    if (op == 0 || expected.empty()) {
      const int v = static_cast<int>(rng.below(1000));
      actual.push_back(v);
      expected.push_back(v);
    } else if (op == 1) {
      actual.pop_back();
      expected.pop_back();
    } else if (op == 2) {
      const auto idx = rng.below(expected.size());
      EXPECT_EQ(actual[idx], expected[idx]);
    } else {
      actual.clear();
      expected.clear();
    }
    ASSERT_EQ(actual.size(), expected.size());
  }
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallVectorProperty,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// --- PRNG -----------------------------------------------------------------------

TEST(Prng, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, RangeInclusive) {
  Xoshiro256 rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

// --- glob -------------------------------------------------------------------------

TEST(Glob, Literal) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_FALSE(glob_match("abc", "ab"));
}

TEST(Glob, Star) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("std::*", "std::string::assign"));
  EXPECT_TRUE(glob_match("*grab*", "_M_grab(allocator)"));
  EXPECT_FALSE(glob_match("std::*", "boost::any"));
}

TEST(Glob, QuestionMark) {
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_FALSE(glob_match("a?c", "abbc"));
}

TEST(Glob, MultipleStarsBacktrack) {
  EXPECT_TRUE(glob_match("*a*b*", "xxaxxbxx"));
  EXPECT_TRUE(glob_match("a*a*a", "aaa"));
  EXPECT_FALSE(glob_match("a*a*a", "aa"));
  EXPECT_TRUE(glob_match("**", "x"));
}

// --- strings ----------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitOnce) {
  auto [k, v] = split_once("Via: SIP/2.0", ':');
  EXPECT_EQ(k, "Via");
  EXPECT_EQ(trim(v), "SIP/2.0");
  auto [all, none] = split_once("nocolon", ':');
  EXPECT_EQ(all, "nocolon");
  EXPECT_TRUE(none.empty());
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("via", "vias"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("Call-ID"), "call-id"); }

TEST(Strings, ParseU32) {
  std::uint32_t v = 0;
  EXPECT_TRUE(parse_u32("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u32("4294967295", v));
  EXPECT_EQ(v, 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296", v));
  EXPECT_FALSE(parse_u32("", v));
  EXPECT_FALSE(parse_u32("12x", v));
  EXPECT_FALSE(parse_u32("-1", v));
}

// --- stats -------------------------------------------------------------------------

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(2.0);
  acc.add(4.0);
  acc.add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(Stats, StddevNeedsTwoSamples) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> samples{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

// --- table -------------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table t("Fig. 6");
  t.header({"Test case", "Original", "HWLC", "HWLC+DR"});
  t.row("T1", 483, 448, 120);
  const std::string out = t.render();
  EXPECT_NE(out.find("Fig. 6"), std::string::npos);
  EXPECT_NE(out.find("T1"), std::string::npos);
  EXPECT_NE(out.find("483"), std::string::npos);
  EXPECT_NE(out.find("HWLC+DR"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.header({"a", "b"});
  t.row("x", 1);
  EXPECT_EQ(t.render_csv(), "a,b\nx,1\n");
}

TEST(Table, DoubleFormatting) {
  Table t;
  t.header({"v"});
  t.row(3.14159);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace rg::support
