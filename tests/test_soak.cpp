// The replayable chaos soak matrix (ctest label `soak`): seeds x fault
// mixes under heavy mixed traffic, every cell run twice. Asserts the
// acceptance criteria of the resilience layer: zero lost transactions,
// monotone breaker histories, and bit-identical replay per (seed, mix).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "sipp/soak.hpp"

namespace rg {
namespace {

using sipp::SoakCell;
using sipp::SoakMatrixResult;
using sipp::SoakMix;

const std::vector<std::uint64_t>& soak_seeds() {
  static const std::vector<std::uint64_t> seeds = {3, 7, 13, 29, 41};
  return seeds;
}

TEST(SoakMatrix, AllCellsConvergeMonotonicallyAndReplayIdentically) {
  const std::vector<SoakMix> mixes = sipp::default_soak_mixes();
  ASSERT_EQ(mixes.size(), 3u);
  const SoakMatrixResult matrix =
      sipp::run_soak_matrix(soak_seeds(), mixes, /*verify_replay=*/true);
  EXPECT_TRUE(matrix.ok()) << matrix.first_error;
  EXPECT_TRUE(matrix.all_converged) << matrix.first_error;
  EXPECT_TRUE(matrix.all_monotone) << matrix.first_error;
  EXPECT_TRUE(matrix.replay_identical) << matrix.first_error;
  ASSERT_EQ(matrix.cells.size(), soak_seeds().size() * mixes.size());

  // The matrix must actually have exercised the resilience machinery:
  // every cell forwarded upstream, and the hostile mixes tripped breakers.
  std::uint64_t total_opens = 0, total_failovers = 0;
  for (const SoakCell& cell : matrix.cells) {
    EXPECT_GT(cell.calls, 0u) << cell.mix;
    EXPECT_GT(cell.upstream_forwards, 0u)
        << cell.mix << " seed " << cell.seed;
    total_opens += cell.breaker_opens;
    total_failovers += cell.upstream_failovers;
  }
  EXPECT_GT(total_opens, 0u);
  EXPECT_GT(total_failovers, 0u);

  // Every cell carried a flight recorder and hashed a non-trivial event
  // stream; the replay check above already proved run 2 reproduced each
  // hash bit-for-bit (the recorder as equivalence oracle). Distinct seeds
  // must also hash differently — a constant hash would be vacuous.
  std::set<std::uint64_t> hashes;
  for (const SoakCell& cell : matrix.cells) {
    EXPECT_NE(cell.recorder_hash, 0u) << cell.mix << " seed " << cell.seed;
    hashes.insert(cell.recorder_hash);
  }
  EXPECT_EQ(hashes.size(), matrix.cells.size());

  // Different seeds of one mix are genuinely different executions (the
  // sweep is not 15 copies of one run).
  std::set<std::string> traces;
  for (const SoakCell& cell : matrix.cells)
    if (cell.mix == mixes[1].name) traces.insert(cell.injection_trace);
  EXPECT_EQ(traces.size(), soak_seeds().size());

  // Per-cell accounting, for the EXPERIMENTS.md soak table.
  for (const SoakCell& cell : matrix.cells)
    std::printf("%-16s seed=%-3llu %s fwd=%llu failover=%llu degraded=%llu "
                "opens=%llu\n",
                cell.mix.c_str(),
                static_cast<unsigned long long>(cell.seed),
                cell.outcomes.c_str(),
                static_cast<unsigned long long>(cell.upstream_forwards),
                static_cast<unsigned long long>(cell.upstream_failovers),
                static_cast<unsigned long long>(cell.degraded_serves),
                static_cast<unsigned long long>(cell.breaker_opens));
}

}  // namespace
}  // namespace rg
