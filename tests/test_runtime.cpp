// Runtime core: registries, event fan-out, allocation origins, shadow
// stacks.
#include <gtest/gtest.h>

#include "detector_harness.hpp"
#include "rt/runtime.hpp"

namespace rg::rt {
namespace {

class CountingTool : public Tool {
 public:
  int starts = 0, exits = 0, joins = 0;
  int lock_creates = 0, accesses = 0, allocs = 0, frees = 0, destructs = 0;
  int finishes = 0;
  MemoryAccess last_access;

  void on_thread_start(ThreadId, ThreadId, support::SiteId) override {
    ++starts;
  }
  void on_thread_exit(ThreadId) override { ++exits; }
  void on_thread_join(ThreadId, ThreadId, support::SiteId) override {
    ++joins;
  }
  void on_lock_create(LockId, support::Symbol, bool) override {
    ++lock_creates;
  }
  void on_access(const MemoryAccess& a) override {
    ++accesses;
    last_access = a;
  }
  void on_alloc(ThreadId, Addr, std::uint32_t, support::SiteId) override {
    ++allocs;
  }
  void on_free(ThreadId, Addr, std::uint32_t, support::SiteId) override {
    ++frees;
  }
  void on_destruct_annotation(ThreadId, Addr, std::uint32_t,
                              support::SiteId) override {
    ++destructs;
  }
  void on_finish() override { ++finishes; }
};

TEST(Runtime, DispatchesToAllTools) {
  Runtime rt;
  CountingTool a, b;
  rt.attach(a);
  rt.attach(b);
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  rt.access({t, 0x1000, 4, AccessKind::Write, false, 0});
  EXPECT_EQ(a.starts, 1);
  EXPECT_EQ(b.starts, 1);
  EXPECT_EQ(a.accesses, 1);
  EXPECT_EQ(b.accesses, 1);
}

TEST(Runtime, ThreadRegistryNamesAndLiveness) {
  Runtime rt;
  const ThreadId main = rt.register_thread("main", kNoThread, 0);
  const ThreadId worker = rt.register_thread("worker", main, 0);
  EXPECT_EQ(rt.thread_name(main), "main");
  EXPECT_EQ(rt.thread_name(worker), "worker");
  EXPECT_TRUE(rt.thread_alive(worker));
  rt.thread_exited(worker);
  EXPECT_FALSE(rt.thread_alive(worker));
}

TEST(Runtime, DenseThreadIds) {
  Runtime rt;
  EXPECT_EQ(rt.register_thread("t0", kNoThread, 0), 0u);
  EXPECT_EQ(rt.register_thread("t1", 0, 0), 1u);
  EXPECT_EQ(rt.register_thread("t2", 0, 0), 2u);
}

TEST(Runtime, HeldLockModesAndCounts) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  const LockId rw = rt.register_lock("rw", true);
  rt.post_lock(t, rw, LockMode::Shared, 0);
  ASSERT_EQ(rt.held_locks(t).size(), 1u);
  EXPECT_EQ(rt.held_locks(t)[0].mode, LockMode::Shared);
  // Recursive shared acquisition: count goes up, entry stays single.
  rt.post_lock(t, rw, LockMode::Shared, 0);
  ASSERT_EQ(rt.held_locks(t).size(), 1u);
  EXPECT_EQ(rt.held_locks(t)[0].count, 2u);
  rt.unlock(t, rw, 0);
  ASSERT_EQ(rt.held_locks(t).size(), 1u);
  rt.unlock(t, rw, 0);
  EXPECT_TRUE(rt.held_locks(t).empty());
}

TEST(Runtime, LockNames) {
  Runtime rt;
  const LockId l = rt.register_lock("registrar-mutex", false);
  EXPECT_EQ(rt.lock_name(l), "registrar-mutex");
}

TEST(Runtime, AllocOriginLookup) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  const auto site = support::site_id("maker", "alloc.cpp", 5);
  rt.alloc(t, 0x5000, 64, site);

  const AddrOrigin exact = rt.origin_of(0x5000);
  ASSERT_TRUE(exact.known);
  EXPECT_EQ(exact.offset, 0u);
  EXPECT_EQ(exact.alloc.size, 64u);

  const AddrOrigin inside = rt.origin_of(0x5008);
  ASSERT_TRUE(inside.known);
  EXPECT_EQ(inside.offset, 8u);
  EXPECT_NE(inside.describe().find("8 bytes inside a block of size 64"),
            std::string::npos);

  EXPECT_FALSE(rt.origin_of(0x5040).known);  // one past the end
  EXPECT_FALSE(rt.origin_of(0x4fff).known);
}

TEST(Runtime, FreedAllocStillDescribable) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  rt.alloc(t, 0x7000, 32, 0);
  rt.free(t, 0x7000, 0);
  // Reports on stale addresses still resolve to the most recent block.
  const AddrOrigin origin = rt.origin_of(0x7010);
  EXPECT_TRUE(origin.known);
  EXPECT_EQ(origin.offset, 16u);
}

TEST(Runtime, OverlappingRealloc) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  rt.alloc(t, 0x9000, 16, 0);
  rt.free(t, 0x9000, 0);
  const auto site2 = support::site_id("second", "alloc.cpp", 9);
  rt.alloc(t, 0x9000, 16, site2);
  const AddrOrigin origin = rt.origin_of(0x9004);
  ASSERT_TRUE(origin.known);
  EXPECT_EQ(origin.alloc.site, site2);  // live block wins over dead one
}

TEST(Runtime, ShadowStacks) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  const auto f1 = support::site_id("outer", "s.cpp", 1);
  const auto f2 = support::site_id("inner", "s.cpp", 2);
  rt.push_frame(t, f1);
  rt.push_frame(t, f2);
  const auto stack = rt.stack_of(t);
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0], f2);  // innermost first
  EXPECT_EQ(stack[1], f1);
  rt.pop_frame(t);
  EXPECT_EQ(rt.stack_of(t).size(), 1u);
}

TEST(Runtime, PerThreadStacksAreIndependent) {
  Runtime rt;
  const ThreadId a = rt.register_thread("a", kNoThread, 0);
  const ThreadId b = rt.register_thread("b", a, 0);
  rt.push_frame(a, support::site_id("fa", "s.cpp", 1));
  rt.push_frame(b, support::site_id("fb", "s.cpp", 2));
  EXPECT_EQ(rt.stack_of(a).size(), 1u);
  EXPECT_EQ(rt.stack_of(b).size(), 1u);
  EXPECT_NE(rt.stack_of(a)[0], rt.stack_of(b)[0]);
}

TEST(Runtime, EventCounters) {
  Runtime rt;
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  const LockId l = rt.register_lock("l", false);
  rt.pre_lock(t, l, LockMode::Exclusive, 0);
  rt.post_lock(t, l, LockMode::Exclusive, 0);
  rt.unlock(t, l, 0);
  rt.access({t, 0x100, 1, AccessKind::Read, false, 0});
  EXPECT_EQ(rt.access_events(), 1u);
  EXPECT_GE(rt.sync_events(), 1u);
}

TEST(Runtime, FinishNotifiesTools) {
  Runtime rt;
  CountingTool tool;
  rt.attach(tool);
  rt.finish();
  EXPECT_EQ(tool.finishes, 1);
}

TEST(Runtime, DestructAnnotationFansOut) {
  Runtime rt;
  CountingTool tool;
  rt.attach(tool);
  const ThreadId t = rt.register_thread("main", kNoThread, 0);
  rt.destruct_annotation(t, 0x100, 24, 0);
  EXPECT_EQ(tool.destructs, 1);
}

TEST(EventHarnessTest, ConvenienceWrappers) {
  test::EventHarness h;
  CountingTool tool;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("worker");
  const LockId l = h.lock("m");
  h.acquire(worker, l);
  h.write(worker, 0x100);
  h.release(worker, l);
  h.join(main, worker);
  EXPECT_EQ(tool.starts, 2);
  EXPECT_EQ(tool.joins, 1);
  EXPECT_EQ(tool.accesses, 1);
  EXPECT_EQ(tool.last_access.thread, worker);
  EXPECT_EQ(tool.last_access.kind, AccessKind::Write);
}

}  // namespace
}  // namespace rg::rt
