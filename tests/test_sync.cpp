// Synchronisation primitive semantics and the tool events they raise.
#include <gtest/gtest.h>

#include <vector>

#include "rt/memory.hpp"
#include "rt/queue.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace rg::rt {
namespace {

/// Records every sync event for assertions.
class RecordingTool : public Tool {
 public:
  struct LockEvent {
    ThreadId tid;
    LockId lock;
    LockMode mode;
    char kind;  // 'p' pre, 'a' acquired, 'r' released
  };
  std::vector<LockEvent> lock_events;
  std::vector<std::pair<SyncId, std::uint64_t>> puts, gets, posts, waits;
  int signals = 0;
  int wait_returns = 0;

  void on_pre_lock(ThreadId t, LockId l, LockMode m,
                   support::SiteId) override {
    lock_events.push_back({t, l, m, 'p'});
  }
  void on_post_lock(ThreadId t, LockId l, LockMode m,
                    support::SiteId) override {
    lock_events.push_back({t, l, m, 'a'});
  }
  void on_unlock(ThreadId t, LockId l, support::SiteId) override {
    lock_events.push_back({t, l, LockMode::Exclusive, 'r'});
  }
  void on_cond_signal(ThreadId, SyncId, support::SiteId) override {
    ++signals;
  }
  void on_cond_wait_return(ThreadId, SyncId, LockId,
                           support::SiteId) override {
    ++wait_returns;
  }
  void on_queue_put(ThreadId, SyncId q, std::uint64_t tok,
                    support::SiteId) override {
    puts.emplace_back(q, tok);
  }
  void on_queue_get(ThreadId, SyncId q, std::uint64_t tok,
                    support::SiteId) override {
    gets.emplace_back(q, tok);
  }
  void on_sem_post(ThreadId, SyncId s, std::uint64_t tok,
                   support::SiteId) override {
    posts.emplace_back(s, tok);
  }
  void on_sem_wait_return(ThreadId, SyncId s, std::uint64_t tok,
                          support::SiteId) override {
    waits.emplace_back(s, tok);
  }
};

// --- mutex ------------------------------------------------------------------------

TEST(Mutex, ProvidesMutualExclusion) {
  Sim sim;
  sim.run([&] {
    mutex m("m");
    int counter = 0;  // plain int: only safe because of the lock
    std::vector<thread> threads;
    for (int i = 0; i < 8; ++i)
      threads.emplace_back([&] {
        for (int k = 0; k < 20; ++k) {
          lock_guard g(m);
          const int v = counter;
          yield();  // try to break the critical section
          counter = v + 1;
        }
      });
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter, 160);
  });
}

TEST(Mutex, EventsComeInOrder) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    mutex m("m");
    m.lock();
    m.unlock();
  });
  ASSERT_EQ(tool.lock_events.size(), 3u);
  EXPECT_EQ(tool.lock_events[0].kind, 'p');
  EXPECT_EQ(tool.lock_events[1].kind, 'a');
  EXPECT_EQ(tool.lock_events[2].kind, 'r');
  EXPECT_EQ(tool.lock_events[0].mode, LockMode::Exclusive);
}

TEST(Mutex, TryLockSucceedsWhenFree) {
  Sim sim;
  sim.run([&] {
    mutex m("m");
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
}

TEST(Mutex, TryLockFailsWhenHeld) {
  Sim sim;
  sim.run([&] {
    mutex m("m");
    semaphore locked(0, "locked"), release(0, "release");
    thread holder([&] {
      m.lock();
      locked.post();
      release.wait();
      m.unlock();
    });
    locked.wait();
    EXPECT_FALSE(m.try_lock());
    release.post();
    holder.join();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
}

TEST(Mutex, HeldLocksTracked) {
  Sim sim;
  sim.run([&] {
    mutex m1("m1"), m2("m2");
    Runtime& rt = Sim::current()->runtime();
    const ThreadId me = Sim::current_thread();
    EXPECT_EQ(rt.held_locks(me).size(), 0u);
    m1.lock();
    m2.lock();
    EXPECT_EQ(rt.held_locks(me).size(), 2u);
    m1.unlock();
    EXPECT_EQ(rt.held_locks(me).size(), 1u);
    EXPECT_EQ(rt.held_locks(me)[0].lock, m2.id());
    m2.unlock();
    EXPECT_EQ(rt.held_locks(me).size(), 0u);
  });
}

TEST(Mutex, NativeModeWorks) {
  // Outside a Sim the primitives fall back to std::mutex.
  mutex m("native");
  int counter = 0;
  std::vector<thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) {
        lock_guard g(m);
        ++counter;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

// --- rw_mutex ----------------------------------------------------------------------

TEST(RwMutex, SharedReadersCoexist) {
  Sim sim;
  sim.run([&] {
    rw_mutex rw("rw");
    int readers_inside = 0;
    int max_readers = 0;
    std::vector<thread> threads;
    for (int i = 0; i < 4; ++i)
      threads.emplace_back([&] {
        shared_lock_guard g(rw);
        ++readers_inside;
        if (readers_inside > max_readers) max_readers = readers_inside;
        yield();
        yield();
        --readers_inside;
      });
    for (auto& t : threads) t.join();
    EXPECT_GE(max_readers, 2);
  });
}

TEST(RwMutex, WriterExcludesReaders) {
  Sim sim;
  sim.run([&] {
    rw_mutex rw("rw");
    bool writer_inside = false;
    bool overlap = false;
    thread writer([&] {
      rw.lock();
      writer_inside = true;
      for (int i = 0; i < 10; ++i) yield();
      writer_inside = false;
      rw.unlock();
    });
    thread reader([&] {
      for (int i = 0; i < 5; ++i) {
        shared_lock_guard g(rw);
        if (writer_inside) overlap = true;
        yield();
      }
    });
    writer.join();
    reader.join();
    EXPECT_FALSE(overlap);
  });
}

TEST(RwMutex, ModesReportedToTools) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    rw_mutex rw("rw");
    rw.lock_shared();
    rw.unlock();
    rw.lock();
    rw.unlock();
  });
  ASSERT_GE(tool.lock_events.size(), 6u);
  EXPECT_EQ(tool.lock_events[0].mode, LockMode::Shared);
  EXPECT_EQ(tool.lock_events[3].mode, LockMode::Exclusive);
}

TEST(RwMutex, HeldModeVisibleToDetectors) {
  Sim sim;
  sim.run([&] {
    rw_mutex rw("rw");
    Runtime& rt = Sim::current()->runtime();
    const ThreadId me = Sim::current_thread();
    rw.lock_shared();
    ASSERT_EQ(rt.held_locks(me).size(), 1u);
    EXPECT_EQ(rt.held_locks(me)[0].mode, LockMode::Shared);
    rw.unlock();
    rw.lock();
    ASSERT_EQ(rt.held_locks(me).size(), 1u);
    EXPECT_EQ(rt.held_locks(me)[0].mode, LockMode::Exclusive);
    rw.unlock();
  });
}

// --- condition_variable ---------------------------------------------------------------

TEST(CondVar, SignalWakesWaiter) {
  Sim sim;
  sim.run([&] {
    mutex m("m");
    condition_variable cv("cv");
    bool ready = false;
    thread consumer([&] {
      lock_guard g(m);
      cv.wait_until(m, [&] { return ready; });
      EXPECT_TRUE(ready);
    });
    {
      lock_guard g(m);
      ready = true;
    }
    cv.notify_one();
    consumer.join();
  });
}

TEST(CondVar, NotifyAllWakesEveryone) {
  Sim sim;
  sim.run([&] {
    mutex m("m");
    condition_variable cv("cv");
    bool go = false;
    int woken = 0;
    std::vector<thread> threads;
    for (int i = 0; i < 5; ++i)
      threads.emplace_back([&] {
        lock_guard g(m);
        cv.wait_until(m, [&] { return go; });
        ++woken;
      });
    for (int i = 0; i < 20; ++i) yield();  // let them park
    {
      lock_guard g(m);
      go = true;
    }
    cv.notify_all();
    for (auto& t : threads) t.join();
    EXPECT_EQ(woken, 5);
  });
}

TEST(CondVar, SignalBeforeWaitIsLost) {
  // The lost-wakeup semantics the paper criticises [12] for relying on:
  // a signal with no waiter does nothing.
  Sim sim;
  const SimResult r = sim.run([&] {
    mutex m("m");
    condition_variable cv("cv");
    cv.notify_one();  // lost
    thread waiter([&] {
      lock_guard g(m);
      cv.wait(m);  // sleeps forever
    });
    waiter.join();
  });
  EXPECT_TRUE(r.deadlocked());
}

TEST(CondVar, EventsRaised) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    mutex m("m");
    condition_variable cv("cv");
    bool ready = false;
    thread waiter([&] {
      lock_guard g(m);
      cv.wait_until(m, [&] { return ready; });
    });
    for (int i = 0; i < 10; ++i) yield();
    {
      lock_guard g(m);
      ready = true;
    }
    cv.notify_one();
    waiter.join();
  });
  EXPECT_GE(tool.signals, 1);
  EXPECT_GE(tool.wait_returns, 1);
}

// --- semaphore ---------------------------------------------------------------------

TEST(Semaphore, InitialCount) {
  Sim sim;
  sim.run([&] {
    semaphore s(2, "s");
    s.wait();
    s.wait();  // both immediate
    thread poster([&] { s.post(); });
    s.wait();  // needs the post
    poster.join();
  });
}

TEST(Semaphore, TokensPairPostWithWaitFifo) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    semaphore s(0, "s");
    s.post();
    s.post();
    s.wait();
    s.wait();
  });
  ASSERT_EQ(tool.posts.size(), 2u);
  ASSERT_EQ(tool.waits.size(), 2u);
  EXPECT_EQ(tool.posts[0].second, tool.waits[0].second);
  EXPECT_EQ(tool.posts[1].second, tool.waits[1].second);
  EXPECT_NE(tool.posts[0].second, tool.posts[1].second);
}

TEST(Semaphore, InitialTokensAreUnpaired) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    semaphore s(1, "s");
    s.wait();
  });
  ASSERT_EQ(tool.waits.size(), 1u);
  EXPECT_EQ(tool.waits[0].second, 0u);  // token 0 = no posting thread
}

// --- message_queue -----------------------------------------------------------------

TEST(MessageQueue, FifoDelivery) {
  Sim sim;
  sim.run([&] {
    message_queue<int> q("q");
    for (int i = 0; i < 5; ++i) q.put(i);
    for (int i = 0; i < 5; ++i) {
      int v = -1;
      ASSERT_TRUE(q.get(v));
      EXPECT_EQ(v, i);
    }
  });
}

TEST(MessageQueue, GetBlocksUntilPut) {
  Sim sim;
  sim.run([&] {
    message_queue<int> q("q");
    int got = -1;
    thread consumer([&] {
      int v;
      if (q.get(v)) got = v;
    });
    for (int i = 0; i < 10; ++i) yield();
    q.put(99);
    consumer.join();
    EXPECT_EQ(got, 99);
  });
}

TEST(MessageQueue, CloseReleasesGetters) {
  Sim sim;
  sim.run([&] {
    message_queue<int> q("q");
    bool got_false = false;
    thread consumer([&] {
      int v;
      got_false = !q.get(v);
    });
    for (int i = 0; i < 10; ++i) yield();
    q.close();
    consumer.join();
    EXPECT_TRUE(got_false);
  });
}

TEST(MessageQueue, CloseDrainsRemainingItems) {
  Sim sim;
  sim.run([&] {
    message_queue<int> q("q");
    q.put(1);
    q.put(2);
    q.close();
    int v;
    EXPECT_TRUE(q.get(v));
    EXPECT_TRUE(q.get(v));
    EXPECT_FALSE(q.get(v));
  });
}

TEST(MessageQueue, BoundedCapacityBlocksPutters) {
  Sim sim;
  sim.run([&] {
    message_queue<int> q("q", /*capacity=*/2);
    int produced = 0;
    thread producer([&] {
      for (int i = 0; i < 6; ++i) {
        q.put(i);
        ++produced;
      }
    });
    for (int i = 0; i < 30; ++i) yield();
    EXPECT_LE(produced, 3);  // producer stuck at capacity
    int v;
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.get(v));
    producer.join();
    EXPECT_EQ(produced, 6);
  });
}

TEST(MessageQueue, PutGetTokensPair) {
  RecordingTool tool;
  Sim sim;
  sim.attach(tool);
  sim.run([&] {
    message_queue<int> q("q");
    q.put(10);
    q.put(20);
    int v;
    q.get(v);
    q.get(v);
  });
  ASSERT_EQ(tool.puts.size(), 2u);
  ASSERT_EQ(tool.gets.size(), 2u);
  EXPECT_EQ(tool.puts[0].second, tool.gets[0].second);
  EXPECT_EQ(tool.puts[1].second, tool.gets[1].second);
}

TEST(MessageQueue, WorkerPoolRoundTrip) {
  Sim sim;
  sim.run([&] {
    message_queue<int> in("in");
    message_queue<int> out("out");
    std::vector<thread> workers;
    for (int i = 0; i < 3; ++i)
      workers.emplace_back([&] {
        int v;
        while (in.get(v)) out.put(v * 2);
      });
    for (int i = 1; i <= 9; ++i) in.put(i);
    int sum = 0;
    for (int i = 0; i < 9; ++i) {
      int v;
      ASSERT_TRUE(out.get(v));
      sum += v;
    }
    in.close();
    for (auto& w : workers) w.join();
    EXPECT_EQ(sum, 90);  // 2 * (1+...+9)
  });
}

}  // namespace
}  // namespace rg::rt
