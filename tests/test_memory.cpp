// Tracked memory: events carry the right addresses, sizes, kinds and the
// x86 LOCK-prefix flag; instrumented_object emulates alloc/vptr behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"

namespace rg::rt {
namespace {

class AccessRecorder : public Tool {
 public:
  std::vector<MemoryAccess> accesses;
  std::vector<std::pair<Addr, std::uint32_t>> allocs;
  std::vector<Addr> frees;
  std::vector<std::pair<Addr, std::uint32_t>> destructs;

  void on_access(const MemoryAccess& a) override { accesses.push_back(a); }
  void on_alloc(ThreadId, Addr a, std::uint32_t s, support::SiteId) override {
    allocs.emplace_back(a, s);
  }
  void on_free(ThreadId, Addr a, std::uint32_t, support::SiteId) override {
    frees.push_back(a);
  }
  void on_destruct_annotation(ThreadId, Addr a, std::uint32_t s,
                              support::SiteId) override {
    destructs.emplace_back(a, s);
  }
};

TEST(Tracked, LoadStoreRoundTrip) {
  Sim sim;
  sim.run([&] {
    tracked<int> x(5);
    EXPECT_EQ(x.load(), 5);
    x.store(9);
    EXPECT_EQ(x.load(), 9);
  });
}

TEST(Tracked, EventsCarryAddressSizeKind) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    tracked<std::uint64_t> x;
    x.store(1);
    (void)x.load();
  });
  ASSERT_EQ(rec.accesses.size(), 2u);
  EXPECT_EQ(rec.accesses[0].kind, AccessKind::Write);
  EXPECT_EQ(rec.accesses[0].size, 8u);
  EXPECT_EQ(rec.accesses[1].kind, AccessKind::Read);
  EXPECT_EQ(rec.accesses[0].addr, rec.accesses[1].addr);
  EXPECT_FALSE(rec.accesses[0].bus_locked);
}

TEST(Tracked, NativeModeIsSilent) {
  tracked<int> x(3);
  x.store(4);
  EXPECT_EQ(x.load(), 4);  // no Sim: nothing to record, must not crash
}

TEST(AtomicCell, FetchAddIsBusLockedWrite) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    atomic_cell<int> refcount(1);
    refcount.fetch_add(1);
    (void)refcount.load();
  });
  ASSERT_EQ(rec.accesses.size(), 2u);
  // Per the i386 spec the RMW write carries the LOCK prefix...
  EXPECT_EQ(rec.accesses[0].kind, AccessKind::Write);
  EXPECT_TRUE(rec.accesses[0].bus_locked);
  // ...while reads never do.
  EXPECT_EQ(rec.accesses[1].kind, AccessKind::Read);
  EXPECT_FALSE(rec.accesses[1].bus_locked);
}

TEST(AtomicCell, FetchAddReturnsOldValue) {
  Sim sim;
  sim.run([&] {
    atomic_cell<int> c(10);
    EXPECT_EQ(c.fetch_add(5), 10);
    EXPECT_EQ(c.load(), 15);
    EXPECT_EQ(c.fetch_add(-15), 15);
    EXPECT_EQ(c.load(), 0);
  });
}

TEST(AtomicCell, StoreIsLocked) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    atomic_cell<std::uint32_t> c;
    c.store(7);
  });
  ASSERT_EQ(rec.accesses.size(), 1u);
  EXPECT_TRUE(rec.accesses[0].bus_locked);
}

TEST(AccessMarker, ReadsAndWrites) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    access_marker m;
    m.read();
    m.write();
  });
  ASSERT_EQ(rec.accesses.size(), 2u);
  EXPECT_EQ(rec.accesses[0].kind, AccessKind::Read);
  EXPECT_EQ(rec.accesses[1].kind, AccessKind::Write);
  EXPECT_EQ(rec.accesses[0].addr,
            reinterpret_cast<Addr>(rec.accesses[1].addr));
}

// --- instrumented_object -----------------------------------------------------------

struct Base : instrumented_object {
  tracked<int> field;
  ~Base() override { vptr_write(); }
};
struct Derived : Base {
  ~Derived() override { vptr_write(); }
};

TEST(InstrumentedObject, NewRegistersWholeBlock) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    auto* obj = new Derived;
    ASSERT_EQ(rec.allocs.size(), 1u);
    EXPECT_EQ(rec.allocs[0].first, reinterpret_cast<Addr>(obj));
    EXPECT_EQ(rec.allocs[0].second, sizeof(Derived));
    delete obj;
    ASSERT_EQ(rec.frees.size(), 1u);
    EXPECT_EQ(rec.frees[0], reinterpret_cast<Addr>(obj));
  });
}

TEST(InstrumentedObject, DestructorChainWritesVptrPerClass) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    auto* obj = new Derived;
    const Addr base = reinterpret_cast<Addr>(obj);
    rec.accesses.clear();
    delete obj;
    // Derived, Base and instrumented_object each rewrite the vptr.
    int vptr_writes = 0;
    for (const auto& a : rec.accesses)
      if (a.addr == base && a.kind == AccessKind::Write) ++vptr_writes;
    EXPECT_EQ(vptr_writes, 3);
  });
}

TEST(InstrumentedObject, VirtualDispatchReadsVptr) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    auto* obj = new Derived;
    rec.accesses.clear();
    obj->virtual_dispatch();
    ASSERT_EQ(rec.accesses.size(), 1u);
    EXPECT_EQ(rec.accesses[0].kind, AccessKind::Read);
    EXPECT_EQ(rec.accesses[0].addr, reinterpret_cast<Addr>(obj));
    EXPECT_EQ(rec.accesses[0].size, sizeof(void*));
    delete obj;
  });
}

TEST(AnnotateDestruct, AnnouncesBeforeDelete) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    auto* obj = new Derived;
    const Addr obj_addr = reinterpret_cast<Addr>(obj);
    delete annotate_destruct(obj);
    ASSERT_EQ(rec.destructs.size(), 1u);
    EXPECT_EQ(rec.destructs[0].first, obj_addr);
    EXPECT_EQ(rec.destructs[0].second, sizeof(Derived));
  });
  // The annotation must precede the free.
  ASSERT_EQ(rec.frees.size(), 1u);
}

TEST(AnnotateDestruct, NullIsNoop) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    Derived* obj = nullptr;
    delete annotate_destruct(obj);
  });
  EXPECT_TRUE(rec.destructs.empty());
}

TEST(AnnotateDestruct, NoopOutsideSim) {
  // "The annotation could be inserted into production code" — it must be
  // free of effects without the VM.
  auto* obj = new Derived;
  delete annotate_destruct(obj);  // must not crash, no runtime to notify
}

TEST(FuncFrameTest, PushesAndPops) {
  Sim sim;
  sim.run([&] {
    Runtime& rt = Sim::current()->runtime();
    const ThreadId me = Sim::current_thread();
    const std::size_t before = rt.stack_of(me).size();
    {
      RG_FRAME();
      EXPECT_EQ(rt.stack_of(me).size(), before + 1);
      {
        RG_FRAME();
        EXPECT_EQ(rt.stack_of(me).size(), before + 2);
      }
      EXPECT_EQ(rt.stack_of(me).size(), before + 1);
    }
    EXPECT_EQ(rt.stack_of(me).size(), before);
  });
}

TEST(MemEvents, SpanningAccessSizes) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    char buffer[64] = {};
    mem_write(buffer, 64, std::source_location::current());
    mem_read(buffer, 1, std::source_location::current());
  });
  ASSERT_EQ(rec.accesses.size(), 2u);
  EXPECT_EQ(rec.accesses[0].size, 64u);
  EXPECT_EQ(rec.accesses[1].size, 1u);
}

TEST(MemEvents, SiteIsCallerLocation) {
  AccessRecorder rec;
  Sim sim;
  sim.attach(rec);
  sim.run([&] {
    tracked<int> x;
    x.store(1);
  });
  ASSERT_EQ(rec.accesses.size(), 1u);
  const auto site = support::global_sites().get(rec.accesses[0].site);
  EXPECT_NE(std::string(support::symbol_text(site.file)).find("test_memory"),
            std::string::npos);
}

}  // namespace
}  // namespace rg::rt
