// ReportManager: location deduplication, suppressions, rendering.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace rg::core {
namespace {

Report make_report(const std::string& top_fn, std::uint32_t line,
                   std::vector<std::string> frames = {},
                   Report::Kind kind = Report::Kind::DataRace) {
  Report r;
  r.kind = kind;
  r.access.site = support::site_id(top_fn, "file.cpp", line);
  r.stack.push_back(r.access.site);
  std::uint32_t frame_line = 100;
  for (const std::string& fn : frames)
    r.stack.push_back(support::site_id(fn, "file.cpp", frame_line++));
  return r;
}

TEST(ReportManager, CountsDistinctLocations) {
  ReportManager mgr;
  EXPECT_TRUE(mgr.add(make_report("f", 1)));
  EXPECT_TRUE(mgr.add(make_report("g", 2)));
  EXPECT_FALSE(mgr.add(make_report("f", 1)));  // duplicate location
  EXPECT_EQ(mgr.distinct_locations(), 2u);
  EXPECT_EQ(mgr.total_warnings(), 3u);
}

TEST(ReportManager, OccurrencesAccumulate) {
  ReportManager mgr;
  mgr.add(make_report("f", 1));
  mgr.add(make_report("f", 1));
  mgr.add(make_report("f", 1));
  ASSERT_EQ(mgr.reports().size(), 1u);
  EXPECT_EQ(mgr.reports()[0].occurrences, 3u);
}

TEST(ReportManager, LocationKeyUsesTopFrames) {
  // Same access site but different calling context = different location.
  Report a = make_report("access", 1, {"caller1"});
  Report b = make_report("access", 1, {"caller2"});
  EXPECT_NE(a.location_key(), b.location_key());
}

TEST(ReportManager, LocationKeyIgnoresDeepFrames) {
  // Only the top 3 frames matter (Helgrind-style dedup).
  Report a = make_report("access", 1, {"c1", "c2", "deep1"});
  Report b = make_report("access", 1, {"c1", "c2", "deep2"});
  EXPECT_EQ(a.location_key(), b.location_key());
}

TEST(ReportManager, OriginDistinguishesLocations) {
  Report a = make_report("access", 1);
  Report b = make_report("access", 1);
  b.origin.known = true;
  b.origin.alloc.site = support::site_id("maker", "alloc.cpp", 9);
  EXPECT_NE(a.location_key(), b.location_key());
}

TEST(ReportManager, KindInKey) {
  Report a = make_report("f", 1);
  Report b = make_report("f", 1, {}, Report::Kind::LockOrderInversion);
  EXPECT_NE(a.location_key(), b.location_key());
}

// --- suppressions ------------------------------------------------------------------

constexpr const char* kSuppressionFile = R"(
# libstdc++ string reference counting (the Fig. 9 warning)
{
  cow-string-refcount
  Helgrind:Race
  fun:*_M_grab*
  fun:*basic_string*
}
{
  third-party-codec
  Helgrind:Race
  fun:codec_*
  ...
  fun:main
}
)";

TEST(Suppressions, ParseFile) {
  const auto sups = parse_suppressions(kSuppressionFile);
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_EQ(sups[0].name, "cow-string-refcount");
  EXPECT_EQ(sups[0].kind_pattern, "Helgrind:Race");
  ASSERT_EQ(sups[0].frame_patterns.size(), 2u);
  EXPECT_EQ(sups[0].frame_patterns[0], "*_M_grab*");
  EXPECT_EQ(sups[1].frame_patterns[1], "...");
}

TEST(Suppressions, EmptyAndMalformedBlocksIgnored) {
  EXPECT_TRUE(parse_suppressions("").empty());
  EXPECT_TRUE(parse_suppressions("{\n}\n").empty());
  EXPECT_TRUE(parse_suppressions("stray text\n").empty());
}

TEST(Suppressions, MatchingReportIsSuppressed) {
  ReportManager mgr("Helgrind");
  mgr.load_suppressions(kSuppressionFile);
  Report r = make_report("std::string::_M_grab(alloc)", 1,
                         {"std::basic_string::basic_string(...)"});
  EXPECT_FALSE(mgr.add(r));
  EXPECT_EQ(mgr.distinct_locations(), 0u);
  EXPECT_EQ(mgr.suppressed_warnings(), 1u);
}

TEST(Suppressions, NonMatchingReportSurvives) {
  ReportManager mgr("Helgrind");
  mgr.load_suppressions(kSuppressionFile);
  EXPECT_TRUE(mgr.add(make_report("unrelated_function", 5)));
  EXPECT_EQ(mgr.distinct_locations(), 1u);
}

TEST(Suppressions, EllipsisSkipsFrames) {
  ReportManager mgr("Helgrind");
  mgr.load_suppressions(kSuppressionFile);
  Report r = make_report("codec_decode", 1,
                         {"depth1", "depth2", "depth3", "main"});
  EXPECT_FALSE(mgr.add(r));
  EXPECT_EQ(mgr.suppressed_warnings(), 1u);
}

TEST(Suppressions, KindMustMatch) {
  ReportManager mgr("Helgrind");
  mgr.load_suppressions(kSuppressionFile);
  Report r = make_report("std::string::_M_grab(x)", 1,
                         {"std::basic_string::copy"},
                         Report::Kind::LockOrderInversion);
  EXPECT_TRUE(mgr.add(r));  // suppression is for Race, not LockOrder
}

TEST(Suppressions, ToolNamePrefix) {
  ReportManager other_tool("Eraser");
  other_tool.load_suppressions(kSuppressionFile);  // Helgrind:* patterns
  Report r = make_report("std::string::_M_grab(x)", 1,
                         {"std::basic_string::copy"});
  EXPECT_TRUE(other_tool.add(r));  // different tool name: no match
}

// --- report cap (warning-storm hardening) ------------------------------------------

TEST(ReportCap, NewLocationsBeyondCapAreCounted) {
  ReportManager mgr;
  mgr.set_report_cap(2);
  EXPECT_TRUE(mgr.add(make_report("a", 1)));
  EXPECT_TRUE(mgr.add(make_report("b", 2)));
  EXPECT_FALSE(mgr.add(make_report("c", 3)));  // over cap: dropped
  EXPECT_FALSE(mgr.add(make_report("d", 4)));
  EXPECT_EQ(mgr.distinct_locations(), 2u);
  EXPECT_EQ(mgr.overflow_reports(), 2u);
  EXPECT_EQ(mgr.total_warnings(), 4u);  // warnings still counted
}

TEST(ReportCap, DuplicatesStillFoldAtCap) {
  // A repeat of an already-stored location folds into it even when the
  // table is full — only *new* locations overflow.
  ReportManager mgr;
  mgr.set_report_cap(1);
  EXPECT_TRUE(mgr.add(make_report("a", 1)));
  EXPECT_FALSE(mgr.add(make_report("a", 1)));  // dedup fold, not overflow
  EXPECT_EQ(mgr.overflow_reports(), 0u);
  ASSERT_EQ(mgr.reports().size(), 1u);
  EXPECT_EQ(mgr.reports()[0].occurrences, 2u);
}

TEST(ReportCap, ZeroCapMeansUnlimited) {
  ReportManager mgr;
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(mgr.add(make_report("f", i + 1)));
  EXPECT_EQ(mgr.distinct_locations(), 50u);
  EXPECT_EQ(mgr.overflow_reports(), 0u);
}

TEST(ReportCap, RenderSummarisesSuppressedTail) {
  ReportManager mgr;
  mgr.set_report_cap(1);
  mgr.add(make_report("kept", 1));
  mgr.add(make_report("dropped1", 2));
  mgr.add(make_report("dropped2", 3));
  rt::Runtime rt;
  const std::string text = mgr.render(rt);
  EXPECT_NE(text.find("kept"), std::string::npos);
  EXPECT_EQ(text.find("dropped1"), std::string::npos);
  EXPECT_NE(text.find("2 further reports suppressed"), std::string::npos);
  EXPECT_NE(text.find("report cap of 1"), std::string::npos);
}

TEST(ReportCap, NoTailLineWithoutOverflow) {
  ReportManager mgr;
  mgr.set_report_cap(5);
  mgr.add(make_report("a", 1));
  rt::Runtime rt;
  EXPECT_EQ(mgr.render(rt).find("further reports suppressed"),
            std::string::npos);
}

// --- rendering ----------------------------------------------------------------------

TEST(Rendering, IncludesFramesAndCounts) {
  ReportManager mgr;
  Report r = make_report("race_site", 7, {"caller_frame"});
  mgr.add(r);
  mgr.add(r);
  rt::Runtime rt;
  const std::string text = mgr.render(rt);
  EXPECT_NE(text.find("race_site"), std::string::npos);
  EXPECT_NE(text.find("caller_frame"), std::string::npos);
  EXPECT_NE(text.find("2 occurrences"), std::string::npos);
}

TEST(Rendering, GeneratedSuppressionsRoundTrip) {
  // --gen-suppressions: feeding the generated file back suppresses every
  // location that produced it.
  ReportManager first("Helgrind");
  first.add(make_report("noisy_site_a", 1, {"caller_a"}));
  first.add(make_report("noisy_site_b", 2, {"caller_b"}));
  const std::string generated = first.generate_suppressions();
  EXPECT_NE(generated.find("Helgrind:Race"), std::string::npos);
  EXPECT_NE(generated.find("fun:noisy_site_a"), std::string::npos);

  ReportManager second("Helgrind");
  second.load_suppressions(generated);
  EXPECT_FALSE(second.add(make_report("noisy_site_a", 1, {"caller_a"})));
  EXPECT_FALSE(second.add(make_report("noisy_site_b", 2, {"caller_b"})));
  EXPECT_TRUE(second.add(make_report("fresh_site", 3, {"caller_c"})));
  EXPECT_EQ(second.suppressed_warnings(), 2u);
  EXPECT_EQ(second.distinct_locations(), 1u);
}

TEST(Rendering, LockOrderReport) {
  ReportManager mgr;
  Report r = make_report("locker", 3, {}, Report::Kind::LockOrderInversion);
  r.extra = "thread 1 acquires 'b' while holding 'a'";
  mgr.add(r);
  rt::Runtime rt;
  const std::string text = mgr.render(rt);
  EXPECT_NE(text.find("lock order inversion"), std::string::npos);
  EXPECT_NE(text.find("while holding"), std::string::npos);
}

}  // namespace
}  // namespace rg::core
