// LockGraphTool tier B — acquisition histories, cross-thread refinements
// and the replay-to-deadlock oracle.
#include <gtest/gtest.h>

#include "core/lockgraph.hpp"
#include "detector_harness.hpp"
#include "obs/metrics.hpp"
#include "rt/replay.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::ThreadId;

TEST(LockGraph, TwoThreadInversionPredicted) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  h.acquire(t1, b);
  h.acquire(t1, a);
  h.release(t1, a);
  h.release(t1, b);
  h.runtime().finish();

  ASSERT_EQ(tool.predicted().size(), 1u);
  const PredictedCycle& c = tool.predicted()[0];
  ASSERT_EQ(c.edges.size(), 2u);
  // Distinct threads, and each edge's second is the next edge's first.
  EXPECT_NE(c.edges[0].tid, c.edges[1].tid);
  EXPECT_EQ(c.edges[0].second, c.edges[1].first);
  EXPECT_EQ(c.edges[1].second, c.edges[0].first);
  // The prediction also lands as a report with cycle participants.
  ASSERT_EQ(tool.predictions().reports().size(), 1u);
  const Report& r = tool.predictions().reports()[0];
  EXPECT_EQ(r.kind, Report::Kind::PredictedDeadlock);
  EXPECT_EQ(r.cycle_locks.size(), 2u);
  EXPECT_EQ(r.cycle_threads.size(), 2u);
  EXPECT_NE(r.extra.find("predicted cycle"), std::string::npos);
  // Tier A flags the same inversion (naive baseline).
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(LockGraph, SingleThreadCycleNotPredicted) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  h.acquire(main, b);
  h.acquire(main, a);
  h.release(main, a);
  h.release(main, b);
  h.runtime().finish();

  // The naive tier keeps reporting (pre-refinement baseline)...
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
  // ...but one thread cannot block on itself: the refined tier prunes.
  EXPECT_EQ(tool.predicted().size(), 0u);
  EXPECT_GE(tool.counters().pruned_single_thread, 1u);
}

TEST(LockGraph, GateLockSuppressesPrediction) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto g = h.lock("gate");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  // Both inversion sides run under a common gate lock: the critical
  // sections are serialized and the cycle can never block.
  h.acquire(main, g);
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  h.release(main, g);
  h.acquire(t1, g);
  h.acquire(t1, b);
  h.acquire(t1, a);
  h.release(t1, a);
  h.release(t1, b);
  h.release(t1, g);
  h.runtime().finish();

  EXPECT_EQ(tool.predicted().size(), 0u);
  EXPECT_GE(tool.counters().pruned_guarded, 1u);
}

TEST(LockGraph, GateOnOneSideOnlyStillPredicted) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto g = h.lock("gate");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  h.acquire(main, g);
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  h.release(main, g);
  // The opposite nesting does NOT take the gate: no serialization.
  h.acquire(t1, b);
  h.acquire(t1, a);
  h.release(t1, a);
  h.release(t1, b);
  h.runtime().finish();

  EXPECT_EQ(tool.predicted().size(), 1u);
}

TEST(LockGraph, ForkInheritedSameSpanDoesNotSerialize) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto g = h.lock("gate");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  // Parent holds the gate across both forks: the children inherit the
  // *same* hold span — one critical section, which cannot serialize the
  // two inversion sides against each other.
  h.acquire(main, g);
  const ThreadId t1 = h.thread("t1", main);
  const ThreadId t2 = h.thread("t2", main);
  h.acquire(t1, a);
  h.acquire(t1, b);
  h.release(t1, b);
  h.release(t1, a);
  h.acquire(t2, b);
  h.acquire(t2, a);
  h.release(t2, a);
  h.release(t2, b);
  h.join(main, t1);
  h.join(main, t2);
  h.release(main, g);
  h.runtime().finish();

  EXPECT_EQ(tool.predicted().size(), 1u);
}

TEST(LockGraph, ForkInheritedDistinctSpansSerialize) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto g = h.lock("gate");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  // Each child runs enclosed in its *own* parent hold of the gate
  // (released only after the join): the two critical sections are
  // serialized — the cross-thread gate refinement must suppress.
  h.acquire(main, g);
  const ThreadId t1 = h.thread("t1", main);
  h.acquire(t1, a);
  h.acquire(t1, b);
  h.release(t1, b);
  h.release(t1, a);
  h.join(main, t1);
  h.release(main, g);
  h.acquire(main, g);
  const ThreadId t2 = h.thread("t2", main);
  h.acquire(t2, b);
  h.acquire(t2, a);
  h.release(t2, a);
  h.release(t2, b);
  h.join(main, t2);
  h.release(main, g);
  h.runtime().finish();

  EXPECT_EQ(tool.predicted().size(), 0u);
  EXPECT_GE(tool.counters().pruned_guarded, 1u);
}

TEST(LockGraph, UnconfirmedCandidateResolvedAtFinish) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto g = h.lock("gate");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  // The parent releases the gate *before* joining each child: the
  // inherited candidate does not enclose the child's lifetime, so it is
  // no guard at all. The verdict stays pending online (pessimistic says
  // serialized, optimistic says feasible) and resolves at finish.
  h.acquire(main, g);
  const ThreadId t1 = h.thread("t1", main);
  h.release(main, g);
  h.acquire(t1, a);
  h.acquire(t1, b);
  h.release(t1, b);
  h.release(t1, a);
  h.join(main, t1);
  h.acquire(main, g);
  const ThreadId t2 = h.thread("t2", main);
  h.release(main, g);
  h.acquire(t2, b);
  h.acquire(t2, a);
  h.release(t2, a);
  h.release(t2, b);
  h.join(main, t2);
  EXPECT_EQ(tool.predicted().size(), 0u);  // pending until finish
  h.runtime().finish();

  EXPECT_EQ(tool.predicted().size(), 1u);
  EXPECT_GE(tool.counters().pending_resolved, 1u);
}

TEST(LockGraph, ExportMetrics) {
  LockGraphTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  h.acquire(t1, b);
  h.acquire(t1, a);
  h.release(t1, a);
  h.release(t1, b);
  h.runtime().finish();

  obs::MetricsRegistry m;
  tool.export_metrics(m);
  EXPECT_EQ(m.counter("lockgraph.edges").value(), 2u);
  EXPECT_EQ(m.counter("lockgraph.predicted_cycles").value(), 1u);
  EXPECT_EQ(m.counter("lockgraph.naive_inversions").value(), 1u);
  EXPECT_GE(m.counter("lockgraph.instances").value(), 2u);
}

// --- replay-to-deadlock oracle ----------------------------------------------

/// Two threads nesting a/b in opposite orders; both spawned before either
/// join so the oracle can stage them concurrently.
void inversion_program(rt::ThreadId* tid1, rt::ThreadId* tid2) {
  rt::mutex a("lock-a");
  rt::mutex b("lock-b");
  rt::thread t1(
      [&] {
        rt::lock_guard la(a);
        rt::lock_guard lb(b);
      },
      "t1");
  rt::thread t2(
      [&] {
        rt::lock_guard lb(b);
        rt::lock_guard la(a);
      },
      "t2");
  *tid1 = t1.tid();
  *tid2 = t2.tid();
  t1.join();
  t2.join();
}

TEST(ReplayOracle, ConfirmsPredictedCycle) {
  // Prediction pass: find a seed whose schedule completes (the paper's
  // setting — predictions come from non-deadlocking runs) and predicts.
  core::PredictedCycle cycle;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s <= 64 && seed == 0; ++s) {
    LockGraphTool tool;
    rt::SimConfig cfg;
    cfg.sched.seed = s;
    rt::Sim sim(cfg);
    sim.attach(tool);
    rt::ThreadId t1 = rt::kNoThread;
    rt::ThreadId t2 = rt::kNoThread;
    const rt::SimResult r =
        sim.run([&] { inversion_program(&t1, &t2); });
    if (r.completed() && tool.predicted().size() == 1) {
      cycle = tool.predicted()[0];
      seed = s;
    }
  }
  ASSERT_NE(seed, 0u) << "no completing schedule predicted the cycle";
  ASSERT_EQ(cycle.edges.size(), 2u);

  // Confirmation pass: same seed, with the driver steering the schedule.
  rt::CycleSpec spec;
  for (const core::PredictedCycle::Edge& e : cycle.edges)
    spec.edges.push_back({e.tid, e.first, e.second});
  rt::CycleReplayDriver driver(spec);
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(driver);
  rt::ThreadId t1 = rt::kNoThread;
  rt::ThreadId t2 = rt::kNoThread;
  const rt::SimResult r = sim.run([&] { inversion_program(&t1, &t2); });

  EXPECT_TRUE(r.deadlocked());
  EXPECT_TRUE(driver.released());
  EXPECT_TRUE(driver.confirmed(r.deadlock));
}

TEST(ReplayOracle, UnstagedCycleIsNotConfirmed) {
  // A spec naming a thread that never nests: staging cannot complete, the
  // run finishes normally and the oracle must not claim confirmation.
  rt::CycleSpec spec;
  spec.edges.push_back({/*tid=*/0, /*first=*/0, /*second=*/1});
  spec.edges.push_back({/*tid=*/0, /*first=*/1, /*second=*/0});
  rt::CycleReplayDriver driver(spec);
  rt::SimConfig cfg;
  cfg.sched.seed = 3;
  rt::Sim sim(cfg);
  sim.attach(driver);
  const rt::SimResult r = sim.run([&] {
    rt::mutex a("a");
    rt::lock_guard la(a);
  });
  EXPECT_TRUE(r.completed());
  EXPECT_FALSE(driver.released());
  EXPECT_FALSE(driver.confirmed(r.deadlock));
}

}  // namespace
}  // namespace rg::core
