// Scheduler semantics: determinism, strategies, blocking, virtual time,
// deadlock detection, abort paths.
#include <gtest/gtest.h>

#include <vector>

#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace rg::rt {
namespace {

TEST(Sim, RunsEntryToCompletion) {
  Sim sim;
  bool ran = false;
  const SimResult r = sim.run([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.outcome, SimOutcome::Completed);
}

TEST(Sim, MainThreadIsZero) {
  Sim sim;
  sim.run([&] { EXPECT_EQ(Sim::current_thread(), kMainThread); });
}

TEST(Sim, CurrentIsNullOutside) { EXPECT_EQ(Sim::current(), nullptr); }

TEST(Sim, CurrentIsSetInside) {
  Sim sim;
  sim.run([&] { EXPECT_EQ(Sim::current(), &sim); });
  EXPECT_EQ(Sim::current(), nullptr);
}

TEST(Sim, ThreadsGetDistinctIds) {
  Sim sim;
  sim.run([&] {
    std::vector<ThreadId> ids;
    tracked<int> dummy;
    thread a([&] { ids.push_back(Sim::current_thread()); }, "a");
    a.join();
    thread b([&] { ids.push_back(Sim::current_thread()); }, "b");
    b.join();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_NE(ids[0], ids[1]);
    EXPECT_NE(ids[0], kMainThread);
  });
}

TEST(Sim, JoinWaitsForChild) {
  Sim sim;
  sim.run([&] {
    int value = 0;
    thread child([&] {
      for (int i = 0; i < 100; ++i) yield();
      value = 42;
    });
    child.join();
    EXPECT_EQ(value, 42);
  });
}

TEST(Sim, DestructorJoins) {
  Sim sim;
  int value = 0;
  sim.run([&] {
    {
      thread child([&] { value = 7; });
      // no explicit join: the destructor must join
    }
    EXPECT_EQ(value, 7);
  });
}

TEST(Sim, DetachedThreadsDrainAtEnd) {
  Sim sim;
  int value = 0;
  const SimResult r = sim.run([&] {
    thread child([&] {
      for (int i = 0; i < 10; ++i) yield();
      value = 1;
    });
    child.detach();
  });
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(value, 1);
}

TEST(Sim, ClientExceptionIsReported) {
  Sim sim;
  const SimResult r = sim.run(
      [&] { throw std::runtime_error("boom in client"); });
  EXPECT_EQ(r.outcome, SimOutcome::ClientError);
  EXPECT_NE(r.error.find("boom"), std::string::npos);
}

TEST(Sim, WorkerExceptionIsReported) {
  Sim sim;
  const SimResult r = sim.run([&] {
    thread child([] { throw std::runtime_error("worker died"); });
    child.join();
  });
  EXPECT_EQ(r.outcome, SimOutcome::ClientError);
}

// --- determinism -----------------------------------------------------------------

std::vector<int> interleaving_trace(std::uint64_t seed) {
  SimConfig cfg;
  cfg.sched.seed = seed;
  Sim sim(cfg);
  std::vector<int> trace;
  sim.run([&] {
    tracked<int> cell;
    thread a([&] {
      for (int i = 0; i < 25; ++i) {
        cell.store(1);
        trace.push_back(1);
      }
    });
    thread b([&] {
      for (int i = 0; i < 25; ++i) {
        cell.store(2);
        trace.push_back(2);
      }
    });
    a.join();
    b.join();
  });
  return trace;
}

class SchedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedDeterminism, SameSeedSameInterleaving) {
  EXPECT_EQ(interleaving_trace(GetParam()), interleaving_trace(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedDeterminism,
                         ::testing::Values(1, 2, 3, 17, 1000));

TEST(SchedDeterminismCross, DifferentSeedsUsuallyDiffer) {
  int distinct = 0;
  const auto base = interleaving_trace(1);
  for (std::uint64_t seed = 2; seed <= 6; ++seed)
    if (interleaving_trace(seed) != base) ++distinct;
  EXPECT_GE(distinct, 3);
}

TEST(SchedStrategyTest, RoundRobinAlternates) {
  SimConfig cfg;
  cfg.sched.strategy = SchedStrategy::RoundRobin;
  cfg.sched.switch_period = 1;
  Sim sim(cfg);
  std::vector<int> trace;
  sim.run([&] {
    tracked<int> cell;
    thread a([&] {
      for (int i = 0; i < 10; ++i) {
        cell.store(1);
        trace.push_back(1);
      }
    });
    thread b([&] {
      for (int i = 0; i < 10; ++i) {
        cell.store(2);
        trace.push_back(2);
      }
    });
    a.join();
    b.join();
  });
  // With period-1 round robin the two workers strictly alternate once both
  // are running.
  int alternations = 0;
  for (std::size_t i = 1; i < trace.size(); ++i)
    if (trace[i] != trace[i - 1]) ++alternations;
  EXPECT_GE(alternations, 8);
}

TEST(SchedStrategyTest, ZeroSwitchProbabilityRunsToBlocking) {
  // With probability 0 the scheduler never preempts voluntarily; threads
  // still hand over when they block or finish, so the run completes.
  SimConfig cfg;
  cfg.sched.strategy = SchedStrategy::Random;
  cfg.sched.switch_probability = 0.0;
  Sim sim(cfg);
  std::vector<int> trace;
  sim.run([&] {
    tracked<int> cell;
    thread a([&] {
      for (int i = 0; i < 5; ++i) {
        cell.store(1);
        trace.push_back(1);
      }
    });
    thread b([&] {
      for (int i = 0; i < 5; ++i) {
        cell.store(2);
        trace.push_back(2);
      }
    });
    a.join();
    b.join();
  });
  ASSERT_EQ(trace.size(), 10u);
  // No voluntary preemption: each worker's ops are contiguous.
  int switches = 0;
  for (std::size_t i = 1; i < trace.size(); ++i)
    if (trace[i] != trace[i - 1]) ++switches;
  EXPECT_EQ(switches, 1);
}

TEST(SchedStrategyTest, CertainSwitchProbabilityStillCompletes) {
  SimConfig cfg;
  cfg.sched.strategy = SchedStrategy::Random;
  cfg.sched.switch_probability = 1.0;
  Sim sim(cfg);
  const SimResult r = sim.run([&] {
    tracked<int> cell;
    thread a([&] {
      for (int i = 0; i < 20; ++i) cell.store(1);
    });
    thread b([&] {
      for (int i = 0; i < 20; ++i) cell.store(2);
    });
    a.join();
    b.join();
  });
  EXPECT_TRUE(r.completed());
}

TEST(SchedStrategyTest, RoundRobinLongPeriodBatchesWork) {
  SimConfig cfg;
  cfg.sched.strategy = SchedStrategy::RoundRobin;
  cfg.sched.switch_period = 10;
  Sim sim(cfg);
  std::vector<int> trace;
  sim.run([&] {
    tracked<int> cell;
    thread a([&] {
      for (int i = 0; i < 20; ++i) {
        cell.store(1);
        trace.push_back(1);
      }
    });
    thread b([&] {
      for (int i = 0; i < 20; ++i) {
        cell.store(2);
        trace.push_back(2);
      }
    });
    a.join();
    b.join();
  });
  // Runs of >= 5 consecutive ops per thread exist (period amortisation).
  int longest = 1, current = 1;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    current = trace[i] == trace[i - 1] ? current + 1 : 1;
    longest = std::max(longest, current);
  }
  EXPECT_GE(longest, 5);
}

// --- virtual time --------------------------------------------------------------

TEST(VirtualTime, SleepAdvancesClock) {
  Sim sim;
  const SimResult r = sim.run([&] {
    const std::uint64_t before = Sim::current()->sched().virtual_time();
    sleep_ticks(1000);
    const std::uint64_t after = Sim::current()->sched().virtual_time();
    EXPECT_GE(after - before, 1000u);
  });
  EXPECT_GE(r.virtual_time, 1000u);
}

TEST(VirtualTime, SleepersWakeInOrder) {
  Sim sim;
  std::vector<int> order;
  sim.run([&] {
    tracked<int> cell;
    thread slow([&] {
      sleep_ticks(5000);
      order.push_back(2);
    });
    thread fast([&] {
      sleep_ticks(100);
      order.push_back(1);
    });
    fast.join();
    slow.join();
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(VirtualTime, AllAsleepJumpsForward) {
  Sim sim;
  const SimResult r = sim.run([&] { sleep_ticks(1'000'000); });
  EXPECT_TRUE(r.completed());
  EXPECT_GE(r.virtual_time, 1'000'000u);
  // Far fewer steps than ticks: the clock jumped.
  EXPECT_LT(r.steps, 10'000u);
}

// --- deadlock detection -----------------------------------------------------------

TEST(DeadlockDetection, CircularMutexWait) {
  Sim sim;
  const SimResult r = sim.run([&] {
    mutex m1("m1"), m2("m2");
    semaphore s1(0, "s1"), s2(0, "s2");
    thread a([&] {
      m1.lock();
      s1.post();
      s2.wait();
      m2.lock();  // blocks forever
      m2.unlock();
      m1.unlock();
    });
    thread b([&] {
      m2.lock();
      s2.post();
      s1.wait();
      m1.lock();  // blocks forever
      m1.unlock();
      m2.unlock();
    });
    a.join();
    b.join();
  });
  EXPECT_TRUE(r.deadlocked());
  EXPECT_GE(r.deadlock.blocked.size(), 2u);
  const std::string desc = r.deadlock.describe();
  EXPECT_NE(desc.find("m1"), std::string::npos);
  EXPECT_NE(desc.find("m2"), std::string::npos);
}

TEST(DeadlockDetection, SelfDeadlockOnCondvar) {
  Sim sim;
  const SimResult r = sim.run([&] {
    mutex m("m");
    condition_variable cv("never-signalled");
    m.lock();
    cv.wait(m);  // nobody will ever signal
    m.unlock();
  });
  EXPECT_TRUE(r.deadlocked());
}

TEST(DeadlockDetection, LeakedLockBlocksJoiner) {
  Sim sim;
  const SimResult r = sim.run([&] {
    mutex m("leaked");
    thread a([&] { m.lock(); /* exits holding the lock */ });
    a.join();
    m.lock();  // can never be acquired
    m.unlock();
  });
  EXPECT_TRUE(r.deadlocked());
}

TEST(StepLimit, RunawayLoopAborts) {
  SimConfig cfg;
  cfg.sched.max_steps = 2000;
  Sim sim(cfg);
  const SimResult r = sim.run([&] {
    tracked<int> cell;
    for (;;) cell.store(1);
  });
  EXPECT_EQ(r.outcome, SimOutcome::StepLimit);
}

TEST(Teardown, RaiiUnwindsCleanly) {
  // A deadlock must unwind lock_guards and queue users without crashing
  // or re-raising into std::terminate.
  SimConfig cfg;
  cfg.sched.max_steps = 50'000;
  Sim sim(cfg);
  const SimResult r = sim.run([&] {
    mutex m1("a"), m2("b");
    semaphore s1(0, "s1"), s2(0, "s2");
    thread t1([&] {
      lock_guard g1(m1);
      s1.post();
      s2.wait();
      lock_guard g2(m2);
    });
    thread t2([&] {
      lock_guard g2(m2);
      s2.post();
      s1.wait();
      lock_guard g1(m1);
    });
    t1.join();
    t2.join();
  });
  EXPECT_TRUE(r.deadlocked());
}

TEST(Sim, StepAndEventCountsPopulated) {
  Sim sim;
  const SimResult r = sim.run([&] {
    tracked<int> x;
    for (int i = 0; i < 10; ++i) x.store(i);
    mutex m("m");
    m.lock();
    m.unlock();
  });
  EXPECT_GE(r.access_events, 10u);
  EXPECT_GE(r.sync_events, 2u);
  EXPECT_GE(r.steps, r.access_events);
}

TEST(Sim, ManyThreads) {
  Sim sim;
  const SimResult r = sim.run([&] {
    tracked<int> cell;
    mutex m("m");
    std::vector<thread> threads;
    for (int i = 0; i < 24; ++i)
      threads.emplace_back([&] {
        for (int k = 0; k < 5; ++k) {
          lock_guard g(m);
          cell.store(cell.load() + 1);
        }
      });
    for (auto& t : threads) t.join();
    EXPECT_EQ(cell.load(), 120);
  });
  EXPECT_TRUE(r.completed());
}

}  // namespace
}  // namespace rg::rt
