// E1/E2 — the Fig. 5/6 experiment invariants, per test case.
#include <gtest/gtest.h>

#include <unordered_set>

#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"

namespace rg::sipp {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.seed = 7;
  return cfg;
}

class Fig6PerTestCase : public ::testing::TestWithParam<int> {};

TEST_P(Fig6PerTestCase, ConfigurationsAreStrictlyOrdered) {
  const Fig6Row row = run_fig6_row(GetParam(), base_config());
  // The Fig. 6 shape: Original >= HWLC >= HWLC+DR, with real reductions.
  EXPECT_GT(row.original, 0u);
  EXPECT_LE(row.hwlc, row.original);
  EXPECT_LE(row.hwlc_dr, row.hwlc);
  EXPECT_LT(row.hwlc_dr, row.original);
  // "+DR reduces the amount ... by more than a half in all cases" (vs the
  // HWLC column, Fig. 6).
  EXPECT_LE(row.hwlc_dr * 2, row.hwlc + 1);
  // Headline claim: 65%..81% of all warnings removed. Allow a modest
  // tolerance band around the paper's interval for scheduling noise.
  EXPECT_GE(row.reduction(), 0.55) << row.testcase;
  EXPECT_LE(row.reduction(), 0.90) << row.testcase;
  // Fig. 5 stacking: the destructor component dominates the hw-lock one.
  EXPECT_GE(row.destructor_fps, row.hw_lock_fps / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(AllTestCases, Fig6PerTestCase,
                         ::testing::Range(1, kTestCaseCount + 1));

TEST(Experiments, DeterministicForFixedSeed) {
  const Scenario scenario = build_testcase(2, 7);
  ExperimentConfig cfg = base_config();
  const ExperimentResult a = run_scenario(scenario, cfg);
  const ExperimentResult b = run_scenario(scenario, cfg);
  EXPECT_EQ(a.reported_locations, b.reported_locations);
  EXPECT_EQ(a.total_warnings, b.total_warnings);
  EXPECT_EQ(a.location_keys, b.location_keys);
  EXPECT_EQ(a.sim.steps, b.sim.steps);
}

TEST(Experiments, AllRunsComplete) {
  for (int n = 1; n <= kTestCaseCount; ++n) {
    const Scenario scenario = build_testcase(n, 3);
    ExperimentConfig cfg = base_config();
    cfg.seed = 3;
    const ExperimentResult r = run_scenario(scenario, cfg);
    EXPECT_TRUE(r.sim.completed()) << scenario.name;
    EXPECT_GT(r.responses, 0u) << scenario.name;
  }
}

TEST(Experiments, LocationKeysNest) {
  // Warnings removed by an improvement never reappear: the HWLC+DR key
  // set is a subset of HWLC's, which is a subset of Original's... modulo
  // schedule variation, the subset property holds for the same seed.
  const Scenario scenario = build_testcase(4, 11);
  ExperimentConfig cfg = base_config();
  cfg.seed = 11;
  cfg.detector = core::HelgrindConfig::original();
  const auto original = run_scenario(scenario, cfg);
  cfg.detector = core::HelgrindConfig::hwlc();
  const auto hwlc = run_scenario(scenario, cfg);
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  const auto dr = run_scenario(scenario, cfg);
  const std::unordered_set<std::string> orig_keys(
      original.location_keys.begin(), original.location_keys.end());
  const std::unordered_set<std::string> hwlc_keys(hwlc.location_keys.begin(),
                                                  hwlc.location_keys.end());
  std::size_t hwlc_in_orig = 0;
  for (const auto& k : hwlc.location_keys)
    if (orig_keys.contains(k)) ++hwlc_in_orig;
  std::size_t dr_in_hwlc = 0;
  for (const auto& k : dr.location_keys)
    if (hwlc_keys.contains(k)) ++dr_in_hwlc;
  // Same seed, same schedule: near-perfect nesting.
  EXPECT_GE(hwlc_in_orig + 1, hwlc.location_keys.size());
  EXPECT_GE(dr_in_hwlc + 1, dr.location_keys.size());
}

TEST(Experiments, SuppressionsReduceCounts) {
  const Scenario scenario = build_testcase(2, 7);
  ExperimentConfig cfg = base_config();
  const auto unsuppressed = run_scenario(scenario, cfg);
  ASSERT_GT(unsuppressed.reported_locations, 0u);
  // Suppress everything coming through the dispatcher worker.
  cfg.suppressions =
      "{\n  suppress-all-races\n  Helgrind:Race\n  fun:*\n}\n";
  const auto suppressed = run_scenario(scenario, cfg);
  EXPECT_EQ(suppressed.reported_locations, 0u);
  EXPECT_GT(suppressed.suppressed_warnings, 0u);
}

TEST(Experiments, DeadlockToolRunsAlongside) {
  const Scenario scenario = build_testcase(2, 7);
  ExperimentConfig cfg = base_config();
  cfg.deadlock_tool = true;
  const auto r = run_scenario(scenario, cfg);
  EXPECT_TRUE(r.sim.completed());
  // The proxy uses a consistent lock order: no inversions.
  EXPECT_EQ(r.lock_order_reports, 0u);
}

TEST(Experiments, ScenarioSizesAreReasonable) {
  for (int n = 1; n <= kTestCaseCount; ++n) {
    const Scenario s = build_testcase(n, 1);
    EXPECT_EQ(s.name, "T" + std::to_string(n));
    EXPECT_GE(s.total_messages(), 10u) << s.name;
    EXPECT_LE(s.total_messages(), 300u) << s.name;
    EXPECT_NE(testcase_description(n), std::string("?"));
  }
}

TEST(Experiments, IntensityScalesMessageCount) {
  const Scenario small = build_testcase(5, 1, 1);
  const Scenario big = build_testcase(5, 1, 3);
  EXPECT_GT(big.total_messages(), small.total_messages());
}

TEST(Experiments, ThreadPoolModeAlsoCompletes) {
  const Scenario scenario = build_testcase(2, 7);
  ExperimentConfig cfg = base_config();
  cfg.mode = DispatchMode::ThreadPool;
  const auto r = run_scenario(scenario, cfg);
  EXPECT_TRUE(r.sim.completed());
  EXPECT_GT(r.responses, 0u);
}

}  // namespace
}  // namespace rg::sipp
