// The upstream resilience layer: circuit-breaker state machine, failover
// determinism, deadline budgets, graceful degradation (degraded serves and
// 503 + Retry-After shedding), Max-Forwards enforcement, and the client's
// Retry-After handling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/helgrind.hpp"
#include "rt/chaos.hpp"
#include "rt/sim.hpp"
#include "sip/faults.hpp"
#include "sip/proxy.hpp"
#include "sip/upstream.hpp"
#include "sipp/client.hpp"
#include "sipp/experiment.hpp"
#include "sipp/scenario.hpp"
#include "sipp/soak.hpp"
#include "sipp/testcases.hpp"

namespace rg {
namespace {

using sip::BreakerConfig;
using sip::BreakerState;
using sip::BreakerTransition;
using sip::CircuitBreaker;
using sip::FaultConfig;
using sip::ForwardOutcome;
using sip::ForwardResult;
using sip::Proxy;
using sip::ProxyConfig;
using sip::ProxyStats;
using sip::UpstreamConfig;
using sip::UpstreamPool;
using sipp::ChaosClient;
using sipp::ChaosRunResult;
using sipp::ExperimentConfig;
using sipp::ExperimentResult;
using sipp::MessageFactory;
using sipp::Scenario;

// --- circuit breaker state machine -----------------------------------------

BreakerConfig small_breaker() {
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_cooldown_ticks = 100;
  cfg.max_cooldown_ticks = 400;
  return cfg;
}

TEST(Breaker, OpensAfterConsecutiveFailureThreshold) {
  CircuitBreaker breaker(small_breaker());
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.admit(0), CircuitBreaker::Admit::Allow);
  breaker.on_failure(1);
  breaker.on_failure(2);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  // A success resets the consecutive-failure streak...
  breaker.on_success(3);
  breaker.on_failure(4);
  breaker.on_failure(5);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  // ...so only the third *consecutive* failure trips it.
  breaker.on_failure(6);
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.cooldown(), 100u);
  EXPECT_EQ(breaker.open_until(), 106u);
  EXPECT_EQ(breaker.admit(7), CircuitBreaker::Admit::Reject);
}

TEST(Breaker, CooldownExpiryAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.on_failure(10);
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.admit(109), CircuitBreaker::Admit::Reject);
  // Cooldown over: the first caller carries the single probe, every other
  // caller keeps being rejected until the probe settles.
  EXPECT_EQ(breaker.admit(110), CircuitBreaker::Admit::Probe);
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_EQ(breaker.admit(111), CircuitBreaker::Admit::Reject);
}

TEST(Breaker, ProbeSuccessClosesAndResetsTheStreak) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.on_failure(0);
  ASSERT_EQ(breaker.admit(100), CircuitBreaker::Admit::Probe);
  breaker.on_success(101);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.reopen_streak(), 0u);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  // The next open starts again from the base cooldown.
  for (int i = 0; i < 3; ++i) breaker.on_failure(200);
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.cooldown(), 100u);
}

TEST(Breaker, ProbeFailureReopensWithDoubledCappedCooldown) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.on_failure(0);
  EXPECT_EQ(breaker.cooldown(), 100u);

  std::uint64_t now = 0;
  const std::uint64_t expected[] = {200, 400, 400, 400};  // capped at 400
  for (std::uint64_t cooldown : expected) {
    now = breaker.open_until();
    ASSERT_EQ(breaker.admit(now), CircuitBreaker::Admit::Probe);
    breaker.on_failure(now);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.cooldown(), cooldown);
  }
}

struct TransitionLog {
  std::vector<std::pair<BreakerState, BreakerState>> edges;
  static void on(void* ctx, BreakerState from, BreakerState to,
                 std::uint64_t /*now*/, std::uint64_t /*cooldown*/) {
    static_cast<TransitionLog*>(ctx)->edges.emplace_back(from, to);
  }
};

TEST(Breaker, ListenerSeesEveryLegalEdge) {
  TransitionLog log;
  CircuitBreaker breaker(small_breaker());
  breaker.set_listener(&TransitionLog::on, &log);
  for (int i = 0; i < 3; ++i) breaker.on_failure(0);    // Closed -> Open
  (void)breaker.admit(100);                             // Open -> HalfOpen
  breaker.on_failure(100);                              // HalfOpen -> Open
  (void)breaker.admit(300);                             // Open -> HalfOpen
  breaker.on_success(300);                              // HalfOpen -> Closed
  ASSERT_EQ(log.edges.size(), 5u);
  using P = std::pair<BreakerState, BreakerState>;
  EXPECT_EQ(log.edges[0], P(BreakerState::Closed, BreakerState::Open));
  EXPECT_EQ(log.edges[1], P(BreakerState::Open, BreakerState::HalfOpen));
  EXPECT_EQ(log.edges[2], P(BreakerState::HalfOpen, BreakerState::Open));
  EXPECT_EQ(log.edges[3], P(BreakerState::Open, BreakerState::HalfOpen));
  EXPECT_EQ(log.edges[4], P(BreakerState::HalfOpen, BreakerState::Closed));
}

// --- transition-log validation ---------------------------------------------

TEST(TransitionLogValidation, RejectsIllegalEdgesAndTimeTravel) {
  std::string error;
  std::vector<BreakerTransition> log;
  EXPECT_TRUE(sip::validate_transitions(log, &error));

  // Legal single cycle.
  log.push_back({10, 0, BreakerState::Closed, BreakerState::Open, 100});
  log.push_back({110, 0, BreakerState::Open, BreakerState::HalfOpen, 0});
  log.push_back({111, 0, BreakerState::HalfOpen, BreakerState::Closed, 0});
  EXPECT_TRUE(sip::validate_transitions(log, &error)) << error;

  // Illegal edge: a breaker cannot jump Closed -> HalfOpen.
  auto bad = log;
  bad.push_back({200, 0, BreakerState::Closed, BreakerState::HalfOpen, 0});
  EXPECT_FALSE(sip::validate_transitions(bad, &error));

  // Virtual time running backwards.
  bad = log;
  bad.push_back({5, 1, BreakerState::Closed, BreakerState::Open, 100});
  EXPECT_FALSE(sip::validate_transitions(bad, &error));

  // Reopen cooldown shrinking within a streak.
  bad = log;
  bad.push_back({200, 1, BreakerState::Closed, BreakerState::Open, 100});
  bad.push_back({300, 1, BreakerState::Open, BreakerState::HalfOpen, 0});
  bad.push_back({300, 1, BreakerState::HalfOpen, BreakerState::Open, 50});
  EXPECT_FALSE(sip::validate_transitions(bad, &error));
}

// --- request identity --------------------------------------------------------

TEST(RequestKey, StableAndBranchSensitive) {
  EXPECT_EQ(sip::request_key("z9hG4bK-abc"), sip::request_key("z9hG4bK-abc"));
  EXPECT_NE(sip::request_key("z9hG4bK-abc"), sip::request_key("z9hG4bK-abd"));
  EXPECT_NE(sip::request_key(""), sip::request_key("x"));
}

// --- pool forwarding ---------------------------------------------------------

UpstreamConfig small_pool(std::size_t targets = 3) {
  UpstreamConfig cfg;
  cfg.targets = targets;
  cfg.seed = 7;
  cfg.per_try_timeout_ticks = 20;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown_ticks = 50;
  cfg.breaker.max_cooldown_ticks = 200;
  return cfg;
}

TEST(UpstreamPoolTest, HealthyPoolForwardsFirstTry) {
  rt::Sim sim;
  sim.run([&] {
    ProxyStats stats(/*unprotected=*/false);
    UpstreamPool pool(small_pool(), &stats);
    pool.start();
    const ForwardResult fwd = pool.forward(sip::request_key("b1"));
    EXPECT_EQ(fwd.outcome, ForwardOutcome::Forwarded);
    EXPECT_EQ(fwd.status, 200);
    EXPECT_EQ(fwd.attempts, 1u);
    EXPECT_FALSE(fwd.failover);
    EXPECT_EQ(stats.upstream_forwards(), 1u);
    EXPECT_EQ(stats.upstream_retries(), 0u);
    EXPECT_TRUE(pool.transitions().empty());
    pool.shutdown();
  });
}

TEST(UpstreamPoolTest, DisabledPoolIsAPassThrough) {
  ProxyStats stats(false);
  UpstreamPool pool(UpstreamConfig{}, &stats);
  pool.start();
  EXPECT_FALSE(pool.enabled());
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.forward(1).outcome, ForwardOutcome::Disabled);
  pool.shutdown();
}

TEST(UpstreamPoolTest, ForceOpenAllRejectsWithRetryAfterHint) {
  rt::Sim sim;
  sim.run([&] {
    ProxyStats stats(false);
    UpstreamPool pool(small_pool(), &stats);
    pool.start();
    pool.force_open_all(0);
    for (std::size_t i = 0; i < pool.size(); ++i)
      EXPECT_EQ(pool.target(i)->breaker_state(), BreakerState::Open);
    const ForwardResult fwd = pool.forward(sip::request_key("b2"));
    EXPECT_EQ(fwd.outcome, ForwardOutcome::AllOpen);
    EXPECT_GE(fwd.retry_after_s, 1u);
    EXPECT_EQ(stats.upstream_forwards(), 0u);
    EXPECT_GT(stats.breaker_opens(), 0u);
    std::string error;
    EXPECT_TRUE(sip::validate_transitions(pool.transitions(), &error))
        << error;
    pool.shutdown();
  });
}

TEST(UpstreamPoolTest, PersistentFaultsTripBreakersThenRecoveryCloses) {
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 5;
  rt::Sim sim(sim_cfg);
  sim.run([&] {
    ProxyStats stats(false);
    UpstreamConfig cfg = small_pool();
    cfg.request_budget_ticks = 200;
    UpstreamPool pool(cfg, &stats);
    pool.start();

    rt::ChaosConfig chaos_cfg;
    chaos_cfg.seed = 5;
    chaos_cfg.upstream_error_permille = 1000;  // every attempt answers 500
    rt::ChaosEngine chaos(chaos_cfg);
    pool.set_chaos(&chaos);

    for (std::uint64_t r = 0; r < 12; ++r) {
      const ForwardResult fwd = pool.forward(1000 + r);
      EXPECT_NE(fwd.outcome, ForwardOutcome::Forwarded);
    }
    EXPECT_GT(stats.breaker_opens(), 0u);
    EXPECT_GT(stats.upstream_retries(), 0u);
    EXPECT_GT(chaos.upstream_faults(), 0u);

    // Weather clears: cooldowns expire, probes succeed, the pool heals.
    pool.set_chaos(nullptr);
    rt::sleep_ticks(500);
    ForwardResult fwd{};
    for (std::uint64_t r = 0; r < 8; ++r) {
      fwd = pool.forward(2000 + r);
      if (fwd.outcome == ForwardOutcome::Forwarded) break;
      rt::sleep_ticks(100);
    }
    EXPECT_EQ(fwd.outcome, ForwardOutcome::Forwarded);
    std::string error;
    EXPECT_TRUE(sip::validate_transitions(pool.transitions(), &error))
        << error;
    pool.shutdown();
  });
}

TEST(UpstreamPoolTest, SameSeedsReplayIdenticalBreakerHistory) {
  auto run_once = [] {
    rt::SimConfig sim_cfg;
    sim_cfg.sched.seed = 9;
    rt::Sim sim(sim_cfg);
    std::string transitions, trace;
    std::uint64_t forwards = 0;
    sim.run([&] {
      ProxyStats stats(false);
      UpstreamConfig cfg = small_pool();
      cfg.request_budget_ticks = 150;
      UpstreamPool pool(cfg, &stats);
      pool.start();
      rt::ChaosConfig chaos_cfg;
      chaos_cfg.seed = 9;
      chaos_cfg.upstream_drop_permille = 300;
      chaos_cfg.upstream_error_permille = 200;
      rt::ChaosEngine chaos(chaos_cfg);
      pool.set_chaos(&chaos);
      for (std::uint64_t r = 0; r < 24; ++r) (void)pool.forward(r * 17 + 3);
      forwards = stats.upstream_forwards();
      transitions = pool.transitions_text();
      trace = chaos.trace_text();
      pool.shutdown();
    });
    return std::tuple(transitions, trace, forwards);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(std::get<1>(a).empty());
  EXPECT_EQ(a, b);
}

// --- proxy integration -------------------------------------------------------

ProxyConfig resilient_proxy(std::size_t targets = 2) {
  ProxyConfig cfg;
  cfg.faults = FaultConfig::none();
  cfg.upstream = small_pool(targets);
  // Outage tests force the breakers open and need them to *stay* open
  // while virtual time advances through the request path.
  cfg.upstream.breaker.open_cooldown_ticks = 100000;
  cfg.upstream.breaker.max_cooldown_ticks = 100000;
  return cfg;
}

TEST(ProxyResilience, OptionsShedsWith503AndRetryAfterWhenAllOpen) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(resilient_proxy());
    proxy.start();
    proxy.upstreams().force_open_all(proxy.now());
    MessageFactory mf;
    const std::string out = proxy.handle_wire(mf.options("alice", "ro1", 1));
    EXPECT_EQ(out.compare(0, 12, "SIP/2.0 503 "), 0) << out;
    EXPECT_NE(out.find("\r\nRetry-After: "), std::string::npos) << out;
    EXPECT_EQ(proxy.stats().upstream_sheds(), 1u);
    proxy.shutdown();
  });
}

TEST(ProxyResilience, InviteDegradesToRegistrarServeWhenAllOpen) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(resilient_proxy());
    proxy.start();
    MessageFactory mf;
    (void)proxy.handle_wire(mf.register_request("bob", "rr1", 1));
    proxy.upstreams().force_open_all(proxy.now());
    const std::string out =
        proxy.handle_wire(mf.invite("alice", "bob", "rd1", 1));
    // Upstream is gone, but the registrar knows bob: the call is answered
    // from local data and marked degraded rather than shed.
    EXPECT_EQ(out.compare(0, 12, "SIP/2.0 200 "), 0) << out;
    EXPECT_NE(out.find("degraded"), std::string::npos) << out;
    EXPECT_EQ(proxy.stats().degraded_serves(), 1u);
    EXPECT_EQ(proxy.stats().upstream_sheds(), 0u);
    proxy.shutdown();
  });
}

TEST(ProxyResilience, HealthyUpstreamCountsForwardsNotDegrades) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(resilient_proxy());
    proxy.start();
    MessageFactory mf;
    (void)proxy.handle_wire(mf.register_request("bob", "rh1", 1));
    const std::string out =
        proxy.handle_wire(mf.invite("alice", "bob", "rh2", 1));
    EXPECT_EQ(out.compare(0, 12, "SIP/2.0 200 "), 0) << out;
    EXPECT_EQ(out.find("degraded"), std::string::npos) << out;
    EXPECT_GT(proxy.stats().upstream_forwards(), 0u);
    EXPECT_EQ(proxy.stats().degraded_serves(), 0u);
    proxy.shutdown();
  });
}

// --- Max-Forwards enforcement (satellite) -----------------------------------

TEST(MaxForwards, ZeroHopBudgetEarns483) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    (void)proxy.handle_wire(mf.register_request("bob", "mf0", 1));
    std::string wire = mf.invite("alice", "bob", "mf1", 1);
    const std::size_t at = wire.find("Max-Forwards: 70");
    ASSERT_NE(at, std::string::npos);
    wire.replace(at, std::string("Max-Forwards: 70").size(),
                 "Max-Forwards: 0");
    const std::string out = proxy.handle_wire(wire);
    EXPECT_EQ(out.compare(0, 12, "SIP/2.0 483 "), 0) << out;
    EXPECT_EQ(proxy.stats().too_many_hops(), 1u);
    // The registered callee was never consulted: the hop budget is checked
    // before the registrar lookup.
    const std::string ok = proxy.handle_wire(mf.invite("alice", "bob",
                                                       "mf2", 1));
    EXPECT_EQ(ok.compare(0, 12, "SIP/2.0 200 "), 0) << ok;
    EXPECT_EQ(proxy.stats().too_many_hops(), 1u);
    proxy.shutdown();
  });
}

// --- client Retry-After handling (satellite) --------------------------------

TEST(RetryAfterHint, HintedRetrySucceedsAfterBreakerRecovery) {
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 31;
  rt::Sim sim(sim_cfg);
  ChaosRunResult result;
  rt::ChaosEngine chaos(rt::ChaosConfig::none(31));
  sim.run([&] {
    ProxyConfig cfg = resilient_proxy();
    // Medium cooldown: long enough that the first sends still meet open
    // breakers, short enough that the advertised Retry-After lands well
    // inside the client's timer-B budget — a hinted retry meets the probe
    // window and heals the pool.
    cfg.upstream.breaker.open_cooldown_ticks = 400;
    cfg.upstream.breaker.max_cooldown_ticks = 400;
    Proxy proxy(cfg);
    proxy.start();
    proxy.upstreams().force_open_all(proxy.now());
    MessageFactory mf;
    std::vector<std::string> wires;
    for (int i = 0; i < 4; ++i)
      wires.push_back(mf.options("u" + std::to_string(i),
                                 "ra" + std::to_string(i), 1));
    ChaosClient client(chaos, proxy, {}, 2);
    result = client.run_phase(wires);
    proxy.shutdown();
  });
  EXPECT_TRUE(result.converged());
  // Every first send met open breakers and was shed with a hint; honoring
  // it outlived the cooldown, the probe healed the pool, and the retries
  // came back 200 — no terminal sheds, no give-ups.
  EXPECT_GT(result.hinted_retries, 0u);
  EXPECT_EQ(result.finals, result.calls.size());
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.give_ups, 0u);
}

TEST(RetryAfterHint, DisabledHintKeeps503Terminal) {
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 31;
  rt::Sim sim(sim_cfg);
  ChaosRunResult result;
  rt::ChaosEngine chaos(rt::ChaosConfig::none(31));
  sim.run([&] {
    Proxy proxy(resilient_proxy());
    proxy.start();
    proxy.upstreams().force_open_all(proxy.now());
    MessageFactory mf;
    std::vector<std::string> wires = {mf.options("alice", "nr1", 1)};
    sipp::RetransmitTimers timers;
    timers.honor_retry_after = false;
    ChaosClient client(chaos, proxy, timers, 1);
    result = client.run_phase(wires);
    proxy.shutdown();
  });
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.shed, 1u);
  EXPECT_EQ(result.hinted_retries, 0u);
}

// --- end-to-end failover determinism ----------------------------------------

TEST(ResilienceDeterminism, SameSeedReplaysTraceBreakersAndOutcomes) {
  const sipp::SoakMix mix = sipp::default_soak_mixes()[1];  // upstream-heavy
  const Scenario scenario = sipp::build_testcase(3, 13);
  const ExperimentConfig cfg = sipp::soak_experiment(13, mix);
  const ExperimentResult a = sipp::run_scenario(scenario, cfg);
  const ExperimentResult b = sipp::run_scenario(scenario, cfg);
  EXPECT_FALSE(a.injection_trace.empty());
  EXPECT_EQ(a.injection_trace, b.injection_trace);
  EXPECT_EQ(a.breaker_transitions, b.breaker_transitions);
  EXPECT_EQ(sipp::outcome_counts_text(a.chaos),
            sipp::outcome_counts_text(b.chaos));
  EXPECT_EQ(a.upstream_forwards, b.upstream_forwards);
  EXPECT_EQ(a.upstream_failovers, b.upstream_failovers);
  EXPECT_TRUE(a.transitions_monotone) << a.transitions_error;
}

TEST(ResilienceDeterminism, DifferentSeedDivergesSomewhere) {
  const sipp::SoakMix mix = sipp::default_soak_mixes()[1];
  const Scenario scenario = sipp::build_testcase(3, 13);
  const ExperimentResult a =
      sipp::run_scenario(scenario, sipp::soak_experiment(13, mix));
  const ExperimentResult b =
      sipp::run_scenario(scenario, sipp::soak_experiment(14, mix));
  EXPECT_NE(a.injection_trace, b.injection_trace);
}

}  // namespace
}  // namespace rg
