// The robustness tier: deterministic fault injection, UA retransmission,
// proxy overload shedding, and detector warning-storm hardening.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/helgrind.hpp"
#include "rt/chaos.hpp"
#include "rt/sim.hpp"
#include "sip/faults.hpp"
#include "sip/proxy.hpp"
#include "sipp/client.hpp"
#include "sipp/experiment.hpp"
#include "sipp/scenario.hpp"
#include "sipp/testcases.hpp"
#include "support/prng.hpp"

namespace rg {
namespace {

using sip::FaultConfig;
using sip::Proxy;
using sip::ProxyConfig;
using sipp::CallOutcome;
using sipp::ChaosClient;
using sipp::ChaosRunResult;
using sipp::ExperimentConfig;
using sipp::ExperimentResult;
using sipp::MessageFactory;
using sipp::Scenario;

// --- FaultConfig flag hygiene (satellite) ----------------------------------

TEST(FaultCatalogue, NoneZeroesEveryFlag) {
  const FaultConfig none = FaultConfig::none();
  for (bool FaultConfig::*flag : FaultConfig::all_flags())
    EXPECT_FALSE(none.*flag);
  EXPECT_FALSE(none.any());
}

TEST(FaultCatalogue, PaperEnablesTruePositiveClasses) {
  const FaultConfig paper = FaultConfig::paper();
  EXPECT_TRUE(paper.any());
  EXPECT_TRUE(paper.unprotected_domain_map);
  // all_flags() covers the whole struct (enforced statically too).
  EXPECT_EQ(FaultConfig::all_flags().size(), sizeof(FaultConfig));
}

// --- ChaosEngine determinism -----------------------------------------------

TEST(ChaosEngine, PlanIsPureAndOrderIndependent) {
  rt::ChaosEngine a(rt::ChaosConfig::heavy(42));
  rt::ChaosEngine b(rt::ChaosConfig::heavy(42));
  // Query b in reverse order: decisions must still match a's.
  std::vector<rt::FaultDecision> fwd, rev;
  for (std::uint64_t m = 0; m < 64; ++m) fwd.push_back(a.plan(m, m % 4));
  for (std::uint64_t m = 64; m-- > 0;)
    rev.insert(rev.begin(), b.plan(m, m % 4));
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    EXPECT_EQ(fwd[i].drop, rev[i].drop);
    EXPECT_EQ(fwd[i].duplicate, rev[i].duplicate);
    EXPECT_EQ(fwd[i].delay_ticks, rev[i].delay_ticks);
  }
}

TEST(ChaosEngine, SeedChangesThePlan) {
  rt::ChaosEngine a(rt::ChaosConfig::heavy(1));
  rt::ChaosEngine b(rt::ChaosConfig::heavy(2));
  int differs = 0;
  for (std::uint64_t m = 0; m < 256; ++m) {
    const auto da = a.plan(m, 0);
    const auto db = b.plan(m, 0);
    if (da.drop != db.drop || da.duplicate != db.duplicate ||
        da.delay_ticks != db.delay_ticks)
      ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(ChaosEngine, NoneIsTransparent) {
  rt::ChaosEngine engine(rt::ChaosConfig::none(7));
  for (std::uint64_t m = 0; m < 128; ++m)
    EXPECT_TRUE(engine.apply(m, 0).clean());
  engine.stall_point(1);
  const auto order = engine.delivery_order(1, 16);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(engine.trace().empty());
  EXPECT_TRUE(engine.trace_text().empty());
}

TEST(ChaosEngine, TraceRecordsInjections) {
  rt::ChaosConfig cfg;
  cfg.seed = 3;
  cfg.drop_permille = 1000;  // always drop
  rt::ChaosEngine engine(cfg);
  (void)engine.apply(11, 0);
  (void)engine.apply(12, 1);
  EXPECT_EQ(engine.dropped(), 2u);
  ASSERT_EQ(engine.trace().size(), 2u);
  EXPECT_EQ(engine.trace()[0].target, 11u);
  EXPECT_EQ(engine.trace()[1].attempt, 1u);
  EXPECT_NE(engine.trace_text().find("drop target=11"), std::string::npos);
}

// --- end-to-end determinism: same seeds => identical run -------------------

ExperimentConfig chaos_experiment(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.faults = FaultConfig::none();
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  cfg.chaos = rt::ChaosConfig::heavy(seed);
  cfg.parallelism = 4;
  return cfg;
}

TEST(ChaosDeterminism, SameSeedReplaysBitIdentically) {
  const Scenario scenario = sipp::build_testcase(3, 5);
  const ExperimentConfig cfg = chaos_experiment(5);
  const ExperimentResult a = sipp::run_scenario(scenario, cfg);
  const ExperimentResult b = sipp::run_scenario(scenario, cfg);
  EXPECT_FALSE(a.injection_trace.empty());
  EXPECT_EQ(a.injection_trace, b.injection_trace);
  EXPECT_EQ(a.location_keys, b.location_keys);
  EXPECT_EQ(a.chaos.finals, b.chaos.finals);
  EXPECT_EQ(a.chaos.give_ups, b.chaos.give_ups);
  EXPECT_EQ(a.chaos.retransmissions, b.chaos.retransmissions);
}

TEST(ChaosDeterminism, DifferentChaosSeedDiverges) {
  const Scenario scenario = sipp::build_testcase(3, 5);
  ExperimentConfig cfg_a = chaos_experiment(5);
  ExperimentConfig cfg_b = cfg_a;
  cfg_b.chaos.seed = 99;
  const ExperimentResult a = sipp::run_scenario(scenario, cfg_a);
  const ExperimentResult b = sipp::run_scenario(scenario, cfg_b);
  EXPECT_NE(a.injection_trace, b.injection_trace);
}

// --- convergence -----------------------------------------------------------

TEST(ChaosConvergence, CleanProxyConvergesUnderHeavyChaosWithZeroWarnings) {
  const Scenario scenario = sipp::build_testcase(5, 7);
  const ExperimentConfig cfg = chaos_experiment(7);
  const ExperimentResult r = sipp::run_scenario(scenario, cfg);
  EXPECT_TRUE(r.sim.completed()) << r.sim.error;
  EXPECT_TRUE(r.chaos.converged());
  EXPECT_EQ(r.chaos.calls.size(), scenario.total_messages());
  // Chaos did something...
  EXPECT_GT(r.chaos.retransmissions, 0u);
  // ...yet the fixed proxy stays warning-free under HWLC+DR.
  EXPECT_EQ(r.reported_locations, 0u) << r.report_text;
}

TEST(ChaosConvergence, PassThroughChaosClientMatchesPerfectNetwork) {
  const Scenario scenario = sipp::build_testcase(2, 3);
  ExperimentConfig cfg;
  cfg.seed = 3;
  cfg.faults = FaultConfig::none();
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  cfg.chaos = rt::ChaosConfig::none(3);
  cfg.chaos_client = true;  // UA driver, but no injected faults
  const ExperimentResult r = sipp::run_scenario(scenario, cfg);
  EXPECT_TRUE(r.chaos.converged());
  EXPECT_EQ(r.chaos.retransmissions, 0u);
  EXPECT_EQ(r.chaos.give_ups, 0u);
  EXPECT_TRUE(r.injection_trace.empty());
  EXPECT_EQ(r.reported_locations, 0u) << r.report_text;
}

TEST(ChaosConvergence, TotalLossEndsInTimerBGiveUps) {
  // A network that eats everything: every call must end in a logged
  // timer-B/F give-up — convergence without a single response.
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 11;
  rt::Sim sim(sim_cfg);
  ChaosRunResult result;
  rt::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 11;
  chaos_cfg.drop_permille = 1000;
  rt::ChaosEngine chaos(chaos_cfg);
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    std::vector<std::string> wires;
    for (int i = 0; i < 6; ++i)
      wires.push_back(
          mf.invite("a" + std::to_string(i), "b", "c" + std::to_string(i), 1));
    sipp::RetransmitTimers timers;
    timers.t1 = 10;
    timers.t2 = 40;
    ChaosClient client(chaos, proxy, timers, 3);
    result = client.run_phase(wires);
    proxy.shutdown();
  });
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.give_ups, result.calls.size());
  EXPECT_EQ(result.deliveries, 0u);
  EXPECT_GT(result.retransmissions, 0u);
  for (const sipp::CallRecord& rec : result.calls)
    EXPECT_EQ(rec.outcome, CallOutcome::GaveUp);
}

// --- overload control ------------------------------------------------------

TEST(Overload, ShedsAboveWatermarkAndStaysUnderIt) {
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 17;
  rt::Sim sim(sim_cfg);
  ChaosRunResult result;
  std::uint64_t sheds = 0, peak = 0, tx_size_after = 0;
  rt::ChaosEngine chaos(rt::ChaosConfig::none(17));
  const std::size_t kWatermark = 4;
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    cfg.overload.tx_watermark = kWatermark;
    cfg.reap_every = 0;  // no in-line reaping: pressure stays visible
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    // INVITE flood without ACKs: transactions park in Completed and hold
    // table slots, exactly the unbounded-growth overload case.
    std::vector<std::string> wires;
    for (int i = 0; i < 32; ++i)
      wires.push_back(mf.invite("caller" + std::to_string(i), "nobody",
                                "oc" + std::to_string(i), 1));
    ChaosClient client(chaos, proxy, {}, 8);
    result = client.run_phase(wires);
    sheds = proxy.stats().sheds();
    peak = proxy.stats().transaction_peak();
    tx_size_after = proxy.transactions().size();
    proxy.shutdown();
  });
  EXPECT_TRUE(result.converged());
  EXPECT_GT(result.shed, 0u);
  EXPECT_GT(sheds, 0u);
  // Each terminal client-side shed saw at least one proxy-side 503; with
  // Retry-After honored, hinted retries can be shed again, so the proxy
  // counter is an upper bound rather than an equality.
  EXPECT_GE(sheds, result.shed);
  EXPECT_GT(result.hinted_retries, 0u);
  EXPECT_LE(peak, kWatermark);
  EXPECT_LE(tx_size_after, kWatermark);
  EXPECT_EQ(result.finals + result.shed, result.calls.size());
}

TEST(Overload, InflightWatermarkLimitsConcurrentWork) {
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 23;
  rt::Sim sim(sim_cfg);
  std::uint64_t sheds = 0;
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    cfg.overload.inflight_watermark = 1;
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    std::vector<rt::thread> workers;
    for (int i = 0; i < 8; ++i)
      workers.emplace_back([&proxy, &mf, i] {
        (void)proxy.handle_wire(mf.invite("w" + std::to_string(i), "nobody",
                                          "ic" + std::to_string(i), 1));
      });
    for (auto& w : workers) w.join();
    sheds = proxy.stats().sheds();
    proxy.shutdown();
  });
  // With the deterministic scheduler interleaving 8 workers, at least one
  // request observed another in flight and was shed.
  EXPECT_GT(sheds, 0u);
}

TEST(Overload, ZeroWatermarksDisableShedding) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    for (int i = 0; i < 20; ++i)
      (void)proxy.handle_wire(mf.invite("a" + std::to_string(i), "nobody",
                                        "zc" + std::to_string(i), 1));
    EXPECT_EQ(proxy.stats().sheds(), 0u);
    EXPECT_EQ(proxy.stats().responses_5xx(), 0u);
    proxy.shutdown();
  });
}

// --- detector warning-storm hardening --------------------------------------

TEST(WarningStorm, ReportCapBoundsStoredLocations) {
  const Scenario scenario = sipp::build_testcase(5, 3);
  ExperimentConfig base;
  base.seed = 3;
  base.faults = FaultConfig::paper();
  base.detector = core::HelgrindConfig::original();
  const ExperimentResult uncapped = sipp::run_scenario(scenario, base);
  ASSERT_GT(uncapped.reported_locations, 2u);

  ExperimentConfig capped = base;
  capped.report_cap = 2;
  const ExperimentResult r = sipp::run_scenario(scenario, capped);
  EXPECT_EQ(r.reported_locations, 2u);
  EXPECT_GT(r.report_overflow, 0u);
  // overflow_ counts every suppressed *warning*; each of the locations the
  // cap dropped produced at least one, so it bounds the distinct count.
  EXPECT_GE(r.report_overflow + 2u, uncapped.reported_locations);
  EXPECT_NE(r.report_text.find("further reports suppressed"),
            std::string::npos);
  // The stored prefix matches the uncapped run's first locations.
  ASSERT_GE(uncapped.location_keys.size(), 2u);
  EXPECT_EQ(r.location_keys[0], uncapped.location_keys[0]);
  EXPECT_EQ(r.location_keys[1], uncapped.location_keys[1]);
}

// --- proxy wire-input robustness (satellite) -------------------------------

TEST(FuzzSmoke, MalformedAndTruncatedWireNeverCrashesHandleWire) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg;
    cfg.faults = FaultConfig::none();
    Proxy proxy(cfg);
    proxy.start();
    MessageFactory mf;
    support::Xoshiro256 rng(0xF022);  // fixed seed: reproducible corpus
    std::vector<std::string> seeds = {
        mf.register_request("alice", "f1", 1),
        mf.invite("alice", "bob", "f2", 1),
        mf.ack("alice", "bob", "f2", 1),
        mf.bye("alice", "bob", "f2", 2),
        mf.options("alice", "f3", 1),
        mf.garbage(0),
        mf.garbage(1),
    };
    std::size_t checked = 0;
    for (const std::string& seed_wire : seeds) {
      for (int round = 0; round < 60; ++round) {
        std::string mutated = seed_wire;
        switch (rng.below(4)) {
          case 0:  // truncate
            mutated.resize(rng.below(mutated.size() + 1));
            break;
          case 1:  // flip bytes
            for (int flips = 0; flips < 4 && !mutated.empty(); ++flips)
              mutated[rng.below(mutated.size())] =
                  static_cast<char>(rng.below(256));
            break;
          case 2: {  // delete a range
            if (mutated.empty()) break;
            const std::size_t at = rng.below(mutated.size());
            mutated.erase(at, rng.below(mutated.size() - at + 1));
            break;
          }
          default: {  // duplicate a range
            if (mutated.empty()) break;
            const std::size_t at = rng.below(mutated.size());
            const std::size_t len =
                rng.below(std::min<std::size_t>(32, mutated.size() - at) + 1);
            mutated.insert(at, mutated.substr(at, len));
            break;
          }
        }
        const std::string out = proxy.handle_wire(mutated);
        // Invariant: absorbed, or a well-formed SIP response (a 400 for
        // everything the parser rejects). Never a crash, never garbage out.
        if (!out.empty()) {
          EXPECT_EQ(out.compare(0, 8, "SIP/2.0 "), 0) << "input:\n"
                                                      << mutated;
        }
        ++checked;
      }
    }
    EXPECT_EQ(checked, seeds.size() * 60);
    // Pure garbage always earns a 400.
    for (int v = 0; v < 5; ++v) {
      const std::string out = proxy.handle_wire(mf.garbage(v));
      if (!out.empty()) {
        EXPECT_EQ(out.compare(0, 12, "SIP/2.0 400 "), 0);
      }
    }
    proxy.shutdown();
  });
}

}  // namespace
}  // namespace rg
