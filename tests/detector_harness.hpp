// Synthetic event harness for detector unit tests.
//
// Feeds a hand-written event sequence straight into a Runtime (and thus
// into the attached tool) without a scheduler, so state-machine tests are
// exact and free of interleaving concerns: the runtime core is just a
// dispatcher, and the detection algorithms are pure functions of the event
// stream.
#pragma once

#include <string>

#include "rt/ids.hpp"
#include "rt/runtime.hpp"
#include "rt/tool.hpp"
#include "support/site.hpp"

namespace rg::test {

class EventHarness {
 public:
  EventHarness() = default;

  rt::Runtime& runtime() { return rt_; }

  void attach(rt::Tool& tool) { rt_.attach(tool); }

  /// Registers a thread; the first call creates the main thread (parent
  /// kNoThread), later calls default to main as parent.
  rt::ThreadId thread(const std::string& name,
                      rt::ThreadId parent = rt::kNoThread) {
    if (rt_.thread_count() == 0) {
      return rt_.register_thread(name, rt::kNoThread, site("spawn"));
    }
    if (parent == rt::kNoThread) parent = 0;
    return rt_.register_thread(name, parent, site("spawn"));
  }

  rt::LockId lock(const std::string& name, bool rw = false) {
    return rt_.register_lock(name, rw);
  }

  void acquire(rt::ThreadId t, rt::LockId l,
               rt::LockMode mode = rt::LockMode::Exclusive) {
    rt_.pre_lock(t, l, mode, site("acquire"));
    rt_.post_lock(t, l, mode, site("acquire"));
  }

  void release(rt::ThreadId t, rt::LockId l) {
    rt_.unlock(t, l, site("release"));
  }

  void join(rt::ThreadId joiner, rt::ThreadId joined) {
    rt_.thread_exited(joined);
    rt_.thread_joined(joiner, joined, site("join"));
  }

  void read(rt::ThreadId t, rt::Addr addr, const std::string& where = "read",
            std::uint32_t size = 4) {
    rt_.access({t, addr, size, rt::AccessKind::Read, false, site(where)});
  }

  void write(rt::ThreadId t, rt::Addr addr, const std::string& where = "write",
             std::uint32_t size = 4) {
    rt_.access({t, addr, size, rt::AccessKind::Write, false, site(where)});
  }

  /// A LOCK-prefixed (bus-locked) write.
  void write_locked(rt::ThreadId t, rt::Addr addr,
                    const std::string& where = "rmw", std::uint32_t size = 4) {
    rt_.access({t, addr, size, rt::AccessKind::Write, true, site(where)});
  }

  void alloc(rt::ThreadId t, rt::Addr addr, std::uint32_t size) {
    rt_.alloc(t, addr, size, site("alloc"));
  }

  void free(rt::ThreadId t, rt::Addr addr) { rt_.free(t, addr, site("free")); }

  void destruct(rt::ThreadId t, rt::Addr addr, std::uint32_t size) {
    rt_.destruct_annotation(t, addr, size, site("destruct"));
  }

  void queue_put(rt::ThreadId t, rt::SyncId q, std::uint64_t token) {
    rt_.queue_put(t, q, token, site("put"));
  }

  void queue_get(rt::ThreadId t, rt::SyncId q, std::uint64_t token) {
    rt_.queue_get(t, q, token, site("get"));
  }

  rt::SyncId sync(const std::string& name) { return rt_.register_sync(name); }

  /// Distinct-but-stable site per label, so location keys are predictable.
  support::SiteId site(const std::string& label) {
    return support::site_id(label, "harness.cpp", 1);
  }

 private:
  rt::Runtime rt_;
};

}  // namespace rg::test
