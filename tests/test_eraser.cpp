// EraserBasicTool — the unrefined lockset algorithm (§2.3.2 first listing).
#include <gtest/gtest.h>

#include "core/eraser.hpp"
#include "detector_harness.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::LockMode;
using rt::ThreadId;

constexpr rt::Addr kAddr = 0x20000;

TEST(EraserBasic, WarnsOnUnlockedInitialisation) {
  // No state machine: even single-thread initialisation without a lock
  // empties C(v) — the "too many false positives" behaviour the states
  // were added to fix.
  EraserBasicTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(EraserBasic, SilentUnderConsistentLock) {
  EraserBasicTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m = h.lock("m");
  for (ThreadId t : {main, t1, main}) {
    h.acquire(t, m);
    h.write(t, kAddr);
    h.read(t, kAddr);
    h.release(t, m);
  }
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(EraserBasic, OrderIndependentDetection) {
  // The §4.3 property the refined algorithm loses: regardless of which
  // access comes first, the unlocked one empties the set.
  for (bool unlocked_first : {true, false}) {
    EraserBasicTool tool;
    EventHarness h;
    h.attach(tool);
    const ThreadId main = h.thread("main");
    const ThreadId t1 = h.thread("t1");
    const auto m = h.lock("m");
    if (unlocked_first) {
      h.write(main, kAddr);
      h.acquire(t1, m);
      h.write(t1, kAddr);
      h.release(t1, m);
    } else {
      h.acquire(t1, m);
      h.write(t1, kAddr);
      h.release(t1, m);
      h.write(main, kAddr);
    }
    EXPECT_EQ(tool.reports().distinct_locations(), 1u)
        << "unlocked_first=" << unlocked_first;
  }
}

TEST(EraserBasic, ReadWarningsCanBeDisabled) {
  EraserBasicConfig cfg;
  cfg.warn_on_reads = false;
  EraserBasicTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.read(main, kAddr);  // empty lockset but only a read
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
  h.write(main, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(EraserBasic, RwRuleFromOriginalPaper) {
  // "An extension for read-write locks that is presented in the original
  // Eraser algorithm is not implemented in Helgrind" — here it is.
  EraserBasicConfig cfg;
  cfg.rw_rule = true;
  EraserBasicTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto rw = h.lock("rw", true);
  // Writers in write mode, readers in read mode: fine.
  h.acquire(main, rw, LockMode::Exclusive);
  h.write(main, kAddr);
  h.release(main, rw);
  h.acquire(t1, rw, LockMode::Shared);
  h.read(t1, kAddr);
  h.release(t1, rw);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
  // A write under only the read lock violates the discipline.
  h.acquire(t1, rw, LockMode::Shared);
  h.write(t1, kAddr);
  h.release(t1, rw);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(EraserBasic, WithoutRwRuleReadLockCountsForWrites) {
  EraserBasicTool tool;  // rw_rule off
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto rw = h.lock("rw", true);
  h.acquire(main, rw, LockMode::Shared);
  h.write(main, kAddr);  // simple-lock treatment: set = {rw}, no warning
  h.release(main, rw);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(EraserBasic, StopsAfterFirstReportPerLocation) {
  EraserBasicTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  for (int i = 0; i < 5; ++i) h.write(main, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
  EXPECT_EQ(tool.reports().total_warnings(), 1u);
}

TEST(EraserBasic, AllocResetsCandidateSet) {
  EraserBasicTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto m = h.lock("m");
  h.write(main, kAddr, "unlocked-1");  // warns
  h.alloc(main, kAddr, 8);
  h.acquire(main, m);
  h.write(main, kAddr, "locked-after-realloc");
  h.release(main, m);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(EraserBasic, SupersetOfHelgrindFindings) {
  // Everything the refined tool reports, the basic one reports too (on
  // the same stream); the converse does not hold.
  EraserBasicTool basic;
  EventHarness h;
  h.attach(basic);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  h.write(main, kAddr);
  h.read(t1, kAddr);
  h.write(t1, kAddr);
  // The basic detector flags this, and it also flags pure initialisation
  // (kAddr+64) the refined one would not.
  h.write(main, kAddr + 64, "init-only");
  EXPECT_GE(basic.reports().distinct_locations(), 2u);
}

}  // namespace
}  // namespace rg::core
