// DeadlockTool — lock-order graph checking.
#include <gtest/gtest.h>

#include "core/deadlock.hpp"
#include "detector_harness.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::ThreadId;

TEST(DeadlockOrder, ConsistentOrderIsSilent) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  for (ThreadId t : {main, t1, main}) {
    h.acquire(t, a);
    h.acquire(t, b);  // always a before b
    h.release(t, b);
    h.release(t, a);
  }
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
  EXPECT_GE(tool.edge_count(), 1u);
}

TEST(DeadlockOrder, InversionReported) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  h.acquire(main, a);
  h.acquire(main, b);
  h.release(main, b);
  h.release(main, a);
  // Opposite order in another thread — a potential deadlock even though
  // this run never blocked.
  h.acquire(t1, b);
  h.acquire(t1, a);
  h.release(t1, a);
  h.release(t1, b);
  ASSERT_EQ(tool.reports().distinct_locations(), 1u);
  const Report& r = tool.reports().reports()[0];
  EXPECT_EQ(r.kind, Report::Kind::LockOrderInversion);
  EXPECT_NE(r.extra.find("'a'"), std::string::npos);
  EXPECT_NE(r.extra.find("'b'"), std::string::npos);
}

TEST(DeadlockOrder, ReportedOncePerPair) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  for (int i = 0; i < 3; ++i) {
    h.acquire(main, a);
    h.acquire(main, b);
    h.release(main, b);
    h.release(main, a);
    h.acquire(main, b);
    h.acquire(main, a);
    h.release(main, a);
    h.release(main, b);
  }
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(DeadlockOrder, ThreeLockCycle) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto a = h.lock("a");
  const auto b = h.lock("b");
  const auto c = h.lock("c");
  auto pair = [&](rt::LockId first, rt::LockId second) {
    h.acquire(main, first);
    h.acquire(main, second);
    h.release(main, second);
    h.release(main, first);
  };
  pair(a, b);
  pair(b, c);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
  pair(c, a);  // closes the 3-cycle
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(DeadlockOrder, NestedSameLockIgnored) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const auto a = h.lock("a");
  // pre_lock for a lock already held (recursive rwlock read) must not
  // self-edge.
  h.acquire(main, a, rt::LockMode::Shared);
  h.runtime().pre_lock(main, a, rt::LockMode::Shared, h.site("again"));
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(DeadlockOrder, ChainWithoutCycleIsFine) {
  DeadlockTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  std::vector<rt::LockId> locks;
  for (int i = 0; i < 6; ++i) locks.push_back(h.lock("l" + std::to_string(i)));
  // Strictly ordered chain l0 < l1 < ... < l5.
  for (std::size_t i = 0; i + 1 < locks.size(); ++i) {
    h.acquire(main, locks[i]);
    h.acquire(main, locks[i + 1]);
    h.release(main, locks[i + 1]);
    h.release(main, locks[i]);
  }
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
  EXPECT_EQ(tool.edge_count(), 5u);
}

}  // namespace
}  // namespace rg::core
