// HybridTool — lockset + happens-before combination (Multi-Race style).
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "detector_harness.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::ThreadId;

constexpr rt::Addr kAddr = 0x40000;

HybridConfig hwlc_hybrid() {
  HybridConfig cfg;
  cfg.lockset = HelgrindConfig::hwlc_dr();
  return cfg;
}

TEST(Hybrid, CleanProgramProducesNoVerdicts) {
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m = h.lock("m");
  for (ThreadId t : {main, t1, main}) {
    h.acquire(t, m);
    h.write(t, kAddr);
    h.release(t, m);
  }
  h.runtime().finish();
  EXPECT_TRUE(tool.verdicts().empty());
}

TEST(Hybrid, ConfirmedRaceFlaggedByBoth) {
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.alloc(main, kAddr, 8);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(a, kAddr);
  h.write(b, kAddr);  // unordered, no locks: both detectors fire
  h.runtime().finish();
  ASSERT_EQ(tool.verdicts().size(), 1u);
  EXPECT_TRUE(tool.verdicts()[0].confirmed);
  EXPECT_EQ(tool.confirmed_count(), 1u);
  EXPECT_EQ(tool.possible_count(), 0u);
}

TEST(Hybrid, LockCoincidenceIsLocksetOnly) {
  // The ordering in this schedule happens to serialise the accesses via
  // the same mutex, but no common lock guards the data: lockset flags it,
  // happens-before cannot.
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.alloc(main, kAddr, 8);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const ThreadId c = h.thread("c");
  const auto m1 = h.lock("m1");
  const auto m2 = h.lock("m2");
  const auto m3 = h.lock("m3");
  h.acquire(a, m1);
  h.write(a, kAddr);
  h.release(a, m1);
  // b syncs with a through m1 (release->acquire orders the accesses in
  // this schedule), then writes under its own lock. The lockset is
  // initialised here — at the first *shared* access — to {m2}.
  h.acquire(b, m1);
  h.release(b, m1);
  h.acquire(b, m2);
  h.write(b, kAddr);
  h.release(b, m2);
  // c syncs with b through m2 and writes under m3: {m2} ∩ {m3} = {} — the
  // lockset warns, while every pair of accesses is HB-ordered by the
  // accidental lock hand-overs.
  h.acquire(c, m2);
  h.release(c, m2);
  h.acquire(c, m3);
  h.write(c, kAddr);
  h.release(c, m3);
  h.runtime().finish();
  ASSERT_EQ(tool.verdicts().size(), 1u);
  EXPECT_FALSE(tool.verdicts()[0].confirmed);
  EXPECT_FALSE(tool.verdicts()[0].hb_only);
  EXPECT_EQ(tool.possible_count(), 1u);
}

TEST(Hybrid, HbOnlyWhenLocksetDisciplineHolds) {
  // Both accesses hold the same lock at access time, so the lockset
  // discipline is satisfied — but a delayed-lockset-initialisation
  // artefact can never fire here; instead build the case where the lockset
  // pass is silenced by the state machine (exclusive-by-segments) while
  // DJIT (no segment refinement) flags the unordered pair.
  HybridConfig cfg = hwlc_hybrid();
  cfg.hb.lock_hb = false;  // make DJIT strict about lock edges
  HybridTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.alloc(main, kAddr, 8);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto m = h.lock("m");
  h.acquire(a, m);
  h.write(a, kAddr);
  h.release(a, m);
  h.acquire(b, m);
  h.write(b, kAddr);
  h.release(b, m);
  h.runtime().finish();
  // Lockset: C(v)={m} — silent. DJIT without lock edges: unordered — race.
  ASSERT_EQ(tool.verdicts().size(), 1u);
  EXPECT_TRUE(tool.verdicts()[0].hb_only);
  EXPECT_EQ(tool.hb_only_count(), 1u);
}

TEST(Hybrid, ForwardsAllocationEvents) {
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.alloc(main, kAddr, 16);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(a, kAddr);
  h.free(a, kAddr);
  h.alloc(b, kAddr, 16);
  h.write(b, kAddr);  // fresh lifetime in both sub-detectors
  h.runtime().finish();
  EXPECT_TRUE(tool.verdicts().empty());
}

TEST(Hybrid, MultipleVerdictsSorted) {
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.alloc(main, kAddr, 8);
  h.alloc(main, kAddr + 64, 8);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(a, kAddr, "w1");
  h.write(b, kAddr, "w2");
  h.write(a, kAddr + 64, "w3");
  h.write(b, kAddr + 64, "w4");
  h.runtime().finish();
  EXPECT_EQ(tool.verdicts().size(), 2u);
  EXPECT_EQ(tool.confirmed_count(), 2u);
}

TEST(Hybrid, SubToolsAccessible) {
  HybridTool tool(hwlc_hybrid());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.write(a, kAddr);
  h.write(b, kAddr);
  h.runtime().finish();
  EXPECT_EQ(tool.lockset_tool().reports().distinct_locations(), 1u);
  EXPECT_EQ(tool.hb_tool().reports().distinct_locations(), 1u);
}

}  // namespace
}  // namespace rg::core
