// Shadow memory map: granularity, ranges, reset.
#include <gtest/gtest.h>

#include "shadow/shadow_map.hpp"

namespace rg::shadow {
namespace {

struct State {
  int value = 0;
};

TEST(ShadowMap, DefaultConstructedOnFirstTouch) {
  ShadowMap<State> map;
  EXPECT_EQ(map.find(0x1000), nullptr);
  EXPECT_EQ(map.at(0x1000).value, 0);
  ASSERT_NE(map.find(0x1000), nullptr);
}

TEST(ShadowMap, GranuleSharing) {
  ShadowMap<State> map;
  map.at(0x1000).value = 7;
  // Same 8-byte granule:
  EXPECT_EQ(map.at(0x1007).value, 7);
  // Next granule:
  EXPECT_EQ(map.at(0x1008).value, 0);
}

TEST(ShadowMap, GranuleMath) {
  EXPECT_EQ(granule_of(0x0), granule_of(0x7));
  EXPECT_NE(granule_of(0x7), granule_of(0x8));
  EXPECT_EQ(granule_base(granule_of(0x1234)), 0x1230u);
}

TEST(ShadowMap, ForRangeCoversSpanningAccess) {
  ShadowMap<State> map;
  int touched = 0;
  map.for_range(0x1006, 4, [&](State& s) {
    ++touched;
    s.value = 1;
  });
  EXPECT_EQ(touched, 2);  // crosses a granule boundary
  EXPECT_EQ(map.at(0x1000).value, 1);
  EXPECT_EQ(map.at(0x1008).value, 1);
}

TEST(ShadowMap, ZeroSizeTouchesOneGranule) {
  ShadowMap<State> map;
  int touched = 0;
  map.for_range(0x2000, 0, [&](State&) { ++touched; });
  EXPECT_EQ(touched, 1);
}

TEST(ShadowMap, LargeRange) {
  ShadowMap<State> map;
  int touched = 0;
  map.for_range(0x3000, 64, [&](State&) { ++touched; });
  EXPECT_EQ(touched, 8);
}

TEST(ShadowMap, ResetRange) {
  ShadowMap<State> map;
  map.at(0x4000).value = 9;
  map.at(0x4008).value = 9;
  map.at(0x4010).value = 9;
  map.reset_range(0x4000, 16);
  EXPECT_EQ(map.at(0x4000).value, 0);
  EXPECT_EQ(map.at(0x4008).value, 0);
  EXPECT_EQ(map.at(0x4010).value, 9);  // outside the range
}

TEST(ShadowMap, PagesAllocatedLazily) {
  ShadowMap<State> map;
  EXPECT_EQ(map.page_count(), 0u);
  map.at(0x10000);
  EXPECT_EQ(map.page_count(), 1u);
  map.at(0x10008);  // same page
  EXPECT_EQ(map.page_count(), 1u);
  map.at(0x20000);  // different page
  EXPECT_EQ(map.page_count(), 2u);
}

TEST(ShadowMap, CrossPageRange) {
  ShadowMap<State> map;
  // Range straddling a 4 KiB page boundary.
  int touched = 0;
  map.for_range(0xFF8, 16, [&](State& s) {
    ++touched;
    s.value = 3;
  });
  EXPECT_EQ(touched, 2);
  EXPECT_EQ(map.at(0xFF8).value, 3);
  EXPECT_EQ(map.at(0x1000).value, 3);
  EXPECT_EQ(map.page_count(), 2u);
}

TEST(ShadowMap, HighAddresses) {
  ShadowMap<State> map;
  const rt::Addr high = 0x7fff'ffff'f000ULL;
  map.at(high).value = 5;
  EXPECT_EQ(map.at(high + 4).value, 5);
  EXPECT_EQ(map.at(high + 8).value, 0);
}

}  // namespace
}  // namespace rg::shadow
