// E5 — the §4.3 false-negative study: delayed lock-set initialisation
// makes detection order-dependent.
//
// "Suppose, one thread writes a shared location without acquiring a lock,
// whereas another thread does the same, but coincidentally holds a lock
// during that access. If the first access takes place before the second
// one, no warning is reported ... If a different schedule leads to another
// execution order, the (possible) data race is found and reported."
#include <gtest/gtest.h>

#include "core/eraser.hpp"
#include "core/helgrind.hpp"
#include "detector_harness.hpp"
#include "rt/sim.hpp"
#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::ThreadId;

constexpr rt::Addr kAddr = 0x60000;

/// The §4.3 event pattern with an explicit access order.
template <typename Tool>
std::size_t run_order(Tool& tool, bool unlocked_first) {
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("unlocked-writer");
  const ThreadId b = h.thread("locked-writer");
  (void)main;
  const auto m = h.lock("m");
  if (unlocked_first) {
    h.write(a, kAddr);
    h.acquire(b, m);
    h.write(b, kAddr);
    h.release(b, m);
  } else {
    h.acquire(b, m);
    h.write(b, kAddr);
    h.release(b, m);
    h.write(a, kAddr);
  }
  return tool.reports().distinct_locations();
}

TEST(FalseNegative, HelgrindMissesWhenUnlockedAccessComesFirst) {
  // Lock-set initialisation is delayed to the second thread's access,
  // which holds the lock: C(v) = {m}, no warning. The race is missed.
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EXPECT_EQ(run_order(tool, /*unlocked_first=*/true), 0u);
}

TEST(FalseNegative, HelgrindFindsItInTheOtherOrder) {
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EXPECT_EQ(run_order(tool, /*unlocked_first=*/false), 1u);
}

TEST(FalseNegative, BasicEraserIsOrderIndependent) {
  // "One of its greatest strength is the ability to report data races
  // independent of execution order" — the unrefined algorithm keeps it.
  for (bool unlocked_first : {true, false}) {
    EraserBasicConfig cfg;
    EraserBasicTool tool(cfg);
    EXPECT_GE(run_order(tool, unlocked_first), 1u)
        << "order=" << unlocked_first;
  }
}

/// Full-simulator version: the schedule decides the order, so detection
/// becomes a function of the seed — "repeated tests with different test
/// data (resulting in different interleavings) could help find such
/// data-races".
bool detected_with_seed(std::uint64_t seed) {
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  rt::SimConfig cfg;
  cfg.sched.seed = seed;
  rt::Sim sim(cfg);
  sim.attach(tool);
  sim.run([&] {
    rt::mutex m("m");
    rt::tracked<int> shared;
    rt::thread unlocked([&] {
      for (int i = 0; i < 3; ++i) {
        shared.store(1);
        rt::yield();
      }
    });
    rt::thread locked([&] {
      for (int i = 0; i < 3; ++i) {
        rt::lock_guard g(m);
        shared.store(2);
        rt::yield();
      }
    });
    unlocked.join();
    locked.join();
  });
  return tool.reports().distinct_locations() > 0;
}

class FalseNegativeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FalseNegativeSweep, DetectionIsDeterministicPerSeed) {
  EXPECT_EQ(detected_with_seed(GetParam()), detected_with_seed(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FalseNegativeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FalseNegativeSweepSummary, SomeSchedulesDetectSomeMiss) {
  int detected = 0;
  const int total = 24;
  for (std::uint64_t seed = 1; seed <= total; ++seed)
    if (detected_with_seed(seed)) ++detected;
  // The race is real and reported under many — but not all — schedules.
  EXPECT_GT(detected, 0);
  EXPECT_LT(detected, total);
}

TEST(FalseNegativeSweepSummary, RerunningWithMoreSeedsHelps) {
  // Monotonicity of the paper's advice: a union over more schedules can
  // only grow.
  bool found_by_4 = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    found_by_4 |= detected_with_seed(seed);
  bool found_by_24 = found_by_4;
  for (std::uint64_t seed = 5; seed <= 24; ++seed)
    found_by_24 |= detected_with_seed(seed);
  EXPECT_TRUE(!found_by_4 || found_by_24);
  EXPECT_TRUE(found_by_24);
}

}  // namespace
}  // namespace rg::core
