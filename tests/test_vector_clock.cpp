// Vector clock laws.
#include <gtest/gtest.h>

#include "shadow/vector_clock.hpp"
#include "support/prng.hpp"

namespace rg::shadow {
namespace {

TEST(VectorClockTest, FreshClockIsZero) {
  VectorClock c;
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(100), 0u);
  EXPECT_EQ(c.width(), 0u);
}

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock c;
  c.tick(2);
  c.tick(2);
  EXPECT_EQ(c.get(2), 2u);
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(1), 0u);
}

TEST(VectorClockTest, SetOverrides) {
  VectorClock c;
  c.set(3, 7);
  EXPECT_EQ(c.get(3), 7u);
}

TEST(VectorClockTest, MergeIsComponentwiseMax) {
  VectorClock a, b;
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 4u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClockTest, LeqReflexive) {
  VectorClock a;
  a.set(0, 3);
  a.set(5, 2);
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, LeqOrdersCausally) {
  VectorClock earlier, later;
  earlier.set(0, 1);
  later.set(0, 2);
  later.set(1, 1);
  EXPECT_TRUE(earlier.leq(later));
  EXPECT_FALSE(later.leq(earlier));
  EXPECT_FALSE(earlier.concurrent_with(later));
}

TEST(VectorClockTest, ConcurrentClocks) {
  VectorClock a, b;
  a.set(0, 1);
  b.set(1, 1);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
}

TEST(VectorClockTest, EqualityIgnoresWidth) {
  VectorClock a, b;
  a.set(0, 1);
  b.set(0, 1);
  b.set(5, 0);  // explicit zero padding
  EXPECT_TRUE(a == b);
}

TEST(VectorClockTest, Describe) {
  VectorClock c;
  c.set(0, 1);
  c.set(2, 3);
  EXPECT_EQ(c.describe(), "[1,0,3]");
}

/// Property sweep: merge is a least upper bound; leq is a partial order.
class VectorClockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VectorClockProperty, MergeIsLub) {
  support::Xoshiro256 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    VectorClock a, b;
    for (rt::ThreadId t = 0; t < 6; ++t) {
      a.set(t, static_cast<VectorClock::Tick>(rng.below(5)));
      b.set(t, static_cast<VectorClock::Tick>(rng.below(5)));
    }
    VectorClock m = a;
    m.merge(b);
    // Upper bound:
    EXPECT_TRUE(a.leq(m));
    EXPECT_TRUE(b.leq(m));
    // Least: any other upper bound dominates m.
    VectorClock ub;
    for (rt::ThreadId t = 0; t < 6; ++t)
      ub.set(t, std::max(a.get(t), b.get(t)));
    EXPECT_TRUE(m.leq(ub));
    EXPECT_TRUE(ub.leq(m));
  }
}

TEST_P(VectorClockProperty, LeqIsPartialOrder) {
  support::Xoshiro256 rng(GetParam());
  std::vector<VectorClock> clocks;
  for (int i = 0; i < 12; ++i) {
    VectorClock c;
    for (rt::ThreadId t = 0; t < 4; ++t)
      c.set(t, static_cast<VectorClock::Tick>(rng.below(4)));
    clocks.push_back(c);
  }
  for (const auto& a : clocks) {
    EXPECT_TRUE(a.leq(a));  // reflexive
    for (const auto& b : clocks) {
      // Antisymmetry.
      if (a.leq(b) && b.leq(a)) {
        EXPECT_TRUE(a == b);
      }
      for (const auto& c : clocks) {
        // Transitivity.
        if (a.leq(b) && b.leq(c)) {
          EXPECT_TRUE(a.leq(c));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockProperty,
                         ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace rg::shadow
