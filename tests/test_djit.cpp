// DjitTool — vector-clock happens-before detection (§2.2).
#include <gtest/gtest.h>

#include "core/djit.hpp"
#include "detector_harness.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::ThreadId;

constexpr rt::Addr kAddr = 0x30000;

TEST(Djit, SingleThreadSilent) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  for (int i = 0; i < 10; ++i) {
    h.write(main, kAddr);
    h.read(main, kAddr);
  }
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, CreateEdgeOrdersParentBeforeChild) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);  // ordered after the parent's write
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, JoinEdgeOrdersChildBeforeParent) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);
  h.join(main, child);
  h.write(main, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, ConcurrentWritesAreApparentRace) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.write(a, kAddr);
  h.write(b, kAddr);  // unordered with a's write
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(Djit, WriteAfterConcurrentReadIsRace) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.read(a, kAddr);
  h.write(b, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(Djit, ConcurrentReadsAreFine) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.read(a, kAddr);
  h.read(b, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, LockReleaseAcquireCreatesOrder) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  const auto m = h.lock("m");
  h.acquire(a, m);
  h.write(a, kAddr);
  h.release(a, m);
  h.acquire(b, m);
  h.write(b, kAddr);  // ordered by the lock hand-over
  h.release(b, m);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, MissesLockCoincidenceRace) {
  // The key weakness vs. Eraser: accesses that happen to be ordered by a
  // lock in THIS schedule are not flagged, even if no common lock guards
  // the location. DJIT "detects data races on a subset of shared locations
  // that are reported by the lock-set approach".
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  const auto m = h.lock("m");
  // a writes under m; b also happens to lock/unlock m before its write;
  // the release->acquire chain orders them in this execution.
  h.acquire(a, m);
  h.write(a, kAddr);
  h.release(a, m);
  h.acquire(b, m);
  h.release(b, m);
  h.write(b, kAddr);  // ordered via the m hand-over in THIS schedule
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);  // missed!
}

TEST(Djit, ReportsOnlyFirstApparentRacePerLocation) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.write(a, kAddr);
  h.write(b, kAddr);
  h.write(a, kAddr);
  h.write(b, kAddr);
  EXPECT_EQ(tool.reports().total_warnings(), 1u);
}

TEST(Djit, MessageHandoffCreatesOrder) {
  DjitTool tool;  // message_hb defaults on
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("worker");
  const auto q = h.sync("q");
  h.write(main, kAddr);
  h.queue_put(main, q, 1);
  h.queue_get(worker, q, 1);
  h.write(worker, kAddr);
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, MessageHbCanBeDisabled) {
  DjitConfig cfg;
  cfg.message_hb = false;
  DjitTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("worker");
  const auto q = h.sync("q");
  h.write(worker, kAddr);  // worker touches first (it owns the pattern)
  h.queue_put(worker, q, 1);
  h.queue_get(main, q, 1);
  h.write(main, kAddr);  // without hb edges this is unordered
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(Djit, CondvarHbIsUnsoundAndOffByDefault) {
  // §2.2: "nor is the relation between signal and wait operations on
  // conditions strong enough to impose the assumed order". With the
  // relation enabled, the detector wrongly believes the accesses ordered.
  for (bool condvar_hb : {false, true}) {
    DjitConfig cfg;
    cfg.condvar_hb = condvar_hb;
    DjitTool tool(cfg);
    EventHarness h;
    h.attach(tool);
    const ThreadId main = h.thread("main");
    const ThreadId waiter = h.thread("waiter");
    const auto cv = h.sync("cv");
    const auto m = h.lock("m");
    h.write(main, kAddr);
    h.runtime().cond_signal(main, cv, h.site("signal"));
    h.runtime().cond_wait_return(waiter, cv, m, h.site("wait"));
    h.write(waiter, kAddr);
    const std::size_t expected = condvar_hb ? 0u : 1u;
    EXPECT_EQ(tool.reports().distinct_locations(), expected)
        << "condvar_hb=" << condvar_hb;
  }
}

TEST(Djit, FreeResetsHistory) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.alloc(a, kAddr, 8);
  h.write(a, kAddr);
  h.free(a, kAddr);
  h.alloc(b, kAddr, 8);
  h.write(b, kAddr);  // new lifetime: no race with the old write
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

TEST(Djit, ReportNamesConflictingAccess) {
  DjitTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  (void)main;
  h.write(a, kAddr, "first-writer");
  h.write(b, kAddr, "second-writer");
  ASSERT_EQ(tool.reports().reports().size(), 1u);
  EXPECT_NE(tool.reports().reports()[0].extra.find("first-writer"),
            std::string::npos);
}

}  // namespace
}  // namespace rg::core
