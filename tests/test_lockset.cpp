// Lockset interning and intersection algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rt/runtime.hpp"
#include "shadow/lockset.hpp"
#include "support/prng.hpp"

namespace rg::shadow {
namespace {

TEST(Lockset, EmptySetIsIdZero) {
  LocksetTable t;
  EXPECT_EQ(t.intern({}), kEmptyLockset);
  EXPECT_TRUE(t.empty(kEmptyLockset));
  EXPECT_EQ(t.size(kEmptyLockset), 0u);
}

TEST(Lockset, InterningIsCanonical) {
  LocksetTable t;
  const LocksetId a = t.intern({1, 2, 3});
  const LocksetId b = t.intern({3, 1, 2});    // order irrelevant
  const LocksetId c = t.intern({1, 1, 2, 3}); // duplicates removed
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(t.size(a), 3u);
}

TEST(Lockset, DistinctSetsDistinctIds) {
  LocksetTable t;
  EXPECT_NE(t.intern({1}), t.intern({2}));
  EXPECT_NE(t.intern({1}), t.intern({1, 2}));
}

TEST(Lockset, IntersectBasics) {
  LocksetTable t;
  const LocksetId ab = t.intern({1, 2});
  const LocksetId bc = t.intern({2, 3});
  const LocksetId b = t.intern({2});
  EXPECT_EQ(t.intersect(ab, bc), b);
  EXPECT_EQ(t.intersect(ab, t.intern({3})), kEmptyLockset);
}

TEST(Lockset, UniversalIsIdentity) {
  LocksetTable t;
  const LocksetId s = t.intern({4, 7});
  EXPECT_EQ(t.intersect(kUniversalLockset, s), s);
  EXPECT_EQ(t.intersect(s, kUniversalLockset), s);
  EXPECT_EQ(t.intersect(kUniversalLockset, kUniversalLockset),
            kUniversalLockset);
}

TEST(Lockset, EmptyAnnihilates) {
  LocksetTable t;
  const LocksetId s = t.intern({1, 2, 3});
  EXPECT_EQ(t.intersect(kEmptyLockset, s), kEmptyLockset);
  EXPECT_EQ(t.intersect(s, kEmptyLockset), kEmptyLockset);
}

TEST(Lockset, IntersectIdempotent) {
  LocksetTable t;
  const LocksetId s = t.intern({5, 6});
  EXPECT_EQ(t.intersect(s, s), s);
}

TEST(Lockset, ContainsAndWith) {
  LocksetTable t;
  const LocksetId s = t.intern({10, 20});
  EXPECT_TRUE(t.contains(s, 10));
  EXPECT_FALSE(t.contains(s, 15));
  EXPECT_TRUE(t.contains(kUniversalLockset, 12345));
  const LocksetId s2 = t.with(s, 15);
  EXPECT_TRUE(t.contains(s2, 15));
  EXPECT_EQ(t.with(s, 10), s);  // already present
  EXPECT_EQ(t.with(kUniversalLockset, 1), kUniversalLockset);
}

TEST(Lockset, IntersectionCacheHits) {
  LocksetTable t;
  const LocksetId a = t.intern({1, 2, 3});
  const LocksetId b = t.intern({2, 3, 4});
  const LocksetId first = t.intersect(a, b);
  const auto misses = t.cache_misses();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.intersect(a, b), first);
  EXPECT_EQ(t.cache_misses(), misses);
  EXPECT_GE(t.cache_hits(), 10u);
}

TEST(Lockset, IntersectCommutes) {
  LocksetTable t;
  const LocksetId a = t.intern({1, 3, 5});
  const LocksetId b = t.intern({3, 5, 7});
  EXPECT_EQ(t.intersect(a, b), t.intersect(b, a));
}

TEST(Lockset, Describe) {
  LocksetTable t;
  rt::Runtime rt;
  const rt::LockId l1 = rt.register_lock("alpha", false);
  const rt::LockId l2 = rt.register_lock("beta", false);
  const LocksetId s = t.intern({l1, l2});
  const std::string text = t.describe(s, rt);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_EQ(t.describe(kEmptyLockset, rt), "{}");
  EXPECT_EQ(t.describe(kUniversalLockset, rt), "{<all locks>}");
}

/// Property: interned-set algebra agrees with std::set semantics across
/// random set pairs.
class LocksetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocksetProperty, MatchesStdSetIntersection) {
  support::Xoshiro256 rng(GetParam());
  LocksetTable table;
  for (int round = 0; round < 200; ++round) {
    std::set<rt::LockId> sa, sb;
    LockVec va, vb;
    for (int i = 0; i < static_cast<int>(rng.below(6)); ++i) {
      const auto lock = static_cast<rt::LockId>(rng.below(10));
      if (sa.insert(lock).second) va.push_back(lock);
    }
    for (int i = 0; i < static_cast<int>(rng.below(6)); ++i) {
      const auto lock = static_cast<rt::LockId>(rng.below(10));
      if (sb.insert(lock).second) vb.push_back(lock);
    }
    std::set<rt::LockId> expected;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(expected, expected.begin()));
    const LocksetId result =
        table.intersect(table.intern(va), table.intern(vb));
    ASSERT_EQ(table.size(result), expected.size());
    for (rt::LockId lock : expected) EXPECT_TRUE(table.contains(result, lock));
    // Monotonicity: |a ∩ b| <= min(|a|, |b|).
    EXPECT_LE(table.size(result), std::min(sa.size(), sb.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocksetProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(Lockset, ManyDistinctSets) {
  LocksetTable t;
  std::set<LocksetId> ids;
  for (rt::LockId a = 0; a < 12; ++a)
    for (rt::LockId b = a; b < 12; ++b) ids.insert(t.intern({a, b}));
  // 12 singletons + 66 pairs
  EXPECT_EQ(ids.size(), 78u - 12u + 12u);
  EXPECT_GE(t.distinct_sets(), ids.size());
}

}  // namespace
}  // namespace rg::shadow
