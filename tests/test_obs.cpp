// The observability spine: flight recorder semantics (wraparound, drop
// accounting, hash determinism, address normalisation, provenance
// queries, JSON escaping), the metrics registry, ToolStats aggregation
// through its field table, and end-to-end replay through a full Sim.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "rt/tool.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"

namespace rg {
namespace {

using obs::Event;
using obs::EventKind;
using obs::FlightRecorder;
using obs::RecorderConfig;

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  RecorderConfig cfg;
  cfg.capacity = 5;
  FlightRecorder rec(cfg);
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  RecorderConfig cfg;
  cfg.capacity = 8;
  FlightRecorder rec(cfg);
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.record(EventKind::Custom, /*vtime=*/i, /*tid=*/0, /*a=*/i, /*b=*/0);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const std::vector<Event> events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The flight recorder keeps the *last* N events, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12u + i);
    EXPECT_EQ(events[i].a, 12u + i);
  }
}

TEST(FlightRecorder, HashCoversDroppedEvents) {
  // Two streams identical up to wraparound but different in their (long
  // dropped) prefix must hash differently: the oracle covers the whole
  // execution, not the ring's survivors.
  RecorderConfig cfg;
  cfg.capacity = 4;
  FlightRecorder a(cfg), b(cfg);
  a.record(EventKind::Custom, 0, 0, /*a=*/111, 0);
  b.record(EventKind::Custom, 0, 0, /*a=*/222, 0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    a.record(EventKind::Custom, 1 + i, 0, i, 0);
    b.record(EventKind::Custom, 1 + i, 0, i, 0);
  }
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FlightRecorder, HashIsDeterministicAndOrderSensitive) {
  auto feed = [](FlightRecorder& r, bool swap) {
    r.record(EventKind::PreLock, 1, 2, 7, 0);
    if (swap) {
      r.record(EventKind::Unlock, 3, 2, 7, 0);
      r.record(EventKind::PostLock, 2, 2, 7, 0);
    } else {
      r.record(EventKind::PostLock, 2, 2, 7, 0);
      r.record(EventKind::Unlock, 3, 2, 7, 0);
    }
  };
  FlightRecorder r1, r2, r3;
  feed(r1, false);
  feed(r2, false);
  feed(r3, true);
  EXPECT_EQ(r1.hash(), r2.hash());
  EXPECT_NE(r1.hash(), r3.hash());
}

TEST(FlightRecorder, AddressesNormaliseByFirstAppearance) {
  // Same access pattern at disjoint (ASLR-shifted) raw addresses must
  // produce the same hash: the stream never sees a raw pointer.
  auto feed = [](FlightRecorder& r, std::uint64_t base) {
    r.record(EventKind::Access, 0, 0, base + 0x10, 8);
    r.record(EventKind::Access, 1, 0, base + 0x20, 8);
    r.record(EventKind::Access, 2, 0, base + 0x10, 8);
  };
  FlightRecorder r1, r2;
  feed(r1, 0x7f0000000000ull);
  feed(r2, 0x550000000000ull);
  EXPECT_EQ(r1.hash(), r2.hash());
  const std::vector<Event> e = r1.snapshot();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].norm, e[2].norm);  // same address, same dense id
  EXPECT_NE(e[0].norm, e[1].norm);
}

TEST(FlightRecorder, IdentityOverridesRawAddressNormalisation) {
  // With a caller-supplied identity (allocation seq + offset), the raw
  // address is irrelevant: an allocator reusing a freed address in one
  // run but not the other still hashes identically.
  FlightRecorder reuse, fresh;
  const std::uint64_t ident1 = (1ull << 63) | (1ull << 32);
  const std::uint64_t ident2 = (1ull << 63) | (2ull << 32);
  reuse.record(EventKind::Alloc, 0, 0, 0xAAA0, 16, support::kUnknownSite, 0,
               ident1);
  reuse.record(EventKind::Free, 1, 0, 0xAAA0, 16, support::kUnknownSite, 0,
               ident1);
  reuse.record(EventKind::Alloc, 2, 0, 0xAAA0, 16, support::kUnknownSite, 0,
               ident2);  // reused raw address
  fresh.record(EventKind::Alloc, 0, 0, 0xAAA0, 16, support::kUnknownSite, 0,
               ident1);
  fresh.record(EventKind::Free, 1, 0, 0xAAA0, 16, support::kUnknownSite, 0,
               ident1);
  fresh.record(EventKind::Alloc, 2, 0, 0xBBB0, 16, support::kUnknownSite, 0,
               ident2);  // fresh raw address
  EXPECT_EQ(reuse.hash(), fresh.hash());
}

TEST(FlightRecorder, NonAddressKindsCarryNoNorm) {
  FlightRecorder rec;
  rec.record(EventKind::SchedSwitch, 0, 1, 0, 0);
  rec.record(EventKind::Access, 1, 1, 0x1234, 8);
  const std::vector<Event> e = rec.snapshot();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].norm, obs::kNoNorm);
  EXPECT_NE(e[1].norm, obs::kNoNorm);
}

TEST(FlightRecorder, ExplainFiltersToAddressAndItsThreadsLockOps) {
  FlightRecorder rec;
  const std::uint64_t racy = 0x1000, other = 0x2000;
  rec.record(EventKind::Access, 0, /*tid=*/1, racy, 8);      // relevant
  rec.record(EventKind::Access, 1, /*tid=*/2, other, 8);     // other addr
  rec.record(EventKind::PreLock, 2, /*tid=*/1, 7, 0);        // t1 lock op
  rec.record(EventKind::PreLock, 3, /*tid=*/2, 7, 0);        // t2 never
                                                             // touched racy
  rec.record(EventKind::Access, 4, /*tid=*/3, racy + 4, 4);  // overlap
  rec.record(EventKind::DetectorWarning, 5, /*tid=*/3, racy, 1);
  const std::vector<Event> got = rec.explain(racy, 8, rec.cursor(), 32);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].vtime, 0u);
  EXPECT_EQ(got[1].vtime, 2u);
  EXPECT_EQ(got[2].vtime, 4u);
  EXPECT_EQ(got[3].vtime, 5u);
  // A cursor before the warning excludes it.
  const std::vector<Event> earlier = rec.explain(racy, 8, 5, 32);
  EXPECT_EQ(earlier.size(), 3u);
}

TEST(FlightRecorder, ChromeTraceIsWellFormedAndNamed) {
  FlightRecorder rec;
  rec.note_thread_name(0, "main");
  rec.note_lock_name(7, "tx-table-mutex");
  rec.record(EventKind::PostLock, 1, 0, 7, 0);
  rec.record(EventKind::Access, 2, 0, 0x1000, 8, support::kUnknownSite,
             obs::kAccessWrite);
  const std::string json = rec.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("tx-table-mutex"), std::string::npos);
  // Raw addresses never leak into the export: 0x1000 = 4096.
  EXPECT_EQ(json.find("4096"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Metrics, CountersGaugesAndJsonOrder) {
  obs::MetricsRegistry reg;
  reg.counter("z.second").inc(3);
  reg.gauge("a.first").set(-2);
  reg.gauge("a.first").update_max(5);
  reg.gauge("a.first").update_max(1);  // no-op: 1 < 5
  EXPECT_EQ(reg.counter("z.second").value(), 3u);
  EXPECT_EQ(reg.gauge("a.first").value(), 5);
  EXPECT_TRUE(reg.has("z.second"));
  EXPECT_FALSE(reg.has("missing"));
  // Registration order, not alphabetical.
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("z.second"), json.find("a.first"));
}

TEST(Metrics, HistogramBucketsBoundsInclusive) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10, 100});
  for (std::uint64_t v : {5, 10, 11, 100, 101}) h.observe(v);
  ASSERT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket(0), 2u);  // 5, 10   (v <= 10)
  EXPECT_EQ(h.bucket(1), 2u);  // 11, 100 (10 < v <= 100)
  EXPECT_EQ(h.bucket(2), 1u);  // 101     (overflow)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 227u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 101u);
  EXPECT_DOUBLE_EQ(h.mean(), 227.0 / 5.0);
}

TEST(ToolStats, FieldTableDrivesAggregationAndExport) {
  rt::ToolStats a, b;
  a.lockset_cache_hits = 1;
  a.shadow_tlb_misses = 4;
  b.lockset_cache_hits = 10;
  b.lockset_cache_misses = 20;
  b.shadow_tlb_hits = 30;
  b.shadow_tlb_misses = 40;
  a += b;
  EXPECT_EQ(a.lockset_cache_hits, 11u);
  EXPECT_EQ(a.lockset_cache_misses, 20u);
  EXPECT_EQ(a.shadow_tlb_hits, 30u);
  EXPECT_EQ(a.shadow_tlb_misses, 44u);
  // The static_assert on sizeof(ToolStats) == fields.size() * 8 is the
  // real guard; here we only check the table stays in sync at runtime.
  std::uint64_t via_table = 0;
  for (const rt::ToolStats::Field& f : rt::ToolStats::fields)
    via_table += a.*f.member;
  EXPECT_EQ(via_table, 11u + 20u + 30u + 44u);
  obs::MetricsRegistry reg;
  a.export_to(reg);
  EXPECT_EQ(reg.counter("tool.lockset_cache_hits").value(), 11u);
  EXPECT_EQ(reg.counter("tool.shadow_tlb_misses").value(), 44u);
}

// --- end to end through a Sim -----------------------------------------------

TEST(Observability, SameSeedRunsReplayBitIdentically) {
  auto run = [](FlightRecorder& rec) {
    sipp::ExperimentConfig cfg;
    cfg.seed = 11;
    cfg.detector = core::HelgrindConfig::hwlc_dr();
    cfg.recorder = &rec;
    const sipp::Scenario sc = sipp::build_testcase(5, cfg.seed);
    return sipp::run_scenario(sc, cfg);
  };
  FlightRecorder r1, r2;
  const sipp::ExperimentResult a = run(r1);
  const sipp::ExperimentResult b = run(r2);
  EXPECT_GT(a.recorder_events, 0u);
  EXPECT_EQ(a.recorder_hash, b.recorder_hash);
  EXPECT_EQ(a.recorder_events, b.recorder_events);
  EXPECT_EQ(r1.chrome_trace_json(), r2.chrome_trace_json());
  // Warnings carry provenance cursors into the live stream.
  ASSERT_FALSE(a.reports.empty());
  for (const core::Report& r : a.reports) {
    EXPECT_GT(r.recorder_cursor, 0u);
    EXPECT_LE(r.recorder_cursor, a.recorder_events);
  }
  // And explain() on the first warning yields a non-empty story ending
  // in events on the racing address.
  const core::Report& first = a.reports.front();
  const std::vector<Event> story = r1.explain(
      first.access.addr, first.access.size, first.recorder_cursor, 16);
  EXPECT_FALSE(story.empty());
}

TEST(Observability, RecorderOffMatchesRecorderOnOutcomes) {
  // Attaching the recorder must not perturb the run: same warnings, same
  // responses with and without it.
  sipp::ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  const sipp::Scenario sc = sipp::build_testcase(2, cfg.seed);
  const sipp::ExperimentResult off = sipp::run_scenario(sc, cfg);
  FlightRecorder rec;
  cfg.recorder = &rec;
  const sipp::ExperimentResult on = sipp::run_scenario(sc, cfg);
  EXPECT_EQ(off.reported_locations, on.reported_locations);
  EXPECT_EQ(off.total_warnings, on.total_warnings);
  EXPECT_EQ(off.responses, on.responses);
  EXPECT_EQ(off.location_keys, on.location_keys);
}

TEST(Observability, ProfilerCountsMatchDispatchedEvents) {
  sipp::ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  obs::HookProfiler prof;
  cfg.profiler = &prof;
  const sipp::Scenario sc = sipp::build_testcase(2, cfg.seed);
  const sipp::ExperimentResult r = sipp::run_scenario(sc, cfg);
  ASSERT_EQ(prof.tool_count(), 1u);
  EXPECT_EQ(prof.tool_name(0), "helgrind");
  EXPECT_EQ(prof.events(0, obs::Hook::Access), r.sim.access_events);
  EXPECT_EQ(prof.events(0, obs::Hook::Finish), 1u);
  EXPECT_GT(prof.total_cycles(0), 0u);
  const std::string table = prof.render();
  EXPECT_NE(table.find("helgrind"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace rg
