// End-to-end proxy behaviour inside the simulator.
#include <gtest/gtest.h>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/parser.hpp"
#include "sip/proxy.hpp"
#include "sipp/scenario.hpp"

namespace rg::sip {
namespace {

/// Proxy with every seeded fault off: behaviourally identical, race-free.
ProxyConfig clean_config() {
  ProxyConfig cfg;
  cfg.faults = FaultConfig::none();
  return cfg;
}

int status_of(const std::string& wire) {
  const ParseResult r = parse_message(wire);
  if (!r.ok() || r.message->is_request()) return -1;
  return static_cast<const SipResponse&>(*r.message).status();
}

TEST(Proxy, RegisterReturns200WithContact) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    const std::string resp =
        proxy.handle_wire(mf.register_request("alice", "c1", 1));
    EXPECT_EQ(status_of(resp), 200);
    EXPECT_NE(resp.find("Contact:"), std::string::npos);
    EXPECT_EQ(proxy.registrar().size(), 1u);
    proxy.shutdown();
  });
}

TEST(Proxy, InviteToRegisteredCalleeSucceeds) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    const std::string resp =
        proxy.handle_wire(mf.invite("alice", "bob", "call-1", 1));
    EXPECT_EQ(status_of(resp), 200);
    EXPECT_NE(resp.find("Record-Route:"), std::string::npos);
    EXPECT_NE(resp.find("Server: RaceGuard-SIP-Proxy"), std::string::npos);
    EXPECT_EQ(proxy.dialogs().size(), 1u);
    proxy.shutdown();
  });
}

TEST(Proxy, InviteToUnknownCalleeIs404) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(mf.invite("a", "ghost", "c", 1))),
              404);
    proxy.shutdown();
  });
}

TEST(Proxy, InviteToForeignDomainIs403) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(
                  mf.invite("a", "b", "c", 1, "elsewhere.invalid"))),
              403);
    proxy.shutdown();
  });
}

TEST(Proxy, FullDialogFlow) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    EXPECT_EQ(status_of(proxy.handle_wire(mf.invite("a", "bob", "c1", 1))),
              200);
    EXPECT_TRUE(proxy.handle_wire(mf.ack("a", "bob", "c1", 1)).empty());
    EXPECT_EQ(proxy.dialogs().size(), 1u);
    EXPECT_EQ(status_of(proxy.handle_wire(mf.bye("a", "bob", "c1", 2))), 200);
    EXPECT_EQ(proxy.dialogs().size(), 0u);
    proxy.shutdown();
  });
}

TEST(Proxy, ByeWithoutDialogIs481) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(mf.bye("a", "b", "nocall", 1))),
              481);
    proxy.shutdown();
  });
}

TEST(Proxy, RetransmittedInviteRepliesByReplay) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    const std::string first =
        proxy.handle_wire(mf.invite("a", "bob", "c1", 1));
    const std::string replay =
        proxy.handle_wire(mf.invite("a", "bob", "c1", 1));
    EXPECT_EQ(status_of(first), 200);
    EXPECT_EQ(status_of(replay), 200);
    // One transaction, one dialog: the retransmission was absorbed.
    EXPECT_EQ(proxy.dialogs().size(), 1u);
    EXPECT_EQ(proxy.stats().requests(), 3u);
    proxy.shutdown();
  });
}

TEST(Proxy, CancelTerminatesPendingInvite) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    proxy.handle_wire(mf.invite("a", "bob", "c1", 1));
    EXPECT_EQ(status_of(proxy.handle_wire(mf.cancel("a", "bob", "c1", 1))),
              200);
    EXPECT_EQ(proxy.dialogs().size(), 0u);
    proxy.shutdown();
  });
}

TEST(Proxy, CancelWithoutTransactionIs481) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(mf.cancel("a", "b", "none", 1))),
              481);
    proxy.shutdown();
  });
}

TEST(Proxy, OptionsListsAllow) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    const std::string resp = proxy.handle_wire(mf.options("a", "c", 1));
    EXPECT_EQ(status_of(resp), 200);
    EXPECT_NE(resp.find("Allow: INVITE"), std::string::npos);
    proxy.shutdown();
  });
}

TEST(Proxy, UnknownMethodIs405) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(mf.unknown_method("a", "c", 1))),
              405);
    proxy.shutdown();
  });
}

TEST(Proxy, GarbageGets400) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    for (int v = 0; v < 5; ++v)
      EXPECT_EQ(status_of(proxy.handle_wire(mf.garbage(v))), 400);
    EXPECT_EQ(proxy.stats().parse_errors(), 5u);
    proxy.shutdown();
  });
}

TEST(Proxy, InfoUpdatesDialogMedia) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    proxy.handle_wire(mf.invite("a", "bob", "c1", 1));
    EXPECT_EQ(status_of(proxy.handle_wire(
                  mf.info("a", "bob", "c1", 2, "Signal=5\r\n"))),
              200);
    auto dialog = proxy.dialogs().find("c1@client.invalid");
    ASSERT_NE(dialog, nullptr);
    EXPECT_EQ(dialog->media().updates(), 1u);
    proxy.shutdown();
  });
}

TEST(Proxy, DeregistrationExpiresBinding) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r1", 1));
    EXPECT_EQ(proxy.registrar().size(), 1u);
    EXPECT_EQ(status_of(proxy.handle_wire(
                  mf.register_request("bob", "r2", 2, /*expires=*/0))),
              200);
    EXPECT_EQ(proxy.registrar().size(), 0u);
    proxy.shutdown();
  });
}

TEST(Proxy, StatsTrackTraffic) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r", 1));
    proxy.handle_wire(mf.invite("a", "bob", "c", 1));
    proxy.handle_wire(mf.invite("a", "ghost", "c2", 1));
    EXPECT_EQ(proxy.stats().requests(), 3u);
    EXPECT_EQ(proxy.stats().responses_2xx(), 2u);
    EXPECT_EQ(proxy.stats().responses_4xx(), 1u);
    EXPECT_EQ(proxy.stats().forwards(), 1u);
    proxy.shutdown();
  });
}

TEST(Proxy, ReaperExpiresBindingsOverTime) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg = clean_config();
    cfg.binding_ttl = 100;       // bindings die fast
    cfg.reaper_interval = 50;
    Proxy proxy(cfg);
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("bob", "r", 1));
    EXPECT_EQ(proxy.registrar().size(), 1u);
    rt::sleep_ticks(1000);  // reaper runs several times
    EXPECT_EQ(proxy.registrar().size(), 0u);
    proxy.shutdown();
  });
}

TEST(Proxy, ShutdownWithoutStartIsSafe) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.shutdown();  // never started: must be a no-op, not an assert
    proxy.shutdown();
  });
}

TEST(Proxy, DoubleShutdownIsIdempotent) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.register_request("alice", "c1", 1));
    proxy.shutdown();
    proxy.shutdown();  // second call must be a no-op
  });
}

TEST(Proxy, ShutdownThenRestartServesTraffic) {
  rt::Sim sim;
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    proxy.shutdown();
    proxy.start();
    sipp::MessageFactory mf;
    EXPECT_EQ(status_of(proxy.handle_wire(mf.options("a", "c", 1))), 200);
    proxy.shutdown();
  });
}

TEST(Proxy, OverloadShedsWith503RetryAfter) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg = clean_config();
    cfg.overload.tx_watermark = 1;
    Proxy proxy(cfg);
    proxy.start();
    sipp::MessageFactory mf;
    // First INVITE occupies the only transaction slot (no ACK, so it stays
    // in Completed); the second must be shed statelessly.
    EXPECT_EQ(status_of(proxy.handle_wire(mf.invite("a", "ghost", "c1", 1))),
              404);
    const std::string shed = proxy.handle_wire(mf.invite("b", "ghost", "c2", 1));
    EXPECT_EQ(status_of(shed), 503);
    EXPECT_NE(shed.find("Retry-After: 5"), std::string::npos);
    EXPECT_EQ(proxy.stats().sheds(), 1u);
    EXPECT_EQ(proxy.stats().responses_5xx(), 1u);
    EXPECT_EQ(proxy.transactions().size(), 1u);
    proxy.shutdown();
  });
}

TEST(Proxy, ShedResponseCarriesConfiguredRetryAfter) {
  rt::Sim sim;
  sim.run([&] {
    ProxyConfig cfg = clean_config();
    cfg.overload.tx_watermark = 1;
    cfg.overload.retry_after_s = 120;
    Proxy proxy(cfg);
    proxy.start();
    sipp::MessageFactory mf;
    proxy.handle_wire(mf.invite("a", "ghost", "c1", 1));
    EXPECT_NE(proxy.handle_wire(mf.invite("b", "ghost", "c2", 1))
                  .find("Retry-After: 120"),
              std::string::npos);
    proxy.shutdown();
  });
}

TEST(Proxy, CleanBuildIsRaceFreeUnderDetector) {
  // With every fault disabled and annotations honoured, the HWLC+DR
  // detector must stay quiet over a realistic mixed workload — the "all
  // warnings fixed" end state of the paper's debugging loop.
  core::HelgrindTool tool(core::HelgrindConfig::hwlc_dr());
  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = 13;
  rt::Sim sim(sim_cfg);
  sim.attach(tool);
  sim.run([&] {
    Proxy proxy(clean_config());
    proxy.start();
    sipp::MessageFactory mf;
    std::vector<rt::thread> workers;
    for (int i = 0; i < 6; ++i)
      workers.emplace_back([&proxy, &mf, i] {
        const std::string user = "u" + std::to_string(i);
        proxy.handle_wire(mf.register_request(user, "r" + user, 1));
        proxy.handle_wire(
            mf.invite("caller" + std::to_string(i), user, "c" + user, 1));
        proxy.handle_wire(mf.ack("caller" + std::to_string(i), user,
                                 "c" + user, 1));
        proxy.handle_wire(
            mf.bye("caller" + std::to_string(i), user, "c" + user, 2));
      });
    for (auto& w : workers) w.join();
    proxy.shutdown();
  });
  EXPECT_EQ(tool.reports().distinct_locations(), 0u)
      << tool.reports().render(sim.runtime());
}

}  // namespace
}  // namespace rg::sip
