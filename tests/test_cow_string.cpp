// cow_string — semantics plus the exact event pattern of Figs. 8/9.
#include <gtest/gtest.h>

#include <vector>

#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/cow_string.hpp"

namespace rg::sip {
namespace {

using rt::AccessKind;
using rt::MemoryAccess;

class AccessRecorder : public rt::Tool {
 public:
  std::vector<MemoryAccess> accesses;
  int allocs = 0, frees = 0;
  void on_access(const MemoryAccess& a) override { accesses.push_back(a); }
  void on_alloc(rt::ThreadId, rt::Addr, std::uint32_t,
                support::SiteId) override {
    ++allocs;
  }
  void on_free(rt::ThreadId, rt::Addr, std::uint32_t,
               support::SiteId) override {
    ++frees;
  }
};

TEST(CowString, BasicValueSemantics) {
  rt::Sim sim;
  sim.run([&] {
    cow_string s("hello");
    EXPECT_EQ(s.str(), "hello");
    EXPECT_EQ(s.size(), 5u);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.equals("hello"));
    EXPECT_FALSE(s.equals("world"));
    cow_string empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.use_count(), 0);
  });
}

TEST(CowString, CopySharesRep) {
  rt::Sim sim;
  sim.run([&] {
    cow_string a("shared");
    cow_string b(a);
    EXPECT_EQ(a.use_count(), 2);
    EXPECT_EQ(b.use_count(), 2);
    cow_string c(b);
    EXPECT_EQ(a.use_count(), 3);
  });
}

TEST(CowString, DestructionDropsRefcount) {
  rt::Sim sim;
  sim.run([&] {
    cow_string a("x");
    {
      cow_string b(a);
      EXPECT_EQ(a.use_count(), 2);
    }
    EXPECT_EQ(a.use_count(), 1);
  });
}

TEST(CowString, LastOwnerFreesRep) {
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  sim.run([&] {
    {
      cow_string a("x");
      cow_string b(a);
      cow_string c(std::move(b));
    }
  });
  EXPECT_EQ(rec.allocs, 1);
  EXPECT_EQ(rec.frees, 1);
}

TEST(CowString, AppendUnsharesFirst) {
  rt::Sim sim;
  sim.run([&] {
    cow_string a("base");
    cow_string b(a);
    b.append("-suffix");
    EXPECT_EQ(a.str(), "base");
    EXPECT_EQ(b.str(), "base-suffix");
    EXPECT_EQ(a.use_count(), 1);
    EXPECT_EQ(b.use_count(), 1);
  });
}

TEST(CowString, AppendInPlaceWhenUnique) {
  rt::Sim sim;
  sim.run([&] {
    cow_string a("x");
    a.append("y");
    EXPECT_EQ(a.str(), "xy");
    EXPECT_EQ(a.use_count(), 1);
  });
}

TEST(CowString, AssignmentReleasesOld) {
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  sim.run([&] {
    cow_string a("first");
    cow_string b("second");
    a = b;
    EXPECT_EQ(a.str(), "second");
    EXPECT_EQ(b.use_count(), 2);
  });
  EXPECT_EQ(rec.allocs, 2);
  EXPECT_EQ(rec.frees, 2);
}

TEST(CowString, SelfAssignmentSafe) {
  rt::Sim sim;
  sim.run([&] {
    cow_string a("self");
    a = a;
    EXPECT_EQ(a.str(), "self");
    EXPECT_EQ(a.use_count(), 1);
  });
}

TEST(CowString, MoveDoesNotTouchRefcount) {
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  sim.run([&] {
    cow_string a("m");
    rec.accesses.clear();
    cow_string b(std::move(a));
    // A move transfers the pointer: no refcount events at all.
    EXPECT_TRUE(rec.accesses.empty());
    EXPECT_EQ(b.use_count(), 1);
  });
}

TEST(CowString, CopyEmitsPlainReadThenLockedWrite) {
  // The §4.2.2 signature: "the read accesses preceding this write are not
  // using the lock".
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  sim.run([&] {
    cow_string a("rc");
    rec.accesses.clear();
    cow_string b(a);
    ASSERT_GE(rec.accesses.size(), 2u);
    EXPECT_EQ(rec.accesses[0].kind, AccessKind::Read);
    EXPECT_FALSE(rec.accesses[0].bus_locked);  // _M_is_leaked
    EXPECT_EQ(rec.accesses[1].kind, AccessKind::Write);
    EXPECT_TRUE(rec.accesses[1].bus_locked);  // _M_grab: lock xadd
    EXPECT_EQ(rec.accesses[0].addr, rec.accesses[1].addr);
  });
}

TEST(CowString, DisposeEmitsLockedDecrement) {
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  sim.run([&] {
    auto* a = new cow_string("d");
    rec.accesses.clear();
    delete a;
    ASSERT_GE(rec.accesses.size(), 1u);
    EXPECT_EQ(rec.accesses[0].kind, AccessKind::Write);
    EXPECT_TRUE(rec.accesses[0].bus_locked);
  });
}

TEST(CowString, ConcurrentCopiesKeepCountConsistent) {
  // The refcount really is bus-locked, so heavy concurrent copying must
  // never corrupt it (this is why the Fig. 9 warning is a FALSE positive).
  rt::SimConfig cfg;
  cfg.sched.seed = 11;
  rt::Sim sim(cfg);
  sim.run([&] {
    cow_string original("contents");
    std::vector<rt::thread> threads;
    for (int i = 0; i < 6; ++i)
      threads.emplace_back([&] {
        for (int k = 0; k < 10; ++k) {
          cow_string copy(original);
          (void)copy.str();
        }
      });
    for (auto& t : threads) t.join();
    EXPECT_EQ(original.use_count(), 1);
  });
}

TEST(CowString, Fig8StringtestShape) {
  // The full Fig. 8 program shape (worker copies, main copies after a
  // sleep) must run to completion with balanced allocation.
  AccessRecorder rec;
  rt::Sim sim;
  sim.attach(rec);
  const rt::SimResult r = sim.run([&] {
    cow_string text("contents");
    rt::thread worker([&] { cow_string local = text; (void)local.size(); },
                      "worker");
    rt::sleep_ticks(10);
    cow_string text_copy = text;  // <- the reported conflict in Fig. 8
    worker.join();
  });
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(rec.allocs, rec.frees);
}

}  // namespace
}  // namespace rg::sip
