// SIP wire parser: grammar coverage and serialize/parse round trips.
#include <gtest/gtest.h>

#include "sip/parser.hpp"
#include "sipp/scenario.hpp"
#include "support/prng.hpp"

namespace rg::sip {
namespace {

constexpr const char* kInvite =
    "INVITE sip:bob@example.com SIP/2.0\r\n"
    "Via: SIP/2.0/UDP client.invalid:5060;branch=z9hG4bK-77\r\n"
    "Max-Forwards: 70\r\n"
    "From: \"Alice\" <sip:alice@example.com>;tag=123\r\n"
    "To: <sip:bob@example.com>\r\n"
    "Call-ID: call-1@client.invalid\r\n"
    "CSeq: 314159 INVITE\r\n"
    "Content-Type: application/sdp\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n";

TEST(Parser, ParsesRequest) {
  const ParseResult r = parse_message(kInvite);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.message->is_request());
  const auto& req = static_cast<const SipRequest&>(*r.message);
  EXPECT_EQ(req.method(), Method::Invite);
  EXPECT_EQ(req.uri(), "sip:bob@example.com");
  EXPECT_EQ(req.header("call-id").str(), "call-1@client.invalid");
  EXPECT_EQ(req.body().str(), "v=0\n");  // Content-Length: 4 covers the newline
}

TEST(Parser, ParsesResponse) {
  const ParseResult r = parse_message(
      "SIP/2.0 180 Ringing\r\nTo: <sip:b@c>;tag=9\r\n\r\n");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_FALSE(r.message->is_request());
  const auto& resp = static_cast<const SipResponse&>(*r.message);
  EXPECT_EQ(resp.status(), 180);
  EXPECT_EQ(resp.reason(), "Ringing");
}

TEST(Parser, LfOnlyLineEndings) {
  const ParseResult r = parse_message(
      "OPTIONS sip:x SIP/2.0\nVia: v;branch=z9hG4bK-1\nFrom: <sip:a@b>\n"
      "To: <sip:a@b>\nCall-ID: c\nCSeq: 1 OPTIONS\n\n");
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(Parser, HeaderFolding) {
  const ParseResult r = parse_message(
      "INVITE sip:x@y SIP/2.0\r\n"
      "Via: SIP/2.0/UDP h;branch=z9hG4bK-1\r\n"
      "From: <sip:a@b>\r\nTo: <sip:x@y>\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n"
      "Subject: first part\r\n continued here\r\n\tand more\r\n"
      "\r\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.message->header("subject").str(),
            "first part continued here and more");
}

TEST(Parser, MissingMandatoryHeaderRejected) {
  const ParseResult r = parse_message(
      "INVITE sip:x@y SIP/2.0\r\nVia: v;branch=z9hG4bK-1\r\n\r\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("mandatory"), std::string::npos);
}

TEST(Parser, MalformedStartLinesRejected) {
  EXPECT_FALSE(parse_message("").ok());
  EXPECT_FALSE(parse_message("\r\n\r\n").ok());
  EXPECT_FALSE(parse_message("GARBAGE\r\n\r\n").ok());
  EXPECT_FALSE(parse_message("SIP/2.0 xyz Bad\r\n\r\n").ok());
  EXPECT_FALSE(parse_message("SIP/2.0 42 TooLow\r\n\r\n").ok());
  EXPECT_FALSE(
      parse_message("INVITE sip:x HTTP/1.1\r\nVia: v\r\n\r\n").ok());
}

TEST(Parser, BadHeaderLineRejected) {
  const ParseResult r = parse_message(
      "INVITE sip:x@y SIP/2.0\r\nthis line has no colon\r\n\r\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, BadContentLengthRejected) {
  const ParseResult r = parse_message(
      "INVITE sip:x@y SIP/2.0\r\nContent-Length: banana\r\n\r\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, TruncatedBodyRejected) {
  const ParseResult r = parse_message(
      "SIP/2.0 200 OK\r\nContent-Length: 100\r\n\r\nshort");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("truncated"), std::string::npos);
}

TEST(Parser, BodyHonoursContentLength) {
  const ParseResult r = parse_message(
      "SIP/2.0 200 OK\r\nContent-Length: 3\r\n\r\nabcdef");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.message->body().str(), "abc");
}

// --- URI grammar ----------------------------------------------------------------

TEST(Uri, BasicForms) {
  const SipUri u = parse_uri("sip:alice@example.com");
  ASSERT_TRUE(u.valid);
  EXPECT_EQ(u.scheme, "sip");
  EXPECT_EQ(u.user, "alice");
  EXPECT_EQ(u.host, "example.com");
  EXPECT_EQ(u.port, 5060);
  EXPECT_EQ(u.aor(), "alice@example.com");
}

TEST(Uri, PortAndParams) {
  const SipUri u = parse_uri("sips:bob@host.net:5071;transport=tcp;lr");
  ASSERT_TRUE(u.valid);
  EXPECT_EQ(u.scheme, "sips");
  EXPECT_EQ(u.port, 5071);
  EXPECT_EQ(u.params, "transport=tcp;lr");
}

TEST(Uri, NoUser) {
  const SipUri u = parse_uri("sip:registrar.example.com");
  ASSERT_TRUE(u.valid);
  EXPECT_TRUE(u.user.empty());
  EXPECT_EQ(u.host, "registrar.example.com");
}

TEST(Uri, PasswordDropped) {
  const SipUri u = parse_uri("sip:carol:secret@example.org");
  ASSERT_TRUE(u.valid);
  EXPECT_EQ(u.user, "carol");
}

TEST(Uri, Invalid) {
  EXPECT_FALSE(parse_uri("http://example.com").valid);
  EXPECT_FALSE(parse_uri("sip:").valid);
  EXPECT_FALSE(parse_uri("sip:user@host:99999").valid);
  EXPECT_FALSE(parse_uri("sip:user@host:0").valid);
  EXPECT_FALSE(parse_uri("").valid);
}

TEST(Uri, NameAddrForms) {
  EXPECT_EQ(parse_name_addr("\"Bob\" <sip:bob@b.com>;tag=x").aor(),
            "bob@b.com");
  EXPECT_EQ(parse_name_addr("<sip:a@b>").aor(), "a@b");
  EXPECT_EQ(parse_name_addr("sip:plain@addr;tag=1").aor(), "plain@addr");
  EXPECT_FALSE(parse_name_addr("\"Broken <sip:x@y").valid);
}

TEST(Uri, HeaderTag) {
  EXPECT_EQ(header_tag("<sip:a@b>;tag=abc"), "abc");
  EXPECT_EQ(header_tag("\"N\" <sip:a@b>;x=1;tag=zz"), "zz");
  EXPECT_EQ(header_tag("<sip:a@b>"), "");
  EXPECT_EQ(header_tag("sip:a@b;tag=direct"), "direct");
}

TEST(CSeqGrammar, Parse) {
  const CSeq c = parse_cseq("314159 INVITE");
  ASSERT_TRUE(c.valid);
  EXPECT_EQ(c.seq, 314159u);
  EXPECT_EQ(c.method, Method::Invite);
  EXPECT_FALSE(parse_cseq("xyz INVITE").valid);
  EXPECT_FALSE(parse_cseq("1 NOTAMETHOD").valid);
  EXPECT_FALSE(parse_cseq("").valid);
}

TEST(ViaGrammar, BranchExtraction) {
  EXPECT_EQ(via_branch("SIP/2.0/UDP h:5060;branch=z9hG4bK-abc;rport"),
            "z9hG4bK-abc");
  EXPECT_EQ(via_branch("SIP/2.0/UDP h:5060"), "");
  EXPECT_EQ(via_branch("SIP/2.0/UDP h;Branch=case"), "case");
}

// --- round trips -----------------------------------------------------------------

TEST(RoundTrip, SerializeThenParse) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Register, "sip:example.com");
    req.add_header("via", cow_string("SIP/2.0/UDP c;branch=z9hG4bK-1"));
    req.add_header("from", cow_string("<sip:u@example.com>;tag=t"));
    req.add_header("to", cow_string("<sip:u@example.com>"));
    req.add_header("call-id", cow_string("cid"));
    req.add_header("cseq", cow_string("7 REGISTER"));
    req.set_body(cow_string("payload"));
    const ParseResult r = parse_message(req.serialize());
    ASSERT_TRUE(r.ok()) << r.error;
    const auto& back = static_cast<const SipRequest&>(*r.message);
    EXPECT_EQ(back.method(), Method::Register);
    EXPECT_EQ(back.header("cseq").str(), "7 REGISTER");
    EXPECT_EQ(back.body().str(), "payload");
    // Idempotence of the wire form.
    EXPECT_EQ(back.serialize(), req.serialize());
  });
}

/// Property sweep: every message the SIPp factory produces must parse (or
/// be deliberate garbage).
class FactoryRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FactoryRoundTrip, GeneratedMessagesParse) {
  sipp::MessageFactory mf;
  const int i = GetParam();
  const std::string user = "user" + std::to_string(i);
  const std::string peer = "peer" + std::to_string(i);
  const std::string call = "call-" + std::to_string(i);
  for (const std::string& wire :
       {mf.register_request(user, call, 1),
        mf.invite(user, peer, call, 1),
        mf.ack(user, peer, call, 1),
        mf.bye(user, peer, call, 2),
        mf.cancel(user, peer, call, 1),
        mf.options(user, call, 1),
        mf.info(user, peer, call, 3, "Signal=1\r\n"),
        mf.unknown_method(user, call, 1)}) {
    const ParseResult r = parse_message(wire);
    EXPECT_TRUE(r.ok()) << r.error << "\n" << wire;
    if (r.ok() && r.message->is_request()) {
      const auto& req = static_cast<const SipRequest&>(*r.message);
      const std::string branch = via_branch(req.header("via").str());
      EXPECT_FALSE(branch.empty()) << wire;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mix, FactoryRoundTrip, ::testing::Range(0, 8));

TEST(Factory, AckSharesInviteBranch) {
  sipp::MessageFactory mf;
  const auto invite = parse_message(mf.invite("a", "b", "c1", 1));
  const auto ack = parse_message(mf.ack("a", "b", "c1", 1));
  ASSERT_TRUE(invite.ok() && ack.ok());
  EXPECT_EQ(via_branch(invite.message->header("via").str()),
            via_branch(ack.message->header("via").str()));
}

// --- deterministic fuzz smoke -----------------------------------------------------
//
// parse_message must be total: any byte soup either parses or yields a
// ParseResult error — never a crash, never an out-of-range read. The corpus
// is seeded so a failure reproduces exactly.

TEST(ParserFuzz, MutatedWireNeverCrashes) {
  sipp::MessageFactory mf;
  support::Xoshiro256 rng(0xBADC0DE);
  const std::vector<std::string> seeds = {
      mf.register_request("alice", "fz1", 1),
      mf.invite("alice", "bob", "fz2", 1),
      mf.bye("alice", "bob", "fz2", 2),
      mf.options("alice", "fz3", 1),
      "SIP/2.0 200 OK\r\nContent-Length: 3\r\n\r\nabc",
  };
  for (const std::string& seed : seeds) {
    for (int round = 0; round < 100; ++round) {
      std::string wire = seed;
      const std::uint64_t op = rng.below(4);
      if (op == 0) {
        wire.resize(rng.below(wire.size() + 1));
      } else if (op == 1) {
        for (int flips = 0; flips < 6 && !wire.empty(); ++flips)
          wire[rng.below(wire.size())] = static_cast<char>(rng.below(256));
      } else if (op == 2 && !wire.empty()) {
        const std::size_t at = rng.below(wire.size());
        wire.erase(at, rng.below(wire.size() - at + 1));
      } else if (!wire.empty()) {
        const std::size_t at = rng.below(wire.size());
        wire.insert(at, wire.substr(at, rng.below(64)));
      }
      const ParseResult r = parse_message(wire);
      if (!r.ok())
        EXPECT_FALSE(r.error.empty()) << wire;
      else
        ASSERT_NE(r.message, nullptr) << wire;
    }
  }
}

TEST(ParserFuzz, RandomByteSoupIsRejectedOrParsed) {
  support::Xoshiro256 rng(0x50157);
  for (int round = 0; round < 200; ++round) {
    std::string wire(rng.below(300), '\0');
    for (char& c : wire) c = static_cast<char>(rng.below(256));
    const ParseResult r = parse_message(wire);
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Factory, GarbageVariantsDoNotParseAsValidSip) {
  sipp::MessageFactory mf;
  for (int v = 0; v < 5; ++v) {
    const ParseResult r = parse_message(mf.garbage(v));
    EXPECT_FALSE(r.ok()) << "variant " << v;
  }
}

}  // namespace
}  // namespace rg::sip
