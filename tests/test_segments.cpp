// Thread-segment graph: the Fig. 2 scenarios and happens-before queries.
#include <gtest/gtest.h>

#include "shadow/segments.hpp"

namespace rg::shadow {
namespace {

TEST(Segments, InitialThread) {
  SegmentGraph g;
  const SegmentId s = g.start_thread(0, kNoSegment);
  EXPECT_EQ(g.current(0), s);
  EXPECT_EQ(g.thread_of(s), 0u);
  EXPECT_EQ(g.segment_count(), 1u);
}

TEST(Segments, SameThreadSegmentsAreOrdered) {
  SegmentGraph g;
  const SegmentId s1 = g.start_thread(0, kNoSegment);
  const SegmentId s2 = g.advance(0);
  const SegmentId s3 = g.advance(0);
  EXPECT_TRUE(g.happens_before(s1, s2));
  EXPECT_TRUE(g.happens_before(s2, s3));
  EXPECT_TRUE(g.happens_before(s1, s3));
  EXPECT_FALSE(g.happens_before(s3, s1));
  EXPECT_FALSE(g.happens_before(s1, s1));
}

TEST(Segments, CreateOrdersParentPrefixBeforeChild) {
  SegmentGraph g;
  const SegmentId main1 = g.start_thread(0, kNoSegment);
  // Fig. 2: create splits the parent and starts the child after main1.
  const SegmentId child = g.start_thread(1, main1);
  const SegmentId main2 = g.advance(0);
  EXPECT_TRUE(g.happens_before(main1, child));
  EXPECT_TRUE(g.happens_before(main1, main2));
  // The post-create parent segment is concurrent with the child.
  EXPECT_TRUE(g.concurrent(main2, child));
}

TEST(Segments, JoinOrdersChildBeforeParentSuffix) {
  SegmentGraph g;
  const SegmentId main1 = g.start_thread(0, kNoSegment);
  const SegmentId child = g.start_thread(1, main1);
  const SegmentId main2 = g.advance(0);
  // join: the parent's next segment happens-after the child's last.
  const SegmentId main3 = g.advance(0, child);
  EXPECT_TRUE(g.happens_before(child, main3));
  EXPECT_TRUE(g.happens_before(main2, main3));
  EXPECT_TRUE(g.concurrent(child, main2));
}

TEST(Segments, Fig2ThreeThreadScenario) {
  // Thread 1: TS1 create TS2 ... join TS3(merged) TS4
  // Thread 2:      TS1........TS2(after T3 join)
  // Thread 3:        TS1 (created by T2? in the figure by T1)
  // We reproduce the essential claims: segments separated by create/join
  // are ordered; unseparated ones overlap.
  SegmentGraph g;
  const SegmentId t1a = g.start_thread(0, kNoSegment);
  const SegmentId t2a = g.start_thread(1, t1a);
  const SegmentId t1b = g.advance(0);
  const SegmentId t3a = g.start_thread(2, t2a);
  const SegmentId t2b = g.advance(1);
  // t3 finishes; t2 joins it.
  const SegmentId t2c = g.advance(1, t3a);
  // t2 finishes; t1 joins it.
  const SegmentId t1c = g.advance(0, t2c);

  EXPECT_TRUE(g.happens_before(t1a, t3a));  // transitively via create chain
  EXPECT_TRUE(g.happens_before(t3a, t2c));
  EXPECT_TRUE(g.happens_before(t3a, t1c));
  EXPECT_TRUE(g.happens_before(t2a, t1c));
  EXPECT_TRUE(g.concurrent(t1b, t2b));
  EXPECT_TRUE(g.concurrent(t1b, t3a));
  EXPECT_FALSE(g.happens_before(t1c, t2b));
}

TEST(Segments, HandoffEdge) {
  // Message-passing extension: put/get segments.
  SegmentGraph g;
  const SegmentId prod1 = g.start_thread(0, kNoSegment);
  const SegmentId cons1 = g.start_thread(1, prod1);
  // Producer puts: its segment ends.
  const SegmentId prod2 = g.advance(0);
  // The put happens during prod2 and ends it; the consumer's get starts a
  // segment that happens-after prod2.
  const SegmentId prod3 = g.advance(0);  // put ends prod2
  const SegmentId cons2 = g.advance(1, prod2);
  EXPECT_TRUE(g.happens_before(prod2, cons2));
  EXPECT_TRUE(g.happens_before(prod1, cons2));
  EXPECT_TRUE(g.concurrent(prod3, cons2));
  EXPECT_TRUE(g.concurrent(prod2, cons1));
}

TEST(Segments, OwnershipChainThroughJoinBatches) {
  // The pattern that makes the thread-per-request dispatcher silent:
  // worker created, works, joined; the next worker happens-after it.
  SegmentGraph g;
  const SegmentId main1 = g.start_thread(0, kNoSegment);
  const SegmentId w1 = g.start_thread(1, main1);
  g.advance(0);
  const SegmentId main3 = g.advance(0, w1);  // join w1
  const SegmentId w2 = g.start_thread(2, main3);
  g.advance(0);
  // Everything w1 did is visible to w2.
  EXPECT_TRUE(g.happens_before(w1, w2));
}

TEST(Segments, DescribeMentionsThread) {
  SegmentGraph g;
  const SegmentId s = g.start_thread(3, kNoSegment);
  EXPECT_NE(g.describe(s).find("thread 3"), std::string::npos);
}

TEST(Segments, ManyThreadsPairwiseConcurrent) {
  SegmentGraph g;
  const SegmentId main = g.start_thread(0, kNoSegment);
  std::vector<SegmentId> children;
  SegmentId creator = main;
  for (rt::ThreadId t = 1; t <= 8; ++t) {
    children.push_back(g.start_thread(t, creator));
    creator = g.advance(0);
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    for (std::size_t j = 0; j < children.size(); ++j) {
      if (i != j) {
        EXPECT_TRUE(g.concurrent(children[i], children[j]));
      }
    }
  }
}

TEST(Segments, HappensBeforeIsTransitiveAcrossJoins) {
  SegmentGraph g;
  const SegmentId main1 = g.start_thread(0, kNoSegment);
  const SegmentId a = g.start_thread(1, main1);
  g.advance(0);
  const SegmentId main3 = g.advance(0, a);        // join a
  const SegmentId b = g.start_thread(2, main3);   // b after join
  EXPECT_TRUE(g.happens_before(a, b));
  EXPECT_TRUE(g.happens_before(main1, b));
}

}  // namespace
}  // namespace rg::shadow
