// Randomised-program properties: generate small multi-threaded programs
// and check detector-level invariants that must hold for ANY program:
//   1. the simulation completes and is deterministic per seed,
//   2. every address the refined Helgrind flags is also flagged by the
//      unrefined Eraser algorithm (the refinements only REMOVE warnings),
//   3. a fully lock-disciplined program is never flagged,
//   4. detector verdicts are a pure function of the event stream (running
//      twice with the same seed yields identical location keys).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/eraser.hpp"
#include "core/helgrind.hpp"
#include "rt/memory.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"
#include "shadow/shadow_map.hpp"
#include "support/prng.hpp"

namespace rg {
namespace {

struct ProgramSpec {
  int threads = 3;
  int ops_per_thread = 30;
  bool disciplined = false;  // every access under the one global lock
  std::uint64_t program_seed = 1;
  /// Hot-path optimizations (lockset cache, shadow TLB, scheduler fast
  /// path). Must be invisible: verdicts identical on or off.
  bool optimized = true;
};

struct RunResult {
  std::set<rt::Addr> helgrind_addrs;
  std::set<rt::Addr> eraser_addrs;
  std::vector<std::string> helgrind_keys;
  bool completed = false;
  std::uint64_t steps = 0;
};

/// One random program: `threads` workers doing a random mix of locked and
/// unlocked reads/writes over four shared cells.
RunResult run_program(const ProgramSpec& spec, std::uint64_t sched_seed) {
  core::HelgrindConfig helgrind_cfg = core::HelgrindConfig::original();
  helgrind_cfg.lockset_cache = spec.optimized;
  helgrind_cfg.shadow_tlb = spec.optimized;
  core::HelgrindTool helgrind(helgrind_cfg);
  core::EraserBasicConfig eraser_cfg;
  eraser_cfg.lockset_cache = spec.optimized;
  eraser_cfg.shadow_tlb = spec.optimized;
  core::EraserBasicTool eraser(eraser_cfg);

  rt::SimConfig cfg;
  cfg.sched.seed = sched_seed;
  cfg.sched.fast_path = spec.optimized;
  rt::Sim sim(cfg);
  sim.attach(helgrind);
  sim.attach(eraser);

  const rt::SimResult sim_result = sim.run([&] {
    rt::mutex mu("global");
    // Heap cells so both detectors see alloc events and fresh state.
    auto* cells = new rt::tracked<int>[4];
    rt::mem_alloc(cells, 4 * sizeof(rt::tracked<int>),
                  std::source_location::current());

    auto worker = [&](int id) {
      support::Xoshiro256 rng(spec.program_seed * 131 +
                              static_cast<std::uint64_t>(id));
      for (int op = 0; op < spec.ops_per_thread; ++op) {
        auto& cell = cells[rng.below(4)];
        const bool locked = spec.disciplined || rng.chance(1, 2);
        const bool is_write = rng.chance(1, 2);
        if (locked) {
          rt::lock_guard g(mu);
          if (is_write)
            cell.store(id);
          else
            (void)cell.load();
        } else {
          if (is_write)
            cell.store(-id);
          else
            (void)cell.load();
        }
        if (rng.chance(1, 4)) rt::yield();
      }
    };

    std::vector<rt::thread> workers;
    for (int t = 0; t < spec.threads; ++t)
      workers.emplace_back([&worker, t] { worker(t); });
    for (auto& w : workers) w.join();

    rt::mem_free(cells, std::source_location::current());
    delete[] cells;
  });

  RunResult out;
  out.completed = sim_result.completed();
  out.steps = sim_result.steps;
  for (const core::Report& r : helgrind.reports().reports())
    out.helgrind_addrs.insert(shadow::granule_of(r.access.addr));
  for (const core::Report& r : eraser.reports().reports())
    out.eraser_addrs.insert(shadow::granule_of(r.access.addr));
  out.helgrind_keys = helgrind.reports().location_keys();
  return out;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, CompletesAndIsDeterministic) {
  ProgramSpec spec;
  spec.program_seed = GetParam();
  const RunResult a = run_program(spec, GetParam() * 3 + 1);
  const RunResult b = run_program(spec, GetParam() * 3 + 1);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.helgrind_keys, b.helgrind_keys);
  // (Raw addresses differ across runs — the heap moves — so determinism is
  // asserted on steps and location keys, not on addresses.)
  EXPECT_EQ(a.helgrind_addrs.size(), b.helgrind_addrs.size());
}

TEST_P(RandomPrograms, RefinementsOnlyRemoveWarnings) {
  // Every granule the refined detector flags must be flagged by the
  // unrefined one: the states/segments only suppress, never invent.
  ProgramSpec spec;
  spec.program_seed = GetParam();
  const RunResult r = run_program(spec, GetParam() * 7 + 5);
  for (rt::Addr granule : r.helgrind_addrs)
    EXPECT_TRUE(r.eraser_addrs.contains(granule))
        << "granule " << granule << " flagged by Helgrind only";
}

TEST_P(RandomPrograms, OptimizationsAreInvisible) {
  // The lockset cache, shadow TLB and scheduler fast path are pure
  // memoisation: with all three disabled the same program under the same
  // schedule seed must take the same number of steps and produce the same
  // warning keys from both detectors.
  ProgramSpec spec;
  spec.program_seed = GetParam();
  ProgramSpec plain = spec;
  plain.optimized = false;
  const RunResult fast = run_program(spec, GetParam() * 5 + 2);
  const RunResult slow = run_program(plain, GetParam() * 5 + 2);
  EXPECT_TRUE(fast.completed);
  EXPECT_EQ(fast.steps, slow.steps);
  EXPECT_EQ(fast.helgrind_keys, slow.helgrind_keys);
  EXPECT_EQ(fast.helgrind_addrs.size(), slow.helgrind_addrs.size());
  EXPECT_EQ(fast.eraser_addrs.size(), slow.eraser_addrs.size());
}

TEST_P(RandomPrograms, DisciplinedProgramIsClean) {
  ProgramSpec spec;
  spec.program_seed = GetParam();
  spec.disciplined = true;
  const RunResult r = run_program(spec, GetParam() * 11 + 3);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.helgrind_addrs.empty());
  // The basic algorithm flags nothing either: every access holds the lock.
  EXPECT_TRUE(r.eraser_addrs.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(RandomProgramsCross, DifferentSchedulesDifferentWarnings) {
  // Schedule-dependence is real: across schedules the racy programs
  // produce varying (but always deterministic) warning sets.
  ProgramSpec spec;
  spec.program_seed = 42;
  std::set<std::vector<std::string>> distinct;
  for (std::uint64_t sched = 1; sched <= 6; ++sched)
    distinct.insert(run_program(spec, sched).helgrind_keys);
  EXPECT_GE(distinct.size(), 2u);
}

TEST(RandomProgramsCross, MoreThreadsMoreSteps) {
  ProgramSpec small, big;
  small.program_seed = big.program_seed = 5;
  small.threads = 2;
  big.threads = 6;
  EXPECT_LT(run_program(small, 9).steps, run_program(big, 9).steps);
}

}  // namespace
}  // namespace rg
