// SIP proxy subsystems: registrar, domain data, transactions, dialogs,
// stats, audit/pool, watchdog, time utilities.
#include <gtest/gtest.h>

#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/audit.hpp"
#include "sip/deadlock_monitor.hpp"
#include "sip/dialog.hpp"
#include "sip/domain_data.hpp"
#include "sip/pool_alloc.hpp"
#include "sip/registrar.hpp"
#include "sip/stats.hpp"
#include "sip/time_utils.hpp"
#include "sip/transaction.hpp"

namespace rg::sip {
namespace {

// --- registrar ---------------------------------------------------------------

TEST(RegistrarTest, RegisterAndLookup) {
  rt::Sim sim;
  sim.run([&] {
    Registrar reg;
    const auto contacts =
        reg.register_binding("alice@example.com", "<sip:alice@pc1>", 1000);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_EQ(contacts[0].str(), "<sip:alice@pc1>");
    EXPECT_EQ(reg.lookup("alice@example.com").str(), "<sip:alice@pc1>");
    EXPECT_TRUE(reg.lookup("nobody@example.com").empty());
    EXPECT_EQ(reg.size(), 1u);
  });
}

TEST(RegistrarTest, RefreshKeepsOneBinding) {
  rt::Sim sim;
  sim.run([&] {
    Registrar reg;
    reg.register_binding("a@d", "<sip:a@h1>", 100);
    reg.register_binding("a@d", "<sip:a@h1>", 2000);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.expire(500), 0u);  // refreshed past 500
    EXPECT_EQ(reg.size(), 1u);
  });
}

TEST(RegistrarTest, ExpireRemovesOldBindings) {
  rt::Sim sim;
  sim.run([&] {
    Registrar reg;
    reg.register_binding("a@d", "<sip:a>", 100);
    reg.register_binding("b@d", "<sip:b>", 900);
    EXPECT_EQ(reg.expire(500), 1u);
    EXPECT_TRUE(reg.lookup("a@d").empty());
    EXPECT_FALSE(reg.lookup("b@d").empty());
  });
}

TEST(RegistrarTest, ClearEmptiesEverything) {
  rt::Sim sim;
  sim.run([&] {
    Registrar reg;
    reg.register_binding("a@d", "<sip:a>", 100);
    reg.register_binding("b@d", "<sip:b>", 100);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
  });
}

TEST(RegistrarTest, ConcurrentRegistrationsSafe) {
  rt::Sim sim;
  const rt::SimResult r = sim.run([&] {
    Registrar reg;
    std::vector<rt::thread> threads;
    for (int i = 0; i < 6; ++i)
      threads.emplace_back([&reg, i] {
        const std::string aor = "user" + std::to_string(i) + "@d";
        reg.register_binding(aor, "<sip:" + aor + ">", 1000);
        (void)reg.lookup(aor);
      });
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.size(), 6u);
    reg.clear();
  });
  EXPECT_TRUE(r.completed());
}

// --- domain data (Fig. 7) -------------------------------------------------------

TEST(DomainDataTest, AddAndFind) {
  rt::Sim sim;
  sim.run([&] {
    ServerModulesManagerImpl mgr;
    mgr.add_domain("example.com", "sip:core;lr", 70);
    DomainData* d = mgr.find_domain("example.com");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->route().str(), "sip:core;lr");
    EXPECT_EQ(d->max_forwards(), 70u);
    EXPECT_EQ(mgr.find_domain("other.org"), nullptr);
    mgr.clear(true);
  });
}

TEST(DomainDataTest, BuggyAccessorReturnsLiveReference) {
  rt::Sim sim;
  sim.run([&] {
    ServerModulesManagerImpl mgr;
    mgr.add_domain("example.com", "r", 70);
    DomainMap& map = mgr.getDomainData();  // Fig. 7: guard already released
    EXPECT_EQ(map.size(), 1u);
    mgr.add_domain("second.org", "r2", 70);
    EXPECT_EQ(map.size(), 2u);  // alias of the internal map
    mgr.clear(true);
  });
}

TEST(DomainDataTest, UnprotectedLookupFindsData) {
  rt::Sim sim;
  sim.run([&] {
    ServerModulesManagerImpl mgr;
    mgr.add_domain("example.com", "r", 70);
    EXPECT_NE(mgr.find_domain_unprotected("example.com"), nullptr);
    EXPECT_EQ(mgr.find_domain_unprotected("nope"), nullptr);
    mgr.clear(true);
  });
}

TEST(DomainDataTest, ReplaceDeletesOld) {
  rt::Sim sim;
  sim.run([&] {
    ServerModulesManagerImpl mgr;
    mgr.add_domain("d", "route-1", 70);
    mgr.add_domain("d", "route-2", 60);
    EXPECT_EQ(mgr.size(), 1u);
    EXPECT_EQ(mgr.find_domain("d")->route().str(), "route-2");
    mgr.clear(true);
  });
}

// --- transactions -----------------------------------------------------------------

TEST(TransactionTest, InviteLifecycle) {
  rt::Sim sim;
  sim.run([&] {
    InviteServerTransaction tx("z9hG4bK-1");
    EXPECT_EQ(tx.state(), TxState::Proceeding);
    tx.on_response(180);
    EXPECT_EQ(tx.state(), TxState::Proceeding);
    tx.on_response(486);
    EXPECT_EQ(tx.state(), TxState::Completed);
    tx.on_request(Method::Ack);
    EXPECT_TRUE(tx.terminated());
  });
}

TEST(TransactionTest, Invite2xxTerminatesImmediately) {
  rt::Sim sim;
  sim.run([&] {
    InviteServerTransaction tx("z9hG4bK-2");
    tx.on_response(200);
    EXPECT_TRUE(tx.terminated());
  });
}

TEST(TransactionTest, InviteCancelMovesToCompleted) {
  rt::Sim sim;
  sim.run([&] {
    InviteServerTransaction tx("z9hG4bK-3");
    EXPECT_FALSE(tx.on_request(Method::Cancel));  // CANCEL gets own response
    EXPECT_EQ(tx.state(), TxState::Completed);
  });
}

TEST(TransactionTest, NonInviteLifecycle) {
  rt::Sim sim;
  sim.run([&] {
    NonInviteServerTransaction tx("z9hG4bK-4", Method::Register);
    EXPECT_EQ(tx.state(), TxState::Trying);
    tx.on_response(100);
    EXPECT_EQ(tx.state(), TxState::Proceeding);
    tx.on_response(200);
    EXPECT_TRUE(tx.terminated());
  });
}

TEST(TransactionTest, RetransmissionAbsorbed) {
  rt::Sim sim;
  sim.run([&] {
    NonInviteServerTransaction tx("z9hG4bK-5", Method::Options);
    EXPECT_TRUE(tx.on_request(Method::Options));
    tx.on_response(200);
    EXPECT_FALSE(tx.on_request(Method::Options));  // terminated: not absorbed
  });
}

TEST(TransactionTest, RetainedMessages) {
  rt::Sim sim;
  sim.run([&] {
    TransactionTable table;
    bool created = false;
    auto tx = table.find_or_create("b1", Method::Invite, created);
    EXPECT_TRUE(created);
    EXPECT_EQ(tx->last_response(), nullptr);
    auto req = std::make_shared<SipRequest>(Method::Invite, "sip:x@y");
    tx->retain_request(req);
    auto resp = std::make_shared<SipResponse>(200);
    tx->retain_response(resp);
    EXPECT_EQ(tx->original_request()->method(), Method::Invite);
    EXPECT_EQ(tx->last_response()->status(), 200);
    table.clear();
  });
}

TEST(TransactionTableTest, FindOrCreateByBranch) {
  rt::Sim sim;
  sim.run([&] {
    TransactionTable table;
    bool created = false;
    auto a = table.find_or_create("b1", Method::Invite, created);
    EXPECT_TRUE(created);
    auto b = table.find_or_create("b1", Method::Invite, created);
    EXPECT_FALSE(created);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(table.find("b1").get(), a.get());
    EXPECT_EQ(table.find("zzz"), nullptr);
    EXPECT_EQ(table.size(), 1u);
    table.clear();
  });
}

TEST(TransactionTableTest, ReapRemovesTerminatedOnly) {
  rt::Sim sim;
  sim.run([&] {
    TransactionTable table;
    bool created = false;
    auto live = table.find_or_create("live", Method::Invite, created);
    auto dead = table.find_or_create("dead", Method::Register, created);
    dead->on_response(200);  // terminated
    EXPECT_EQ(table.reap(), 1u);
    EXPECT_EQ(table.size(), 1u);
    EXPECT_NE(table.find("live"), nullptr);
    EXPECT_EQ(table.find("dead"), nullptr);
    (void)live;
    table.clear();
  });
}

TEST(TransactionTableTest, SharedOwnershipSurvivesReap) {
  rt::Sim sim;
  sim.run([&] {
    TransactionTable table;
    bool created = false;
    auto held = table.find_or_create("b", Method::Register, created);
    held->on_response(200);
    EXPECT_EQ(table.reap(), 1u);
    // The handle still works although the table dropped it.
    EXPECT_TRUE(held->terminated());
  });
}

// --- dialogs -----------------------------------------------------------------------

TEST(DialogTest, Lifecycle) {
  rt::Sim sim;
  sim.run([&] {
    DialogTable table;
    auto d = table.create("call-1", cow_string("v=0"), 10);
    EXPECT_EQ(d->state(), DialogState::Early);
    d->confirm();
    EXPECT_EQ(d->state(), DialogState::Confirmed);
    EXPECT_TRUE(table.terminate("call-1", 50));
    EXPECT_EQ(d->state(), DialogState::Terminated);
    EXPECT_EQ(d->billing().duration(), 40u);
    EXPECT_EQ(table.size(), 0u);
  });
}

TEST(DialogTest, CreateIsIdempotentPerCall) {
  rt::Sim sim;
  sim.run([&] {
    DialogTable table;
    auto a = table.create("c", cow_string("sdp"), 1);
    auto b = table.create("c", cow_string("other"), 2);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(table.size(), 1u);
    table.clear();
  });
}

TEST(DialogTest, TerminateUnknownReturnsFalse) {
  rt::Sim sim;
  sim.run([&] {
    DialogTable table;
    EXPECT_FALSE(table.terminate("ghost", 1));
  });
}

TEST(DialogTest, MediaRenegotiation) {
  rt::Sim sim;
  sim.run([&] {
    DialogTable table;
    auto d = table.create("c", cow_string("v=0 initial"), 1);
    d->media().update(cow_string("v=0 renegotiated"));
    EXPECT_EQ(d->media().sdp().str(), "v=0 renegotiated");
    EXPECT_EQ(d->media().updates(), 1u);
    table.clear();
  });
}

TEST(DialogTest, ConcurrentConfirmTerminate) {
  rt::SimConfig cfg;
  cfg.sched.seed = 5;
  rt::Sim sim(cfg);
  const rt::SimResult r = sim.run([&] {
    DialogTable table;
    table.create("c", cow_string("sdp"), 1);
    rt::thread acker([&] {
      if (auto d = table.find("c")) d->confirm();
    });
    rt::thread byer([&] { table.terminate("c", 9); });
    acker.join();
    byer.join();
    EXPECT_EQ(table.size(), 0u);
  });
  EXPECT_TRUE(r.completed());
}

// --- stats -------------------------------------------------------------------------

TEST(StatsTest, CountsAccumulate) {
  rt::Sim sim;
  sim.run([&] {
    ProxyStats stats(/*unprotected=*/false);
    stats.count_request();
    stats.count_request();
    stats.count_response(200);
    stats.count_response(404);
    stats.count_forward();
    stats.count_parse_error();
    EXPECT_EQ(stats.requests(), 2u);
    EXPECT_EQ(stats.responses_2xx(), 1u);
    EXPECT_EQ(stats.responses_4xx(), 1u);
    EXPECT_EQ(stats.forwards(), 1u);
    EXPECT_EQ(stats.parse_errors(), 1u);
  });
}

// --- audit log & pool -----------------------------------------------------------------

TEST(PoolTest, ForceNewNeverRecycles) {
  rt::Sim sim;
  sim.run([&] {
    ObjectPool pool(/*force_new=*/true);
    void* a = pool.acquire(32);
    pool.release(a, 32);
    void* b = pool.acquire(32);
    pool.release(b, 32);
    EXPECT_EQ(pool.recycled_count(), 0u);
  });
}

TEST(PoolTest, RecyclesSameSizeClass) {
  rt::Sim sim;
  sim.run([&] {
    ObjectPool pool(/*force_new=*/false);
    void* a = pool.acquire(32);
    pool.release(a, 32);
    void* b = pool.acquire(32);
    EXPECT_EQ(a, b);  // recycled
    EXPECT_EQ(pool.recycled_count(), 1u);
    void* c = pool.acquire(64);  // different bucket
    EXPECT_EQ(pool.recycled_count(), 1u);
    pool.release(b, 32);
    pool.release(c, 64);
  });
}

TEST(AuditLogTest, AppendAndTrim) {
  rt::Sim sim;
  sim.run([&] {
    ObjectPool pool(true);
    AuditLog log("test-log", pool);
    for (int i = 0; i < 10; ++i)
      log.append(static_cast<std::uint64_t>(i), 1);
    EXPECT_EQ(log.size(), 10u);
    log.trim(4);
    EXPECT_EQ(log.size(), 4u);
    log.trim(0);
    EXPECT_EQ(log.size(), 0u);
  });
}

TEST(AuditLogTest, TwoLogsShareThePool) {
  rt::Sim sim;
  sim.run([&] {
    ObjectPool pool(false);
    AuditLog a("log-a", pool);
    AuditLog b("log-b", pool);
    a.append(1, 0);
    a.trim(0);
    b.append(2, 0);  // recycles a's entry
    EXPECT_EQ(pool.recycled_count(), 1u);
    b.trim(0);
  });
}

// --- deadlock watchdog -----------------------------------------------------------------

TEST(WatchdogTest, StartsAndStops) {
  rt::Sim sim;
  const rt::SimResult r = sim.run([&] {
    DeadlockMonitor monitor(100);
    monitor.start();
    EXPECT_TRUE(monitor.running());
    rt::sleep_ticks(200);
    monitor.stop();
    EXPECT_FALSE(monitor.running());
  });
  EXPECT_TRUE(r.completed());
}

TEST(WatchdogTest, FlagsLongHeldSlot) {
  rt::Sim sim;
  sim.run([&] {
    DeadlockMonitor monitor(/*timeout_ticks=*/100);
    monitor.start();
    monitor.note_acquire(0, rt::Sim::current()->sched().virtual_time());
    rt::sleep_ticks(500);  // hold far beyond the timeout
    EXPECT_GT(monitor.alarms(), 0u);
    monitor.note_release(0);
    monitor.stop();
  });
}

TEST(WatchdogTest, ReleasedSlotNotFlagged) {
  rt::Sim sim;
  sim.run([&] {
    DeadlockMonitor monitor(1000);
    monitor.start();
    monitor.note_acquire(1, rt::Sim::current()->sched().virtual_time());
    monitor.note_release(1);
    rt::sleep_ticks(300);
    EXPECT_EQ(monitor.alarms(), 0u);
    monitor.stop();
  });
}

// --- time utilities -------------------------------------------------------------------

TEST(TimeUtils, FormatTicks) {
  EXPECT_EQ(format_ticks(0), "00:00:00.000");
  EXPECT_EQ(format_ticks(61'123), "00:01:01.123");
  EXPECT_EQ(format_ticks(3'600'000), "01:00:00.000");
}

TEST(TimeUtils, SafeVariantMatchesUnsafe) {
  rt::Sim sim;
  sim.run([&] {
    std::string safe;
    safe_ctime(1234, safe);
    EXPECT_EQ(safe, std::string(unsafe_ctime(1234)));
  });
}

}  // namespace
}  // namespace rg::sip
