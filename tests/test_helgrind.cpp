// HelgrindTool: the Fig. 1 state machine, thread segments, both bus-lock
// models, destructor annotations, rwlock support, and the message-passing
// extension — driven by synthetic event streams for exactness.
#include <gtest/gtest.h>

#include "core/helgrind.hpp"
#include "detector_harness.hpp"

namespace rg::core {
namespace {

using rg::test::EventHarness;
using rt::LockMode;
using rt::ThreadId;

constexpr rt::Addr kAddr = 0x10000;

std::size_t races(const HelgrindTool& tool) {
  return tool.reports().distinct_locations();
}

// --- Fig. 1 state machine -----------------------------------------------------

TEST(HelgrindStates, SingleThreadNeverWarns) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  for (int i = 0; i < 10; ++i) {
    h.write(main, kAddr);
    h.read(main, kAddr);
  }
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindStates, InitThenReadSharingIsSilent) {
  // "Locks are not needed for some shared variables that are initialized
  // once by one thread and subsequently only read by the other threads."
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const ThreadId t2 = h.thread("t2");
  h.write(main, kAddr);  // initialise, no locks
  h.write(main, kAddr);
  h.read(t1, kAddr);  // read-shared
  h.read(t2, kAddr);
  h.read(main, kAddr);
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindStates, UnlockedSharedWriteWarns) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  h.write(main, kAddr);
  h.read(t1, kAddr);   // shared RO
  h.write(t1, kAddr);  // shared RW with empty lockset -> warn
  EXPECT_EQ(races(tool), 1u);
}

TEST(HelgrindStates, ConsistentLockingIsSilent) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m = h.lock("m");
  for (ThreadId t : {main, t1, main, t1}) {
    h.acquire(t, m);
    h.read(t, kAddr);
    h.write(t, kAddr);
    h.release(t, m);
  }
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindStates, LockSetRefinesToCommonLock) {
  // Different threads hold different supersets; the common lock protects.
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m1 = h.lock("m1");
  const auto m2 = h.lock("m2");
  const auto m3 = h.lock("m3");
  h.acquire(main, m1);
  h.acquire(main, m2);
  h.write(main, kAddr);
  h.release(main, m2);
  h.release(main, m1);
  h.acquire(t1, m1);
  h.acquire(t1, m3);
  h.write(t1, kAddr);
  h.release(t1, m3);
  h.release(t1, m1);
  EXPECT_EQ(races(tool), 0u);  // C(v) = {m1}
}

TEST(HelgrindStates, DisjointLocksWarn) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m1 = h.lock("m1");
  const auto m2 = h.lock("m2");
  h.acquire(main, m1);
  h.write(main, kAddr);
  h.release(main, m1);
  h.acquire(t1, m2);
  h.write(t1, kAddr);  // segment hand-off: still exclusive, no warning yet
  h.release(t1, m2);
  // Concurrent access from main's post-create segment: genuinely shared.
  h.acquire(main, m1);
  h.write(main, kAddr);  // C(v) = {m2} ∩ {m1} = {}
  h.release(main, m1);
  EXPECT_EQ(races(tool), 1u);
}

TEST(HelgrindStates, ReadInSharedModifiedStateWarnsWhenUnlocked) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const auto m = h.lock("m");
  h.acquire(main, m);
  h.write(main, kAddr);
  h.release(main, m);
  h.acquire(t1, m);
  h.write(t1, kAddr);  // shared RW, C = {m}
  h.release(t1, m);
  h.read(main, kAddr);  // unlocked read in shared-modified -> warn
  EXPECT_EQ(races(tool), 1u);
}

TEST(HelgrindStates, ReadsInSharedReadStateNeverWarn) {
  // Fig. 1: "race conditions are only reported in the SHARED-MODIFIED
  // state".
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  const ThreadId t2 = h.thread("t2");
  const auto m = h.lock("m");
  h.acquire(main, m);
  h.read(main, kAddr);
  h.release(main, m);
  h.read(t1, kAddr);  // no locks — lockset empties
  h.read(t2, kAddr);
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindStates, EraserStopsCheckingAfterReport) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  h.write(main, kAddr);
  h.read(t1, kAddr);
  h.write(t1, kAddr);  // warn once
  for (int i = 0; i < 10; ++i) h.write(t1, kAddr);
  EXPECT_EQ(races(tool), 1u);
  EXPECT_EQ(tool.reports().total_warnings(), 1u);
}

TEST(HelgrindStates, DistinctGranulesReportSeparately) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId t1 = h.thread("t1");
  for (rt::Addr addr : {kAddr, kAddr + 64}) {
    h.write(main, addr, "init" + std::to_string(addr));
    h.read(t1, addr, "r" + std::to_string(addr));
    h.write(t1, addr, "w" + std::to_string(addr));
  }
  EXPECT_EQ(races(tool), 2u);
}

// --- thread segments (Fig. 2) ----------------------------------------------------

TEST(HelgrindSegments, OwnershipPassesToChild) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);  // initialise
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);  // exclusive transfer, not sharing
  h.write(child, kAddr);
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindSegments, OwnershipReturnsAfterJoin) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);
  h.join(main, child);
  h.write(main, kAddr);  // after join: still exclusive
  EXPECT_EQ(races(tool), 0u);
}

TEST(HelgrindSegments, ConcurrentSiblingsShare) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(a, kAddr);  // transfer to a
  h.write(b, kAddr);  // b is concurrent with a -> shared-modified, no locks
  EXPECT_EQ(races(tool), 1u);
}

TEST(HelgrindSegments, ParentWriteAfterCreateShares) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);  // child owns it
  h.write(main, kAddr);   // parent post-create segment: concurrent
  EXPECT_EQ(races(tool), 1u);
}

TEST(HelgrindSegments, DisabledSegmentsShareOnSecondThread) {
  HelgrindConfig cfg;
  cfg.thread_segments = false;
  HelgrindTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);
  const ThreadId child = h.thread("child");
  h.write(child, kAddr);  // without segments: plain Eraser -> shared, warn
  EXPECT_EQ(races(tool), 1u);
}

// --- bus-lock models (§3.1, §4.2.2) ----------------------------------------------

/// The Figs. 8/9 refcount pattern as raw events.
template <typename Tool>
std::size_t run_refcount_pattern(Tool& tool) {
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  h.write(main, kAddr);  // rep constructed
  const ThreadId worker = h.thread("worker");
  // Worker copies the string: plain read (leak check) + LOCKed ++, then
  // LOCKed -- at scope end.
  h.read(worker, kAddr, "leak-check-w");
  h.write_locked(worker, kAddr, "grab-w");
  h.write_locked(worker, kAddr, "dispose-w");
  // Main (concurrent with worker) copies too — Fig. 8 line 22.
  h.read(main, kAddr, "leak-check-m");
  h.write_locked(main, kAddr, "grab-m");
  return tool.reports().distinct_locations();
}

TEST(BusLock, MutexModelFlagsRefcount) {
  HelgrindConfig cfg;
  cfg.bus_lock_model = BusLockModel::Mutex;
  HelgrindTool tool(cfg);
  EXPECT_EQ(run_refcount_pattern(tool), 1u);
  // The Fig. 9 shape: previous state shared RO, no locks.
  ASSERT_EQ(tool.reports().reports().size(), 1u);
  EXPECT_NE(tool.reports().reports()[0].prev_state.find("shared RO"),
            std::string::npos);
}

TEST(BusLock, RwModelSilencesRefcount) {
  HelgrindConfig cfg;
  cfg.bus_lock_model = BusLockModel::RwLock;
  HelgrindTool tool(cfg);
  EXPECT_EQ(run_refcount_pattern(tool), 0u);
}

TEST(BusLock, RwModelStillCatchesPlainWrite) {
  // A plain (non-LOCKed) write holds the bus rw-lock in no mode at all.
  HelgrindConfig cfg;
  cfg.bus_lock_model = BusLockModel::RwLock;
  HelgrindTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(main, kAddr);
  h.read(a, kAddr);
  h.write(b, kAddr);  // plain write -> warn
  EXPECT_EQ(races(tool), 1u);
}

TEST(BusLock, MixedLockedAndPlainWritesWarnUnderRwModel) {
  // Not all writes carry LOCK: the write rule intersects away the bus
  // lock on the plain write.
  HelgrindConfig cfg;
  cfg.bus_lock_model = BusLockModel::RwLock;
  HelgrindTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.write(main, kAddr);
  h.write_locked(a, kAddr);
  h.write(b, kAddr);  // plain write from a third party
  EXPECT_EQ(races(tool), 1u);
}

// --- destructor annotation (§3.1, §4.2.1) ------------------------------------------

/// Shared object with lockset {m}; destructor writes the vptr without the
/// lock.
template <typename Tool>
std::size_t run_destruction_pattern(Tool& tool, EventHarness& h,
                                    bool annotate) {
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto m = h.lock("m");
  h.alloc(main, kAddr, 32);
  // vptr (first word) read by concurrent virtual calls, no lock held.
  h.read(a, kAddr, "vcall-a", 8);
  h.read(b, kAddr, "vcall-b", 8);
  // Destruction by b: annotation (if enabled) then the vptr rewrites.
  if (annotate) h.destruct(b, kAddr, 32);
  h.write(b, kAddr, "dtor-derived", 8);
  h.write(b, kAddr, "dtor-base", 8);
  h.free(b, kAddr);
  (void)m;
  return tool.reports().distinct_locations();
}

TEST(DestructorAnnotation, UnannotatedDeleteWarns) {
  HelgrindTool tool(HelgrindConfig::hwlc());
  EventHarness h;
  EXPECT_EQ(run_destruction_pattern(tool, h, /*annotate=*/false), 1u);
}

TEST(DestructorAnnotation, AnnotatedDeleteIsSilent) {
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EventHarness h;
  EXPECT_EQ(run_destruction_pattern(tool, h, /*annotate=*/true), 0u);
}

TEST(DestructorAnnotation, OriginalToolIgnoresAnnotation) {
  // Original Helgrind does not understand the client request.
  HelgrindTool tool(HelgrindConfig::original());
  EventHarness h;
  EXPECT_EQ(run_destruction_pattern(tool, h, /*annotate=*/true), 1u);
}

TEST(DestructorAnnotation, CrossThreadAccessDuringDestructionStillCaught) {
  // "Accesses by other threads during destruction are still detected."
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.alloc(main, kAddr, 32);
  h.read(a, kAddr, "vcall-a", 8);
  h.read(b, kAddr, "vcall-b", 8);
  h.destruct(b, kAddr, 32);
  h.write(b, kAddr, "dtor", 8);
  h.write(a, kAddr, "concurrent-during-dtor", 8);  // a barges in
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(DestructorAnnotation, AnnotationCoversWholeRange) {
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.alloc(main, kAddr, 32);
  h.read(a, kAddr + 16, "field-a");
  h.read(b, kAddr + 16, "field-b");
  h.destruct(b, kAddr, 32);
  h.write(b, kAddr + 16, "member-dtor");  // inside the annotated range
  EXPECT_EQ(tool.reports().distinct_locations(), 0u);
}

// --- allocation lifecycle ------------------------------------------------------------

TEST(Allocation, FreeResetsState) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.alloc(main, kAddr, 16);
  h.write(a, kAddr);
  h.write(b, kAddr);  // shared -> warn
  EXPECT_EQ(races(tool), 1u);
  h.free(b, kAddr);
  h.alloc(main, kAddr, 16);
  h.write(main, kAddr, "fresh-lifetime");
  h.write(main, kAddr, "fresh-lifetime-2");
  EXPECT_EQ(races(tool), 1u);  // no new warning: state was reset
}

TEST(Allocation, ReuseWithoutFreeEventsKeepsStaleState) {
  // The §4 libstdc++ pool behaviour: no free/alloc events on recycle, so
  // the stale lockset from the previous lifetime causes a false positive.
  HelgrindTool tool(HelgrindConfig::hwlc());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto m1 = h.lock("log-a-mutex");
  const auto m2 = h.lock("log-b-mutex");
  h.alloc(main, kAddr, 16);
  // Lifetime 1: consistently guarded by m1, genuinely shared.
  h.acquire(a, m1);
  h.write(a, kAddr);
  h.release(a, m1);
  h.acquire(b, m1);
  h.write(b, kAddr);
  h.release(b, m1);
  EXPECT_EQ(races(tool), 0u);
  // Recycled (no events) into a structure guarded by m2:
  h.acquire(a, m2);
  h.write(a, kAddr, "recycled-write");
  h.release(a, m2);
  EXPECT_EQ(races(tool), 1u);  // {m1} ∩ {m2} = {}: the reuse FP
}

// --- rwlock API (HWLC by-product) ---------------------------------------------------

TEST(RwLockApi, ReadersUnderRwLockAreSilent) {
  HelgrindConfig cfg = HelgrindConfig::hwlc();
  HelgrindTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto rw = h.lock("rw", /*rw=*/true);
  h.acquire(main, rw, LockMode::Exclusive);
  h.write(main, kAddr);
  h.release(main, rw);
  h.acquire(a, rw, LockMode::Shared);
  h.read(a, kAddr);
  h.release(a, rw);
  h.acquire(b, rw, LockMode::Exclusive);
  h.write(b, kAddr);
  h.release(b, rw);
  EXPECT_EQ(races(tool), 0u);
}

TEST(RwLockApi, WriteUnderReadLockWarns) {
  // Eraser write rule: a read-mode lock does not protect a write.
  HelgrindConfig cfg = HelgrindConfig::hwlc();
  HelgrindTool tool(cfg);
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto rw = h.lock("rw", /*rw=*/true);
  h.acquire(main, rw, LockMode::Exclusive);
  h.write(main, kAddr);
  h.release(main, rw);
  h.acquire(a, rw, LockMode::Shared);
  h.read(a, kAddr);
  h.release(a, rw);
  h.acquire(b, rw, LockMode::Shared);
  h.write(b, kAddr);  // writing under a read lock!
  h.release(b, rw);
  EXPECT_EQ(races(tool), 1u);
}

TEST(RwLockApi, OriginalToolIsBlindToRwLocks) {
  // Original Helgrind did not intercept pthread_rwlock: rw-guarded data
  // looks unguarded.
  HelgrindTool tool(HelgrindConfig::original());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  const auto rw = h.lock("rw", /*rw=*/true);
  for (ThreadId t : {main, a, b}) {
    h.acquire(t, rw, LockMode::Exclusive);
    h.write(t, kAddr);
    h.release(t, rw);
  }
  EXPECT_EQ(races(tool), 1u);  // false positive of the original tool
}

// --- message-passing extension (§5 future work) --------------------------------------

template <typename Tool>
std::size_t run_pool_handoff(Tool& tool) {
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("pool-worker");  // created BEFORE the job
  const auto q = h.sync("queue");
  h.alloc(main, kAddr, 16);
  h.write(main, kAddr, "init-job");  // Fig. 11: initialised after create
  h.queue_put(main, q, /*token=*/1);
  h.queue_get(worker, q, /*token=*/1);
  h.write(worker, kAddr, "worker-touch");  // first worker write
  return tool.reports().distinct_locations();
}

TEST(MessagePassing, BaselineFlagsPoolHandoff) {
  HelgrindTool tool(HelgrindConfig::hwlc_dr());
  EXPECT_EQ(run_pool_handoff(tool), 1u);  // the Fig. 11 false positive
}

TEST(MessagePassing, ExtensionRemovesPoolHandoffFp) {
  HelgrindTool tool(HelgrindConfig::extended());
  EXPECT_EQ(run_pool_handoff(tool), 0u);
}

TEST(MessagePassing, ExtensionStillCatchesNonHandoffRace) {
  HelgrindTool tool(HelgrindConfig::extended());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("worker");
  const auto q = h.sync("queue");
  h.write(main, kAddr);
  h.queue_put(main, q, 1);
  h.queue_get(worker, q, 1);
  h.write(worker, kAddr);        // fine: ordered by the hand-off
  h.write(main, kAddr, "late");  // main touches it again concurrently!
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

TEST(MessagePassing, UnpairedTokensCreateNoEdges) {
  HelgrindTool tool(HelgrindConfig::extended());
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId worker = h.thread("worker");
  const auto q = h.sync("queue");
  h.write(main, kAddr);
  h.queue_get(worker, q, /*token=*/0);  // initial-credit token
  h.write(worker, kAddr);
  // worker's first segment is ordered after main's creating segment, so
  // ownership transfers even without the queue edge; a later main write
  // shares.
  h.write(main, kAddr, "main-again");
  EXPECT_EQ(tool.reports().distinct_locations(), 1u);
}

// --- report details -------------------------------------------------------------------

TEST(Reports, CarryOriginAndLockset) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.alloc(main, kAddr, 24);
  h.write(main, kAddr + 8);
  h.read(a, kAddr + 8);
  h.write(b, kAddr + 8);  // a and b are concurrent siblings
  ASSERT_EQ(tool.reports().reports().size(), 1u);
  const Report& r = tool.reports().reports()[0];
  EXPECT_TRUE(r.origin.known);
  EXPECT_EQ(r.origin.offset, 8u);
  EXPECT_EQ(r.origin.alloc.size, 24u);
  EXPECT_EQ(r.access.kind, rt::AccessKind::Write);
  EXPECT_EQ(r.access.thread, b);
  EXPECT_EQ(r.lockset_desc, "{}");
}

TEST(Reports, RenderLooksLikeHelgrind) {
  HelgrindTool tool;
  EventHarness h;
  h.attach(tool);
  const ThreadId main = h.thread("main");
  const ThreadId a = h.thread("a");
  const ThreadId b = h.thread("b");
  h.alloc(main, kAddr, 21);
  h.read(a, kAddr + 8);
  h.write(b, kAddr + 8);
  const std::string text = tool.reports().render(h.runtime());
  EXPECT_NE(text.find("Possible data race writing"), std::string::npos);
  EXPECT_NE(text.find("8 bytes inside a block of size 21"),
            std::string::npos);
  EXPECT_NE(text.find("Previous state:"), std::string::npos);
}

}  // namespace
}  // namespace rg::core
