// Seeded proxy lock-inversion hazards: every inversion is predicted from a
// non-deadlocking run, at least one prediction per family is confirmed by
// the replay oracle, gate-guarded variants are suppressed, and the
// recovery path survives the inversion without losing transactions.
#include <gtest/gtest.h>

#include "sipp/hazards.hpp"

namespace rg::sipp {
namespace {

/// First seed in [1, limit] whose prediction run completes (the paper's
/// setting: predictions come from runs that did not deadlock).
std::uint64_t completing_seed(HazardFamily family, std::uint64_t limit = 16) {
  for (std::uint64_t s = 1; s <= limit; ++s) {
    const Scenario scenario = build_hazard_scenario(family, s);
    const ExperimentResult r =
        run_scenario(scenario, hazard_config(family, s));
    if (r.sim.completed()) return s;
  }
  return 0;
}

TEST(DeadlockHazards, RegistrarVsUpstreamPredictedAndConfirmed) {
  const std::uint64_t seed =
      completing_seed(HazardFamily::RegistrarVsUpstream);
  ASSERT_NE(seed, 0u) << "no non-deadlocking schedule found";
  const HazardRunResult r =
      run_hazard(HazardFamily::RegistrarVsUpstream, seed);
  EXPECT_TRUE(r.completed);
  ASSERT_GE(r.predicted, 1u);
  EXPECT_GE(r.confirmed, 1u);
}

TEST(DeadlockHazards, ShutdownInversionPredictedAndConfirmed) {
  const std::uint64_t seed = completing_seed(HazardFamily::ShutdownInversion);
  ASSERT_NE(seed, 0u) << "no non-deadlocking schedule found";
  const HazardRunResult r =
      run_hazard(HazardFamily::ShutdownInversion, seed);
  EXPECT_TRUE(r.completed);
  ASSERT_GE(r.predicted, 1u);
  EXPECT_GE(r.confirmed, 1u);
}

TEST(DeadlockHazards, GateLockedVariantIsNotPredicted) {
  for (HazardFamily family : {HazardFamily::RegistrarVsUpstream,
                              HazardFamily::ShutdownInversion}) {
    const std::uint64_t seed = completing_seed(family);
    ASSERT_NE(seed, 0u) << hazard_family_name(family);
    ExperimentConfig cfg = hazard_config(family, seed);
    cfg.hazards.gate_locked = true;
    const ExperimentResult r =
        run_scenario(build_hazard_scenario(family, seed), cfg);
    EXPECT_TRUE(r.sim.completed()) << hazard_family_name(family);
    // The naive tier still cries wolf — that is the false-alarm baseline
    // the refinements exist to beat.
    EXPECT_GE(r.lock_order_reports, 1u) << hazard_family_name(family);
    // The refined tier sees the common gate and stays silent.
    EXPECT_EQ(r.predicted_cycles.size(), 0u) << hazard_family_name(family);
    EXPECT_GE(r.lockgraph.pruned_guarded, 1u) << hazard_family_name(family);
  }
}

TEST(DeadlockHazards, RecoverySurvivesInversionDeterministically) {
  for (HazardFamily family : {HazardFamily::RegistrarVsUpstream,
                              HazardFamily::ShutdownInversion}) {
    // Seed 8 drives registrar-vs-upstream into an actual try-lock deadline
    // expiry (recoveries > 0), exercised below.
    const std::uint64_t seed =
        family == HazardFamily::RegistrarVsUpstream ? 8 : 5;
    const RecoverySoakResult first = run_recovery_soak(family, seed);
    EXPECT_TRUE(first.completed) << hazard_family_name(family);
    EXPECT_EQ(first.lost(), 0u) << hazard_family_name(family);
    EXPECT_GT(first.expected_responses, 0u);
    // Same seed, same run: the recovery path (jittered backoff included)
    // must not introduce nondeterminism into the event stream.
    const RecoverySoakResult second = run_recovery_soak(family, seed);
    EXPECT_EQ(first.recorder_hash, second.recorder_hash)
        << hazard_family_name(family);
    EXPECT_EQ(first.recoveries, second.recoveries);
    if (family == HazardFamily::RegistrarVsUpstream)
      EXPECT_GT(first.recoveries, 0u)
          << "expected an actual deadline expiry + backoff at this seed";
  }
}

TEST(DeadlockHazards, MetricsExported) {
  const std::uint64_t seed =
      completing_seed(HazardFamily::RegistrarVsUpstream);
  ASSERT_NE(seed, 0u);
  obs::MetricsRegistry m;
  const HazardRunResult r =
      run_hazard(HazardFamily::RegistrarVsUpstream, seed, &m);
  EXPECT_EQ(m.counter("lockgraph.predicted_cycles").value(), r.predicted);
  EXPECT_EQ(m.counter("lockgraph.confirmed_cycles").value(), r.confirmed);
  EXPECT_GE(m.counter("lockgraph.edges").value(), 1u);
  // The recovery counter is registered even when the run never recovers.
  EXPECT_EQ(m.counter("proxy.deadlock_recoveries").value(), 0u);
}

}  // namespace
}  // namespace rg::sipp
