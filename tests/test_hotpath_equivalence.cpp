// Hot-path equivalence regression: the per-event optimizations (per-thread
// lockset cache, shadow-page TLB, scheduler no-switch fast path) and the
// parallel experiment harness are pure mechanism — none of them may change
// a single scheduling decision or reported warning. This suite runs the
// real proxy workload with everything on vs everything off and demands
// identical results, and checks the pooled Fig. 6 harness against the
// serial one row by row.
#include <gtest/gtest.h>

#include <vector>

#include "core/helgrind.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"

namespace rg {
namespace {

sipp::ExperimentConfig cached_config(std::uint64_t seed, bool optimized) {
  sipp::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.detector = core::HelgrindConfig::hwlc_dr();
  cfg.detector.lockset_cache = optimized;
  cfg.detector.shadow_tlb = optimized;
  cfg.sched_fast_path = optimized;
  return cfg;
}

class HotpathEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HotpathEquivalence, CachedDetectorMatchesUncached) {
  const std::uint64_t seed = GetParam();
  for (int testcase : {1, 3}) {
    const sipp::Scenario scenario = sipp::build_testcase(testcase, seed);
    const sipp::ExperimentResult fast =
        sipp::run_scenario(scenario, cached_config(seed, true));
    const sipp::ExperimentResult slow =
        sipp::run_scenario(scenario, cached_config(seed, false));

    // Identical schedule...
    EXPECT_EQ(fast.sim.steps, slow.sim.steps) << scenario.name;
    EXPECT_EQ(fast.sim.virtual_time, slow.sim.virtual_time) << scenario.name;
    EXPECT_EQ(fast.responses, slow.responses) << scenario.name;
    // ...and an identical report multiset (location_keys preserves order
    // and multiplicity, so vector equality compares the full multiset).
    EXPECT_EQ(fast.reported_locations, slow.reported_locations)
        << scenario.name;
    EXPECT_EQ(fast.total_warnings, slow.total_warnings) << scenario.name;
    EXPECT_EQ(fast.location_keys, slow.location_keys) << scenario.name;
    // (report_text embeds raw addresses, which move run to run; the
    // suppression blocks are the address-free rendition of the stacks.)
    EXPECT_EQ(fast.generated_suppressions, slow.generated_suppressions)
        << scenario.name;

    // The optimized run actually exercised its fast paths.
    EXPECT_GT(fast.sim.fast_path_steps, 0u) << scenario.name;
    EXPECT_GT(fast.tool_stats.lockset_cache_hits, 0u) << scenario.name;
    EXPECT_GT(fast.tool_stats.shadow_tlb_hits, 0u) << scenario.name;
    EXPECT_EQ(slow.sim.fast_path_steps, 0u) << scenario.name;
    EXPECT_EQ(slow.tool_stats.lockset_cache_hits, 0u) << scenario.name;
    EXPECT_EQ(slow.tool_stats.shadow_tlb_hits, 0u) << scenario.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HotpathEquivalence,
                         ::testing::Values(3, 7, 11, 23));

TEST(HotpathEquivalence, ParallelFig6MatchesSerial) {
  // The Fig. 6 counts of the paper's table must not depend on whether the
  // (test case x config) cells ran serially or on an OS-thread pool.
  sipp::ExperimentConfig base;
  base.seed = 7;  // the seed the committed Fig. 5/6 baselines use
  const std::vector<int> cases{1, 2, 3};

  const std::vector<sipp::Fig6Row> serial =
      sipp::run_fig6_rows(cases, base, 1);
  const std::vector<sipp::Fig6Row> pooled =
      sipp::run_fig6_rows(cases, base, 4);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].testcase, pooled[i].testcase);
    EXPECT_EQ(serial[i].original, pooled[i].original);
    EXPECT_EQ(serial[i].hwlc, pooled[i].hwlc);
    EXPECT_EQ(serial[i].hwlc_dr, pooled[i].hwlc_dr);
    EXPECT_EQ(serial[i].hw_lock_fps, pooled[i].hw_lock_fps);
    EXPECT_EQ(serial[i].destructor_fps, pooled[i].destructor_fps);
    EXPECT_EQ(serial[i].remaining, pooled[i].remaining);
  }

  // And the serial pooled path must equal the original per-row API.
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const sipp::Fig6Row row = sipp::run_fig6_row(cases[i], base);
    EXPECT_EQ(row.testcase, serial[i].testcase);
    EXPECT_EQ(row.original, serial[i].original);
    EXPECT_EQ(row.hwlc, serial[i].hwlc);
    EXPECT_EQ(row.hwlc_dr, serial[i].hwlc_dr);
  }
}

}  // namespace
}  // namespace rg
