// SIP message model.
#include <gtest/gtest.h>

#include "rt/sim.hpp"
#include "sip/message.hpp"

namespace rg::sip {
namespace {

TEST(Method, ParseAndPrintRoundTrip) {
  for (Method m : {Method::Invite, Method::Ack, Method::Bye, Method::Cancel,
                   Method::Options, Method::Register, Method::Info}) {
    EXPECT_EQ(parse_method(to_string(m)), m);
  }
  EXPECT_EQ(parse_method("SUBSCRIBE"), Method::Unknown);
  EXPECT_EQ(parse_method("invite"), Method::Unknown);  // case-sensitive
}

TEST(ReasonPhrase, CommonCodes) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(481), "Call/Transaction Does Not Exist");
  EXPECT_EQ(reason_phrase(599), "Unknown");
}

TEST(Message, HeadersCaseInsensitive) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Invite, "sip:bob@example.com");
    req.add_header("Call-ID", cow_string("abc"));
    EXPECT_TRUE(req.has_header("call-id"));
    EXPECT_TRUE(req.has_header("CALL-ID"));
    EXPECT_EQ(req.header("Call-Id").str(), "abc");
    EXPECT_FALSE(req.has_header("via"));
    EXPECT_TRUE(req.header("missing").empty());
  });
}

TEST(Message, RepeatedHeadersKeepOrder) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Invite, "sip:x@y");
    req.add_header("via", cow_string("hop1"));
    req.add_header("via", cow_string("hop2"));
    const auto vias = req.headers("via");
    ASSERT_EQ(vias.size(), 2u);
    EXPECT_EQ(vias[0].str(), "hop1");
    EXPECT_EQ(vias[1].str(), "hop2");
    // header() returns the topmost.
    EXPECT_EQ(req.header("via").str(), "hop1");
  });
}

TEST(Message, PushFrontAndRemoveTop) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Invite, "sip:x@y");
    req.add_header("via", cow_string("old"));
    req.push_header_front("via", cow_string("new"));
    EXPECT_EQ(req.header("via").str(), "new");
    EXPECT_TRUE(req.remove_top_header("via"));
    EXPECT_EQ(req.header("via").str(), "old");
    EXPECT_TRUE(req.remove_top_header("via"));
    EXPECT_FALSE(req.remove_top_header("via"));
  });
}

TEST(Message, BodyAndContentLength) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Invite, "sip:x@y");
    req.set_body(cow_string("v=0"));
    EXPECT_EQ(req.body().str(), "v=0");
    const std::string wire = req.serialize();
    EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\nv=0"), std::string::npos);
  });
}

TEST(Message, RequestStartLine) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Register, "sip:example.com");
    EXPECT_TRUE(req.is_request());
    EXPECT_EQ(req.start_line(), "REGISTER sip:example.com SIP/2.0");
  });
}

TEST(Message, ResponseStartLine) {
  rt::Sim sim;
  sim.run([&] {
    SipResponse resp(180);
    EXPECT_FALSE(resp.is_request());
    EXPECT_EQ(resp.start_line(), "SIP/2.0 180 Ringing");
    EXPECT_EQ(resp.status(), 180);
    SipResponse custom(606, "Not Acceptable Here");
    EXPECT_EQ(custom.start_line(), "SIP/2.0 606 Not Acceptable Here");
  });
}

TEST(Message, SerializeWireCapitalisation) {
  rt::Sim sim;
  sim.run([&] {
    SipResponse resp(200);
    resp.add_header("call-id", cow_string("x"));
    resp.add_header("cseq", cow_string("1 INVITE"));
    resp.add_header("www-authenticate", cow_string("Digest"));
    resp.add_header("record-route", cow_string("<sip:p>"));
    const std::string wire = resp.serialize();
    EXPECT_NE(wire.find("Call-ID: x"), std::string::npos);
    EXPECT_NE(wire.find("CSeq: 1 INVITE"), std::string::npos);
    EXPECT_NE(wire.find("WWW-Authenticate: Digest"), std::string::npos);
    EXPECT_NE(wire.find("Record-Route: <sip:p>"), std::string::npos);
  });
}

TEST(Message, SerializeEndsHeadersWithBlankLine) {
  rt::Sim sim;
  sim.run([&] {
    SipResponse resp(200);
    const std::string wire = resp.serialize();
    EXPECT_NE(wire.find("Content-Length: 0\r\n\r\n"), std::string::npos);
  });
}

TEST(Message, HeaderCowValuesShareReps) {
  rt::Sim sim;
  sim.run([&] {
    SipRequest req(Method::Invite, "sip:x@y");
    cow_string shared("common-value");
    req.add_header("route", cow_string(shared));
    EXPECT_EQ(shared.use_count(), 2);  // message holds a shared rep
    const cow_string back = req.header("route");
    EXPECT_EQ(shared.use_count(), 3);
  });
}

TEST(Message, MetaTracksNothingButIsDispatchable) {
  rt::Sim sim;
  sim.run([&] {
    SipResponse resp(200);
    // serialize() performs the meta vcall; must not disturb content.
    const std::string a = resp.serialize();
    const std::string b = resp.serialize();
    EXPECT_EQ(a, b);
  });
}

TEST(Message, WorksOutsideSim) {
  // Message objects must be usable in plain unit-test context too.
  SipRequest req(Method::Bye, "sip:a@b");
  req.add_header("via", cow_string("v"));
  EXPECT_EQ(req.header("via").str(), "v");
  EXPECT_NE(req.serialize().find("BYE sip:a@b SIP/2.0"), std::string::npos);
}

}  // namespace
}  // namespace rg::sip
