// E4 — the Figs. 10/11 ownership-transfer experiment: thread-per-request
// vs thread-pool dispatch, and the message-passing detector extension.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/helgrind.hpp"
#include "rt/sim.hpp"
#include "sip/dispatch.hpp"
#include "sip/proxy.hpp"
#include "sipp/experiment.hpp"
#include "sipp/testcases.hpp"

namespace rg::sip {
namespace {

/// Runs the same workload through a dispatcher under a detector config and
/// returns the distinct race locations.
std::size_t run_dispatch(sipp::DispatchMode mode,
                         const core::HelgrindConfig& detector,
                         std::vector<std::string>* keys = nullptr) {
  sipp::ExperimentConfig cfg;
  cfg.seed = 17;
  cfg.mode = mode;
  cfg.detector = detector;
  // Clean proxy: every warning left is dispatch-pattern-related.
  cfg.faults = FaultConfig::none();
  const auto scenario = sipp::build_testcase(2, cfg.seed);
  const auto result = run_scenario(scenario, cfg);
  EXPECT_TRUE(result.sim.completed());
  if (keys != nullptr) *keys = result.location_keys;
  return result.reported_locations;
}

TEST(Ownership, ThreadPerRequestIsSilent) {
  // Fig. 10: create/join hand-offs keep job data EXCLUSIVE.
  EXPECT_EQ(run_dispatch(sipp::DispatchMode::ThreadPerRequest,
                         core::HelgrindConfig::hwlc_dr()),
            0u);
}

TEST(Ownership, ThreadPoolProducesTransferFps) {
  // Fig. 11: "the data race detection algorithm reports a warning on the
  // first write to this data" — the hand-off through the queue is
  // invisible to the baseline.
  EXPECT_GT(run_dispatch(sipp::DispatchMode::ThreadPool,
                         core::HelgrindConfig::hwlc_dr()),
            0u);
}

TEST(Ownership, ExtensionRemovesThreadPoolFps) {
  // §5 future work: "higher level synchronization primitives" — with
  // queue hand-off edges the pool pattern goes quiet too.
  EXPECT_EQ(run_dispatch(sipp::DispatchMode::ThreadPool,
                         core::HelgrindConfig::extended()),
            0u);
}

TEST(Ownership, PoolFpsAreOnJobData) {
  std::vector<std::string> keys;
  run_dispatch(sipp::DispatchMode::ThreadPool,
               core::HelgrindConfig::hwlc_dr(), &keys);
  ASSERT_FALSE(keys.empty());
  // Re-run with extension: exactly the job-hand-off keys disappear.
  std::vector<std::string> extended_keys;
  run_dispatch(sipp::DispatchMode::ThreadPool,
               core::HelgrindConfig::extended(), &extended_keys);
  const std::unordered_set<std::string> ext(extended_keys.begin(),
                                            extended_keys.end());
  for (const std::string& key : keys) EXPECT_FALSE(ext.contains(key));
}

TEST(Ownership, BothDispatchersProduceSameResponses) {
  auto run_responses = [&](sipp::DispatchMode mode) {
    sipp::ExperimentConfig cfg;
    cfg.seed = 23;
    cfg.mode = mode;
    cfg.faults = FaultConfig::none();
    const auto scenario = sipp::build_testcase(1, cfg.seed);
    return run_scenario(scenario, cfg).responses;
  };
  EXPECT_EQ(run_responses(sipp::DispatchMode::ThreadPerRequest),
            run_responses(sipp::DispatchMode::ThreadPool));
}

TEST(Ownership, DispatcherNamesStable) {
  ThreadPerRequestDispatcher a(4);
  ThreadPoolDispatcher b(4);
  EXPECT_STREQ(a.name(), "thread-per-request");
  EXPECT_STREQ(b.name(), "thread-pool");
}

}  // namespace
}  // namespace rg::sip
