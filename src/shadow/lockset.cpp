#include "shadow/lockset.hpp"

#include <algorithm>

#include "rt/runtime.hpp"
#include "support/assert.hpp"

namespace rg::shadow {

LocksetTable::LocksetTable() {
  // Reserve id 0 for the empty set.
  const LocksetId empty = intern({});
  RG_ASSERT(empty == kEmptyLockset);
}

LocksetId LocksetTable::intern(LockVec locks) {
  std::sort(locks.begin(), locks.end());
  const auto unique_end = std::unique(locks.begin(), locks.end());
  while (locks.end() != unique_end) locks.pop_back();
  if (auto it = index_.find(locks); it != index_.end()) return it->second;
  sets_.push_back(locks);
  const auto id = static_cast<LocksetId>(sets_.size() - 1);
  index_.emplace(std::move(locks), id);
  return id;
}

LocksetId LocksetTable::intersect(LocksetId a, LocksetId b) {
  // The universal set is the identity element (Eraser initialises C(v) to
  // the set of all locks).
  if (a == kUniversalLockset) return b;
  if (b == kUniversalLockset) return a;
  if (a == b) return a;
  if (a == kEmptyLockset || b == kEmptyLockset) return kEmptyLockset;
  if (a > b) std::swap(a, b);

  const auto key = std::make_pair(a, b);
  if (auto it = intersect_cache_.find(key); it != intersect_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;

  const LockVec& va = elements(a);
  const LockVec& vb = elements(b);
  LockVec out;
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(out));
  const LocksetId result = intern(std::move(out));
  intersect_cache_.emplace(key, result);
  return result;
}

LocksetId LocksetTable::with(LocksetId set, rt::LockId lock) {
  if (set == kUniversalLockset) return set;
  LockVec v = elements(set);
  if (std::find(v.begin(), v.end(), lock) != v.end()) return set;
  v.push_back(lock);
  return intern(std::move(v));
}

bool LocksetTable::contains(LocksetId set, rt::LockId lock) const {
  if (set == kUniversalLockset) return true;
  const LockVec& v = elements(set);
  return std::binary_search(v.begin(), v.end(), lock);
}

std::size_t LocksetTable::size(LocksetId set) const {
  return elements(set).size();
}

const LockVec& LocksetTable::elements(LocksetId set) const {
  RG_ASSERT_MSG(set != kUniversalLockset,
                "the universal lockset has no explicit elements");
  RG_ASSERT_MSG(set < sets_.size(), "unknown lockset id");
  return sets_[set];
}

std::string LocksetTable::describe(LocksetId set,
                                   const rt::Runtime& rt) const {
  if (set == kUniversalLockset) return "{<all locks>}";
  std::string out = "{";
  bool first = true;
  for (rt::LockId lock : elements(set)) {
    if (!first) out += ", ";
    first = false;
    out += rt.lock_name(lock);
  }
  out += "}";
  return out;
}

}  // namespace rg::shadow
