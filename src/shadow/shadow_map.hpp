// Shadow memory.
//
// Maps client addresses to per-granule detector state, the way Valgrind
// tools shadow the client address space. Two-level: a hash map from page
// number to a flat array of granule slots, so lookups on the hot path are
// one hash probe + one index. The granule is 8 bytes (Helgrind tracked
// machine words); an access spanning granules touches each of them.
//
// A one-entry last-page TLB fronts the hash probe, the way Valgrind's
// translation cache fronts its SP-map: sequential and looping access
// patterns (the common case for the proxy's message buffers) resolve to
// the same page as the previous access, so `at`/`find` reduce to a compare
// and an index. Pages are heap-allocated and never freed or moved, so the
// cached pointer can never dangle; `reset_range` only rewrites slot
// contents. The TLB can be disabled (equivalence testing) and exposes
// hit/miss counters.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "rt/ids.hpp"

namespace rg::shadow {

constexpr std::uint32_t kGranuleShift = 3;  // 8-byte granules
constexpr std::uint32_t kPageShift = 12;    // 4 KiB pages
constexpr std::uint32_t kGranulesPerPage = 1u << (kPageShift - kGranuleShift);

/// Granule index of an address.
inline std::uint64_t granule_of(rt::Addr addr) { return addr >> kGranuleShift; }

/// First byte address of a granule.
inline rt::Addr granule_base(std::uint64_t granule) {
  return granule << kGranuleShift;
}

/// Hit/miss counters of the last-page TLB.
struct ShadowTlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <typename State>
class ShadowMap {
 public:
  /// State slot for the granule containing `addr`, default-constructed on
  /// first touch.
  State& at(rt::Addr addr) {
    const std::uint64_t g = granule_of(addr);
    const std::uint64_t page_no = g >> (kPageShift - kGranuleShift);
    if (tlb_enabled_ && tlb_page_ != nullptr && tlb_page_no_ == page_no) {
      ++tlb_.hits;
      return (*tlb_page_)[g & (kGranulesPerPage - 1)];
    }
    ++tlb_.misses;
    Page& page = ensure_page(page_no);
    tlb_page_no_ = page_no;
    tlb_page_ = &page;
    return page[g & (kGranulesPerPage - 1)];
  }

  /// Existing slot, or nullptr if the granule was never touched.
  const State* find(rt::Addr addr) const {
    const std::uint64_t g = granule_of(addr);
    const std::uint64_t page_no = g >> (kPageShift - kGranuleShift);
    if (tlb_enabled_ && tlb_page_ != nullptr && tlb_page_no_ == page_no) {
      ++tlb_.hits;
      return &(*tlb_page_)[g & (kGranulesPerPage - 1)];
    }
    ++tlb_.misses;
    auto it = pages_.find(page_no);
    if (it == pages_.end()) return nullptr;
    tlb_page_no_ = page_no;
    tlb_page_ = it->second.get();
    return &(*it->second)[g & (kGranulesPerPage - 1)];
  }

  /// Applies `fn(State&)` to every granule overlapping [addr, addr+size).
  template <typename Fn>
  void for_range(rt::Addr addr, std::uint32_t size, Fn&& fn) {
    if (size == 0) size = 1;
    const std::uint64_t first = granule_of(addr);
    const std::uint64_t last = granule_of(addr + size - 1);
    for (std::uint64_t g = first; g <= last; ++g) fn(at(granule_base(g)));
  }

  /// Resets every granule overlapping the range to a default State
  /// (allocation freed — Helgrind reinitialises the shadow state, which is
  /// why allocator-internal reuse *without* free events causes the §4
  /// libstdc++ false positives).
  void reset_range(rt::Addr addr, std::uint32_t size) {
    for_range(addr, size, [](State& s) { s = State(); });
  }

  std::size_t page_count() const { return pages_.size(); }

  /// Disables (or re-enables) the last-page TLB; used by the equivalence
  /// tests to prove the cache changes no detector verdict.
  void set_tlb_enabled(bool enabled) {
    tlb_enabled_ = enabled;
    tlb_page_ = nullptr;
  }
  bool tlb_enabled() const { return tlb_enabled_; }
  const ShadowTlbStats& tlb_stats() const { return tlb_; }

 private:
  using Page = std::array<State, kGranulesPerPage>;

  Page& ensure_page(std::uint64_t page_no) {
    auto& slot = pages_[page_no];
    if (!slot) slot = std::make_unique<Page>();
    return *slot;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  bool tlb_enabled_ = true;
  // `find` is logically const; warming the TLB there is pure caching.
  mutable std::uint64_t tlb_page_no_ = 0;
  mutable Page* tlb_page_ = nullptr;
  mutable ShadowTlbStats tlb_;
};

}  // namespace rg::shadow
