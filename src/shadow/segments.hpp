// Thread segments (Fig. 2).
//
// A thread is a sequence of segments separated by thread-create and -join
// operations (and, in the message-passing extension, by queue/semaphore
// hand-offs). "Memory accesses that are limited to non-overlapping thread
// segments are still exclusive even if not done by a single thread." Each
// segment carries a vector clock, making the happens-before query between
// two segments exact for fork/join (+ hand-off) graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/ids.hpp"
#include "shadow/vector_clock.hpp"

namespace rg::shadow {

using SegmentId = std::uint32_t;
constexpr SegmentId kNoSegment = 0xffffffffu;

class SegmentGraph {
 public:
  SegmentGraph() = default;

  /// Starts the first segment of a new thread. `creator` is the segment of
  /// the creating thread at create time (kNoSegment for the initial
  /// thread); the new segment happens-after it.
  SegmentId start_thread(rt::ThreadId tid, SegmentId creator);

  /// Ends `tid`'s current segment and starts the next one; with
  /// `extra_pred` set, the new segment additionally happens-after that
  /// segment (join: the joined thread's last segment; hand-off: the
  /// sender's segment at put time).
  SegmentId advance(rt::ThreadId tid, SegmentId extra_pred = kNoSegment);

  /// The segment `tid` is currently executing in.
  SegmentId current(rt::ThreadId tid) const;

  rt::ThreadId thread_of(SegmentId seg) const;

  /// True when segment `a` completes before segment `b` begins (strictly:
  /// every event of a is ordered before every event of b). Segments of the
  /// same thread are ordered by sequence.
  bool happens_before(SegmentId a, SegmentId b) const;

  /// Segments overlap iff neither happens before the other and they are
  /// distinct.
  bool concurrent(SegmentId a, SegmentId b) const {
    return a != b && !happens_before(a, b) && !happens_before(b, a);
  }

  const VectorClock& clock(SegmentId seg) const;

  std::size_t segment_count() const { return segments_.size(); }
  std::string describe(SegmentId seg) const;

 private:
  struct Segment {
    rt::ThreadId thread = rt::kNoThread;
    VectorClock::Tick seq = 0;  // == clock.get(thread)
    VectorClock clock;
  };

  const Segment& seg(SegmentId id) const;

  std::vector<Segment> segments_;
  std::vector<SegmentId> current_;  // by ThreadId
};

}  // namespace rg::shadow
