// Vector clocks.
//
// Used twice in this reproduction: (1) per thread segment, to answer the
// VisualThreads happens-before query of Fig. 2 exactly, and (2) by the DJIT
// baseline detector (§2.2), which timestamps accesses with its thread's
// current clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "rt/ids.hpp"
#include "support/small_vector.hpp"

namespace rg::shadow {

class VectorClock {
 public:
  using Tick = std::uint32_t;

  VectorClock() = default;

  /// Component for `tid` (0 if never ticked).
  Tick get(rt::ThreadId tid) const {
    return tid < ticks_.size() ? ticks_[tid] : 0;
  }

  /// Advances this clock's own component.
  void tick(rt::ThreadId tid) {
    ensure(tid);
    ++ticks_[tid];
  }

  void set(rt::ThreadId tid, Tick value) {
    ensure(tid);
    ticks_[tid] = value;
  }

  /// Component-wise maximum (receive/join).
  void merge(const VectorClock& other) {
    if (other.ticks_.size() > ticks_.size())
      ticks_.resize(other.ticks_.size(), 0);
    for (std::size_t i = 0; i < other.ticks_.size(); ++i)
      ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
  }

  /// Pointwise <=: "this happened before or equals other".
  bool leq(const VectorClock& other) const {
    for (std::size_t i = 0; i < ticks_.size(); ++i)
      if (ticks_[i] > other.get(static_cast<rt::ThreadId>(i))) return false;
    return true;
  }

  /// Neither leq(other) nor other.leq(*this): concurrent.
  bool concurrent_with(const VectorClock& other) const {
    return !leq(other) && !other.leq(*this);
  }

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    const std::size_t n = std::max(a.ticks_.size(), b.ticks_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto tid = static_cast<rt::ThreadId>(i);
      if (a.get(tid) != b.get(tid)) return false;
    }
    return true;
  }

  std::string describe() const {
    std::string out = "[";
    for (std::size_t i = 0; i < ticks_.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(ticks_[i]);
    }
    return out + "]";
  }

  std::size_t width() const { return ticks_.size(); }

 private:
  void ensure(rt::ThreadId tid) {
    if (tid >= ticks_.size()) ticks_.resize(tid + 1, 0);
  }

  support::small_vector<Tick, 8> ticks_;
};

}  // namespace rg::shadow
