#include "shadow/segments.hpp"

#include "support/assert.hpp"

namespace rg::shadow {

SegmentId SegmentGraph::start_thread(rt::ThreadId tid, SegmentId creator) {
  Segment s;
  s.thread = tid;
  if (creator != kNoSegment) s.clock = seg(creator).clock;
  s.clock.tick(tid);
  s.seq = s.clock.get(tid);
  segments_.push_back(std::move(s));
  const auto id = static_cast<SegmentId>(segments_.size() - 1);
  if (tid >= current_.size()) current_.resize(tid + 1, kNoSegment);
  RG_ASSERT_MSG(current_[tid] == kNoSegment, "thread already started");
  current_[tid] = id;
  return id;
}

SegmentId SegmentGraph::advance(rt::ThreadId tid, SegmentId extra_pred) {
  const SegmentId prev = current(tid);
  Segment s;
  s.thread = tid;
  s.clock = seg(prev).clock;
  if (extra_pred != kNoSegment) s.clock.merge(seg(extra_pred).clock);
  s.clock.tick(tid);
  s.seq = s.clock.get(tid);
  segments_.push_back(std::move(s));
  const auto id = static_cast<SegmentId>(segments_.size() - 1);
  current_[tid] = id;
  return id;
}

SegmentId SegmentGraph::current(rt::ThreadId tid) const {
  RG_ASSERT_MSG(tid < current_.size() && current_[tid] != kNoSegment,
                "thread has no segment");
  return current_[tid];
}

rt::ThreadId SegmentGraph::thread_of(SegmentId id) const {
  return seg(id).thread;
}

bool SegmentGraph::happens_before(SegmentId a, SegmentId b) const {
  if (a == b) return false;
  const Segment& sa = seg(a);
  const Segment& sb = seg(b);
  if (sa.thread == sb.thread) return sa.seq < sb.seq;
  // Segment a (whole) precedes segment b iff b's clock has seen a's
  // identity tick AND a is no longer the current (open) segment of its
  // thread — an open segment may still produce events.
  return sb.clock.get(sa.thread) >= sa.seq;
}

const VectorClock& SegmentGraph::clock(SegmentId id) const {
  return seg(id).clock;
}

std::string SegmentGraph::describe(SegmentId id) const {
  const Segment& s = seg(id);
  return "TS(thread " + std::to_string(s.thread) + ", #" +
         std::to_string(s.seq) + ")";
}

const SegmentGraph::Segment& SegmentGraph::seg(SegmentId id) const {
  RG_ASSERT_MSG(id < segments_.size(), "unknown segment");
  return segments_[id];
}

}  // namespace rg::shadow
