// Interned locksets.
//
// Eraser's candidate set C(v) is stored per shadow-memory cell, so locksets
// must be tiny to store and cheap to intersect. Following the original
// Eraser implementation we intern every distinct set into a table of dense
// ids and memoise intersection results keyed by id pairs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/ids.hpp"
#include "support/small_vector.hpp"

namespace rg::rt {
class Runtime;
}

namespace rg::shadow {

/// Dense id of an interned lockset.
/// kEmptyLockset (0) is the empty set; kUniversalLockset is the "set of all
/// locks" every C(v) starts from in the plain Eraser algorithm.
using LocksetId = std::uint32_t;

constexpr LocksetId kEmptyLockset = 0;
constexpr LocksetId kUniversalLockset = 0xffffffffu;

/// Sorted, duplicate-free vector of lock ids.
using LockVec = support::small_vector<rt::LockId, 4>;

class LocksetTable {
 public:
  LocksetTable();

  LocksetTable(const LocksetTable&) = delete;
  LocksetTable& operator=(const LocksetTable&) = delete;

  /// Interns `locks` (need not be sorted; duplicates are removed).
  LocksetId intern(LockVec locks);

  /// Intersection of two interned sets; memoised. The universal set is the
  /// identity: intersect(U, s) == s.
  LocksetId intersect(LocksetId a, LocksetId b);

  /// Set with `lock` added.
  LocksetId with(LocksetId set, rt::LockId lock);

  bool contains(LocksetId set, rt::LockId lock) const;
  bool empty(LocksetId set) const { return set == kEmptyLockset; }
  std::size_t size(LocksetId set) const;

  /// Elements of an interned set. Invalid for the universal set.
  const LockVec& elements(LocksetId set) const;

  /// "{m1, m2}" rendering using lock names from `rt`.
  std::string describe(LocksetId set, const rt::Runtime& rt) const;

  /// Number of distinct sets interned (statistics).
  std::size_t distinct_sets() const { return sets_.size(); }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  struct VecHash {
    std::size_t operator()(const LockVec& v) const {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (rt::LockId id : v) h = (h ^ id) * 0x100000001b3ULL;
      return h;
    }
  };
  struct PairHash {
    std::size_t operator()(const std::pair<LocksetId, LocksetId>& p) const {
      return p.first * 0x9e3779b97f4a7c15ULL + p.second;
    }
  };

  std::vector<LockVec> sets_;
  std::unordered_map<LockVec, LocksetId, VecHash> index_;
  std::unordered_map<std::pair<LocksetId, LocksetId>, LocksetId, PairHash>
      intersect_cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace rg::shadow
