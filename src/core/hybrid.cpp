#include "core/hybrid.hpp"

#include <algorithm>
#include <unordered_set>

namespace rg::core {

HybridTool::HybridTool(const HybridConfig& config)
    : lockset_(config.lockset), hb_(config.hb) {}

void HybridTool::on_attach(rt::Runtime& rt) {
  Tool::on_attach(rt);
  lockset_.on_attach(rt);
  hb_.on_attach(rt);
}

void HybridTool::on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                                 support::SiteId site) {
  lockset_.on_thread_start(tid, parent, site);
  hb_.on_thread_start(tid, parent, site);
}

void HybridTool::on_thread_exit(rt::ThreadId tid) {
  lockset_.on_thread_exit(tid);
  hb_.on_thread_exit(tid);
}

void HybridTool::on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                                support::SiteId site) {
  lockset_.on_thread_join(joiner, joined, site);
  hb_.on_thread_join(joiner, joined, site);
}

void HybridTool::on_lock_create(rt::LockId lock, support::Symbol name,
                                bool is_rw) {
  lockset_.on_lock_create(lock, name, is_rw);
  hb_.on_lock_create(lock, name, is_rw);
}

void HybridTool::on_lock_destroy(rt::LockId lock) {
  lockset_.on_lock_destroy(lock);
  hb_.on_lock_destroy(lock);
}

void HybridTool::on_pre_lock(rt::ThreadId tid, rt::LockId lock,
                             rt::LockMode mode, support::SiteId site) {
  lockset_.on_pre_lock(tid, lock, mode, site);
  hb_.on_pre_lock(tid, lock, mode, site);
}

void HybridTool::on_post_lock(rt::ThreadId tid, rt::LockId lock,
                              rt::LockMode mode, support::SiteId site) {
  lockset_.on_post_lock(tid, lock, mode, site);
  hb_.on_post_lock(tid, lock, mode, site);
}

void HybridTool::on_unlock(rt::ThreadId tid, rt::LockId lock,
                           support::SiteId site) {
  lockset_.on_unlock(tid, lock, site);
  hb_.on_unlock(tid, lock, site);
}

void HybridTool::on_cond_signal(rt::ThreadId tid, rt::SyncId cond,
                                support::SiteId site) {
  lockset_.on_cond_signal(tid, cond, site);
  hb_.on_cond_signal(tid, cond, site);
}

void HybridTool::on_cond_wait_return(rt::ThreadId tid, rt::SyncId cond,
                                     rt::LockId lock, support::SiteId site) {
  lockset_.on_cond_wait_return(tid, cond, lock, site);
  hb_.on_cond_wait_return(tid, cond, lock, site);
}

void HybridTool::on_sem_post(rt::ThreadId tid, rt::SyncId sem,
                             std::uint64_t token, support::SiteId site) {
  lockset_.on_sem_post(tid, sem, token, site);
  hb_.on_sem_post(tid, sem, token, site);
}

void HybridTool::on_sem_wait_return(rt::ThreadId tid, rt::SyncId sem,
                                    std::uint64_t token,
                                    support::SiteId site) {
  lockset_.on_sem_wait_return(tid, sem, token, site);
  hb_.on_sem_wait_return(tid, sem, token, site);
}

void HybridTool::on_queue_put(rt::ThreadId tid, rt::SyncId queue,
                              std::uint64_t token, support::SiteId site) {
  lockset_.on_queue_put(tid, queue, token, site);
  hb_.on_queue_put(tid, queue, token, site);
}

void HybridTool::on_queue_get(rt::ThreadId tid, rt::SyncId queue,
                              std::uint64_t token, support::SiteId site) {
  lockset_.on_queue_get(tid, queue, token, site);
  hb_.on_queue_get(tid, queue, token, site);
}

void HybridTool::on_access(const rt::MemoryAccess& access) {
  lockset_.on_access(access);
  hb_.on_access(access);
}

void HybridTool::on_alloc(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                          support::SiteId site) {
  lockset_.on_alloc(tid, addr, size, site);
  hb_.on_alloc(tid, addr, size, site);
}

void HybridTool::on_free(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                         support::SiteId site) {
  lockset_.on_free(tid, addr, size, site);
  hb_.on_free(tid, addr, size, site);
}

void HybridTool::on_destruct_annotation(rt::ThreadId tid, rt::Addr addr,
                                        std::uint32_t size,
                                        support::SiteId site) {
  lockset_.on_destruct_annotation(tid, addr, size, site);
  hb_.on_destruct_annotation(tid, addr, size, site);
}

void HybridTool::on_finish() {
  lockset_.on_finish();
  hb_.on_finish();

  // Join the two report sets by allocation-origin site: the lockset pass
  // proposes, the happens-before pass confirms. Keys use the access site,
  // which generally differs between the two tools (they fire at different
  // accesses), so confirmation matches on the accessed object instead.
  std::unordered_set<std::uint64_t> hb_objects;
  for (const Report& r : hb_.reports().reports())
    hb_objects.insert(r.origin.known ? r.origin.alloc.base : r.access.addr);

  std::unordered_set<std::uint64_t> lockset_objects;
  verdicts_.clear();
  for (const Report& r : lockset_.reports().reports()) {
    const std::uint64_t obj =
        r.origin.known ? r.origin.alloc.base : r.access.addr;
    lockset_objects.insert(obj);
    HybridVerdict v;
    v.report = r;
    v.confirmed = hb_objects.contains(obj);
    v.report.extra = v.confirmed
                         ? "hybrid: confirmed by happens-before ordering"
                         : "hybrid: lockset only (order-dependent candidate)";
    verdicts_.push_back(std::move(v));
  }
  for (const Report& r : hb_.reports().reports()) {
    const std::uint64_t obj =
        r.origin.known ? r.origin.alloc.base : r.access.addr;
    if (lockset_objects.contains(obj)) continue;
    HybridVerdict v;
    v.report = r;
    v.hb_only = true;
    v.report.extra = "hybrid: happens-before only (lockset discipline held)";
    verdicts_.push_back(std::move(v));
  }
}

std::size_t HybridTool::confirmed_count() const {
  return static_cast<std::size_t>(
      std::count_if(verdicts_.begin(), verdicts_.end(),
                    [](const HybridVerdict& v) { return v.confirmed; }));
}

std::size_t HybridTool::possible_count() const {
  return static_cast<std::size_t>(std::count_if(
      verdicts_.begin(), verdicts_.end(),
      [](const HybridVerdict& v) { return !v.confirmed && !v.hb_only; }));
}

std::size_t HybridTool::hb_only_count() const {
  return static_cast<std::size_t>(
      std::count_if(verdicts_.begin(), verdicts_.end(),
                    [](const HybridVerdict& v) { return v.hb_only; }));
}

}  // namespace rg::core
