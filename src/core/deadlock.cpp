#include "core/deadlock.hpp"

#include <vector>

#include "rt/runtime.hpp"

namespace rg::core {

DeadlockTool::DeadlockTool() : reports_("Helgrind") {}

void DeadlockTool::on_pre_lock(rt::ThreadId tid, rt::LockId lock,
                               rt::LockMode /*mode*/, support::SiteId site) {
  for (const rt::HeldLock& held : rt_->held_locks(tid)) {
    if (held.lock == lock) continue;
    // Would edge held.lock -> lock close a cycle?
    if (reaches(lock, held.lock) &&
        !reported_pairs_.contains({std::min(held.lock, lock),
                                   std::max(held.lock, lock)})) {
      report_cycle(tid, held.lock, lock, site);
      reported_pairs_.insert(
          {std::min(held.lock, lock), std::max(held.lock, lock)});
    }
    auto& out = order_[held.lock];
    if (!out.contains(lock)) out.emplace(lock, Edge{site, site});
  }
}

bool DeadlockTool::reaches(rt::LockId from, rt::LockId to) const {
  if (from == to) return true;
  std::vector<rt::LockId> stack{from};
  std::set<rt::LockId> seen{from};
  while (!stack.empty()) {
    const rt::LockId cur = stack.back();
    stack.pop_back();
    auto it = order_.find(cur);
    if (it == order_.end()) continue;
    for (const auto& [next, edge] : it->second) {
      if (next == to) return true;
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void DeadlockTool::report_cycle(rt::ThreadId tid, rt::LockId held,
                                rt::LockId wanted, support::SiteId site) {
  Report r;
  r.kind = Report::Kind::LockOrderInversion;
  r.access.thread = tid;
  r.access.site = site;
  r.stack = rt_->stack_of(tid);
  r.stack.insert(r.stack.begin(), site);
  r.extra = "thread " + std::to_string(tid) + " acquires '" +
            std::string(rt_->lock_name(wanted)) + "' while holding '" +
            std::string(rt_->lock_name(held)) +
            "', but the opposite order was also observed";
  reports_.add(std::move(r));
}

std::size_t DeadlockTool::edge_count() const {
  std::size_t n = 0;
  for (const auto& [lock, out] : order_) n += out.size();
  return n;
}

}  // namespace rg::core
