// DeadlockTool — lock-order checking.
//
// The implementation grew into the full lock-order-graph tool in
// core/lockgraph.hpp (acquisition histories, cross-thread refinements,
// predicted cycles). The old name stays as an alias: the naive tier of
// LockGraphTool is behavior-compatible with the original DeadlockTool.
#pragma once

#include "core/lockgraph.hpp"

namespace rg::core {

using DeadlockTool = LockGraphTool;

}  // namespace rg::core
