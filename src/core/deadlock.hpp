// DeadlockTool — lock-order checking.
//
// The paper (§3.3) relies on the race checker for deadlock detection
// instead of the application's own timeout hack ("since the race-checker
// also does dead-lock detection, application level detection is not
// needed"). This tool maintains the lock-acquisition order graph: an edge
// A→B is recorded when a thread acquires B while holding A; a cycle means
// two threads can interleave into a deadlock even if this run did not
// block. Complements the scheduler's detection of *actual* deadlocks.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "rt/tool.hpp"

namespace rg::core {

class DeadlockTool : public rt::Tool {
 public:
  const char* name() const override { return "deadlock"; }
  DeadlockTool();

  ReportManager& reports() { return reports_; }
  const ReportManager& reports() const { return reports_; }

  void on_pre_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                   support::SiteId site) override;

  /// Number of distinct order edges observed (statistics).
  std::size_t edge_count() const;

 private:
  struct Edge {
    support::SiteId first_site = support::kUnknownSite;   // where A was held
    support::SiteId second_site = support::kUnknownSite;  // where B was taken
  };

  /// True if `to` can reach `from` through recorded edges (cycle check).
  bool reaches(rt::LockId from, rt::LockId to) const;

  void report_cycle(rt::ThreadId tid, rt::LockId held, rt::LockId wanted,
                    support::SiteId site);

  ReportManager reports_;
  // adjacency: lock -> set of locks acquired while it was held
  std::unordered_map<rt::LockId, std::map<rt::LockId, Edge>> order_;
  std::set<std::pair<rt::LockId, rt::LockId>> reported_pairs_;
};

}  // namespace rg::core
