// EraserBasicTool — the unrefined lockset algorithm (paper §2.3.2, first
// pseudo-code listing).
//
//   For each v, initialize C(v) to the set of all locks.
//   On each access to v by thread t:
//     C(v) := C(v) ∩ locks_held(t); if C(v) = {} issue warning.
//
// "This should find all possible data-races, but results in too many false
// positives" — it warns on initialisation and read-shared data. Kept as a
// baseline for the detector-comparison experiment (E9) and for the §4.3
// false-negative study: unlike the state-machine version it is independent
// of execution order. The optional read/write-lock rule from the original
// Eraser paper ("not implemented in Helgrind") is available as an
// extension.
#pragma once

#include <cstdint>
#include <vector>

#include "core/report.hpp"
#include "rt/tool.hpp"
#include "shadow/lockset.hpp"
#include "shadow/shadow_map.hpp"
#include "support/assert.hpp"

namespace rg::core {

struct EraserBasicConfig {
  /// Apply the original-Eraser read-write lock refinement: reads check
  /// locks held in any mode, writes only write-mode locks.
  bool rw_rule = false;
  /// Exclude reads entirely (warn only at writes with empty lockset).
  bool warn_on_reads = true;
  /// Per-thread effective-lockset cache (read/write variants); pure
  /// memoisation, off only for the equivalence tests.
  bool lockset_cache = true;
  /// Shadow-map last-page TLB (same contract).
  bool shadow_tlb = true;
};

class EraserBasicTool : public rt::Tool {
 public:
  const char* name() const override { return "eraser"; }
  explicit EraserBasicTool(const EraserBasicConfig& config = {});

  ReportManager& reports() { return reports_; }
  const ReportManager& reports() const { return reports_; }

  void on_attach(rt::Runtime& rt) override;
  void on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                       support::SiteId site) override;
  void on_lock_create(rt::LockId lock, support::Symbol name,
                      bool is_rw) override;
  void on_post_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                    support::SiteId site) override;
  void on_unlock(rt::ThreadId tid, rt::LockId lock,
                 support::SiteId site) override;
  void on_access(const rt::MemoryAccess& access) override;
  void on_alloc(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                support::SiteId site) override;
  void on_free(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
               support::SiteId site) override;
  rt::ToolStats stats() const override;

 private:
  struct Cell {
    shadow::LocksetId lockset = shadow::kUniversalLockset;
    bool reported = false;
  };

  /// Per-thread memo of the held lockset, one variant per access kind
  /// (reads and writes differ only under rw_rule).
  struct LocksetCacheEntry {
    shadow::LocksetId id[2] = {};
    bool valid[2] = {};
  };

  shadow::LocksetId held_lockset(rt::ThreadId tid, bool is_write);
  shadow::LocksetId compute_held_lockset(rt::ThreadId tid, bool is_write);
  void invalidate_lockset_cache(rt::ThreadId tid);

  EraserBasicConfig config_;
  ReportManager reports_;
  shadow::LocksetTable locksets_;
  shadow::ShadowMap<Cell> shadow_;
  /// Dense by LockId; the read path indexes and can never insert.
  std::vector<std::uint8_t> is_rw_lock_;
  std::vector<LocksetCacheEntry> lockset_cache_;
  std::uint64_t lockset_cache_hits_ = 0;
  std::uint64_t lockset_cache_misses_ = 0;
};

}  // namespace rg::core
