#include "core/eraser.hpp"

#include "rt/runtime.hpp"

namespace rg::core {

EraserBasicTool::EraserBasicTool(const EraserBasicConfig& config)
    : config_(config), reports_("Eraser") {
  shadow_.set_tlb_enabled(config.shadow_tlb);
}

void EraserBasicTool::on_attach(rt::Runtime& rt) {
  Tool::on_attach(rt);
  // Backfill locks registered before this tool attached (e.g. another
  // tool's pseudo-lock) so LockIds stay dense in is_rw_lock_.
  while (is_rw_lock_.size() < rt.lock_count())
    is_rw_lock_.push_back(
        rt.lock_is_rw(static_cast<rt::LockId>(is_rw_lock_.size())) ? 1 : 0);
}

void EraserBasicTool::on_thread_start(rt::ThreadId tid, rt::ThreadId /*parent*/,
                                      support::SiteId /*site*/) {
  if (tid >= lockset_cache_.size()) lockset_cache_.resize(tid + 1);
}

void EraserBasicTool::on_lock_create(rt::LockId lock, support::Symbol /*name*/,
                                     bool is_rw) {
  RG_ASSERT_MSG(lock == is_rw_lock_.size(),
                "locks must be registered in id order");
  is_rw_lock_.push_back(is_rw ? 1 : 0);
  for (LocksetCacheEntry& e : lockset_cache_) e = LocksetCacheEntry{};
}

void EraserBasicTool::on_post_lock(rt::ThreadId tid, rt::LockId /*lock*/,
                                   rt::LockMode /*mode*/,
                                   support::SiteId /*site*/) {
  invalidate_lockset_cache(tid);
}

void EraserBasicTool::on_unlock(rt::ThreadId tid, rt::LockId /*lock*/,
                                support::SiteId /*site*/) {
  invalidate_lockset_cache(tid);
}

void EraserBasicTool::invalidate_lockset_cache(rt::ThreadId tid) {
  if (tid < lockset_cache_.size()) lockset_cache_[tid] = LocksetCacheEntry{};
}

shadow::LocksetId EraserBasicTool::held_lockset(rt::ThreadId tid,
                                                bool is_write) {
  const unsigned idx = is_write ? 1u : 0u;
  if (config_.lockset_cache && tid < lockset_cache_.size()) {
    LocksetCacheEntry& entry = lockset_cache_[tid];
    if (entry.valid[idx]) {
      ++lockset_cache_hits_;
      return entry.id[idx];
    }
    ++lockset_cache_misses_;
    const shadow::LocksetId id = compute_held_lockset(tid, is_write);
    entry.id[idx] = id;
    entry.valid[idx] = true;
    return id;
  }
  ++lockset_cache_misses_;
  return compute_held_lockset(tid, is_write);
}

shadow::LocksetId EraserBasicTool::compute_held_lockset(rt::ThreadId tid,
                                                        bool is_write) {
  shadow::LockVec held;
  for (const rt::HeldLock& h : rt_->held_locks(tid)) {
    RG_ASSERT_MSG(h.lock < is_rw_lock_.size(),
                  "lock used before on_lock_create");
    if (config_.rw_rule && is_write && h.mode == rt::LockMode::Shared)
      continue;  // write rule: only write-mode locks protect a write
    held.push_back(h.lock);
  }
  return locksets_.intern(std::move(held));
}

void EraserBasicTool::on_access(const rt::MemoryAccess& a) {
  const bool is_write = a.kind == rt::AccessKind::Write;
  const shadow::LocksetId held_id = held_lockset(a.thread, is_write);

  shadow_.for_range(a.addr, a.size, [&](Cell& cell) {
    if (cell.reported) return;
    cell.lockset = locksets_.intersect(cell.lockset, held_id);
    if (!locksets_.empty(cell.lockset)) return;
    if (!is_write && !config_.warn_on_reads) return;
    Report r;
    r.kind = Report::Kind::DataRace;
    r.access = a;
    r.stack = rt_->stack_of(a.thread);
    r.stack.insert(r.stack.begin(), a.site);
    r.origin = rt_->origin_of(a.addr);
    r.prev_state = "lockset emptied (no state machine)";
    r.lockset_desc = "{}";
    reports_.add(std::move(r));
    cell.reported = true;
  });
}

void EraserBasicTool::on_alloc(rt::ThreadId /*tid*/, rt::Addr addr,
                               std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

void EraserBasicTool::on_free(rt::ThreadId /*tid*/, rt::Addr addr,
                              std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

rt::ToolStats EraserBasicTool::stats() const {
  rt::ToolStats s;
  s.lockset_cache_hits = lockset_cache_hits_;
  s.lockset_cache_misses = lockset_cache_misses_;
  s.shadow_tlb_hits = shadow_.tlb_stats().hits;
  s.shadow_tlb_misses = shadow_.tlb_stats().misses;
  return s;
}

}  // namespace rg::core
