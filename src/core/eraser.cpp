#include "core/eraser.hpp"

#include "rt/runtime.hpp"

namespace rg::core {

EraserBasicTool::EraserBasicTool(const EraserBasicConfig& config)
    : config_(config), reports_("Eraser") {}

void EraserBasicTool::on_lock_create(rt::LockId lock, support::Symbol /*name*/,
                                     bool is_rw) {
  is_rw_lock_[lock] = is_rw;
}

void EraserBasicTool::on_access(const rt::MemoryAccess& a) {
  const bool is_write = a.kind == rt::AccessKind::Write;

  shadow::LockVec held;
  for (const rt::HeldLock& h : rt_->held_locks(a.thread)) {
    if (config_.rw_rule && is_write && h.mode == rt::LockMode::Shared)
      continue;  // write rule: only write-mode locks protect a write
    held.push_back(h.lock);
  }
  const shadow::LocksetId held_id = locksets_.intern(std::move(held));

  shadow_.for_range(a.addr, a.size, [&](Cell& cell) {
    if (cell.reported) return;
    cell.lockset = locksets_.intersect(cell.lockset, held_id);
    if (!locksets_.empty(cell.lockset)) return;
    if (!is_write && !config_.warn_on_reads) return;
    Report r;
    r.kind = Report::Kind::DataRace;
    r.access = a;
    r.stack = rt_->stack_of(a.thread);
    r.stack.insert(r.stack.begin(), a.site);
    r.origin = rt_->origin_of(a.addr);
    r.prev_state = "lockset emptied (no state machine)";
    r.lockset_desc = "{}";
    reports_.add(std::move(r));
    cell.reported = true;
  });
}

void EraserBasicTool::on_alloc(rt::ThreadId /*tid*/, rt::Addr addr,
                               std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

void EraserBasicTool::on_free(rt::ThreadId /*tid*/, rt::Addr addr,
                              std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

}  // namespace rg::core
