// Warning reports and their management.
//
// The paper counts "reported possible data race locations": distinct static
// locations, not dynamic occurrences. ReportManager deduplicates by a
// location key (kind + innermost frame + allocation origin), applies
// Valgrind-style suppression patterns, and renders Helgrind-style report
// text (cf. Fig. 9).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rt/ids.hpp"
#include "rt/runtime.hpp"
#include "support/site.hpp"

namespace rg::core {

struct Report {
  enum class Kind : std::uint8_t {
    DataRace,
    LockOrderInversion,
    /// A refined lock-order cycle that survived the cross-thread feasibility
    /// refinements: some interleaving of the observed run can deadlock.
    PredictedDeadlock,
  };

  Kind kind = Kind::DataRace;
  /// The offending access (data races only).
  rt::MemoryAccess access;
  /// Shadow call stack at the time of the warning, innermost frame first.
  std::vector<support::SiteId> stack;
  /// Where the accessed memory came from.
  rt::AddrOrigin origin;
  /// Shadow state before this access, e.g. "shared RO, no locks".
  std::string prev_state;
  /// Candidate lockset after the intersection that emptied it.
  std::string lockset_desc;
  /// Free-form detail (lock cycles, hybrid confirmation, ...).
  std::string extra;
  /// Dynamic occurrences folded into this location.
  std::uint32_t occurrences = 1;
  /// Flight-recorder cursor at the moment the warning fired (0 when no
  /// recorder was attached): events with seq < recorder_cursor led up to
  /// it. rg-debug --explain uses it to dump the accesses and lock
  /// operations that drove the lockset to empty.
  std::uint64_t recorder_cursor = 0;
  /// PredictedDeadlock only: the locks of the predicted cycle, in cycle
  /// order, and the thread that takes each edge. rg-debug --explain
  /// filters the flight-recorder stream down to these participants.
  std::vector<std::uint64_t> cycle_locks;
  std::vector<rt::ThreadId> cycle_threads;

  /// Innermost report frame (the access site when the stack is empty).
  support::SiteId top_site() const {
    return stack.empty() ? access.site : stack.front();
  }

  /// Stable identity of the reported *location*.
  std::string location_key() const;
};

const char* to_string(Report::Kind kind);

/// One parsed suppression entry (simplified Valgrind format).
struct Suppression {
  std::string name;
  std::string kind_pattern;  // e.g. "Helgrind:Race", may contain globs
  /// Function-name glob patterns matched against the report stack from the
  /// innermost frame outward; "..." matches any run of frames.
  std::vector<std::string> frame_patterns;
};

/// Parses a suppression file. Format:
///   {
///     <name>
///     <tool>:<kind>
///     fun:<glob>
///     ...
///   }
/// Unknown directives (obj:, ...) are accepted and treated as "...".
std::vector<Suppression> parse_suppressions(std::string_view text);

class ReportManager {
 public:
  explicit ReportManager(std::string tool_name = "raceguard");

  void add_suppressions(const std::vector<Suppression>& sups);
  void load_suppressions(std::string_view text) {
    add_suppressions(parse_suppressions(text));
  }

  /// Warning-storm hardening: once `max_locations` distinct locations have
  /// been filed, further *new* locations are counted but not stored, so a
  /// chaos run whose detector melts down degrades to O(cap) memory instead
  /// of O(warnings). Existing locations keep folding normally. 0 (default)
  /// = unlimited.
  void set_report_cap(std::size_t max_locations) { cap_ = max_locations; }
  std::size_t report_cap() const { return cap_; }
  /// New locations dropped because the cap was reached.
  std::uint64_t overflow_reports() const { return overflow_; }

  /// Files a report. Returns true when it established a *new* location;
  /// false when it was folded into an existing one, suppressed, or dropped
  /// by the report cap.
  bool add(Report report);

  /// Distinct reported locations (the quantity in Figs. 5/6).
  std::size_t distinct_locations() const { return reports_.size(); }
  /// Dynamic warning count including duplicates.
  std::uint64_t total_warnings() const { return total_; }
  std::uint64_t suppressed_warnings() const { return suppressed_; }

  const std::vector<Report>& reports() const { return reports_; }

  /// All distinct location keys (for cross-configuration diffing).
  std::vector<std::string> location_keys() const;

  /// Helgrind-style textual log of every distinct location.
  std::string render(const rt::Runtime& rt) const;

  /// Valgrind's --gen-suppressions: emits one suppression block per
  /// distinct location, ready to be fed back via load_suppressions — the
  /// paper's workflow for "code that is not modifiable (e.g., third-party
  /// libraries)".
  std::string generate_suppressions() const;

 private:
  bool suppressed(const Report& report) const;

  std::string tool_name_;
  std::vector<Suppression> suppressions_;
  std::vector<Report> reports_;
  std::unordered_map<std::string, std::size_t> by_key_;
  std::uint64_t total_ = 0;
  std::uint64_t suppressed_ = 0;
  std::size_t cap_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace rg::core
