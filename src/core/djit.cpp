#include "core/djit.hpp"

#include "rt/runtime.hpp"
#include "support/assert.hpp"

namespace rg::core {

DjitTool::DjitTool(const DjitConfig& config)
    : config_(config), reports_("DJIT") {}

shadow::VectorClock& DjitTool::clock_of(rt::ThreadId tid) {
  if (tid >= thread_clocks_.size()) thread_clocks_.resize(tid + 1);
  return thread_clocks_[tid];
}

void DjitTool::on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                               support::SiteId /*site*/) {
  shadow::VectorClock& child = clock_of(tid);
  if (parent != rt::kNoThread) {
    child.merge(clock_of(parent));
    // The creator moves to a new time frame so its post-create accesses are
    // not ordered before the child's.
    clock_of(parent).tick(parent);
  }
  child.tick(tid);
}

void DjitTool::on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                              support::SiteId /*site*/) {
  clock_of(joiner).merge(clock_of(joined));
  clock_of(joiner).tick(joiner);
}

void DjitTool::on_post_lock(rt::ThreadId tid, rt::LockId lock,
                            rt::LockMode /*mode*/, support::SiteId /*site*/) {
  if (!config_.lock_hb) return;
  if (auto it = lock_clocks_.find(lock); it != lock_clocks_.end())
    clock_of(tid).merge(it->second);
}

void DjitTool::on_unlock(rt::ThreadId tid, rt::LockId lock,
                         support::SiteId /*site*/) {
  if (!config_.lock_hb) return;
  shadow::VectorClock& mine = clock_of(tid);
  lock_clocks_[lock] = mine;
  mine.tick(tid);  // new time frame after release (DJIT frame boundary)
}

void DjitTool::on_cond_signal(rt::ThreadId tid, rt::SyncId cond,
                              support::SiteId /*site*/) {
  if (!config_.condvar_hb) return;
  cond_clocks_[cond] = clock_of(tid);
  clock_of(tid).tick(tid);
}

void DjitTool::on_cond_wait_return(rt::ThreadId tid, rt::SyncId cond,
                                   rt::LockId /*lock*/,
                                   support::SiteId /*site*/) {
  if (!config_.condvar_hb) return;
  if (auto it = cond_clocks_.find(cond); it != cond_clocks_.end())
    clock_of(tid).merge(it->second);
}

void DjitTool::on_queue_put(rt::ThreadId tid, rt::SyncId /*queue*/,
                            std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.message_hb || token == 0) return;
  queue_token_clocks_[token] = clock_of(tid);
  clock_of(tid).tick(tid);
}

void DjitTool::on_queue_get(rt::ThreadId tid, rt::SyncId /*queue*/,
                            std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.message_hb || token == 0) return;
  if (auto it = queue_token_clocks_.find(token);
      it != queue_token_clocks_.end()) {
    clock_of(tid).merge(it->second);
    queue_token_clocks_.erase(it);
  }
}

void DjitTool::on_sem_post(rt::ThreadId tid, rt::SyncId /*sem*/,
                           std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.message_hb || token == 0) return;
  sem_token_clocks_[token] = clock_of(tid);
  clock_of(tid).tick(tid);
}

void DjitTool::on_sem_wait_return(rt::ThreadId tid, rt::SyncId /*sem*/,
                                  std::uint64_t token,
                                  support::SiteId /*site*/) {
  if (!config_.message_hb || token == 0) return;
  if (auto it = sem_token_clocks_.find(token); it != sem_token_clocks_.end()) {
    clock_of(tid).merge(it->second);
    sem_token_clocks_.erase(it);
  }
}

void DjitTool::on_access(const rt::MemoryAccess& a) {
  shadow::VectorClock& mine = clock_of(a.thread);
  const bool is_write = a.kind == rt::AccessKind::Write;

  shadow_.for_range(a.addr, a.size, [&](Cell& cell) {
    if (cell.reported) return;
    // Check against the last write.
    if (cell.write_tid != rt::kNoThread && cell.write_tid != a.thread &&
        cell.write_tick > mine.get(cell.write_tid)) {
      report_race(cell, a, "earlier write", cell.write_site);
      return;
    }
    if (is_write) {
      // A write must also be ordered after every earlier read.
      for (rt::ThreadId t = 0; t < cell.reads.width(); ++t) {
        if (t == a.thread) continue;
        const auto read_tick = cell.reads.get(t);
        if (read_tick != 0 && read_tick > mine.get(t)) {
          report_race(cell, a, "earlier read", support::kUnknownSite);
          return;
        }
      }
      cell.write_tid = a.thread;
      cell.write_tick = mine.get(a.thread);
      cell.write_site = a.site;
    } else {
      cell.reads.set(a.thread, mine.get(a.thread));
    }
  });
}

void DjitTool::report_race(Cell& cell, const rt::MemoryAccess& a,
                           const char* vs, support::SiteId other_site) {
  Report r;
  r.kind = Report::Kind::DataRace;
  r.access = a;
  r.stack = rt_->stack_of(a.thread);
  r.stack.insert(r.stack.begin(), a.site);
  r.origin = rt_->origin_of(a.addr);
  r.prev_state = std::string("unordered with ") + vs;
  if (other_site != support::kUnknownSite)
    r.extra = "conflicting access at " +
              support::global_sites().describe(other_site);
  reports_.add(std::move(r));
  // DJIT reports only the first apparent race per location.
  cell.reported = true;
}

void DjitTool::on_alloc(rt::ThreadId /*tid*/, rt::Addr addr,
                        std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

void DjitTool::on_free(rt::ThreadId /*tid*/, rt::Addr addr, std::uint32_t size,
                       support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

}  // namespace rg::core
