// HybridTool — lockset + happens-before combination (Multi-Race style,
// paper §2.2).
//
// Multi-Race [13] and the hybrid detector of O'Callahan & Choi [12] combine
// the lockset and vector-clock approaches: the lockset pass proposes
// candidate locations (order-independent, over-approximate), the
// happens-before pass classifies which of them actually manifested
// unordered in the observed execution. This tool runs a HelgrindTool and a
// DjitTool side by side on the same event stream and merges their verdicts
// per location at finish.
#pragma once

#include <vector>

#include "core/djit.hpp"
#include "core/helgrind.hpp"
#include "core/report.hpp"
#include "rt/tool.hpp"

namespace rg::core {

struct HybridVerdict {
  Report report;  // the lockset (or HB-only) report
  /// Lockset flagged it AND the observed ordering was genuinely unordered.
  bool confirmed = false;
  /// Flagged only by happens-before (a race the lockset discipline hides,
  /// e.g. accidental lock coincidence).
  bool hb_only = false;
};

struct HybridConfig {
  HelgrindConfig lockset;
  DjitConfig hb;
};

class HybridTool : public rt::Tool {
 public:
  const char* name() const override { return "hybrid"; }
  explicit HybridTool(const HybridConfig& config = {});

  /// Merged per-location verdicts; valid after on_finish.
  const std::vector<HybridVerdict>& verdicts() const { return verdicts_; }

  std::size_t confirmed_count() const;
  std::size_t possible_count() const;
  std::size_t hb_only_count() const;

  const HelgrindTool& lockset_tool() const { return lockset_; }
  const DjitTool& hb_tool() const { return hb_; }

  // Tool interface: forward everything to both sub-detectors. ------------
  void on_attach(rt::Runtime& rt) override;
  void on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                       support::SiteId site) override;
  void on_thread_exit(rt::ThreadId tid) override;
  void on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                      support::SiteId site) override;
  void on_lock_create(rt::LockId lock, support::Symbol name,
                      bool is_rw) override;
  void on_lock_destroy(rt::LockId lock) override;
  void on_pre_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                   support::SiteId site) override;
  void on_post_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                    support::SiteId site) override;
  void on_unlock(rt::ThreadId tid, rt::LockId lock,
                 support::SiteId site) override;
  void on_cond_signal(rt::ThreadId tid, rt::SyncId cond,
                      support::SiteId site) override;
  void on_cond_wait_return(rt::ThreadId tid, rt::SyncId cond, rt::LockId lock,
                           support::SiteId site) override;
  void on_sem_post(rt::ThreadId tid, rt::SyncId sem, std::uint64_t token,
                   support::SiteId site) override;
  void on_sem_wait_return(rt::ThreadId tid, rt::SyncId sem,
                          std::uint64_t token, support::SiteId site) override;
  void on_queue_put(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_queue_get(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_access(const rt::MemoryAccess& access) override;
  void on_alloc(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                support::SiteId site) override;
  void on_free(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
               support::SiteId site) override;
  void on_destruct_annotation(rt::ThreadId tid, rt::Addr addr,
                              std::uint32_t size,
                              support::SiteId site) override;
  void on_finish() override;

 private:
  HelgrindTool lockset_;
  DjitTool hb_;
  std::vector<HybridVerdict> verdicts_;
};

}  // namespace rg::core
