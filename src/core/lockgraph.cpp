#include "core/lockgraph.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "rt/runtime.hpp"

namespace rg::core {

LockGraphTool::LockGraphTool() : reports_("Helgrind"), predictions_("Helgrind") {}

// --- thread lifecycle / span tracking ---------------------------------------

void LockGraphTool::on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                                    support::SiteId /*site*/) {
  ++op_seq_;
  ThreadState& child = threads_[tid];
  if (parent == rt::kNoThread) return;
  auto it = threads_.find(parent);
  if (it == threads_.end()) return;
  // Fork inheritance (depth 1): every lock the parent holds right now is a
  // candidate guard for the child's acquisitions, identified by the
  // parent's hold span so same-span siblings do not fake-serialize.
  for (const auto& [lock, hold] : it->second.holds) {
    child.inherited.push_back({lock, hold.open_seq});
    candidate_spans_.insert(hold.open_seq);
  }
}

void LockGraphTool::on_thread_join(rt::ThreadId /*joiner*/, rt::ThreadId joined,
                                   support::SiteId /*site*/) {
  joined_at_[joined] = ++op_seq_;
}

void LockGraphTool::on_post_lock(rt::ThreadId tid, rt::LockId lock,
                                 rt::LockMode /*mode*/, support::SiteId site) {
  ++op_seq_;
  Hold& h = threads_[tid].holds[lock];
  if (h.depth++ == 0) {
    h.open_seq = op_seq_;
    h.site = site;
  }
}

void LockGraphTool::on_unlock(rt::ThreadId tid, rt::LockId lock,
                              support::SiteId /*site*/) {
  ++op_seq_;
  auto tit = threads_.find(tid);
  if (tit == threads_.end()) return;
  auto hit = tit->second.holds.find(lock);
  if (hit == tit->second.holds.end()) return;
  if (--hit->second.depth == 0) {
    // Only spans some inherited candidate guard references matter to
    // adjudication; witnessing every close would grow closed_spans_ by one
    // entry per unlock in the run.
    if (!candidate_spans_.empty() &&
        candidate_spans_.contains(hit->second.open_seq))
      closed_spans_[hit->second.open_seq] = op_seq_;
    tit->second.holds.erase(hit);
  }
}

// --- acquisition ------------------------------------------------------------

void LockGraphTool::on_pre_lock(rt::ThreadId tid, rt::LockId lock,
                                rt::LockMode /*mode*/, support::SiteId site) {
  // Tier A: the naive order graph, unchanged semantics.
  for (const rt::HeldLock& held : rt_->held_locks(tid)) {
    if (held.lock == lock) continue;
    // Would edge held.lock -> lock close a cycle?
    if (reaches(lock, held.lock) &&
        !reported_pairs_.contains({std::min(held.lock, lock),
                                   std::max(held.lock, lock)})) {
      report_cycle(tid, held.lock, lock, site);
      reported_pairs_.insert(
          {std::min(held.lock, lock), std::max(held.lock, lock)});
    }
    auto& out = order_[held.lock];
    if (!out.contains(lock)) out.emplace(lock, Edge{site, site});
  }

  // Tier B: record an acquisition history per held lock and re-examine
  // cycles the new edges may have closed.
  ThreadState& ts = threads_[tid];
  if (ts.holds.empty()) return;
  obs::FlightRecorder* fr = rt_ != nullptr ? rt_->recorder() : nullptr;
  if (fr != nullptr)
    fr->record_now(obs::EventKind::DeadlockAcquire, tid, lock,
                   ts.holds.size(), site);
  for (const auto& [first, hold] : ts.holds) {
    if (first == lock) continue;
    auto& row = histories_[first];
    const bool new_edge = !row.contains(lock);
    if (new_edge) ++counters_.edges;
    auto& vec = row[lock];
    // Cap check before building the Instance: in steady state every edge
    // is already full and the nested acquisition must cost two map lookups,
    // not two vector constructions.
    if (vec.size() >= kMaxInstancesPerEdge) continue;  // capped; no new info
    Instance inst;
    inst.tid = tid;
    inst.first_site = hold.site;
    inst.second_site = site;
    inst.cursor = fr != nullptr ? fr->cursor() : 0;
    for (const auto& [g, ghold] : ts.holds)
      if (g != first && g != lock) inst.guards.push_back({g, ghold.open_seq});
    inst.candidates = ts.inherited;
    vec.push_back(std::move(inst));
    ++counters_.instances;
    examine_cycles(first, lock);
  }
}

// --- tier A helpers ---------------------------------------------------------

bool LockGraphTool::reaches(rt::LockId from, rt::LockId to) const {
  if (from == to) return true;
  if (!order_.contains(from)) return false;  // no outgoing edges at all
  // Reusable scratch with linear membership: the graph holds tens of locks
  // and this runs on every nested acquisition.
  scratch_stack_.clear();
  scratch_seen_.clear();
  scratch_stack_.push_back(from);
  scratch_seen_.push_back(from);
  while (!scratch_stack_.empty()) {
    const rt::LockId cur = scratch_stack_.back();
    scratch_stack_.pop_back();
    auto it = order_.find(cur);
    if (it == order_.end()) continue;
    for (const auto& [next, edge] : it->second) {
      if (next == to) return true;
      if (std::find(scratch_seen_.begin(), scratch_seen_.end(), next) ==
          scratch_seen_.end()) {
        scratch_seen_.push_back(next);
        scratch_stack_.push_back(next);
      }
    }
  }
  return false;
}

void LockGraphTool::report_cycle(rt::ThreadId tid, rt::LockId held,
                                 rt::LockId wanted, support::SiteId site) {
  Report r;
  r.kind = Report::Kind::LockOrderInversion;
  r.access.thread = tid;
  r.access.site = site;
  r.stack = rt_->stack_of(tid);
  r.stack.insert(r.stack.begin(), site);
  r.extra = "thread " + std::to_string(tid) + " acquires '" +
            std::string(rt_->lock_name(wanted)) + "' while holding '" +
            std::string(rt_->lock_name(held)) +
            "', but the opposite order was also observed";
  obs::FlightRecorder* fr = rt_ != nullptr ? rt_->recorder() : nullptr;
  r.recorder_cursor = fr != nullptr ? fr->cursor() : 0;
  reports_.add(std::move(r));
}

std::size_t LockGraphTool::edge_count() const {
  std::size_t n = 0;
  for (const auto& [lock, out] : order_) n += out.size();
  return n;
}

// --- tier B: cycle enumeration and adjudication ------------------------------

std::string LockGraphTool::canonical_key(const std::vector<rt::LockId>& locks) {
  std::vector<rt::LockId> sorted = locks;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (rt::LockId l : sorted) {
    key += std::to_string(l);
    key += ',';
  }
  return key;
}

void LockGraphTool::examine_cycles(rt::LockId first, rt::LockId second) {
  if (first == second) return;
  // A cycle through the new edge needs a refined path second →* first; if
  // nothing ever left `second` there is none (the common leaf-lock case —
  // bail before building any DFS state).
  if (!histories_.contains(second)) return;
  // Enumerate simple paths second →* first in the refined graph; each,
  // prefixed with the new edge first→second, is a candidate cycle.
  // The self-recursive generic lambda avoids a std::function allocation;
  // on-path membership is a linear scan of the (≤ kMaxCycleLen) path.
  std::vector<std::vector<rt::LockId>> paths;
  std::vector<rt::LockId> path{second};
  auto on_path = [&](rt::LockId v) {
    return v == first ||
           std::find(path.begin(), path.end(), v) != path.end();
  };
  auto dfs = [&](auto&& self, rt::LockId u) -> void {
    if (paths.size() >= kMaxPathsPerEdge) return;
    auto it = histories_.find(u);
    if (it == histories_.end()) return;
    for (const auto& [v, insts] : it->second) {
      if (insts.empty()) continue;
      if (v == first) {
        paths.push_back(path);
        if (paths.size() >= kMaxPathsPerEdge) return;
        continue;
      }
      if (path.size() >= kMaxCycleLen - 1) continue;
      if (on_path(v)) continue;
      path.push_back(v);
      self(self, v);
      path.pop_back();
    }
  };
  dfs(dfs, second);

  for (const std::vector<rt::LockId>& p : paths) {
    CycleCandidate cycle;
    cycle.locks.reserve(p.size() + 1);
    cycle.locks.push_back(first);
    cycle.locks.insert(cycle.locks.end(), p.begin(), p.end());
    const std::size_t n = cycle.locks.size();
    cycle.instances.reserve(n);
    bool complete = true;
    for (std::size_t i = 0; i < n && complete; ++i) {
      const rt::LockId from = cycle.locks[i];
      const rt::LockId to = cycle.locks[(i + 1) % n];
      auto rit = histories_.find(from);
      if (rit == histories_.end()) {
        complete = false;
        break;
      }
      auto eit = rit->second.find(to);
      if (eit == rit->second.end() || eit->second.empty()) {
        complete = false;
        break;
      }
      cycle.instances.push_back(eit->second);
    }
    if (complete) adjudicate(std::move(cycle), /*final=*/false);
  }
}

void LockGraphTool::adjudicate(CycleCandidate cycle, bool final) {
  const std::string key = canonical_key(cycle.locks);
  if (reported_cycles_.contains(key)) return;
  ++counters_.cycles_examined;
  if (final) {
    const Verdict v = evaluate(cycle, Mode::Confirmed);
    if (v.feasible) {
      report_prediction(cycle, v);
    } else if (!v.any_distinct_threads) {
      ++counters_.pruned_single_thread;
    } else {
      ++counters_.pruned_guarded;
    }
    return;
  }
  // Candidate guards only ever *remove* feasibility: a cycle feasible with
  // every candidate treated as present stays feasible however the
  // candidates resolve, and one infeasible with every candidate absent
  // stays infeasible. Anything in between waits for on_finish, when join
  // order and span closes have settled.
  const Verdict pess = evaluate(cycle, Mode::Pessimistic);
  if (pess.feasible) {
    report_prediction(cycle, pess);
    pending_.erase(key);
    return;
  }
  const Verdict opt = evaluate(cycle, Mode::Optimistic);
  if (!opt.feasible) {
    if (!opt.any_distinct_threads) {
      ++counters_.pruned_single_thread;
    } else {
      ++counters_.pruned_guarded;
    }
    pending_.erase(key);
    return;
  }
  pending_[key] = std::move(cycle);  // latest snapshot wins
}

bool LockGraphTool::candidate_confirmed(const CandidateGuard& c,
                                        rt::ThreadId child) const {
  auto sit = closed_spans_.find(c.span);
  if (sit == closed_spans_.end()) return true;  // never released
  auto jit = joined_at_.find(child);
  // Released after the child was joined: the span enclosed its lifetime.
  return jit != joined_at_.end() && sit->second > jit->second;
}

LockGraphTool::Verdict LockGraphTool::evaluate(const CycleCandidate& cycle,
                                               Mode mode) const {
  Verdict v;
  const std::size_t n = cycle.locks.size();
  if (n == 0 || cycle.instances.size() != n) return v;
  for (const std::vector<Instance>& list : cycle.instances)
    if (list.empty()) return v;
  const std::set<rt::LockId> in_cycle(cycle.locks.begin(), cycle.locks.end());

  std::vector<std::size_t> idx(n, 0);
  std::size_t combos = 0;
  std::vector<std::vector<GuardRef>> eff(n);
  while (combos < kMaxCombos) {
    ++combos;
    // Single-thread refinement: a feasible interleaving needs a distinct
    // thread per edge (one thread cannot block on itself).
    bool distinct = true;
    for (std::size_t i = 0; i < n && distinct; ++i)
      for (std::size_t j = i + 1; j < n && distinct; ++j)
        if (cycle.instances[i][idx[i]].tid == cycle.instances[j][idx[j]].tid)
          distinct = false;
    if (distinct) {
      v.any_distinct_threads = true;
      // Gate-lock refinement: a guard lock outside the cycle common to two
      // histories serializes their critical sections — unless both
      // occurrences are the *same* hold span (one critical section,
      // inherited by concurrent children).
      for (std::size_t i = 0; i < n; ++i) {
        const Instance& inst = cycle.instances[i][idx[i]];
        eff[i].clear();
        for (const GuardRef& g : inst.guards)
          if (!in_cycle.contains(g.lock)) eff[i].push_back(g);
        if (mode != Mode::Optimistic) {
          for (const CandidateGuard& c : inst.candidates) {
            if (in_cycle.contains(c.lock)) continue;
            if (mode == Mode::Confirmed && !candidate_confirmed(c, inst.tid))
              continue;
            eff[i].push_back({c.lock, c.span});
          }
        }
      }
      bool serialized = false;
      for (std::size_t i = 0; i < n && !serialized; ++i)
        for (std::size_t j = i + 1; j < n && !serialized; ++j)
          for (const GuardRef& gi : eff[i]) {
            for (const GuardRef& gj : eff[j])
              if (gi.lock == gj.lock && gi.span != gj.span) {
                serialized = true;
                break;
              }
            if (serialized) break;
          }
      if (!serialized) {
        v.feasible = true;
        v.combo.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
          v.combo.push_back(cycle.instances[i][idx[i]]);
        return v;
      }
    }
    // Advance the combination odometer.
    std::size_t k = 0;
    while (k < n) {
      if (++idx[k] < cycle.instances[k].size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return v;
}

void LockGraphTool::report_prediction(const CycleCandidate& cycle,
                                      const Verdict& v) {
  const std::string key = canonical_key(cycle.locks);
  reported_cycles_.insert(key);
  pending_.erase(key);
  ++counters_.predicted;

  const std::size_t n = cycle.locks.size();
  PredictedCycle pc;
  pc.edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Instance& inst = v.combo[i];
    PredictedCycle::Edge e;
    e.tid = inst.tid;
    e.first = cycle.locks[i];
    e.second = cycle.locks[(i + 1) % n];
    e.first_site = inst.first_site;
    e.second_site = inst.second_site;
    pc.edges.push_back(e);
  }
  obs::FlightRecorder* fr = rt_ != nullptr ? rt_->recorder() : nullptr;
  pc.recorder_cursor = fr != nullptr ? fr->cursor() : 0;
  if (fr != nullptr)
    fr->record_now(obs::EventKind::DeadlockCycle, pc.edges.front().tid,
                   cycle.locks.front(), n, pc.edges.front().second_site);

  Report r;
  r.kind = Report::Kind::PredictedDeadlock;
  r.access.thread = pc.edges.front().tid;
  r.access.site = pc.edges.front().second_site;
  for (const PredictedCycle::Edge& e : pc.edges) r.stack.push_back(e.second_site);
  r.cycle_locks = pc.lock_ids();
  r.cycle_threads = pc.thread_ids();
  r.recorder_cursor = pc.recorder_cursor;
  std::string extra;
  for (const PredictedCycle::Edge& e : pc.edges) {
    if (!extra.empty()) extra += "; ";
    extra += "thread " + std::to_string(e.tid) + " acquires '" +
             std::string(rt_->lock_name(e.second)) + "' while holding '" +
             std::string(rt_->lock_name(e.first)) + "'";
  }
  r.extra = "predicted cycle: " + extra;
  predictions_.add(std::move(r));
  predicted_.push_back(std::move(pc));
}

void LockGraphTool::on_finish() {
  // Resolve cycles whose verdict depended on unconfirmed fork-inherited
  // guards; the span/join evidence is complete now.
  std::map<std::string, CycleCandidate> pending;
  pending.swap(pending_);
  for (auto& [key, cycle] : pending) {
    if (reported_cycles_.contains(key)) continue;
    ++counters_.pending_resolved;
    adjudicate(std::move(cycle), /*final=*/true);
  }
}

void LockGraphTool::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("lockgraph.edges").set(counters_.edges);
  registry.counter("lockgraph.instances").set(counters_.instances);
  registry.counter("lockgraph.cycles_examined").set(counters_.cycles_examined);
  registry.counter("lockgraph.pruned_single_thread")
      .set(counters_.pruned_single_thread);
  registry.counter("lockgraph.pruned_guarded").set(counters_.pruned_guarded);
  registry.counter("lockgraph.pending_resolved")
      .set(counters_.pending_resolved);
  registry.counter("lockgraph.predicted_cycles").set(counters_.predicted);
  registry.counter("lockgraph.naive_inversions")
      .set(reports_.distinct_locations());
}

}  // namespace rg::core
