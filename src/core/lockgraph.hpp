// LockGraphTool — lock-order graphs with cross-thread refinements.
//
// The paper (§3.3) relies on the race checker for deadlock detection
// instead of the application's own timeout hack. The naive lock-order
// check (an edge A→B whenever a thread acquires B while holding A; any
// cycle is flagged) over-approximates badly: single-thread cycles and
// cycles whose critical sections share a common gate lock can never
// block. This tool keeps the naive check as a compatibility tier and adds
// a refined *prediction* tier built on per-acquisition histories:
//
//  - every nested acquisition records an acquisition history — the
//    acquiring thread, the full held-lock set at that moment (with the
//    hold-span identity of each lock), the source sites of both ends, and
//    the flight-recorder cursor;
//  - fork inheritance: a thread spawned while its parent holds L inherits
//    L as a *candidate* guard for its own acquisitions; the candidate is
//    confirmed when the parent's hold span encloses the child's lifetime
//    (released after the join, or never) — the cross-thread critical
//    section refinement of Sulzmann et al. (arXiv 2512.23552, 2307.09855);
//  - a cycle is *predicted* only if some combination of its acquisition
//    histories is feasible: pairwise-distinct threads (single-thread
//    refinement) and no two histories serialized by a common guard lock
//    outside the cycle (gate-lock refinement). Two candidate guards
//    inherited from the same hold span do not serialize — they are the
//    same critical section.
//
// Candidate guards are adjudicated online: a cycle feasible even with all
// candidates present is reported immediately (guards only ever remove
// feasibility); a cycle infeasible even with all candidates absent is
// pruned immediately; everything else is held pending and resolved at
// on_finish, when join order and span closes are known.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "rt/tool.hpp"

namespace rg::core {

/// One predicted deadlock cycle from a non-deadlocking run. Edge i means
/// `tid` acquired `second` while holding `first`; the next edge's `first`
/// is this edge's `second` (and the last wraps to the first).
struct PredictedCycle {
  struct Edge {
    rt::ThreadId tid = rt::kNoThread;
    rt::LockId first = rt::kNoLock;
    rt::LockId second = rt::kNoLock;
    support::SiteId first_site = support::kUnknownSite;   // where first was taken
    support::SiteId second_site = support::kUnknownSite;  // where second was requested
  };
  std::vector<Edge> edges;
  /// Flight-recorder cursor when the cycle closed (0 = no recorder).
  std::uint64_t recorder_cursor = 0;

  std::vector<std::uint64_t> lock_ids() const {
    std::vector<std::uint64_t> out;
    out.reserve(edges.size());
    for (const Edge& e : edges) out.push_back(e.first);
    return out;
  }
  std::vector<rt::ThreadId> thread_ids() const {
    std::vector<rt::ThreadId> out;
    out.reserve(edges.size());
    for (const Edge& e : edges) out.push_back(e.tid);
    return out;
  }
};

class LockGraphTool : public rt::Tool {
 public:
  const char* name() const override { return "deadlock"; }
  LockGraphTool();

  /// Tier A: naive lock-order inversion reports (Helgrind-compatible).
  ReportManager& reports() { return reports_; }
  const ReportManager& reports() const { return reports_; }

  /// Tier B: refined predictions that survived the feasibility refinements.
  ReportManager& predictions() { return predictions_; }
  const ReportManager& predictions() const { return predictions_; }
  const std::vector<PredictedCycle>& predicted() const { return predicted_; }

  void on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                       support::SiteId site) override;
  void on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                      support::SiteId site) override;
  void on_pre_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                   support::SiteId site) override;
  void on_post_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                    support::SiteId site) override;
  void on_unlock(rt::ThreadId tid, rt::LockId lock,
                 support::SiteId site) override;
  void on_finish() override;

  /// Number of distinct naive order edges observed (statistics).
  std::size_t edge_count() const;

  struct Counters {
    std::uint64_t edges = 0;                // distinct refined edges
    std::uint64_t instances = 0;            // acquisition histories stored
    std::uint64_t cycles_examined = 0;      // candidate cycles adjudicated
    std::uint64_t pruned_single_thread = 0; // no pairwise-distinct combo
    std::uint64_t pruned_guarded = 0;       // gate-lock serialization
    std::uint64_t pending_resolved = 0;     // adjudicated at on_finish
    std::uint64_t predicted = 0;            // cycles reported
  };
  const Counters& counters() const { return counters_; }

  /// Publishes the counters as `lockgraph.*` (plus the report tallies).
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  // --- tier A (naive, byte-compatible with the old DeadlockTool) ---------
  struct Edge {
    support::SiteId first_site = support::kUnknownSite;   // where A was held
    support::SiteId second_site = support::kUnknownSite;  // where B was taken
  };

  /// True if `to` can reach `from` through naive edges (cycle check).
  bool reaches(rt::LockId from, rt::LockId to) const;
  void report_cycle(rt::ThreadId tid, rt::LockId held, rt::LockId wanted,
                    support::SiteId site);

  // --- tier B (acquisition histories + refinements) ----------------------
  /// A guard occurrence: `lock` held during the acquisition, identified by
  /// the hold span that covers it. Two occurrences of the same lock from
  /// *different* spans serialize the critical sections; the same span is
  /// one critical section and does not.
  struct GuardRef {
    rt::LockId lock = rt::kNoLock;
    std::uint64_t span = 0;  // open_seq of the hold span
  };

  /// A guard inherited at fork time, pending confirmation that the
  /// parent's hold span enclosed the child's lifetime.
  struct CandidateGuard {
    rt::LockId lock = rt::kNoLock;
    std::uint64_t span = 0;  // parent's open_seq
  };

  /// One acquisition history for a directed edge first→second.
  struct Instance {
    rt::ThreadId tid = rt::kNoThread;
    support::SiteId first_site = support::kUnknownSite;
    support::SiteId second_site = support::kUnknownSite;
    std::vector<GuardRef> guards;             // other locks held (direct)
    std::vector<CandidateGuard> candidates;   // inherited at fork
    std::uint64_t cursor = 0;
  };

  struct Hold {
    std::uint32_t depth = 0;
    std::uint64_t open_seq = 0;
    support::SiteId site = support::kUnknownSite;
  };

  struct ThreadState {
    std::map<rt::LockId, Hold> holds;
    std::vector<CandidateGuard> inherited;
  };

  enum class Mode : std::uint8_t {
    Pessimistic,  // all candidate guards present (max serialization)
    Optimistic,   // all candidate guards absent (min serialization)
    Confirmed,    // candidates resolved against span/join evidence
  };

  struct CycleCandidate {
    std::vector<rt::LockId> locks;  // cycle order; edge i: locks[i]→locks[i+1]
    std::vector<std::vector<Instance>> instances;  // per edge, snapshot
  };

  struct Verdict {
    bool feasible = false;
    bool any_distinct_threads = false;
    std::vector<Instance> combo;  // a feasible witness, one per edge
  };

  /// True when the candidate's span enclosed `child`'s lifetime: the span
  /// never closed, or closed after `child` was joined.
  bool candidate_confirmed(const CandidateGuard& c, rt::ThreadId child) const;

  /// Enumerates instance combinations (capped) and applies the
  /// single-thread and gate-lock refinements under `mode`.
  Verdict evaluate(const CycleCandidate& cycle, Mode mode) const;

  /// Finds refined-graph cycles closed by the new edge first→second and
  /// adjudicates each (report / prune / pending).
  void examine_cycles(rt::LockId first, rt::LockId second);

  /// Runs report/prune/pending triage on one candidate cycle. `final`
  /// (on_finish) resolves with Confirmed mode instead of deferring.
  void adjudicate(CycleCandidate cycle, bool final);

  void report_prediction(const CycleCandidate& cycle, const Verdict& v);

  static std::string canonical_key(const std::vector<rt::LockId>& locks);

  ReportManager reports_;
  ReportManager predictions_;
  // Tier A adjacency: lock -> set of locks acquired while it was held.
  std::unordered_map<rt::LockId, std::map<rt::LockId, Edge>> order_;
  std::set<std::pair<rt::LockId, rt::LockId>> reported_pairs_;

  // Tier B state.
  std::unordered_map<rt::ThreadId, ThreadState> threads_;
  std::unordered_map<std::uint64_t, std::uint64_t> closed_spans_;  // open→close
  // Spans referenced by some inherited candidate guard — the only spans
  // whose close we must witness (keeps on_unlock O(1) amortized instead of
  // growing closed_spans_ by one entry per unlock in the run).
  std::unordered_set<std::uint64_t> candidate_spans_;
  std::unordered_map<rt::ThreadId, std::uint64_t> joined_at_;
  // Refined adjacency with capped acquisition-history lists.
  std::unordered_map<rt::LockId, std::map<rt::LockId, std::vector<Instance>>>
      histories_;
  std::map<std::string, CycleCandidate> pending_;
  std::set<std::string> reported_cycles_;
  std::vector<PredictedCycle> predicted_;
  std::uint64_t op_seq_ = 0;
  Counters counters_;
  // Reusable DFS scratch for reaches(): the naive-tier reachability check
  // runs on every nested acquisition and must not allocate each time.
  mutable std::vector<rt::LockId> scratch_stack_;
  mutable std::vector<rt::LockId> scratch_seen_;

  static constexpr std::size_t kMaxInstancesPerEdge = 8;
  static constexpr std::size_t kMaxCycleLen = 6;
  static constexpr std::size_t kMaxCombos = 4096;
  static constexpr std::size_t kMaxPathsPerEdge = 64;
};

}  // namespace rg::core
