#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

#include "support/glob.hpp"
#include "support/strings.hpp"

namespace rg::core {

const char* to_string(Report::Kind kind) {
  switch (kind) {
    case Report::Kind::DataRace:
      return "Race";
    case Report::Kind::LockOrderInversion:
      return "LockOrder";
    case Report::Kind::PredictedDeadlock:
      return "Deadlock";
  }
  return "?";
}

std::string Report::location_key() const {
  // Helgrind deduplicates by call-stack pattern: two warnings are the same
  // *location* when their top frames and the origin of the accessed block
  // coincide.
  std::string key = to_string(kind);
  const std::size_t depth = std::min<std::size_t>(stack.size(), 3);
  for (std::size_t i = 0; i < depth; ++i) {
    key += '@';
    key += std::to_string(stack[i]);
  }
  if (stack.empty()) {
    key += '@';
    key += std::to_string(access.site);
  }
  key += '#';
  key += std::to_string(origin.known ? origin.alloc.site : 0);
  return key;
}

std::vector<Suppression> parse_suppressions(std::string_view text) {
  std::vector<Suppression> out;
  Suppression current;
  int line_in_block = -1;  // -1: outside a block
  for (std::string_view raw : support::split(text, '\n')) {
    const std::string_view line = support::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line == "{") {
      current = Suppression{};
      line_in_block = 0;
      continue;
    }
    if (line == "}") {
      if (line_in_block > 0) out.push_back(current);
      line_in_block = -1;
      continue;
    }
    if (line_in_block < 0) continue;  // stray content
    if (line_in_block == 0) {
      current.name = std::string(line);
    } else if (line_in_block == 1) {
      current.kind_pattern = std::string(line);
    } else if (support::starts_with(line, "fun:")) {
      current.frame_patterns.emplace_back(line.substr(4));
    } else {
      // obj:, src:, "..." and anything else: wildcard frame.
      current.frame_patterns.emplace_back("...");
    }
    ++line_in_block;
  }
  return out;
}

ReportManager::ReportManager(std::string tool_name)
    : tool_name_(std::move(tool_name)) {}

void ReportManager::add_suppressions(const std::vector<Suppression>& sups) {
  suppressions_.insert(suppressions_.end(), sups.begin(), sups.end());
}

namespace {

/// Matches `patterns` against the stack's function names starting at frame
/// `frame`; "..." matches any (possibly empty) run of frames.
bool match_frames(const std::vector<std::string>& patterns, std::size_t p,
                  const std::vector<support::SiteId>& stack,
                  std::size_t frame) {
  if (p == patterns.size()) return true;
  if (patterns[p] == "...") {
    for (std::size_t skip = frame; skip <= stack.size(); ++skip)
      if (match_frames(patterns, p + 1, stack, skip)) return true;
    return false;
  }
  if (frame >= stack.size()) return false;
  const auto site = support::global_sites().get(stack[frame]);
  if (!support::glob_match(patterns[p], support::symbol_text(site.function)))
    return false;
  return match_frames(patterns, p + 1, stack, frame + 1);
}

}  // namespace

bool ReportManager::suppressed(const Report& report) const {
  std::vector<support::SiteId> stack = report.stack;
  if (stack.empty()) stack.push_back(report.access.site);
  const std::string kind_name = tool_name_ + ":" + to_string(report.kind);
  for (const Suppression& sup : suppressions_) {
    if (!support::glob_match(sup.kind_pattern, kind_name)) continue;
    if (match_frames(sup.frame_patterns, 0, stack, 0)) return true;
  }
  return false;
}

bool ReportManager::add(Report report) {
  if (suppressed(report)) {
    ++suppressed_;
    return false;
  }
  ++total_;
  const std::string key = report.location_key();
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    ++reports_[it->second].occurrences;
    return false;
  }
  if (cap_ != 0 && reports_.size() >= cap_) {
    // Warning storm: keep counting so the loss is visible, store nothing.
    ++overflow_;
    return false;
  }
  by_key_.emplace(key, reports_.size());
  reports_.push_back(std::move(report));
  return true;
}

std::vector<std::string> ReportManager::location_keys() const {
  std::vector<std::string> keys;
  keys.reserve(reports_.size());
  for (const Report& r : reports_) keys.push_back(r.location_key());
  return keys;
}

std::string ReportManager::render(const rt::Runtime& rt) const {
  (void)rt;
  auto& sites = support::global_sites();
  std::string out;
  for (const Report& r : reports_) {
    switch (r.kind) {
      case Report::Kind::DataRace:
        out += "Possible data race ";
        out += r.access.kind == rt::AccessKind::Write ? "writing" : "reading";
        out += " variable at 0x";
        {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%llx",
                        static_cast<unsigned long long>(r.access.addr));
          out += buf;
        }
        out += " by thread ";
        out += std::to_string(r.access.thread);
        out += '\n';
        break;
      case Report::Kind::LockOrderInversion:
        out += "Potential deadlock: lock order inversion\n";
        break;
      case Report::Kind::PredictedDeadlock:
        out += "Predicted deadlock: feasible lock cycle of ";
        out += std::to_string(r.cycle_locks.size());
        out += " locks across ";
        out += std::to_string(r.cycle_threads.size());
        out += " threads\n";
        break;
    }
    bool first = true;
    for (support::SiteId frame : r.stack) {
      out += first ? "   at " : "   by ";
      first = false;
      out += sites.describe(frame);
      out += '\n';
    }
    if (r.stack.empty() && r.access.site != support::kUnknownSite) {
      out += "   at ";
      out += sites.describe(r.access.site);
      out += '\n';
    }
    if (r.kind == Report::Kind::DataRace) {
      out += " Address ";
      out += r.origin.describe();
      out += '\n';
      if (!r.prev_state.empty()) {
        out += " Previous state: ";
        out += r.prev_state;
        out += '\n';
      }
      if (!r.lockset_desc.empty()) {
        out += " Candidate lockset after access: ";
        out += r.lockset_desc;
        out += '\n';
      }
    }
    if (!r.extra.empty()) {
      out += ' ';
      out += r.extra;
      out += '\n';
    }
    if (r.occurrences > 1) {
      out += " (";
      out += std::to_string(r.occurrences);
      out += " occurrences at this location)\n";
    }
    out += '\n';
  }
  if (overflow_ != 0) {
    out += "(" + std::to_string(overflow_) +
           " further reports suppressed: report cap of " +
           std::to_string(cap_) + " locations reached)\n";
  }
  return out;
}

std::string ReportManager::generate_suppressions() const {
  auto& sites = support::global_sites();
  std::string out;
  std::size_t index = 0;
  for (const Report& r : reports_) {
    out += "{\n  auto-" + std::to_string(index++) + "\n  ";
    out += tool_name_ + ":" + to_string(r.kind) + "\n";
    // Up to three innermost frames, matching the dedup identity.
    std::size_t emitted = 0;
    auto emit_frame = [&](support::SiteId frame) {
      const auto site = sites.get(frame);
      out += "  fun:";
      out += support::symbol_text(site.function);
      out += '\n';
      ++emitted;
    };
    if (r.stack.empty()) {
      emit_frame(r.access.site);
    } else {
      for (support::SiteId frame : r.stack) {
        if (emitted == 3) break;
        emit_frame(frame);
      }
    }
    out += "}\n";
  }
  return out;
}

}  // namespace rg::core
