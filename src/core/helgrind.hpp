// HelgrindTool — the paper's subject and contribution.
//
// Implements the Eraser lockset algorithm with the Fig. 1 memory-state
// machine and the VisualThreads thread-segment refinement of Fig. 2, plus
// the two improvements the paper contributes:
//
//  * HWLC  — the hardware bus lock is modelled as a read-write lock
//            (every read holds it shared; LOCK-prefixed writes hold it in
//            write mode) instead of a plain mutex held only around LOCKed
//            instructions. Requires read-write-lock support, which also
//            enables checking the POSIX rwlock API.
//  * DR    — the destructor annotation (VALGRIND_HG_DESTRUCT): memory about
//            to be destroyed becomes EXCLUSIVE to the deleting thread, so
//            the vptr rewrites of the destructor chain stop producing
//            warnings while cross-thread accesses during destruction are
//            still detected.
//
// The hb_message_passing extension (queue/semaphore hand-offs create thread
// segments) implements the "higher level synchronization primitives" future
// work of §5 and removes the thread-pool false positives of Fig. 11.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "rt/tool.hpp"
#include "support/assert.hpp"
#include "shadow/lockset.hpp"
#include "shadow/segments.hpp"
#include "shadow/shadow_map.hpp"

namespace rg::core {

/// How the x86 LOCK prefix is interpreted.
enum class BusLockModel : std::uint8_t {
  /// Original Helgrind: a special mutex held around LOCKed instructions
  /// only. Plain reads of a bus-locked counter empty the lockset — the
  /// Figs. 8/9 false positive.
  Mutex,
  /// The paper's correction: a read-write lock; every read holds it in
  /// read mode, LOCKed writes in write mode.
  RwLock,
};

struct HelgrindConfig {
  BusLockModel bus_lock_model = BusLockModel::Mutex;
  /// Honour VALGRIND_HG_DESTRUCT client requests (the DR improvement).
  bool destructor_annotations = false;
  /// VisualThreads thread segments (on in every configuration the paper
  /// measures; off gives plain per-thread Eraser-with-states for ablation).
  bool thread_segments = true;
  /// Track rw_mutex objects. Original Helgrind had no rw-lock support; the
  /// HWLC work added it ("support for the corresponding POSIX API could be
  /// added easily").
  bool rwlock_api = false;
  /// §5 future-work extension: message-queue and semaphore hand-offs create
  /// happens-before edges (thread segments).
  bool hb_message_passing = false;
  /// Warning-storm hardening: cap on distinct stored report locations
  /// (ReportManager::set_report_cap). 0 = unlimited.
  std::size_t report_cap = 0;
  /// Per-thread effective-lockset cache: memoises the four interned
  /// lockset variants (read/write x bus-locked/plain) between lock events
  /// instead of re-interning on every access. Pure memoisation — may not
  /// change any verdict; off only for the equivalence tests.
  bool lockset_cache = true;
  /// Shadow-map last-page TLB (same contract: observationally inert).
  bool shadow_tlb = true;

  /// The three measured configurations of Figs. 5/6.
  static HelgrindConfig original() { return {}; }
  static HelgrindConfig hwlc() {
    HelgrindConfig c;
    c.bus_lock_model = BusLockModel::RwLock;
    c.rwlock_api = true;
    return c;
  }
  static HelgrindConfig hwlc_dr() {
    HelgrindConfig c = hwlc();
    c.destructor_annotations = true;
    return c;
  }
  /// hwlc_dr + the future-work message-passing extension.
  static HelgrindConfig extended() {
    HelgrindConfig c = hwlc_dr();
    c.hb_message_passing = true;
    return c;
  }
};

class HelgrindTool : public rt::Tool {
 public:
  const char* name() const override { return "helgrind"; }
  explicit HelgrindTool(const HelgrindConfig& config = {});

  const HelgrindConfig& config() const { return config_; }
  ReportManager& reports() { return reports_; }
  const ReportManager& reports() const { return reports_; }
  const shadow::SegmentGraph& segments() const { return segments_; }
  const shadow::LocksetTable& locksets() const { return locksets_; }

  // Tool interface ---------------------------------------------------------
  void on_attach(rt::Runtime& rt) override;
  void on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                       support::SiteId site) override;
  void on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                      support::SiteId site) override;
  void on_lock_create(rt::LockId lock, support::Symbol name,
                      bool is_rw) override;
  void on_post_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                    support::SiteId site) override;
  void on_unlock(rt::ThreadId tid, rt::LockId lock,
                 support::SiteId site) override;
  void on_queue_put(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_queue_get(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_sem_post(rt::ThreadId tid, rt::SyncId sem, std::uint64_t token,
                   support::SiteId site) override;
  void on_sem_wait_return(rt::ThreadId tid, rt::SyncId sem,
                          std::uint64_t token, support::SiteId site) override;
  void on_access(const rt::MemoryAccess& access) override;
  void on_alloc(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                support::SiteId site) override;
  void on_free(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
               support::SiteId site) override;
  void on_destruct_annotation(rt::ThreadId tid, rt::Addr addr,
                              std::uint32_t size,
                              support::SiteId site) override;
  rt::ToolStats stats() const override;

 private:
  /// Fig. 1 states. Destroyed is EXCLUSIVE-after-annotation; it is kept
  /// distinct only so reports can say so.
  enum class MemState : std::uint8_t {
    New,
    Exclusive,
    SharedRead,
    SharedModified,
    Destroyed,
  };

  struct Cell {
    MemState state = MemState::New;
    shadow::SegmentId owner = shadow::kNoSegment;  // Exclusive/Destroyed
    shadow::LocksetId lockset = shadow::kUniversalLockset;
    /// Eraser stops checking a location after its first warning.
    bool reported = false;
  };

  static const char* state_name(MemState s);

  /// Per-thread memo of the four effective-lockset variants, indexed by
  /// (for_write, bus_locked). The effective lockset is a pure function of
  /// the thread's held-lock set, so entries stay valid until the thread's
  /// next lock/unlock event.
  struct LocksetCacheEntry {
    shadow::LocksetId id[4] = {};
    bool valid[4] = {};
  };

  /// Lockset of `tid` relevant for this access under the configured bus
  /// lock model. `for_write` selects the Eraser write rule (locks held in
  /// write mode) vs the read rule (locks held in any mode).
  shadow::LocksetId effective_locks(rt::ThreadId tid, bool for_write,
                                    bool bus_locked);
  shadow::LocksetId compute_effective_locks(rt::ThreadId tid, bool for_write,
                                            bool bus_locked);
  void invalidate_lockset_cache(rt::ThreadId tid);

  /// rw flag of a lock, registered by on_lock_create. Dense — lock ids are
  /// assigned in creation order — so the read path is a bounds-checked
  /// index and can never insert (the old unordered_map operator[] pattern
  /// allocated on the hot path).
  bool is_rw(rt::LockId lock) const {
    RG_ASSERT_MSG(lock < is_rw_lock_.size(),
                  "lock used before on_lock_create");
    return is_rw_lock_[lock] != 0;
  }

  void touch(Cell& cell, const rt::MemoryAccess& access);
  void trace_refinement(const rt::MemoryAccess& access);
  void warn(Cell& cell, const rt::MemoryAccess& access, MemState prev_state,
            shadow::LocksetId prev_lockset);

  HelgrindConfig config_;
  ReportManager reports_;
  shadow::LocksetTable locksets_;
  shadow::SegmentGraph segments_;
  shadow::ShadowMap<Cell> shadow_;
  /// Pseudo lock id modelling the hardware bus lock.
  rt::LockId bus_lock_ = rt::kNoLock;
  /// Locks registered as rw, dense by LockId (ignored when !rwlock_api,
  /// like original Helgrind, which did not intercept pthread_rwlock).
  std::vector<std::uint8_t> is_rw_lock_;
  /// Per-thread effective-lockset cache, dense by ThreadId.
  std::vector<LocksetCacheEntry> lockset_cache_;
  std::uint64_t lockset_cache_hits_ = 0;
  std::uint64_t lockset_cache_misses_ = 0;
  /// put/post token -> sender segment (hb_message_passing).
  std::unordered_map<std::uint64_t, shadow::SegmentId> queue_tokens_;
  std::unordered_map<std::uint64_t, shadow::SegmentId> sem_tokens_;
};

}  // namespace rg::core
