#include "core/helgrind.hpp"

#include "obs/recorder.hpp"
#include "rt/runtime.hpp"
#include "support/assert.hpp"

namespace rg::core {

HelgrindTool::HelgrindTool(const HelgrindConfig& config)
    : config_(config), reports_("Helgrind") {
  reports_.set_report_cap(config.report_cap);
  shadow_.set_tlb_enabled(config.shadow_tlb);
}

void HelgrindTool::on_attach(rt::Runtime& rt) {
  Tool::on_attach(rt);
  // Locks registered before this tool attached (e.g. another tool's
  // pseudo-lock) never reached our on_lock_create; backfill so ids stay
  // dense and the read path can index without inserting.
  while (is_rw_lock_.size() < rt.lock_count())
    is_rw_lock_.push_back(
        rt.lock_is_rw(static_cast<rt::LockId>(is_rw_lock_.size())) ? 1 : 0);
  // The hardware bus lock is a pseudo-lock owned by this tool; it never
  // appears in the runtime's held-lock sets and is injected into effective
  // locksets according to the configured model.
  bus_lock_ = rt.register_lock(
      "<hardware-bus-lock>", config_.bus_lock_model == BusLockModel::RwLock);
}

const char* HelgrindTool::state_name(MemState s) {
  switch (s) {
    case MemState::New:
      return "new";
    case MemState::Exclusive:
      return "exclusive";
    case MemState::SharedRead:
      return "shared RO";
    case MemState::SharedModified:
      return "shared RW";
    case MemState::Destroyed:
      return "exclusive (destroyed)";
  }
  return "?";
}

void HelgrindTool::on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                                   support::SiteId /*site*/) {
  if (tid >= lockset_cache_.size()) lockset_cache_.resize(tid + 1);
  if (parent == rt::kNoThread) {
    segments_.start_thread(tid, shadow::kNoSegment);
    return;
  }
  // Fig. 2: the creating thread's segment ends at the create; the child's
  // first segment happens-after it.
  segments_.start_thread(tid, segments_.current(parent));
  segments_.advance(parent);
}

void HelgrindTool::on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                                  support::SiteId /*site*/) {
  segments_.advance(joiner, segments_.current(joined));
}

void HelgrindTool::on_lock_create(rt::LockId lock, support::Symbol /*name*/,
                                  bool is_rw) {
  // Lock ids are dense and registered in creation order; every later
  // lookup is a read-only index (never an insertion).
  RG_ASSERT_MSG(lock == is_rw_lock_.size(),
                "locks must be registered in id order");
  is_rw_lock_.push_back(is_rw ? 1 : 0);
  // Registration cannot race a held-lock set, but drop all cached
  // locksets anyway: the registration event is rare and cold.
  for (LocksetCacheEntry& e : lockset_cache_) e = LocksetCacheEntry{};
}

void HelgrindTool::on_post_lock(rt::ThreadId tid, rt::LockId /*lock*/,
                                rt::LockMode /*mode*/,
                                support::SiteId /*site*/) {
  invalidate_lockset_cache(tid);
}

void HelgrindTool::on_unlock(rt::ThreadId tid, rt::LockId /*lock*/,
                             support::SiteId /*site*/) {
  invalidate_lockset_cache(tid);
}

void HelgrindTool::invalidate_lockset_cache(rt::ThreadId tid) {
  if (tid < lockset_cache_.size()) lockset_cache_[tid] = LocksetCacheEntry{};
}

void HelgrindTool::on_queue_put(rt::ThreadId tid, rt::SyncId /*queue*/,
                                std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.hb_message_passing || token == 0) return;
  queue_tokens_[token] = segments_.current(tid);
  segments_.advance(tid);
}

void HelgrindTool::on_queue_get(rt::ThreadId tid, rt::SyncId /*queue*/,
                                std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.hb_message_passing || token == 0) return;
  auto it = queue_tokens_.find(token);
  if (it == queue_tokens_.end()) return;
  segments_.advance(tid, it->second);
  queue_tokens_.erase(it);
}

void HelgrindTool::on_sem_post(rt::ThreadId tid, rt::SyncId /*sem*/,
                               std::uint64_t token, support::SiteId /*site*/) {
  if (!config_.hb_message_passing || token == 0) return;
  sem_tokens_[token] = segments_.current(tid);
  segments_.advance(tid);
}

void HelgrindTool::on_sem_wait_return(rt::ThreadId tid, rt::SyncId /*sem*/,
                                      std::uint64_t token,
                                      support::SiteId /*site*/) {
  if (!config_.hb_message_passing || token == 0) return;
  auto it = sem_tokens_.find(token);
  if (it == sem_tokens_.end()) return;
  segments_.advance(tid, it->second);
  sem_tokens_.erase(it);
}

shadow::LocksetId HelgrindTool::effective_locks(rt::ThreadId tid,
                                                bool for_write,
                                                bool bus_locked) {
  const unsigned idx = (for_write ? 2u : 0u) | (bus_locked ? 1u : 0u);
  if (config_.lockset_cache && tid < lockset_cache_.size()) {
    LocksetCacheEntry& entry = lockset_cache_[tid];
    if (entry.valid[idx]) {
      ++lockset_cache_hits_;
      return entry.id[idx];
    }
    ++lockset_cache_misses_;
    const shadow::LocksetId id =
        compute_effective_locks(tid, for_write, bus_locked);
    entry.id[idx] = id;
    entry.valid[idx] = true;
    return id;
  }
  ++lockset_cache_misses_;
  return compute_effective_locks(tid, for_write, bus_locked);
}

shadow::LocksetId HelgrindTool::compute_effective_locks(rt::ThreadId tid,
                                                        bool for_write,
                                                        bool bus_locked) {
  shadow::LockVec v;
  for (const rt::HeldLock& h : rt_->held_locks(tid)) {
    const bool rw = is_rw(h.lock);
    // Original Helgrind did not intercept pthread_rwlock: those locks are
    // invisible to it.
    if (rw && !config_.rwlock_api) continue;
    // Eraser write rule: only locks held in write mode protect a write.
    if (for_write && h.mode == rt::LockMode::Shared) continue;
    v.push_back(h.lock);
  }
  switch (config_.bus_lock_model) {
    case BusLockModel::Mutex:
      // The special mutex is held exactly for the duration of a LOCKed
      // instruction.
      if (bus_locked) v.push_back(bus_lock_);
      break;
    case BusLockModel::RwLock:
      // Every read implicitly holds the bus lock in read mode; LOCKed
      // writes hold it in write mode; plain writes do not hold it.
      if (!for_write || bus_locked) v.push_back(bus_lock_);
      break;
  }
  return locksets_.intern(std::move(v));
}

void HelgrindTool::on_access(const rt::MemoryAccess& access) {
  shadow_.for_range(access.addr, access.size,
                    [&](Cell& cell) { touch(cell, access); });
}

/// Mirrors a detector-state-changing access into the flight recorder: the
/// accesses that narrowed a lockset or moved a cell towards
/// SHARED-MODIFIED are exactly the ones --explain replays. Steady-state
/// accesses that leave the shadow state untouched are implied by the
/// recorded schedule and are not re-recorded. Called *before* warn() so
/// the triggering access lands inside the report's provenance cursor.
void HelgrindTool::trace_refinement(const rt::MemoryAccess& a) {
  rt_->trace_addr(obs::EventKind::Access, a.thread, a.addr, a.size, a.site,
                  rt::access_flags(a));
}

void HelgrindTool::touch(Cell& cell, const rt::MemoryAccess& a) {
  if (cell.reported) return;  // Eraser stops checking after the report.
  const shadow::SegmentId seg = segments_.current(a.thread);
  const bool is_write = a.kind == rt::AccessKind::Write;

  switch (cell.state) {
    case MemState::New:
      cell.state = MemState::Exclusive;
      cell.owner = seg;
      return;

    case MemState::Exclusive:
    case MemState::Destroyed: {
      bool still_exclusive = segments_.thread_of(cell.owner) == a.thread;
      if (!still_exclusive && config_.thread_segments)
        // VisualThreads rule (ii): a touch from a segment the owner
        // happens-before just transfers ownership.
        still_exclusive = segments_.happens_before(cell.owner, seg);
      if (still_exclusive) {
        cell.owner = seg;
        if (cell.state == MemState::Destroyed) cell.state = MemState::Exclusive;
        return;
      }
      // Genuinely shared now: initialise the lockset from the locks held
      // at this — the first shared — access.
      const MemState prev = cell.state;
      cell.lockset = effective_locks(a.thread, is_write, a.bus_locked);
      rt_->trace_addr(obs::EventKind::DetectorShare, a.thread, a.addr,
                      is_write ? 1 : 0, a.site);
      if (is_write) {
        cell.state = MemState::SharedModified;
        if (locksets_.empty(cell.lockset))
          warn(cell, a, prev, shadow::kUniversalLockset);
      } else {
        cell.state = MemState::SharedRead;
      }
      return;  // the DetectorShare event above carries this access
    }

    case MemState::SharedRead: {
      const shadow::LocksetId before = cell.lockset;
      const shadow::LocksetId held =
          effective_locks(a.thread, is_write, a.bus_locked);
      cell.lockset = locksets_.intersect(cell.lockset, held);
      if (is_write) {
        cell.state = MemState::SharedModified;
        trace_refinement(a);
        if (locksets_.empty(cell.lockset))
          warn(cell, a, MemState::SharedRead, before);
        return;
      }
      // Reads in shared-RO never warn (Fig. 1: reports only in
      // SHARED-MODIFIED).
      if (cell.lockset != before) trace_refinement(a);
      return;
    }

    case MemState::SharedModified: {
      const shadow::LocksetId before = cell.lockset;
      const shadow::LocksetId held =
          effective_locks(a.thread, is_write, a.bus_locked);
      cell.lockset = locksets_.intersect(cell.lockset, held);
      if (cell.lockset != before) trace_refinement(a);
      if (locksets_.empty(cell.lockset))
        warn(cell, a, MemState::SharedModified, before);
      return;
    }
  }
}

void HelgrindTool::warn(Cell& cell, const rt::MemoryAccess& a,
                        MemState prev_state, shadow::LocksetId prev_lockset) {
  Report r;
  r.kind = Report::Kind::DataRace;
  r.access = a;
  r.stack = rt_->stack_of(a.thread);
  r.stack.insert(r.stack.begin(), a.site);
  r.origin = rt_->origin_of(a.addr);
  r.prev_state = state_name(prev_state);
  if (prev_lockset == shadow::kEmptyLockset) {
    r.prev_state += ", no locks";
  } else if (prev_lockset != shadow::kUniversalLockset) {
    r.prev_state += ", lockset " + locksets_.describe(prev_lockset, *rt_);
  }
  r.lockset_desc = "{}";
  if (obs::FlightRecorder* fr = rt_->recorder(); fr != nullptr) {
    rt_->trace_addr(obs::EventKind::DetectorWarning, a.thread, a.addr,
                    reports_.distinct_locations(), a.site);
    r.recorder_cursor = fr->cursor();
  }
  reports_.add(std::move(r));
  cell.reported = true;
}

void HelgrindTool::on_alloc(rt::ThreadId /*tid*/, rt::Addr addr,
                            std::uint32_t size, support::SiteId /*site*/) {
  // Fresh allocation: back to NEW regardless of what the address range was
  // used for before (Helgrind intercepts malloc).
  shadow_.reset_range(addr, size);
}

void HelgrindTool::on_free(rt::ThreadId /*tid*/, rt::Addr addr,
                           std::uint32_t size, support::SiteId /*site*/) {
  shadow_.reset_range(addr, size);
}

rt::ToolStats HelgrindTool::stats() const {
  rt::ToolStats s;
  s.lockset_cache_hits = lockset_cache_hits_;
  s.lockset_cache_misses = lockset_cache_misses_;
  s.shadow_tlb_hits = shadow_.tlb_stats().hits;
  s.shadow_tlb_misses = shadow_.tlb_stats().misses;
  return s;
}

void HelgrindTool::on_destruct_annotation(rt::ThreadId tid, rt::Addr addr,
                                          std::uint32_t size,
                                          support::SiteId /*site*/) {
  if (!config_.destructor_annotations) return;  // original tool: unknown
                                                // client request, ignored
  const shadow::SegmentId seg = segments_.current(tid);
  shadow_.for_range(addr, size, [&](Cell& cell) {
    cell.state = MemState::Destroyed;
    cell.owner = seg;
    cell.lockset = shadow::kUniversalLockset;
    cell.reported = false;
  });
}

}  // namespace rg::core
