// DjitTool — vector-clock happens-before race detection (paper §2.2).
//
// DJIT (Itzkovitz/Schuster/Zeev-Ben-Mordehai) timestamps accesses with the
// accessing thread's vector time frame and reports two accesses to the same
// location as a race when neither happens before the other. Unlike the
// lockset approach it only reports *apparent* races — races that manifest
// in the observed ordering — so it misses order-dependent races the lockset
// algorithm catches, and (faithfully to the original) it reports only the
// first apparent race per location.
#pragma once

#include <unordered_map>

#include "core/report.hpp"
#include "rt/tool.hpp"
#include "shadow/shadow_map.hpp"
#include "shadow/vector_clock.hpp"

namespace rg::core {

struct DjitConfig {
  /// Derive happens-before edges from lock release->acquire (standard).
  bool lock_hb = true;
  /// Derive happens-before edges from queue/semaphore hand-offs.
  bool message_hb = true;
  /// Derive happens-before from condvar signal->wait-return. The paper
  /// (§2.2, on [12]) notes this relation "is not strong enough to impose
  /// the assumed order" — enabling it reproduces that unsoundness, so it
  /// defaults to off.
  bool condvar_hb = false;
};

class DjitTool : public rt::Tool {
 public:
  const char* name() const override { return "djit"; }
  explicit DjitTool(const DjitConfig& config = {});

  ReportManager& reports() { return reports_; }
  const ReportManager& reports() const { return reports_; }

  void on_thread_start(rt::ThreadId tid, rt::ThreadId parent,
                       support::SiteId site) override;
  void on_thread_join(rt::ThreadId joiner, rt::ThreadId joined,
                      support::SiteId site) override;
  void on_post_lock(rt::ThreadId tid, rt::LockId lock, rt::LockMode mode,
                    support::SiteId site) override;
  void on_unlock(rt::ThreadId tid, rt::LockId lock,
                 support::SiteId site) override;
  void on_cond_signal(rt::ThreadId tid, rt::SyncId cond,
                      support::SiteId site) override;
  void on_cond_wait_return(rt::ThreadId tid, rt::SyncId cond, rt::LockId lock,
                           support::SiteId site) override;
  void on_queue_put(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_queue_get(rt::ThreadId tid, rt::SyncId queue, std::uint64_t token,
                    support::SiteId site) override;
  void on_sem_post(rt::ThreadId tid, rt::SyncId sem, std::uint64_t token,
                   support::SiteId site) override;
  void on_sem_wait_return(rt::ThreadId tid, rt::SyncId sem,
                          std::uint64_t token, support::SiteId site) override;
  void on_access(const rt::MemoryAccess& access) override;
  void on_alloc(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
                support::SiteId site) override;
  void on_free(rt::ThreadId tid, rt::Addr addr, std::uint32_t size,
               support::SiteId site) override;

 private:
  struct Cell {
    /// Last write: writer thread + its clock component at write time.
    rt::ThreadId write_tid = rt::kNoThread;
    shadow::VectorClock::Tick write_tick = 0;
    support::SiteId write_site = support::kUnknownSite;
    /// Per-thread maximum read tick (the DJIT read time frame vector).
    shadow::VectorClock reads;
    bool reported = false;
  };

  shadow::VectorClock& clock_of(rt::ThreadId tid);
  void report_race(Cell& cell, const rt::MemoryAccess& a, const char* vs,
                   support::SiteId other_site);

  DjitConfig config_;
  ReportManager reports_;
  std::vector<shadow::VectorClock> thread_clocks_;
  std::unordered_map<rt::LockId, shadow::VectorClock> lock_clocks_;
  std::unordered_map<rt::SyncId, shadow::VectorClock> cond_clocks_;
  std::unordered_map<std::uint64_t, shadow::VectorClock> queue_token_clocks_;
  std::unordered_map<std::uint64_t, shadow::VectorClock> sem_token_clocks_;
  shadow::ShadowMap<Cell> shadow_;
};

}  // namespace rg::core
