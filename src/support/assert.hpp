// RaceGuard internal assertion machinery.
//
// RG_ASSERT is active in all build types: a detector whose internal
// invariants silently break produces wrong warning counts, which is worse
// than a crash for this kind of tool.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rg::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "raceguard: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace rg::support

#define RG_ASSERT(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::rg::support::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
  } while (0)

#define RG_ASSERT_MSG(expr, msg)                                    \
  do {                                                              \
    if (!(expr))                                                    \
      ::rg::support::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define RG_UNREACHABLE(msg) \
  ::rg::support::assert_fail("unreachable", __FILE__, __LINE__, (msg))
