// Glob matching for Valgrind-style suppression patterns.
//
// Helgrind suppression files match call-stack frames with shell-style
// wildcards ('*' any run, '?' one char); we reproduce that matcher.
#pragma once

#include <string_view>

namespace rg::support {

/// Shell-style glob match: '*' matches any (possibly empty) run, '?' matches
/// exactly one character, everything else matches literally.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace rg::support
