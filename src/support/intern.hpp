// String interning.
//
// The detector refers to lock names, function names and file names many
// millions of times while processing an event stream; interning turns every
// comparison into an integer compare and every storage into 4 bytes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rg::support {

/// Dense id handed out by an Interner. Id 0 is always the empty string.
using Symbol = std::uint32_t;

/// Thread-safe append-only string interner.
///
/// Interned strings live for the lifetime of the interner; `text()` views
/// stay valid because storage is never reallocated (deque-of-strings).
class Interner {
 public:
  Interner();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the symbol for `s`, interning it on first sight.
  Symbol intern(std::string_view s);

  /// Returns the text of a previously interned symbol.
  std::string_view text(Symbol sym) const;

  /// Number of distinct strings interned so far.
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string_view, Symbol> map_;
  // std::string contents are heap-allocated, so string_views into them stay
  // valid as the vector of owners grows.
  std::vector<std::string> storage_;
};

/// Process-wide interner used by the runtime and the detectors.
Interner& global_interner();

/// Convenience: intern into the global interner.
inline Symbol intern(std::string_view s) { return global_interner().intern(s); }

/// Convenience: resolve a symbol from the global interner.
inline std::string_view symbol_text(Symbol sym) {
  return global_interner().text(sym);
}

}  // namespace rg::support
