#include "support/glob.hpp"

namespace rg::support {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with backtracking to the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace rg::support
