// Minimal OS-thread fan-out for embarrassingly parallel experiment cells.
//
// Each simulated execution (Sim) is confined to the OS thread that calls
// run(): the fiber scheduler multiplexes simulated threads on that one
// carrier, and all cross-cell state (site registry, string interner) is
// mutex-protected and content-addressed. Running independent cells on a
// pool therefore cannot change any cell's schedule or warning set — only
// the wall-clock time of the whole table.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace rg::support {

/// Runs fn(0..n-1), each index exactly once, on up to `workers` OS threads
/// (0 = hardware concurrency). Blocks until every index has completed.
/// fn must not throw; cells report failure through their own results.
template <typename Fn>
void parallel_for_index(std::size_t n, std::size_t workers, Fn&& fn) {
  if (n == 0) return;
  std::size_t pool = workers != 0 ? workers : std::thread::hardware_concurrency();
  if (pool == 0) pool = 1;
  if (pool > n) pool = n;
  if (pool == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (std::size_t t = 0; t + 1 < pool; ++t) threads.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : threads) t.join();
}

}  // namespace rg::support
