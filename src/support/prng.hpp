// Deterministic pseudo-random number generation.
//
// Experiment reproducibility hinges on every random choice (scheduler
// interleaving, workload mix) flowing from a single user-visible seed, so we
// carry our own PRNG instead of relying on implementation-defined std::
// distributions.
#pragma once

#include <cstdint>

namespace rg::support {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, fully deterministic across platforms.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased via rejection from the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) {
    return below(denom) < numer;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rg::support
