// A vector with inline storage for the small case.
//
// Locksets and shadow call stacks are overwhelmingly short (Eraser observes
// that most variables are guarded by one or two locks); keeping them inline
// avoids an allocation per shadow-memory cell.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace rg::support {

template <typename T, std::size_t N>
class small_vector {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "small_vector requires nothrow-movable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  small_vector() = default;

  small_vector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  small_vector(const small_vector& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  small_vector(small_vector&& other) noexcept { move_from(std::move(other)); }

  small_vector& operator=(const small_vector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) push_back(v);
    }
    return *this;
  }

  small_vector& operator=(small_vector&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  ~small_vector() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    RG_ASSERT(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    RG_ASSERT(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    RG_ASSERT(size_ > 0);
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void resize(std::size_t n, const T& fill = T()) {
    if (n < size_) {
      while (size_ > n) pop_back();
    } else {
      reserve(n);
      while (size_ < n) push_back(fill);
    }
  }

  friend bool operator==(const small_vector& a, const small_vector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;

  T* inline_data() { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  bool is_inline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  void grow(std::size_t new_cap) {
    new_cap = std::max(new_cap, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = new_cap;
  }

  void destroy() {
    clear();
    if (!is_inline()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
  }

  void move_from(small_vector&& other) noexcept {
    if (other.is_inline()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = 0;
      for (std::size_t i = 0; i < other.size_; ++i)
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }
};

}  // namespace rg::support
