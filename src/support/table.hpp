// Aligned text-table rendering for the experiment harness.
//
// Every bench binary reproduces a paper table or figure series; this renders
// them in the same row/column layout the paper prints.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <string>
#include <vector>

namespace rg::support {

/// A simple column-aligned text table with an optional title and per-column
/// right alignment for numerics.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row. Must be called before any add_row.
  Table& header(std::vector<std::string> cells);

  /// Appends a data row; must have the same arity as the header.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamables into cells.
  template <typename... Args>
  Table& row(const Args&... args) {
    return add_row({to_cell(args)...});
  }

  /// Renders with box-drawing separators.
  std::string render() const;

  /// Renders as CSV (for plotting scripts).
  std::string render_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace rg::support
