// Machine-readable benchmark results.
//
// Every bench_* binary writes a BENCH_<name>.json next to its stdout table
// so CI and the before/after comparisons in EXPERIMENTS.md can diff runs
// without scraping text. Flat object: metric name -> number or string,
// insertion-ordered, with the seed/config knobs that make the run
// reproducible recorded alongside the measurements.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rg::support {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value);
  void add(const std::string& key, std::uint64_t value);
  void add(const std::string& key, std::int64_t value);
  void add(const std::string& key, int value) {
    add(key, static_cast<std::int64_t>(value));
  }
  void add(const std::string& key, const std::string& value);
  void add(const std::string& key, const char* value) {
    add(key, std::string(value));
  }

  const std::string& name() const { return name_; }

  /// Serialized JSON object (pretty, one entry per line).
  std::string render() const;

  /// Writes BENCH_<name>.json into `dir` ("." by default). Returns the
  /// path written, or "" on I/O failure (benches must not fail the run
  /// over a result file).
  std::string write(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string key;
    std::string rendered;  // value pre-rendered as a JSON token
  };

  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace rg::support
