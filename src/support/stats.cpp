#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rg::support {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double percentile(std::vector<double> samples, double p) {
  RG_ASSERT(!samples.empty());
  RG_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace rg::support
