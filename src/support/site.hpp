// Source-site registry.
//
// Helgrind identifies a warning by where it happened: function, file, line.
// The instrumented runtime tags every event with a SiteId — a dense index
// into this registry — so detectors can deduplicate "reported locations"
// exactly the way the paper counts them (distinct locations, not distinct
// dynamic occurrences).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/intern.hpp"

namespace rg::support {

/// Dense identifier for a static source location. 0 is the unknown site.
using SiteId = std::uint32_t;

constexpr SiteId kUnknownSite = 0;

/// A static program location: function + file + line.
struct Site {
  Symbol function = 0;
  Symbol file = 0;
  std::uint32_t line = 0;

  friend bool operator==(const Site&, const Site&) = default;
};

/// Thread-safe registry mapping Site -> SiteId and back.
class SiteRegistry {
 public:
  SiteRegistry();

  SiteRegistry(const SiteRegistry&) = delete;
  SiteRegistry& operator=(const SiteRegistry&) = delete;

  /// Interns a site, returning its dense id.
  SiteId site(std::string_view function, std::string_view file,
              std::uint32_t line);

  /// Looks up a previously interned site.
  Site get(SiteId id) const;

  /// "function (file:line)" — the Helgrind report frame format.
  std::string describe(SiteId id) const;

  std::size_t size() const;

 private:
  struct SiteHash {
    std::size_t operator()(const Site& s) const {
      std::size_t h = s.function;
      h = h * 1000003u ^ s.file;
      h = h * 1000003u ^ s.line;
      return h;
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Site, SiteId, SiteHash> map_;
  std::vector<Site> sites_;
};

/// Process-wide site registry shared by runtime and detectors.
SiteRegistry& global_sites();

/// Convenience wrapper over the global registry.
inline SiteId site_id(std::string_view function, std::string_view file,
                      std::uint32_t line) {
  return global_sites().site(function, file, line);
}

}  // namespace rg::support

/// Expands to the SiteId of the current source line. The static local makes
/// repeated executions of the same line cost one registry probe total.
#define RG_HERE()                                                     \
  ([]() -> ::rg::support::SiteId {                                    \
    static const ::rg::support::SiteId cached =                       \
        ::rg::support::site_id(__func__, __FILE__, __LINE__);         \
    return cached;                                                    \
  }())
