#include "support/intern.hpp"

#include "support/assert.hpp"

namespace rg::support {

Interner::Interner() {
  storage_.reserve(1024);
  Symbol empty = intern("");
  RG_ASSERT(empty == 0);
}

Symbol Interner::intern(std::string_view s) {
  std::lock_guard lock(mu_);
  if (auto it = map_.find(s); it != map_.end()) return it->second;
  storage_.emplace_back(s);
  const Symbol sym = static_cast<Symbol>(storage_.size() - 1);
  map_.emplace(std::string_view(storage_.back()), sym);
  return sym;
}

std::string_view Interner::text(Symbol sym) const {
  std::lock_guard lock(mu_);
  RG_ASSERT_MSG(sym < storage_.size(), "unknown symbol");
  return storage_[sym];
}

std::size_t Interner::size() const {
  std::lock_guard lock(mu_);
  return storage_.size();
}

Interner& global_interner() {
  static Interner interner;
  return interner;
}

}  // namespace rg::support
