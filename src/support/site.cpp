#include "support/site.hpp"

#include "support/assert.hpp"

namespace rg::support {

SiteRegistry::SiteRegistry() {
  // Reserve id 0 for the unknown site.
  sites_.push_back(Site{intern("<unknown>"), intern("<unknown>"), 0});
}

SiteId SiteRegistry::site(std::string_view function, std::string_view file,
                          std::uint32_t line) {
  const Site s{intern(function), intern(file), line};
  std::lock_guard lock(mu_);
  if (auto it = map_.find(s); it != map_.end()) return it->second;
  sites_.push_back(s);
  const SiteId id = static_cast<SiteId>(sites_.size() - 1);
  map_.emplace(s, id);
  return id;
}

Site SiteRegistry::get(SiteId id) const {
  std::lock_guard lock(mu_);
  RG_ASSERT_MSG(id < sites_.size(), "unknown site id");
  return sites_[id];
}

std::string SiteRegistry::describe(SiteId id) const {
  const Site s = get(id);
  std::string out;
  out += symbol_text(s.function);
  out += " (";
  out += symbol_text(s.file);
  out += ":";
  out += std::to_string(s.line);
  out += ")";
  return out;
}

std::size_t SiteRegistry::size() const {
  std::lock_guard lock(mu_);
  return sites_.size();
}

SiteRegistry& global_sites() {
  static SiteRegistry registry;
  return registry;
}

}  // namespace rg::support
