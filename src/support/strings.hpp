// Small string utilities shared by the SIP parser and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rg::support {

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits on the first occurrence of `delim`; returns {s, ""} if absent.
std::pair<std::string_view, std::string_view> split_once(std::string_view s,
                                                         char delim);

/// ASCII case-insensitive equality (SIP header names are case-insensitive).
bool iequals(std::string_view a, std::string_view b);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parses a non-negative decimal integer; returns false on any non-digit.
bool parse_u32(std::string_view s, std::uint32_t& out);

}  // namespace rg::support
