#include "support/strings.hpp"

#include <cctype>

namespace rg::support {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
char lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::pair<std::string_view, std::string_view> split_once(std::string_view s,
                                                         char delim) {
  const std::size_t pos = s.find(delim);
  if (pos == std::string_view::npos) return {s, std::string_view{}};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (lower(a[i]) != lower(b[i])) return false;
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = lower(c);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint64_t acc = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
    if (acc > 0xffffffffULL) return false;
  }
  out = static_cast<std::uint32_t>(acc);
  return true;
}

}  // namespace rg::support
