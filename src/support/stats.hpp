// Summary statistics for the performance experiments (§4.5).
#pragma once

#include <cstddef>
#include <vector>

namespace rg::support {

/// Online accumulator for mean / min / max / stddev (Welford).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
double percentile(std::vector<double> samples, double p);

}  // namespace rg::support
