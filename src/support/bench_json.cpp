#include "support/bench_json.hpp"

#include <cmath>
#include <cstdio>

namespace rg::support {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void BenchJson::add(const std::string& key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof buf, "%.6g", value);
  } else {
    std::snprintf(buf, sizeof buf, "null");  // JSON has no inf/nan
  }
  entries_.push_back({key, buf});
}

void BenchJson::add(const std::string& key, std::uint64_t value) {
  entries_.push_back({key, std::to_string(value)});
}

void BenchJson::add(const std::string& key, std::int64_t value) {
  entries_.push_back({key, std::to_string(value)});
}

void BenchJson::add(const std::string& key, const std::string& value) {
  entries_.push_back({key, "\"" + escape(value) + "\""});
}

std::string BenchJson::render() const {
  std::string out = "{\n";
  out += "  \"bench\": \"" + escape(name_) + "\"";
  for (const Entry& e : entries_) {
    out += ",\n  \"" + escape(e.key) + "\": " + e.rendered;
  }
  out += "\n}\n";
  return out;
}

std::string BenchJson::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string body = render();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok ? path : "";
}

}  // namespace rg::support
