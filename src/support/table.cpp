#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace rg::support {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cells) {
  RG_ASSERT_MSG(rows_.empty(), "header must precede rows");
  header_ = std::move(cells);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  RG_ASSERT_MSG(header_.empty() || cells.size() == header_.size(),
                "row arity mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  if (!title_.empty()) {
    out += "== ";
    out += title_;
    out += " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += "| ";
      // Right-align cells that parse as numbers, left-align text.
      const bool numeric =
          !cell.empty() &&
          cell.find_first_not_of("0123456789+-.x%") == std::string::npos;
      if (numeric)
        out += std::string(widths[i] - cell.size(), ' ') + cell;
      else
        out += cell + std::string(widths[i] - cell.size(), ' ');
      out += ' ';
    }
    out += "|\n";
  };
  auto emit_sep = [&] {
    for (std::size_t w : widths) out += "+" + std::string(w + 2, '-');
    out += "+\n";
  };

  emit_sep();
  if (!header_.empty()) {
    emit_row(header_);
    emit_sep();
  }
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return out;
}

std::string Table::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += row[i];
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace rg::support
