#include "annotate/lexer.hpp"

#include <cctype>
#include <string>

namespace rg::annotate {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool ident_cont(char c) {
  return ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// Multi-character punctuators, longest first.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "++",  "--",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "->",  ".*",  "##",
};

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  std::size_t pos() const { return pos_; }
  void advance(std::size_t n = 1) { pos_ += n; }

  std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
};

void lex_string(Cursor& c, char quote) {
  c.advance();  // opening quote
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\') {
      c.advance(2);
      continue;
    }
    c.advance();
    if (ch == quote || ch == '\n') return;  // tolerate unterminated
  }
}

/// R"delim( ... )delim"
void lex_raw_string(Cursor& c) {
  c.advance();  // the opening "
  std::string delim;
  while (!c.done() && c.peek() != '(' && c.peek() != '\n') {
    delim += c.peek();
    c.advance();
  }
  if (c.done() || c.peek() != '(') return;  // malformed; give up gracefully
  c.advance();
  const std::string close = ")" + delim + "\"";
  std::size_t matched = 0;
  while (!c.done()) {
    if (c.peek() == close[matched]) {
      ++matched;
      c.advance();
      if (matched == close.size()) return;
    } else {
      // Restart matching; re-examine this char as a potential ')'.
      if (matched > 0)
        matched = 0;
      else
        c.advance();
    }
  }
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  Cursor c(src);

  auto emit = [&](TokKind kind, std::size_t from) {
    out.push_back(Token{kind, c.slice(from), from});
  };

  while (!c.done()) {
    const std::size_t start = c.pos();
    const char ch = c.peek();

    // Whitespace run.
    if (std::isspace(static_cast<unsigned char>(ch))) {
      while (!c.done() && std::isspace(static_cast<unsigned char>(c.peek())))
        c.advance();
      emit(TokKind::Whitespace, start);
      continue;
    }

    // Preprocessor directive: # as the first non-blank character of a line.
    bool at_line_start = true;
    for (std::size_t i = start; i-- > 0;) {
      if (src[i] == '\n') break;
      if (src[i] != ' ' && src[i] != '\t') {
        at_line_start = false;
        break;
      }
    }
    if (ch == '#' && at_line_start) {
      // Consume to end of line, honouring backslash continuations.
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.advance(2);
          continue;
        }
        if (c.peek() == '\n') break;
        c.advance();
      }
      emit(TokKind::Preprocessor, start);
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      emit(TokKind::Comment, start);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance(2);
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      if (!c.done()) c.advance(2);
      emit(TokKind::Comment, start);
      continue;
    }

    // String / char literals, incl. prefixes (L, u8, R, uR, ...).
    if (ch == '"' || ch == '\'') {
      lex_string(c, ch);
      emit(ch == '"' ? TokKind::String : TokKind::CharLit, start);
      continue;
    }
    if (ident_start(ch)) {
      // Could be a literal prefix.
      std::size_t n = 0;
      while (ident_cont(c.peek(n))) ++n;
      const char quote = c.peek(n);
      if (quote == '"' || quote == '\'') {
        const std::string_view prefix = src.substr(start, n);
        const bool raw = !prefix.empty() && prefix.back() == 'R';
        if (quote == '"' &&
            (prefix == "L" || prefix == "u" || prefix == "U" ||
             prefix == "u8" || raw)) {
          c.advance(n);
          if (raw)
            lex_raw_string(c);
          else
            lex_string(c, '"');
          emit(TokKind::String, start);
          continue;
        }
        if (quote == '\'' &&
            (prefix == "L" || prefix == "u" || prefix == "U" ||
             prefix == "u8")) {
          c.advance(n);
          lex_string(c, '\'');
          emit(TokKind::CharLit, start);
          continue;
        }
      }
      // Ordinary identifier / keyword.
      c.advance(n);
      emit(TokKind::Identifier, start);
      continue;
    }

    // Numbers (simplified pp-number: digits, dots, exponents, separators).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      c.advance();
      while (!c.done()) {
        const char d = c.peek();
        if (ident_cont(d) || d == '.' || d == '\'') {
          const bool exp = (d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                           (c.peek(1) == '+' || c.peek(1) == '-');
          c.advance(exp ? 2 : 1);
        } else {
          break;
        }
      }
      emit(TokKind::Number, start);
      continue;
    }

    // Punctuators: longest match.
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(start, p.size()) == p) {
        c.advance(p.size());
        emit(TokKind::Punct, start);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    c.advance();
    emit(TokKind::Punct, start);
  }

  out.push_back(Token{TokKind::End, src.substr(src.size(), 0), src.size()});
  return out;
}

}  // namespace rg::annotate
