#include "annotate/pipeline.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rg::annotate {

bool annotate_file(const std::string& input_path,
                   const std::string& output_path,
                   const RewriteOptions& options, PipelineStats& stats,
                   std::string& error) {
  std::ifstream in(input_path, std::ios::binary);
  if (!in) {
    error = "cannot open input: " + input_path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();

  const RewriteResult result = annotate_deletes(src, options);
  ++stats.files_processed;
  if (result.total() > 0) ++stats.files_changed;
  stats.single_rewrites += result.single_rewrites;
  stats.array_rewrites += result.array_rewrites;

  if (output_path == "-") {
    std::fwrite(result.text.data(), 1, result.text.size(), stdout);
    return true;
  }
  std::ofstream out(output_path, std::ios::binary);
  if (!out) {
    error = "cannot open output: " + output_path;
    return false;
  }
  out.write(result.text.data(),
            static_cast<std::streamsize>(result.text.size()));
  return true;
}

}  // namespace rg::annotate
