#include "annotate/rewrite.hpp"

#include <algorithm>

#include "annotate/lexer.hpp"
#include "support/assert.hpp"

namespace rg::annotate {

namespace {

/// Index of the previous significant token before `i`, or npos.
std::size_t prev_significant(const std::vector<Token>& toks, std::size_t i) {
  while (i-- > 0)
    if (toks[i].significant()) return i;
  return static_cast<std::size_t>(-1);
}

/// Index of the next significant token at or after `i`, or the End token.
std::size_t next_significant(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size() && !toks[i].significant()) ++i;
  return std::min(i, toks.size() - 1);
}

bool opens(std::string_view t) { return t == "(" || t == "[" || t == "{"; }
bool closes(std::string_view t) { return t == ")" || t == "]" || t == "}"; }

/// Tokens that end a delete operand at depth 0 (cast-expression boundary).
bool ends_operand(std::string_view t) {
  return t == ";" || t == "," || t == ")" || t == "]" || t == "}" ||
         t == "?" || t == ":";
}

struct Insertion {
  std::size_t offset;
  std::string text;
};

}  // namespace

RewriteResult annotate_deletes(std::string_view src,
                               const RewriteOptions& options) {
  const std::vector<Token> toks = lex(src);
  std::vector<Insertion> insertions;
  RewriteResult result;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier || !tok.is("delete")) continue;

    // `= delete` (deleted function) and `= delete("reason")`.
    const std::size_t p = prev_significant(toks, i);
    if (p != static_cast<std::size_t>(-1)) {
      if (toks[p].is("=")) continue;
      // `operator delete` / `operator delete[]` declarations or calls.
      if (toks[p].is("operator")) continue;
    }

    // Optional [] of a delete[]-expression.
    std::size_t j = next_significant(toks, i + 1);
    bool is_array = false;
    if (toks[j].is("[")) {
      const std::size_t k = next_significant(toks, j + 1);
      if (toks[k].is("]")) {
        is_array = true;
        j = next_significant(toks, k + 1);
      }
    }
    if (toks[j].kind == TokKind::End) continue;  // stray `delete` at EOF

    // Scan the operand (a cast-expression): until a depth-0 terminator.
    int depth = 0;
    std::size_t last_sig = j;
    std::size_t k = j;
    for (; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (!t.significant()) continue;
      if (depth == 0 && ends_operand(t.text) && !opens(t.text)) break;
      if (opens(t.text)) ++depth;
      if (closes(t.text)) {
        if (depth == 0) break;
        --depth;
      }
      last_sig = k;
      if (t.kind == TokKind::End) break;
    }

    const std::size_t operand_begin = toks[j].offset;
    const std::size_t operand_end =
        toks[last_sig].offset + toks[last_sig].text.size();
    const std::string& wrapper =
        is_array ? options.array_wrapper : options.single_wrapper;
    insertions.push_back({operand_begin, wrapper + "("});
    insertions.push_back({operand_end, ")"});
    if (is_array)
      ++result.array_rewrites;
    else
      ++result.single_rewrites;
  }

  // Splice insertions (already in ascending offset order; equal offsets
  // keep recording order so a close-paren lands before a following open).
  std::stable_sort(insertions.begin(), insertions.end(),
                   [](const Insertion& a, const Insertion& b) {
                     return a.offset < b.offset;
                   });
  std::string out;
  out.reserve(src.size() + insertions.size() * 32 +
              options.include_line.size() + 1);
  if (result.total() > 0 && !options.include_line.empty()) {
    out += options.include_line;
    out += '\n';
  }
  std::size_t pos = 0;
  for (const Insertion& ins : insertions) {
    RG_ASSERT(ins.offset >= pos);
    out.append(src.substr(pos, ins.offset - pos));
    out.append(ins.text);
    pos = ins.offset;
  }
  out.append(src.substr(pos));
  result.text = std::move(out);
  return result;
}

}  // namespace rg::annotate
