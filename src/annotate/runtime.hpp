// Annotation runtime helpers — the Fig. 4 shim.
//
// `delete p` becomes `delete ca_deletor_single(p)`: the helper announces
// the memory about to be destroyed to the race detector and hands the
// pointer through. Under normal (uninstrumented) execution the underlying
// client request "expands to a sequence of mnemonics that do nothing …
// with negligible execution time", so the annotation can stay in
// production code.
#pragma once

#include <cstddef>
#include <source_location>

#include "rt/memory.hpp"

namespace rg::annotate {

/// Announce destruction of a single object, then pass it to delete.
template <class Type>
inline Type* ca_deletor_single(
    Type* object,
    const std::source_location& loc = std::source_location::current()) {
  if (object != nullptr)
    rt::mem_destruct(object, static_cast<std::uint32_t>(sizeof(Type)), loc);
  return object;
}

/// Announce destruction of an array, then pass it to delete[].
///
/// The element count of a delete[] operand is not recoverable at the call
/// site (it lives in the allocator cookie), so — like the paper's tool —
/// only the first element is announced; the detector extends the marking to
/// the enclosing allocation when it knows it.
template <class Type>
inline Type* ca_deletor_array(
    Type* array,
    const std::source_location& loc = std::source_location::current()) {
  if (array != nullptr)
    rt::mem_destruct(array, static_cast<std::uint32_t>(sizeof(Type)), loc);
  return array;
}

}  // namespace rg::annotate
