// The three-stage instrumentation pipeline driver (paper §3.3).
//
// "First, the GNU compiler is used to preprocess the source file. Then the
// parser reads the preprocessed source file and generates the annotated
// source file. In the third and last step, the compiler generates object
// code" — here the stages are modelled as composable steps so the
// rg-annotate tool and the tests can drive stage 2 (the contribution)
// directly on files.
#pragma once

#include <string>
#include <string_view>

#include "annotate/rewrite.hpp"

namespace rg::annotate {

struct PipelineStats {
  std::size_t files_processed = 0;
  std::size_t files_changed = 0;
  std::size_t single_rewrites = 0;
  std::size_t array_rewrites = 0;
};

/// Reads `input_path`, annotates deletes, writes `output_path` ("-" for
/// stdout). Returns false (with `error` set) on I/O failure.
bool annotate_file(const std::string& input_path,
                   const std::string& output_path,
                   const RewriteOptions& options, PipelineStats& stats,
                   std::string& error);

}  // namespace rg::annotate
