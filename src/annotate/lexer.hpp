// A C++ token lexer.
//
// The paper's instrumentation stage parses preprocessed C++ with ELSA to
// find every delete-expression. Wrapping a delete operand only requires
// token-level structure, so this reproduction uses a faithful lexer (string
// and character literals with escapes, raw strings, both comment forms,
// preprocessor lines) feeding a small expression scanner — enough to handle
// the unrestricted C++ the paper insists real code bases contain.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace rg::annotate {

enum class TokKind : std::uint8_t {
  Identifier,   // identifiers and keywords
  Number,       // numeric literal (incl. hex/float/digit separators)
  String,       // "..." or R"(...)" (with prefix)
  CharLit,      // '...'
  Punct,        // operator / punctuator, longest-match
  Comment,      // // or /* */
  Whitespace,   // runs of whitespace incl. newlines
  Preprocessor, // a whole # line (with continuations)
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  /// View into the original source.
  std::string_view text;
  /// Byte offset of the token start in the original source.
  std::size_t offset = 0;

  bool is(std::string_view t) const { return text == t; }
  bool significant() const {
    return kind != TokKind::Comment && kind != TokKind::Whitespace &&
           kind != TokKind::Preprocessor && kind != TokKind::End;
  }
};

/// Tokenizes `src`. Every byte of the input is covered by exactly one token
/// (lossless), so a rewriter can splice insertions by offset. Unterminated
/// literals are tolerated (consumed to end of line/file).
std::vector<Token> lex(std::string_view src);

}  // namespace rg::annotate
