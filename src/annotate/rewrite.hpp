// The delete-expression rewriter (the paper's instrumentation stage).
//
// Transforms every delete-expression
//     delete expr;        ->  delete  WRAP_SINGLE( expr );
//     delete [] expr;     ->  delete[] WRAP_ARRAY( expr );
// exactly as Fig. 4 shows, leaving everything else byte-identical, so the
// pass can sit between preprocessing and compilation "without visible
// modifications to the source code". Deleted functions (`= delete`),
// operator delete declarations, and occurrences inside strings, comments
// and preprocessor lines are left untouched.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rg::annotate {

struct RewriteOptions {
  /// Wrapper for `delete p`.
  std::string single_wrapper = "::rg::annotate::ca_deletor_single";
  /// Wrapper for `delete[] p`.
  std::string array_wrapper = "::rg::annotate::ca_deletor_array";
  /// Line prepended once to any file that was modified (the Fig. 4
  /// `#include <valgrind/helgrind.h>` analogue). Empty disables.
  std::string include_line = "#include \"annotate/runtime.hpp\"";
};

struct RewriteResult {
  std::string text;
  std::size_t single_rewrites = 0;
  std::size_t array_rewrites = 0;
  std::size_t total() const { return single_rewrites + array_rewrites; }
};

/// Annotates all delete-expressions in `src`.
RewriteResult annotate_deletes(std::string_view src,
                               const RewriteOptions& options = {});

}  // namespace rg::annotate
