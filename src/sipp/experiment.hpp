// Experiment harness — runs a scenario against the proxy under a detector
// configuration and collects the quantities the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/helgrind.hpp"
#include "core/lockgraph.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "rt/chaos.hpp"
#include "rt/replay.hpp"
#include "rt/sim.hpp"
#include "rt/tool.hpp"
#include "sip/faults.hpp"
#include "sip/proxy.hpp"
#include "sipp/client.hpp"
#include "sipp/scenario.hpp"

namespace rg::sipp {

enum class DispatchMode : std::uint8_t {
  ThreadPerRequest,  // the proxy as measured in the paper
  ThreadPool,        // the planned pattern of §4.2.3
};

struct ExperimentConfig {
  std::uint64_t seed = 1;
  sip::FaultConfig faults = sip::FaultConfig::paper();
  DispatchMode mode = DispatchMode::ThreadPerRequest;
  /// Concurrent workers (threads per batch / pool size).
  std::size_t parallelism = 8;
  core::HelgrindConfig detector = core::HelgrindConfig::original();
  /// Also run the lock-order deadlock tool.
  bool deadlock_tool = false;
  /// Seeded lock-inversion hazards in the proxy (all off by default).
  sip::DeadlockHazards hazards;
  /// Replay-to-deadlock oracle: when set, the driver is attached as a tool
  /// and stages the run so a previously *predicted* cycle actually blocks.
  /// Caller keeps ownership; inspect driver->confirmed(result.sim.deadlock)
  /// after the run.
  rt::CycleReplayDriver* replay = nullptr;
  /// Optional Valgrind-style suppression file contents.
  std::string suppressions;

  // --- robustness tier ----------------------------------------------------
  /// Fault injection plan. Any enabled fault switches the traffic driver
  /// from the fire-and-forget dispatcher to the retransmitting ChaosClient.
  rt::ChaosConfig chaos;
  /// Force the ChaosClient even with no injected faults (used to validate
  /// that the UA driver itself converges cleanly).
  bool chaos_client = false;
  /// Retransmission timers for the ChaosClient (virtual ticks).
  RetransmitTimers timers;
  /// Proxy overload-control watermarks (zero = unlimited, classic runs).
  sip::OverloadConfig overload;
  /// Upstream resilience pool (zero targets = disabled, classic runs).
  /// When enabled with request_budget_ticks == 0 the harness propagates
  /// half the ChaosClient's timer-B budget as the forwarding deadline.
  sip::UpstreamConfig upstream;
  /// Detector report cap (ReportManager hardening); 0 = unlimited.
  std::size_t report_cap = 0;

  // --- performance knobs --------------------------------------------------
  /// Scheduler no-switch fast path. Schedules are bit-identical either way;
  /// off only for the equivalence tests and perf comparison.
  bool sched_fast_path = true;

  // --- observability --------------------------------------------------------
  // All three default to nullptr = off; attaching them never perturbs the
  // schedule (the recorder has no scheduling points, the profiler only
  // wraps tool dispatch). Caller keeps ownership across the run.
  /// Flight recorder: clocked by the Sim's virtual time, mirrors every
  /// runtime/scheduler/chaos/SIP event, feeds warning provenance.
  obs::FlightRecorder* recorder = nullptr;
  /// Per-tool hook profiler (Fig. 5-style events/cycles table).
  obs::HookProfiler* profiler = nullptr;
  /// Metrics registry: receives the proxy infra gauges during the run and
  /// the tool/sim/recorder summary counters after it.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ExperimentResult {
  /// Distinct reported possible-data-race locations (the Fig. 6 number).
  std::size_t reported_locations = 0;
  std::uint64_t total_warnings = 0;
  std::uint64_t suppressed_warnings = 0;
  std::vector<std::string> location_keys;
  /// Full Helgrind-style log.
  std::string report_text;
  /// --gen-suppressions output: one block per reported location.
  std::string generated_suppressions;
  /// Lock-order inversions (deadlock tool, when attached): naive tier-A
  /// edge-set inversions, byte-compatible with the pre-lockgraph tool.
  std::size_t lock_order_reports = 0;
  /// Tier-B *predicted* cycles that survived the cross-thread refinements
  /// (guard-lock and single-thread pruning). Empty without deadlock_tool.
  std::vector<core::PredictedCycle> predicted_cycles;
  /// Lock-graph refinement counters (edges, pruned, predicted).
  core::LockGraphTool::Counters lockgraph;
  /// Recoveries performed by the non-racy ordered-lock recovery path.
  std::uint64_t deadlock_recoveries = 0;
  rt::SimResult sim;
  std::size_t responses = 0;
  std::size_t lockset_distinct = 0;
  /// Hot-path counters (lockset cache, shadow TLB) summed over tools.
  rt::ToolStats tool_stats;

  // --- robustness tier ----------------------------------------------------
  /// Per-call convergence accounting (empty unless the ChaosClient ran).
  ChaosRunResult chaos;
  /// Canonical injection trace; equal strings == bit-identical replay.
  std::string injection_trace;
  /// New report locations dropped by the detector's report cap.
  std::uint64_t report_overflow = 0;
  /// Requests shed with 503 by proxy overload control.
  std::uint64_t proxy_sheds = 0;
  /// Highest transaction-table size observed while overload control was on.
  std::uint64_t transaction_peak = 0;

  // --- upstream resilience ------------------------------------------------
  /// Canonical breaker transition log; equal strings == identical replay.
  std::string breaker_transitions;
  /// validate_transitions() verdict on that log (vacuously true when the
  /// pool is disabled).
  bool transitions_monotone = true;
  std::string transitions_error;
  std::uint64_t upstream_forwards = 0;
  std::uint64_t upstream_retries = 0;
  std::uint64_t upstream_failovers = 0;
  std::uint64_t degraded_serves = 0;
  std::uint64_t upstream_sheds = 0;
  std::uint64_t breaker_opens = 0;

  // --- observability --------------------------------------------------------
  /// Stream hash over every recorded event (0 when no recorder attached).
  /// Equal hashes == the two executions raised the same events in order.
  std::uint64_t recorder_hash = 0;
  std::uint64_t recorder_events = 0;
  std::uint64_t recorder_dropped = 0;
  /// The distinct warning reports, with their recorder provenance cursors
  /// (rg-debug --explain indexes into this).
  std::vector<core::Report> reports;
};

/// Runs `scenario` once. Deterministic in (scenario, config).
ExperimentResult run_scenario(const Scenario& scenario,
                              const ExperimentConfig& config);

/// One Fig. 6 row: the same test case under Original / HWLC / HWLC+DR.
struct Fig6Row {
  std::string testcase;
  std::size_t original = 0;
  std::size_t hwlc = 0;
  std::size_t hwlc_dr = 0;
  /// Fig. 5 stacking derived by location-set difference:
  std::size_t hw_lock_fps = 0;     // removed by HWLC
  std::size_t destructor_fps = 0;  // further removed by +DR
  std::size_t remaining = 0;       // == hwlc_dr
  /// Fraction of Original removed by the two improvements combined.
  double reduction() const {
    return original == 0
               ? 0.0
               : 1.0 - static_cast<double>(hwlc_dr) /
                           static_cast<double>(original);
  }
};

/// Runs test case `n` under the three configurations of the paper.
Fig6Row run_fig6_row(int n, const ExperimentConfig& base);

/// Runs Fig. 6 rows for `cases`, fanning the (test case × detector config)
/// cells over an OS-thread pool (`workers` = 0 → hardware concurrency,
/// 1 → serial). Each cell is a self-contained Sim on one pool thread, so
/// per-cell determinism is unchanged: the returned rows are identical to
/// running run_fig6_row over `cases` one by one.
std::vector<Fig6Row> run_fig6_rows(const std::vector<int>& cases,
                                   const ExperimentConfig& base,
                                   std::size_t workers = 0);

}  // namespace rg::sipp
