#include "sipp/client.hpp"

#include <algorithm>

#include "rt/sim.hpp"
#include "rt/thread.hpp"
#include "sip/proxy.hpp"

namespace rg::sipp {

const char* to_string(CallOutcome outcome) {
  switch (outcome) {
    case CallOutcome::Pending:
      return "pending";
    case CallOutcome::Final:
      return "final";
    case CallOutcome::Shed:
      return "shed-503";
    case CallOutcome::GaveUp:
      return "gave-up";
    case CallOutcome::Absorbed:
      return "absorbed";
  }
  return "?";
}

void ChaosRunResult::merge(const ChaosRunResult& other) {
  calls.insert(calls.end(), other.calls.begin(), other.calls.end());
  finals += other.finals;
  shed += other.shed;
  give_ups += other.give_ups;
  absorbed += other.absorbed;
  deliveries += other.deliveries;
  retransmissions += other.retransmissions;
  hinted_retries += other.hinted_retries;
}

namespace {

/// Status of a serialized response, 0 when `wire` is not a response. Plain
/// string slicing on purpose: the UA side must not add instrumented events
/// of its own.
int response_status(const std::string& wire) {
  constexpr std::string_view kPrefix = "SIP/2.0 ";
  if (wire.size() < kPrefix.size() + 3 ||
      wire.compare(0, kPrefix.size(), kPrefix) != 0)
    return 0;
  int status = 0;
  for (std::size_t i = kPrefix.size(); i < kPrefix.size() + 3; ++i) {
    if (wire[i] < '0' || wire[i] > '9') return 0;
    status = status * 10 + (wire[i] - '0');
  }
  return status;
}

/// Advertised Retry-After seconds of a shed 503, 0 when absent. Same
/// plain-slicing contract as response_status().
std::uint32_t retry_after_hint(const std::string& wire) {
  constexpr std::string_view kHeader = "\r\nRetry-After: ";
  const std::size_t pos = wire.find(kHeader);
  if (pos == std::string::npos) return 0;
  std::uint32_t seconds = 0;
  for (std::size_t i = pos + kHeader.size();
       i < wire.size() && wire[i] >= '0' && wire[i] <= '9'; ++i)
    seconds = seconds * 10 + static_cast<std::uint32_t>(wire[i] - '0');
  return seconds;
}

std::uint64_t virtual_now() {
  rt::Sim* sim = rt::Sim::current();
  return sim != nullptr ? sim->sched().virtual_time() : 0;
}

}  // namespace

ChaosClient::ChaosClient(rt::ChaosEngine& chaos, sip::Proxy& proxy,
                         RetransmitTimers timers, std::size_t parallelism)
    : chaos_(chaos),
      proxy_(proxy),
      timers_(timers),
      parallelism_(parallelism == 0 ? 1 : parallelism) {}

CallRecord ChaosClient::drive_call(const std::string& wire,
                                   std::uint64_t message_id) {
  CallRecord rec;
  rec.message_id = message_id;
  // Injection point: the UA thread itself may be stalled here, modelling a
  // client that goes quiet mid-conversation.
  chaos_.stall_point(message_id);

  std::uint64_t interval = timers_.t1;
  std::uint64_t waited = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const rt::FaultDecision fault = chaos_.apply(message_id, attempt);
    bool delivered = false;
    std::string response;
    if (!fault.drop) {
      if (fault.delay_ticks != 0) rt::sleep_ticks(fault.delay_ticks);
      ++rec.deliveries;
      response = proxy_.handle_wire(wire);
      delivered = true;
      if (fault.duplicate) {
        // UDP duplication: the copy is absorbed by transaction-layer
        // retransmission replay (or re-answered statelessly).
        ++rec.deliveries;
        (void)proxy_.handle_wire(wire);
      }
    }
    if (delivered) {
      if (response.empty()) {
        rec.outcome = CallOutcome::Absorbed;
        break;
      }
      const int status = response_status(response);
      if (status >= 200) {
        if (status == 503 && timers_.honor_retry_after) {
          // RFC 3261 §21.5.4: the shed response advertises when to come
          // back. Honor the hint (in virtual time) and retry with a fresh
          // T1 interval — unless timer B/F would fire first, in which case
          // the 503 is terminal as before.
          const std::uint64_t hint_ticks =
              retry_after_hint(response) * timers_.ticks_per_second;
          if (hint_ticks != 0 &&
              waited + hint_ticks <= timers_.giveup_after()) {
            ++rec.hinted_retries;
            rt::sleep_ticks(hint_ticks);
            waited += hint_ticks;
            interval = timers_.t1;
            continue;
          }
        }
        rec.final_status = status;
        rec.outcome =
            status == 503 ? CallOutcome::Shed : CallOutcome::Final;
        break;
      }
      // Provisional response: keep the retransmission timer running.
    }
    // No final response yet — retransmit after the current interval, with
    // RFC 3261 exponential backoff capped at T2, unless timer B/F fires.
    if (waited + interval > timers_.giveup_after()) {
      rec.outcome = CallOutcome::GaveUp;
      break;
    }
    ++rec.retransmissions;
    rt::sleep_ticks(interval);
    waited += interval;
    interval = std::min(interval * 2, timers_.t2);
  }
  rec.finished_at = virtual_now();
  return rec;
}

ChaosRunResult ChaosClient::run_phase(const std::vector<std::string>& wires) {
  ChaosRunResult result;
  result.calls.resize(wires.size());
  if (wires.empty()) return result;

  // Message identities are assigned up front, in scenario order, so the
  // fault plan for call N never depends on thread interleaving.
  std::vector<std::uint64_t> ids(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) ids[i] = next_message_id_++;

  // Seeded network reordering of the batch.
  const std::vector<std::size_t> order =
      chaos_.delivery_order(next_batch_id_++, wires.size());

  const std::size_t ua_count = std::min(parallelism_, wires.size());
  std::vector<rt::thread> uas;
  uas.reserve(ua_count);
  for (std::size_t t = 0; t < ua_count; ++t) {
    uas.emplace_back(
        [this, t, ua_count, &order, &wires, &ids, &result] {
          for (std::size_t k = t; k < order.size(); k += ua_count) {
            const std::size_t i = order[k];
            CallRecord rec = drive_call(wires[i], ids[i]);
            rec.index = i;
            result.calls[i] = rec;  // slots are disjoint per UA thread
          }
        },
        "ua-client");
  }
  for (rt::thread& ua : uas) ua.join();

  for (const CallRecord& rec : result.calls) {
    result.deliveries += rec.deliveries;
    result.retransmissions += rec.retransmissions;
    result.hinted_retries += rec.hinted_retries;
    switch (rec.outcome) {
      case CallOutcome::Final:
        ++result.finals;
        break;
      case CallOutcome::Shed:
        ++result.shed;
        break;
      case CallOutcome::GaveUp:
        ++result.give_ups;
        break;
      case CallOutcome::Absorbed:
        ++result.absorbed;
        break;
      case CallOutcome::Pending:
        break;
    }
  }
  return result;
}

ChaosRunResult ChaosClient::run(const Scenario& scenario) {
  ChaosRunResult total;
  for (const auto& phase : scenario.phases) total.merge(run_phase(phase));
  return total;
}

}  // namespace rg::sipp
