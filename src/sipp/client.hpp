// Chaos-aware SIP client driver (the "real UA" counterpart of the
// fire-and-forget phase delivery in sip/dispatch.hpp).
//
// Under fault injection a client that sends each request exactly once cannot
// converge: dropped requests simply vanish. This driver reacts the way an
// RFC 3261 UA does — unanswered requests are retransmitted with exponential
// backoff (the T1/T2 model, §17.1.1.1) against *virtual* time, and a call
// whose timer B/F expires gives up and says so. Every call therefore ends in
// one of four accounted states: a final response, a shed 503, a logged
// give-up, or absorption (ACK) — the convergence criterion of the chaos
// test tier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/chaos.hpp"
#include "sipp/scenario.hpp"

namespace rg::sip {
class Proxy;
}

namespace rg::sipp {

/// RFC 3261 §17.1.1.1 retransmission timers, in virtual ticks.
struct RetransmitTimers {
  /// T1 — RTT estimate; first retransmission interval.
  std::uint64_t t1 = 50;
  /// T2 — cap on the doubled retransmission interval.
  std::uint64_t t2 = 400;
  /// Timer B/F fires `giveup_factor * t1` after the first send.
  std::uint32_t giveup_factor = 64;
  /// Honor a Retry-After hint on a shed 503 (RFC 3261 §21.5.4): sleep the
  /// advertised interval in virtual time and retry, as long as timer B/F
  /// still has room. Off = the pre-hint behaviour (503 is terminal).
  bool honor_retry_after = true;
  /// Virtual-tick length of one advertised Retry-After second (matches
  /// UpstreamConfig::ticks_per_second).
  std::uint64_t ticks_per_second = 10;

  std::uint64_t giveup_after() const { return giveup_factor * t1; }
};

enum class CallOutcome : std::uint8_t {
  Pending,   // not finished (never appears in a converged run)
  Final,     // 2xx-4xx final response received
  Shed,      // 503 Service Unavailable (proxy overload shedding)
  GaveUp,    // timer B/F expired without a final response
  Absorbed,  // request class the proxy absorbs (ACK)
};

const char* to_string(CallOutcome outcome);

/// Convergence accounting for one driven request.
struct CallRecord {
  std::size_t index = 0;         // position within the driven batch
  std::uint64_t message_id = 0;  // identity in the chaos fault plan
  int final_status = 0;
  std::uint32_t deliveries = 0;  // wire deliveries, duplicates included
  std::uint32_t retransmissions = 0;
  /// Retries taken because a shed 503 advertised Retry-After (accounted
  /// separately from timer-driven retransmissions).
  std::uint32_t hinted_retries = 0;
  CallOutcome outcome = CallOutcome::Pending;
  std::uint64_t finished_at = 0;  // virtual time
};

struct ChaosRunResult {
  std::vector<CallRecord> calls;
  std::uint64_t finals = 0;
  std::uint64_t shed = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t hinted_retries = 0;

  /// Every call reached a terminal state.
  bool converged() const {
    return finals + shed + give_ups + absorbed == calls.size();
  }

  void merge(const ChaosRunResult& other);
};

/// Drives scenario phases through a proxy with `parallelism` concurrent UA
/// threads, consulting a ChaosEngine for per-delivery faults. Deterministic
/// in (scheduler seed, chaos seed, scenario).
class ChaosClient {
 public:
  ChaosClient(rt::ChaosEngine& chaos, sip::Proxy& proxy,
              RetransmitTimers timers = {}, std::size_t parallelism = 4);

  ChaosClient(const ChaosClient&) = delete;
  ChaosClient& operator=(const ChaosClient&) = delete;

  /// Delivers one phase: seeded reordering, then concurrent UA threads
  /// each running the retransmission state machine per call.
  ChaosRunResult run_phase(const std::vector<std::string>& wires);

  /// Runs every phase back to back (phases are sequence points).
  ChaosRunResult run(const Scenario& scenario);

  const RetransmitTimers& timers() const { return timers_; }

 private:
  CallRecord drive_call(const std::string& wire, std::uint64_t message_id);

  rt::ChaosEngine& chaos_;
  sip::Proxy& proxy_;
  RetransmitTimers timers_;
  std::size_t parallelism_;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t next_batch_id_ = 1;
};

}  // namespace rg::sipp
