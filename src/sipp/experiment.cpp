#include "sipp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "core/deadlock.hpp"
#include "sip/dispatch.hpp"
#include "sip/proxy.hpp"
#include "sipp/testcases.hpp"
#include "support/parallel.hpp"

namespace rg::sipp {

ExperimentResult run_scenario(const Scenario& scenario,
                              const ExperimentConfig& config) {
  core::HelgrindConfig detector_cfg = config.detector;
  if (config.report_cap != 0) detector_cfg.report_cap = config.report_cap;
  core::HelgrindTool helgrind(detector_cfg);
  if (!config.suppressions.empty())
    helgrind.reports().load_suppressions(config.suppressions);
  core::DeadlockTool deadlock;
  rt::ChaosEngine chaos(config.chaos);
  const bool use_chaos_client =
      config.chaos_client || config.chaos.any_faults();

  rt::SimConfig sim_cfg;
  sim_cfg.sched.seed = config.seed;
  sim_cfg.sched.fast_path = config.sched_fast_path;
  rt::Sim sim(sim_cfg);
  sim.set_recorder(config.recorder);
  sim.set_profiler(config.profiler);
  sim.attach(helgrind);
  if (config.deadlock_tool) sim.attach(deadlock);
  if (config.replay != nullptr) sim.attach(*config.replay);

  ExperimentResult result;

  result.sim = sim.run([&] {
    sip::ProxyConfig proxy_cfg;
    proxy_cfg.faults = config.faults;
    proxy_cfg.hazards = config.hazards;
    proxy_cfg.overload = config.overload;
    proxy_cfg.upstream = config.upstream;
    proxy_cfg.metrics = config.metrics;
    if (proxy_cfg.upstream.enabled() &&
        proxy_cfg.upstream.request_budget_ticks == 0) {
      // Deadline propagation: the forwarding hop may spend at most half of
      // the client's timer-B budget, leaving the other half for the UA's
      // own retransmission schedule.
      proxy_cfg.upstream.request_budget_ticks = config.timers.giveup_after() / 2;
    }
    sip::Proxy proxy(proxy_cfg);
    if (proxy_cfg.upstream.enabled()) proxy.set_chaos(&chaos);

    proxy.start();
    if (use_chaos_client) {
      // Robustness tier: adverse network weather plus a UA that
      // retransmits against virtual time instead of fire-and-forget.
      ChaosClient client(chaos, proxy, config.timers, config.parallelism);
      result.chaos = client.run(scenario);
      result.responses +=
          static_cast<std::size_t>(result.chaos.finals + result.chaos.shed);
    } else {
      std::unique_ptr<sip::Dispatcher> dispatcher;
      if (config.mode == DispatchMode::ThreadPerRequest)
        dispatcher = std::make_unique<sip::ThreadPerRequestDispatcher>(
            config.parallelism);
      else
        dispatcher =
            std::make_unique<sip::ThreadPoolDispatcher>(config.parallelism);
      for (const auto& phase : scenario.phases) {
        const auto responses = dispatcher->dispatch(proxy, phase);
        result.responses += responses.size();
      }
    }
    result.proxy_sheds = proxy.stats().sheds();
    result.transaction_peak = proxy.stats().transaction_peak();
    result.upstream_forwards = proxy.stats().upstream_forwards();
    result.upstream_retries = proxy.stats().upstream_retries();
    result.upstream_failovers = proxy.stats().failovers();
    result.degraded_serves = proxy.stats().degraded_serves();
    result.upstream_sheds = proxy.stats().upstream_sheds();
    result.breaker_opens = proxy.stats().breaker_opens();
    proxy.shutdown();
    result.deadlock_recoveries = proxy.stats().deadlock_recoveries();
    result.breaker_transitions = proxy.upstreams().transitions_text();
    result.transitions_monotone = sip::validate_transitions(
        proxy.upstreams().transitions(), &result.transitions_error);
    // Snapshot the tracked traffic counters into the shared registry
    // (uninstrumented peek() reads — publishing never perturbs the stream).
    if (config.metrics != nullptr) proxy.stats().publish_totals();
  });
  result.injection_trace = chaos.trace_text();
  result.report_overflow = helgrind.reports().overflow_reports();

  const core::ReportManager& reports = helgrind.reports();
  result.reported_locations = 0;
  for (const core::Report& r : reports.reports())
    if (r.kind == core::Report::Kind::DataRace) ++result.reported_locations;
  result.total_warnings = reports.total_warnings();
  result.suppressed_warnings = reports.suppressed_warnings();
  result.location_keys = reports.location_keys();
  result.report_text = reports.render(sim.runtime());
  result.generated_suppressions = reports.generate_suppressions();
  result.lock_order_reports = deadlock.reports().distinct_locations();
  result.predicted_cycles = deadlock.predicted();
  result.lockgraph = deadlock.counters();
  result.lockset_distinct = helgrind.locksets().distinct_sets();
  result.tool_stats = sim.runtime().tool_stats();
  result.reports = reports.reports();
  if (config.deadlock_tool) {
    // Merge the deadlock tool's reports (tier-A inversions + tier-B
    // predictions) so rg-debug --explain can narrate a predicted cycle
    // from its recorder cursor like any other warning.
    for (const core::Report& r : deadlock.reports().reports())
      result.reports.push_back(r);
    for (const core::Report& r : deadlock.predictions().reports())
      result.reports.push_back(r);
    result.report_text += deadlock.predictions().render(sim.runtime());
  }
  if (config.recorder != nullptr) {
    result.recorder_hash = config.recorder->hash();
    result.recorder_events = config.recorder->recorded();
    result.recorder_dropped = config.recorder->dropped();
  }
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    result.tool_stats.export_to(m);
    m.counter("sim.steps").set(result.sim.steps);
    m.counter("sim.fast_path_steps").set(result.sim.fast_path_steps);
    m.counter("sim.virtual_time").set(result.sim.virtual_time);
    m.counter("sim.access_events").set(result.sim.access_events);
    m.counter("sim.sync_events").set(result.sim.sync_events);
    m.counter("detector.reported_locations").set(result.reported_locations);
    m.counter("detector.total_warnings").set(result.total_warnings);
    if (config.deadlock_tool) deadlock.export_metrics(m);
    if (config.recorder != nullptr) {
      m.counter("recorder.events").set(result.recorder_events);
      m.counter("recorder.dropped").set(result.recorder_dropped);
    }
    if (config.profiler != nullptr) config.profiler->export_to(m);
  }
  return result;
}

namespace {

/// Derives one Fig. 6 row (with Fig. 5 attribution) from the three cell
/// results of a test case. Shared by the serial and parallel paths so both
/// produce identical rows by construction.
Fig6Row assemble_fig6_row(const std::string& name,
                          const ExperimentResult& original,
                          const ExperimentResult& hwlc,
                          const ExperimentResult& hwlc_dr) {
  Fig6Row row;
  row.testcase = name;
  row.original = original.reported_locations;
  row.hwlc = hwlc.reported_locations;
  row.hwlc_dr = hwlc_dr.reported_locations;

  // Fig. 5 attribution by location-set difference: warnings that vanish
  // when the bus-lock model is corrected are hardware-lock false
  // positives; warnings that additionally vanish with annotations are
  // destructor false positives.
  const std::unordered_set<std::string> keys_hwlc(hwlc.location_keys.begin(),
                                                  hwlc.location_keys.end());
  const std::unordered_set<std::string> keys_dr(hwlc_dr.location_keys.begin(),
                                                hwlc_dr.location_keys.end());
  for (const std::string& key : original.location_keys)
    if (!keys_hwlc.contains(key)) ++row.hw_lock_fps;
  for (const std::string& key : hwlc.location_keys)
    if (!keys_dr.contains(key)) ++row.destructor_fps;
  row.remaining = row.hwlc_dr;
  return row;
}

core::HelgrindConfig fig6_detector(std::size_t variant) {
  switch (variant) {
    case 0:
      return core::HelgrindConfig::original();
    case 1:
      return core::HelgrindConfig::hwlc();
    default:
      return core::HelgrindConfig::hwlc_dr();
  }
}

}  // namespace

Fig6Row run_fig6_row(int n, const ExperimentConfig& base) {
  const Scenario scenario = build_testcase(n, base.seed);

  auto run_with = [&](const core::HelgrindConfig& detector) {
    ExperimentConfig cfg = base;
    cfg.detector = detector;
    return run_scenario(scenario, cfg);
  };

  const ExperimentResult original = run_with(fig6_detector(0));
  const ExperimentResult hwlc = run_with(fig6_detector(1));
  const ExperimentResult hwlc_dr = run_with(fig6_detector(2));
  return assemble_fig6_row(scenario.name, original, hwlc, hwlc_dr);
}

std::vector<Fig6Row> run_fig6_rows(const std::vector<int>& cases,
                                   const ExperimentConfig& base,
                                   std::size_t workers) {
  // One cell = (test case, detector variant). Every cell builds its own
  // scenario and Sim, so cells share no mutable state and any pool
  // interleaving yields the same per-cell results as a serial sweep.
  constexpr std::size_t kVariants = 3;
  std::vector<ExperimentResult> cells(cases.size() * kVariants);
  support::parallel_for_index(
      cells.size(), workers, [&](std::size_t i) {
        const int testcase = cases[i / kVariants];
        ExperimentConfig cfg = base;
        cfg.detector = fig6_detector(i % kVariants);
        cells[i] = run_scenario(build_testcase(testcase, base.seed), cfg);
      });

  std::vector<Fig6Row> rows;
  rows.reserve(cases.size());
  for (std::size_t r = 0; r < cases.size(); ++r) {
    const Scenario scenario = build_testcase(cases[r], base.seed);
    rows.push_back(assemble_fig6_row(scenario.name, cells[r * kVariants],
                                     cells[r * kVariants + 1],
                                     cells[r * kVariants + 2]));
  }
  return rows;
}

}  // namespace rg::sipp
