// Deadlock-hazard scenarios and the predict → replay-confirm pipeline.
//
// Two seeded lock-inversion families in the proxy (sip::DeadlockHazards)
// stand in for the real-world inversions the paper's server shipped with:
//
//  * RegistrarVsUpstream — an INVITE worker nests registrar-lock →
//    upstream-target-lock while the expiry reaper nests the opposite way.
//  * ShutdownInversion — the reaper's stop-check nests registrar-lock →
//    stop-mutex while shutdown nests stop-mutex → registrar-lock.
//
// run_hazard() drives the headline metric of the predictive tier: run the
// scenario once under the lock-graph tool on a *non-deadlocking* schedule,
// collect the predicted cycles, then re-run per cycle with the replay
// oracle staging each participant just before its second acquisition to
// confirm the cycle blocks for real. run_recovery_soak() runs the same
// hazard with the non-racy recovery path enabled and checks nothing is
// lost.
#pragma once

#include <cstdint>
#include <vector>

#include "sipp/experiment.hpp"
#include "sipp/scenario.hpp"

namespace rg::sipp {

enum class HazardFamily : std::uint8_t {
  RegistrarVsUpstream,
  ShutdownInversion,
};

const char* hazard_family_name(HazardFamily family);

/// Traffic that exercises the hazard's worker side. RegistrarVsUpstream
/// sends REGISTER + INVITE batches (the INVITE handler runs the worker
/// probe); ShutdownInversion sends OPTIONS only — that path touches
/// neither the registrar lock nor the upstream locks, so the replay
/// oracle can stage the reaper/shutdown threads without a worker wedging
/// the staging.
Scenario build_hazard_scenario(HazardFamily family, std::uint64_t seed);

/// Experiment preset for hazard runs: clean fault plan, thread-per-request
/// dispatch (stable thread ids across replays), lock-graph tool attached,
/// and the family's hazard flag set.
ExperimentConfig hazard_config(HazardFamily family, std::uint64_t seed);

struct HazardRunResult {
  /// The prediction run finished without deadlocking.
  bool completed = false;
  /// Tier-B cycles predicted by the lock-graph refinements.
  std::size_t predicted = 0;
  /// Predicted cycles the replay oracle drove into a real deadlock.
  std::size_t confirmed = 0;
  /// Naive tier-A inversion reports (pre-refinement baseline).
  std::size_t naive_inversions = 0;
  std::vector<core::PredictedCycle> cycles;
  /// Full result of the prediction run (reports, counters, recorder).
  ExperimentResult predict_run;
};

/// Runs the predict → confirm pipeline for one hazard family. When
/// `metrics` is non-null the prediction run exports into it and
/// `lockgraph.confirmed_cycles` is set afterwards.
HazardRunResult run_hazard(HazardFamily family, std::uint64_t seed,
                           obs::MetricsRegistry* metrics = nullptr);

struct RecoverySoakResult {
  bool completed = false;
  std::size_t responses = 0;
  /// Every scenario message expects a response; lost transactions =
  /// expected_responses - responses.
  std::size_t expected_responses = 0;
  /// Backoff cycles taken by the ordered-lock recovery path.
  std::uint64_t recoveries = 0;
  /// Flight-recorder stream hash — equal across same-seed runs means the
  /// recovery path (jitter included) replays deterministically.
  std::uint64_t recorder_hash = 0;

  std::size_t lost() const {
    return expected_responses > responses ? expected_responses - responses
                                          : 0;
  }
};

/// Runs the hazard with hazards.recover enabled (the inversion's blocking
/// side replaced by try-lock + deadline + release + jittered retry) and a
/// flight recorder attached for the determinism hash.
RecoverySoakResult run_recovery_soak(HazardFamily family, std::uint64_t seed);

}  // namespace rg::sipp
