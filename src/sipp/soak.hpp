// Replayable chaos soak — the acceptance tier of the resilience layer.
//
// A soak cell is (seed, fault mix): one T5 heavy-mixed-traffic scenario
// driven by the retransmitting ChaosClient through a proxy whose upstream
// pool is under proxy<->upstream fault injection. The matrix sweeps seeds x
// mixes and asserts, per cell:
//   - zero lost transactions (every call reaches a terminal outcome),
//   - a monotone breaker transition log (legal edges, time never runs
//     backwards, reopen cooldowns only grow until a close),
//   - bit-identical replay: re-running the cell reproduces the injection
//     trace, the breaker transitions and the outcome multiset exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/chaos.hpp"
#include "sipp/experiment.hpp"

namespace rg::sipp {

/// One fault mix of the soak matrix.
struct SoakMix {
  std::string name;
  rt::ChaosConfig chaos;
};

/// The three standard mixes: upstream-hop-only light, upstream-hop-only
/// heavy, and adverse weather on both hops at once.
std::vector<SoakMix> default_soak_mixes();

/// Experiment configuration of one soak cell (ChaosClient, hwlc_dr
/// detector, 3 upstream targets, soak-tuned breaker cooldowns).
ExperimentConfig soak_experiment(std::uint64_t seed, const SoakMix& mix);

/// Canonical outcome accounting of a chaos run: terminal-state counters
/// plus the per-status multiset of final responses. Two runs produced the
/// same outcomes iff these strings are equal.
std::string outcome_counts_text(const ChaosRunResult& run);

/// One executed cell of the matrix.
struct SoakCell {
  std::uint64_t seed = 0;
  std::string mix;

  bool converged = false;          // zero lost transactions
  bool monotone = false;           // breaker log passed validation
  std::string monotone_error;

  std::string injection_trace;     // canonical chaos trace
  std::string breaker_transitions; // canonical breaker log
  std::string outcomes;            // outcome_counts_text() of the run
  /// Flight-recorder stream hash of the cell's execution. Covers every
  /// event ever recorded, so it is a stronger replay oracle than the three
  /// strings above: equal hashes == same events in the same order.
  std::uint64_t recorder_hash = 0;

  // Headline gauges for tables.
  std::uint64_t calls = 0;
  std::uint64_t finals = 0;
  std::uint64_t shed = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t hinted_retries = 0;
  std::uint64_t upstream_forwards = 0;
  std::uint64_t upstream_failovers = 0;
  std::uint64_t degraded_serves = 0;
  std::uint64_t breaker_opens = 0;

  bool ok() const { return converged && monotone; }
};

/// Runs one cell.
SoakCell run_soak_cell(std::uint64_t seed, const SoakMix& mix);

struct SoakMatrixResult {
  std::vector<SoakCell> cells;
  bool all_converged = true;
  bool all_monotone = true;
  /// Every cell replayed bit-identically (always true when replay
  /// verification was skipped).
  bool replay_identical = true;
  /// First violated property, for diagnostics.
  std::string first_error;

  bool ok() const {
    return all_converged && all_monotone && replay_identical;
  }
};

/// Runs seeds x mixes; with `verify_replay` every cell is run twice and the
/// (trace, transitions, outcomes) triple must match exactly.
SoakMatrixResult run_soak_matrix(const std::vector<std::uint64_t>& seeds,
                                 const std::vector<SoakMix>& mixes,
                                 bool verify_replay);

}  // namespace rg::sipp
