#include "sipp/scenario.hpp"

namespace rg::sipp {

MessageFactory::MessageFactory(std::string domain)
    : domain_(std::move(domain)) {}

std::string MessageFactory::request(
    const std::string& method, const std::string& uri,
    const std::string& from_user, const std::string& to_user,
    const std::string& call_tag, std::uint32_t cseq,
    const std::string& cseq_method,
    const std::vector<std::string>& extra_headers,
    const std::string& body) const {
  std::string out = method + " " + uri + " SIP/2.0\r\n";
  out += "Via: SIP/2.0/UDP client.invalid:5060;branch=z9hG4bK-" + call_tag +
         "-" + cseq_method + "\r\n";
  out += "Max-Forwards: 70\r\n";
  out += "From: <sip:" + from_user + "@" + domain_ + ">;tag=from-" + call_tag +
         "\r\n";
  out += "To: <sip:" + to_user + "@" + domain_ + ">\r\n";
  out += "Call-ID: " + call_tag + "@client.invalid\r\n";
  out += "CSeq: " + std::to_string(cseq) + " " + cseq_method + "\r\n";
  for (const std::string& h : extra_headers) out += h + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string MessageFactory::register_request(const std::string& user,
                                             const std::string& call_tag,
                                             std::uint32_t cseq,
                                             std::uint32_t expires) const {
  return request("REGISTER", "sip:" + domain_, user, user, call_tag, cseq,
                 "REGISTER",
                 {"Contact: <sip:" + user + "@host-" + user + ".invalid:5060>",
                  "Expires: " + std::to_string(expires)},
                 {});
}

std::string MessageFactory::invite(const std::string& caller,
                                   const std::string& callee,
                                   const std::string& call_tag,
                                   std::uint32_t cseq,
                                   const std::string& target_domain) const {
  const std::string dom = target_domain.empty() ? domain_ : target_domain;
  return request("INVITE", "sip:" + callee + "@" + dom, caller, callee,
                 call_tag, cseq, "INVITE",
                 {"Contact: <sip:" + caller + "@client.invalid:5060>",
                  "Content-Type: application/sdp"},
                 "v=0\r\no=" + caller + " 0 0 IN IP4 client.invalid\r\ns=-\r\n");
}

std::string MessageFactory::ack(const std::string& caller,
                                const std::string& callee,
                                const std::string& call_tag,
                                std::uint32_t cseq) const {
  // Same branch as the INVITE: the ACK matches its transaction.
  std::string out = request("ACK", "sip:" + callee + "@" + domain_, caller,
                            callee, call_tag, cseq, "ACK", {}, {});
  // Rewrite the Via branch to the INVITE's.
  const std::string wrong = "branch=z9hG4bK-" + call_tag + "-ACK";
  const std::string right = "branch=z9hG4bK-" + call_tag + "-INVITE";
  const std::size_t pos = out.find(wrong);
  if (pos != std::string::npos) out.replace(pos, wrong.size(), right);
  return out;
}

std::string MessageFactory::bye(const std::string& caller,
                                const std::string& callee,
                                const std::string& call_tag,
                                std::uint32_t cseq) const {
  return request("BYE", "sip:" + callee + "@" + domain_, caller, callee,
                 call_tag, cseq, "BYE", {}, {});
}

std::string MessageFactory::cancel(const std::string& caller,
                                   const std::string& callee,
                                   const std::string& call_tag,
                                   std::uint32_t cseq) const {
  std::string out = request("CANCEL", "sip:" + callee + "@" + domain_, caller,
                            callee, call_tag, cseq, "CANCEL", {}, {});
  const std::string wrong = "branch=z9hG4bK-" + call_tag + "-CANCEL";
  const std::string right = "branch=z9hG4bK-" + call_tag + "-INVITE";
  const std::size_t pos = out.find(wrong);
  if (pos != std::string::npos) out.replace(pos, wrong.size(), right);
  return out;
}

std::string MessageFactory::options(const std::string& user,
                                    const std::string& call_tag,
                                    std::uint32_t cseq) const {
  return request("OPTIONS", "sip:" + domain_, user, user, call_tag, cseq,
                 "OPTIONS", {"Accept: application/sdp"}, {});
}

std::string MessageFactory::info(const std::string& caller,
                                 const std::string& callee,
                                 const std::string& call_tag,
                                 std::uint32_t cseq,
                                 const std::string& body) const {
  std::vector<std::string> headers;
  if (!body.empty()) headers.push_back("Content-Type: application/dtmf-relay");
  return request("INFO", "sip:" + callee + "@" + domain_, caller, callee,
                 call_tag, cseq, "INFO", headers, body);
}

std::string MessageFactory::unknown_method(const std::string& user,
                                           const std::string& call_tag,
                                           std::uint32_t cseq) const {
  return request("SUBSCRIBE", "sip:" + domain_, user, user, call_tag, cseq,
                 "SUBSCRIBE", {"Event: presence"}, {});
}

std::string MessageFactory::garbage(int variant) const {
  switch (variant % 5) {
    case 0:
      return "GET / HTTP/1.1\r\nHost: example.com\r\n\r\n";
    case 1:
      return "INVITE sip:x@" + domain_ + " SIP/2.0\r\nVia broken line\r\n\r\n";
    case 2:
      // Missing mandatory headers.
      return "INVITE sip:x@" + domain_ +
             " SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK-g\r\n\r\n";
    case 3:
      return "SIP/2.0 xyz Not A Status\r\n\r\n";
    default:
      return "\r\n";
  }
}

}  // namespace rg::sipp
