#include "sipp/testcases.hpp"

#include "support/assert.hpp"
#include "support/prng.hpp"

namespace rg::sipp {

namespace {

std::string user_name(std::uint64_t i) { return "user" + std::to_string(i); }

std::string tag(std::string_view prefix, std::uint64_t i) {
  return std::string(prefix) + "-" + std::to_string(i);
}

/// Registers `count` users in one concurrent phase.
std::vector<std::string> register_phase(const MessageFactory& mf,
                                        std::uint64_t first,
                                        std::uint64_t count,
                                        std::string_view tag_prefix) {
  std::vector<std::string> phase;
  for (std::uint64_t i = 0; i < count; ++i)
    phase.push_back(
        mf.register_request(user_name(first + i), tag(tag_prefix, i), 1));
  return phase;
}

}  // namespace

const char* testcase_description(int n) {
  switch (n) {
    case 1:
      return "REGISTER storm with refreshes";
    case 2:
      return "basic INVITE/ACK/BYE dialogs";
    case 3:
      return "OPTIONS/INFO feature mix (third-party module)";
    case 4:
      return "INVITE retransmissions and CANCEL";
    case 5:
      return "heavy mixed traffic";
    case 6:
      return "error flows: 403/404/400/405";
    case 7:
      return "registration churn with expiry";
    case 8:
      return "concurrent dialogs to one callee";
  }
  return "?";
}

Scenario build_testcase(int n, std::uint64_t seed, std::uint32_t intensity) {
  RG_ASSERT(n >= 1 && n <= kTestCaseCount);
  support::Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(n));
  MessageFactory mf;
  Scenario s;
  s.name = "T" + std::to_string(n);
  const std::uint32_t k = intensity == 0 ? 1 : intensity;

  switch (n) {
    case 1: {
      // Registration storm: three rounds of concurrent REGISTERs, with
      // refreshes (higher CSeq) in later rounds.
      const std::uint64_t users = 10 * k;
      s.phases.push_back(register_phase(mf, 0, users, "t1r1"));
      std::vector<std::string> refresh;
      for (std::uint64_t i = 0; i < users; ++i) {
        refresh.push_back(
            mf.register_request(user_name(i), tag("t1r2", i), 2));
        // UDP retransmission of the refresh: matched concurrently against
        // the retained transaction and answered by replay.
        refresh.push_back(
            mf.register_request(user_name(i), tag("t1r2", i), 2));
      }
      s.phases.push_back(std::move(refresh));
      std::vector<std::string> mixed;
      for (std::uint64_t i = 0; i < users; ++i) {
        if (rng.chance(1, 3))
          mixed.push_back(mf.register_request(user_name(i), tag("t1r3", i), 3,
                                              rng.chance(1, 4) ? 0 : 3600));
        else
          mixed.push_back(mf.options(user_name(i), tag("t1o", i), 1));
      }
      s.phases.push_back(std::move(mixed));
      break;
    }

    case 2: {
      // Callees register, then callers run full INVITE/ACK/INFO/BYE
      // dialogs. All messages of a call are delivered in the same phase,
      // so concurrent workers share its transaction and dialog state.
      const std::uint64_t calls = 6 * k;
      s.phases.push_back(register_phase(mf, 100, calls, "t2reg"));
      std::vector<std::string> dialogs;
      for (std::uint64_t i = 0; i < calls; ++i) {
        const std::string caller = user_name(200 + i);
        const std::string callee = user_name(100 + i);
        const std::string call = tag("t2c", i);
        dialogs.push_back(mf.invite(caller, callee, call, 1));
        dialogs.push_back(mf.ack(caller, callee, call, 1));
        dialogs.push_back(mf.info(caller, callee, call, 2,
                                  "Signal=" + std::to_string(i) + "\r\n"));
        dialogs.push_back(mf.bye(caller, callee, call, 3));
      }
      s.phases.push_back(std::move(dialogs));
      break;
    }

    case 3: {
      // Feature interrogation: OPTIONS and INFO hammer the third-party
      // handlers.
      const std::uint64_t rounds = 8 * k;
      s.phases.push_back(register_phase(mf, 300, 4, "t3reg"));
      for (std::uint64_t r = 0; r < 2; ++r) {
        std::vector<std::string> phase;
        for (std::uint64_t i = 0; i < rounds; ++i) {
          if (rng.chance(1, 2)) {
            phase.push_back(
                mf.options(user_name(300 + i % 4), tag("t3o", r * 100 + i), 1));
            // Retransmitted OPTIONS (same branch) delivered concurrently.
            phase.push_back(
                mf.options(user_name(300 + i % 4), tag("t3o", r * 100 + i), 1));
          } else
            phase.push_back(mf.info(user_name(300 + i % 4),
                                    user_name(300 + (i + 1) % 4),
                                    tag("t3i", r * 100 + i), 1,
                                    "Signal=5\r\nDuration=160\r\n"));
        }
        s.phases.push_back(std::move(phase));
      }
      break;
    }

    case 4: {
      // Retransmitted INVITEs (UDP!) and CANCELled pending calls.
      const std::uint64_t calls = 5 * k;
      s.phases.push_back(register_phase(mf, 400, calls, "t4reg"));
      std::vector<std::string> storm;
      for (std::uint64_t i = 0; i < calls; ++i) {
        const std::string caller = user_name(450 + i);
        const std::string callee = user_name(400 + i);
        const std::string call = tag("t4c", i);
        storm.push_back(mf.invite(caller, callee, call, 1));
        // Retransmission of the identical INVITE (same branch), delivered
        // concurrently — matched by a different worker thread.
        storm.push_back(mf.invite(caller, callee, call, 1));
        if (rng.chance(1, 2)) {
          storm.push_back(mf.cancel(caller, callee, call, 1));
        } else {
          storm.push_back(mf.ack(caller, callee, call, 1));
          storm.push_back(mf.bye(caller, callee, call, 2));
        }
      }
      s.phases.push_back(std::move(storm));
      break;
    }

    case 5: {
      // Heavy mixed traffic touching every subsystem at once.
      const std::uint64_t users = 12 * k;
      s.phases.push_back(register_phase(mf, 500, users, "t5reg"));
      for (std::uint64_t r = 0; r < 3; ++r) {
        std::vector<std::string> phase;
        for (std::uint64_t i = 0; i < users; ++i) {
          const std::string a = user_name(500 + i);
          const std::string b = user_name(500 + (i + 1) % users);
          const std::string call = tag("t5c", r * 1000 + i);
          switch (rng.below(5)) {
            case 0:
              phase.push_back(mf.register_request(a, call, 2));
              break;
            case 1:
              // Full dialog, delivered concurrently, with a retransmitted
              // INVITE (UDP).
              phase.push_back(mf.invite(a, b, call, 1));
              phase.push_back(mf.invite(a, b, call, 1));
              phase.push_back(mf.ack(a, b, call, 1));
              phase.push_back(mf.info(a, b, call, 2, "Signal=9\r\n"));
              phase.push_back(mf.bye(a, b, call, 3));
              break;
            case 2:
              phase.push_back(mf.options(a, call, 1));
              break;
            case 3:
              phase.push_back(mf.bye(a, b, call, 2));
              break;
            default:
              phase.push_back(mf.info(a, b, call, 1, "Signal=1\r\n"));
              break;
          }
        }
        s.phases.push_back(std::move(phase));
      }
      break;
    }

    case 6: {
      // Error flows: foreign domain (403), unregistered callee (404),
      // malformed text (400), unknown method (405).
      const std::uint64_t rounds = 6 * k;
      std::vector<std::string> phase;
      for (std::uint64_t i = 0; i < rounds; ++i) {
        const std::string a = user_name(600 + i);
        phase.push_back(mf.invite(a, "nobody" + std::to_string(i),
                                  tag("t6x", i), 1, "unknown.invalid"));
        phase.push_back(mf.invite(a, "nobody" + std::to_string(i),
                                  tag("t6x", i), 1, "unknown.invalid"));
        phase.push_back(
            mf.invite(a, "ghost" + std::to_string(i), tag("t6y", i), 1));
        phase.push_back(
            mf.invite(a, "ghost" + std::to_string(i), tag("t6y", i), 1));
        phase.push_back(mf.garbage(static_cast<int>(i)));
        phase.push_back(mf.unknown_method(a, tag("t6z", i), 1));
      }
      s.phases.push_back(std::move(phase));
      break;
    }

    case 7: {
      // Registration churn: register, de-register, re-register while
      // calls run — exercises the expiry/reaper paths.
      const std::uint64_t users = 8 * k;
      s.phases.push_back(register_phase(mf, 700, users, "t7reg"));
      std::vector<std::string> churn;
      for (std::uint64_t i = 0; i < users; ++i) {
        const std::string u = user_name(700 + i);
        if (rng.chance(1, 2)) {
          churn.push_back(mf.register_request(u, tag("t7d", i), 2, 0));
        } else {
          const std::string caller = user_name(700 + (i + 1) % users);
          churn.push_back(mf.invite(caller, u, tag("t7c", i), 1));
          churn.push_back(mf.ack(caller, u, tag("t7c", i), 1));
          churn.push_back(mf.bye(caller, u, tag("t7c", i), 2));
        }
      }
      s.phases.push_back(std::move(churn));
      std::vector<std::string> rereg;
      for (std::uint64_t i = 0; i < users; ++i) {
        rereg.push_back(
            mf.register_request(user_name(700 + i), tag("t7r", i), 3));
        rereg.push_back(
            mf.register_request(user_name(700 + i), tag("t7r", i), 3));
      }
      s.phases.push_back(std::move(rereg));
      break;
    }

    case 8: {
      // Hotspot: many concurrent dialogs to one callee — maximum
      // contention on one binding and its shared contact rep.
      const std::uint64_t callers = 10 * k;
      s.phases.push_back(register_phase(mf, 800, 1, "t8reg"));
      std::vector<std::string> hotspot;
      for (std::uint64_t i = 0; i < callers; ++i) {
        const std::string caller = user_name(810 + i);
        const std::string call = tag("t8c", i);
        hotspot.push_back(mf.invite(caller, user_name(800), call, 1));
        hotspot.push_back(mf.ack(caller, user_name(800), call, 1));
        hotspot.push_back(mf.bye(caller, user_name(800), call, 2));
      }
      s.phases.push_back(std::move(hotspot));
      break;
    }

    default:
      RG_UNREACHABLE("testcase out of range");
  }
  return s;
}

}  // namespace rg::sipp
