#include "sipp/hazards.hpp"

#include <string>
#include <utility>

namespace rg::sipp {

const char* hazard_family_name(HazardFamily family) {
  switch (family) {
    case HazardFamily::RegistrarVsUpstream:
      return "registrar-vs-upstream";
    case HazardFamily::ShutdownInversion:
      return "shutdown-inversion";
  }
  return "?";
}

Scenario build_hazard_scenario(HazardFamily family, std::uint64_t seed) {
  MessageFactory factory;
  Scenario s;
  s.name = hazard_family_name(family);
  const std::string tag = "hz" + std::to_string(seed % 1000);
  if (family == HazardFamily::RegistrarVsUpstream) {
    // REGISTER a few users, then INVITE batches: every INVITE runs the
    // worker-side probe (registrar-lock → upstream-target-lock) while the
    // reaper periodically nests the other way round.
    std::vector<std::string> registers;
    for (int u = 0; u < 4; ++u)
      registers.push_back(factory.register_request(
          "alice" + std::to_string(u), tag + "r" + std::to_string(u), 1));
    s.phases.push_back(std::move(registers));
    for (int phase = 0; phase < 3; ++phase) {
      std::vector<std::string> invites;
      for (int u = 0; u < 4; ++u)
        invites.push_back(factory.invite(
            "bob" + std::to_string(u), "alice" + std::to_string(u),
            tag + "i" + std::to_string(phase * 4 + u),
            static_cast<std::uint32_t>(phase + 1)));
      s.phases.push_back(std::move(invites));
    }
  } else {
    // OPTIONS only: that path takes neither the registrar lock nor any
    // upstream lock, so the replay oracle can park the reaper and the
    // shutdown thread without a worker wedging behind a staged lock.
    for (int phase = 0; phase < 4; ++phase) {
      std::vector<std::string> pings;
      for (int u = 0; u < 4; ++u)
        pings.push_back(factory.options(
            "carol" + std::to_string(u),
            tag + "o" + std::to_string(phase * 4 + u),
            static_cast<std::uint32_t>(phase + 1)));
      s.phases.push_back(std::move(pings));
    }
  }
  return s;
}

ExperimentConfig hazard_config(HazardFamily family, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  // A clean proxy apart from the seeded inversion: the prediction runs
  // must owe every report to the hazard, not the classic fault plan.
  cfg.faults = sip::FaultConfig::none();
  cfg.mode = DispatchMode::ThreadPerRequest;  // stable thread ids
  cfg.parallelism = 4;
  cfg.deadlock_tool = true;
  if (family == HazardFamily::RegistrarVsUpstream) {
    cfg.hazards.registrar_vs_upstream = true;
    cfg.upstream.targets = 1;  // the probe nests onto target 0's lock
    cfg.upstream.seed = seed;
  } else {
    cfg.hazards.shutdown_inversion = true;
  }
  return cfg;
}

HazardRunResult run_hazard(HazardFamily family, std::uint64_t seed,
                           obs::MetricsRegistry* metrics) {
  HazardRunResult out;
  const Scenario scenario = build_hazard_scenario(family, seed);
  ExperimentConfig cfg = hazard_config(family, seed);
  cfg.metrics = metrics;

  ExperimentResult predict = run_scenario(scenario, cfg);
  out.completed = predict.sim.completed();
  out.predicted = predict.predicted_cycles.size();
  out.naive_inversions = predict.lock_order_reports;
  out.cycles = predict.predicted_cycles;

  // Replay-to-deadlock oracle: re-run the same (scenario, seed) per
  // predicted cycle with a driver that parks each participant just before
  // its second acquisition, then releases them together. The cycle is
  // confirmed when the run deadlocks with every edge's thread blocked on
  // exactly the lock the prediction named.
  for (const core::PredictedCycle& cycle : out.cycles) {
    rt::CycleSpec spec;
    for (const core::PredictedCycle::Edge& e : cycle.edges)
      spec.edges.push_back({e.tid, e.first, e.second});
    rt::CycleReplayDriver driver(spec);
    ExperimentConfig confirm_cfg = cfg;
    confirm_cfg.metrics = nullptr;  // keep the registry on the predict run
    confirm_cfg.replay = &driver;
    const ExperimentResult confirm = run_scenario(scenario, confirm_cfg);
    if (confirm.sim.deadlocked() && driver.confirmed(confirm.sim.deadlock))
      ++out.confirmed;
  }
  if (metrics != nullptr)
    metrics->counter("lockgraph.confirmed_cycles").set(out.confirmed);
  out.predict_run = std::move(predict);
  return out;
}

RecoverySoakResult run_recovery_soak(HazardFamily family,
                                     std::uint64_t seed) {
  RecoverySoakResult out;
  const Scenario scenario = build_hazard_scenario(family, seed);
  ExperimentConfig cfg = hazard_config(family, seed);
  cfg.hazards.recover = true;
  obs::FlightRecorder recorder;
  cfg.recorder = &recorder;

  const ExperimentResult result = run_scenario(scenario, cfg);
  out.completed = result.sim.completed();
  out.responses = result.responses;
  // Every hazard-scenario message is response-bearing (no ACKs), so a
  // completed soak must answer all of them.
  out.expected_responses = scenario.total_messages();
  out.recoveries = result.deadlock_recoveries;
  out.recorder_hash = result.recorder_hash;
  return out;
}

}  // namespace rg::sipp
