// Scenario model and SIP message factory (the SIPp substitute).
//
// "The basic request patterns are delivered to the application by an
// automated test suite. The main utility of this test suite is SIPp."
// A Scenario is an ordered list of phases; the messages of one phase are
// delivered concurrently (SIPp's simultaneous calls), phases run back to
// back (SIPp's sequence points).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rg::sipp {

struct Scenario {
  std::string name;
  std::vector<std::vector<std::string>> phases;

  std::size_t total_messages() const {
    std::size_t n = 0;
    for (const auto& phase : phases) n += phase.size();
    return n;
  }
};

/// Deterministic SIP wire-message builder.
class MessageFactory {
 public:
  explicit MessageFactory(std::string domain = "example.com");

  /// REGISTER sip:domain with Contact for user.
  std::string register_request(const std::string& user,
                               const std::string& call_tag, std::uint32_t cseq,
                               std::uint32_t expires = 3600) const;

  std::string invite(const std::string& caller, const std::string& callee,
                     const std::string& call_tag, std::uint32_t cseq,
                     const std::string& target_domain = {}) const;

  /// ACK for the INVITE with the same call_tag/cseq (same branch).
  std::string ack(const std::string& caller, const std::string& callee,
                  const std::string& call_tag, std::uint32_t cseq) const;

  std::string bye(const std::string& caller, const std::string& callee,
                  const std::string& call_tag, std::uint32_t cseq) const;

  /// CANCEL for a pending INVITE (same branch as the INVITE).
  std::string cancel(const std::string& caller, const std::string& callee,
                     const std::string& call_tag, std::uint32_t cseq) const;

  std::string options(const std::string& user, const std::string& call_tag,
                      std::uint32_t cseq) const;

  std::string info(const std::string& caller, const std::string& callee,
                   const std::string& call_tag, std::uint32_t cseq,
                   const std::string& body = {}) const;

  /// A request with an unknown method (exercises DefaultHandler).
  std::string unknown_method(const std::string& user,
                             const std::string& call_tag,
                             std::uint32_t cseq) const;

  /// Malformed wire text (parse-error path); `variant` picks the flaw.
  std::string garbage(int variant) const;

  const std::string& domain() const { return domain_; }

 private:
  std::string request(const std::string& method, const std::string& uri,
                      const std::string& from_user,
                      const std::string& to_user, const std::string& call_tag,
                      std::uint32_t cseq, const std::string& cseq_method,
                      const std::vector<std::string>& extra_headers,
                      const std::string& body) const;

  std::string domain_;
};

}  // namespace rg::sipp
