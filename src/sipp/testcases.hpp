// The eight test cases T1..T8 (paper §3.3: "eight of eleven test cases
// used for the experiments on the SIP proxy server ran without changes").
//
// Each builds a Scenario whose request mix exercises a different slice of
// the proxy, so the three detector configurations see different — but
// strictly ordered — warning counts per test case, reproducing the shape
// of Figs. 5/6.
#pragma once

#include <cstdint>

#include "sipp/scenario.hpp"

namespace rg::sipp {

constexpr int kTestCaseCount = 8;

/// Builds T`n` (1-based). `intensity` scales call counts (1 = the default
/// experiment size); `seed` perturbs the mix deterministically.
Scenario build_testcase(int n, std::uint64_t seed = 1,
                        std::uint32_t intensity = 1);

/// Short description used in tables.
const char* testcase_description(int n);

}  // namespace rg::sipp
