#include "sipp/soak.hpp"

#include <map>

#include "sipp/testcases.hpp"

namespace rg::sipp {

std::vector<SoakMix> default_soak_mixes() {
  std::vector<SoakMix> mixes;

  {
    SoakMix mix;
    mix.name = "upstream-light";
    mix.chaos.upstream_drop_permille = 60;
    mix.chaos.upstream_delay_permille = 150;
    mix.chaos.upstream_error_permille = 60;
    mix.chaos.upstream_stall_permille = 40;
    mixes.push_back(mix);
  }
  {
    SoakMix mix;
    mix.name = "upstream-heavy";
    mix.chaos.upstream_drop_permille = 200;
    mix.chaos.upstream_delay_permille = 300;
    mix.chaos.upstream_error_permille = 150;
    mix.chaos.upstream_stall_permille = 80;
    mixes.push_back(mix);
  }
  {
    SoakMix mix;
    mix.name = "both-hops";
    mix.chaos.drop_permille = 50;
    mix.chaos.duplicate_permille = 50;
    mix.chaos.delay_permille = 100;
    mix.chaos.max_delay_ticks = 100;
    mix.chaos.reorder_permille = 200;
    mix.chaos.upstream_drop_permille = 120;
    mix.chaos.upstream_delay_permille = 200;
    mix.chaos.upstream_error_permille = 80;
    mixes.push_back(mix);
  }
  return mixes;
}

ExperimentConfig soak_experiment(std::uint64_t seed, const SoakMix& mix) {
  ExperimentConfig config;
  config.seed = seed;
  // The resilience soak measures the *forwarding* layer, not the seeded
  // defect classes: a clean proxy keeps the convergence criterion crisp.
  config.faults = sip::FaultConfig::none();
  config.detector = core::HelgrindConfig::hwlc_dr();
  config.chaos = mix.chaos;
  config.chaos.seed = seed;
  config.chaos_client = true;
  config.parallelism = 4;
  config.upstream.targets = 3;
  config.upstream.seed = seed;
  // Soak-tuned breaker: trips fast and probes often, so a few hundred
  // calls exercise the full closed/open/half-open cycle several times.
  config.upstream.breaker.failure_threshold = 2;
  config.upstream.breaker.open_cooldown_ticks = 100;
  config.upstream.breaker.max_cooldown_ticks = 800;
  return config;
}

std::string outcome_counts_text(const ChaosRunResult& run) {
  std::string text;
  text += "calls=" + std::to_string(run.calls.size());
  text += " final=" + std::to_string(run.finals);
  text += " shed=" + std::to_string(run.shed);
  text += " gave-up=" + std::to_string(run.give_ups);
  text += " absorbed=" + std::to_string(run.absorbed);
  text += " hinted=" + std::to_string(run.hinted_retries);
  // Final-status multiset, in status order (map iteration is sorted).
  std::map<int, std::uint64_t> by_status;
  for (const CallRecord& rec : run.calls)
    if (rec.final_status != 0) ++by_status[rec.final_status];
  for (const auto& [status, count] : by_status)
    text += " " + std::to_string(status) + "x" + std::to_string(count);
  return text;
}

SoakCell run_soak_cell(std::uint64_t seed, const SoakMix& mix) {
  ExperimentConfig config = soak_experiment(seed, mix);
  // Every soak cell carries a flight recorder so the replay check can
  // compare whole event streams, not just the trace/transition summaries.
  // A modest ring suffices: the hash covers events lost to wraparound.
  obs::RecorderConfig rec_cfg;
  rec_cfg.capacity = 1u << 15;
  obs::FlightRecorder recorder(rec_cfg);
  config.recorder = &recorder;
  const Scenario scenario = build_testcase(5, seed);
  const ExperimentResult result = run_scenario(scenario, config);

  SoakCell cell;
  cell.seed = seed;
  cell.mix = mix.name;
  cell.converged = result.chaos.converged();
  cell.monotone = result.transitions_monotone;
  cell.monotone_error = result.transitions_error;
  cell.injection_trace = result.injection_trace;
  cell.breaker_transitions = result.breaker_transitions;
  cell.outcomes = outcome_counts_text(result.chaos);
  cell.recorder_hash = result.recorder_hash;
  cell.calls = result.chaos.calls.size();
  cell.finals = result.chaos.finals;
  cell.shed = result.chaos.shed;
  cell.give_ups = result.chaos.give_ups;
  cell.hinted_retries = result.chaos.hinted_retries;
  cell.upstream_forwards = result.upstream_forwards;
  cell.upstream_failovers = result.upstream_failovers;
  cell.degraded_serves = result.degraded_serves;
  cell.breaker_opens = result.breaker_opens;
  return cell;
}

SoakMatrixResult run_soak_matrix(const std::vector<std::uint64_t>& seeds,
                                 const std::vector<SoakMix>& mixes,
                                 bool verify_replay) {
  SoakMatrixResult matrix;
  for (const SoakMix& mix : mixes) {
    for (const std::uint64_t seed : seeds) {
      SoakCell cell = run_soak_cell(seed, mix);
      const std::string label =
          "(" + mix.name + ", seed " + std::to_string(seed) + ")";
      if (!cell.converged) {
        matrix.all_converged = false;
        if (matrix.first_error.empty())
          matrix.first_error = label + ": lost transactions";
      }
      if (!cell.monotone) {
        matrix.all_monotone = false;
        if (matrix.first_error.empty())
          matrix.first_error = label + ": " + cell.monotone_error;
      }
      if (verify_replay) {
        const SoakCell replay = run_soak_cell(seed, mix);
        if (replay.injection_trace != cell.injection_trace ||
            replay.breaker_transitions != cell.breaker_transitions ||
            replay.outcomes != cell.outcomes ||
            replay.recorder_hash != cell.recorder_hash) {
          matrix.replay_identical = false;
          if (matrix.first_error.empty())
            matrix.first_error = label + ": replay diverged";
        }
      }
      matrix.cells.push_back(std::move(cell));
    }
  }
  return matrix;
}

}  // namespace rg::sipp
