#include "rt/sim.hpp"

#include "support/assert.hpp"

namespace rg::rt {

namespace {
thread_local Sim* g_tls_sim = nullptr;
}  // namespace

Sim::Sim(const SimConfig& config) : config_(config), sched_(config.sched) {
  sched_.thread_tls_hook = [this] { g_tls_sim = this; };
}

Sim* Sim::current() { return g_tls_sim; }

ThreadId Sim::current_thread() {
  RG_ASSERT_MSG(g_tls_sim != nullptr, "no simulation on this thread");
  return g_tls_sim->sched_.current();
}

SimResult Sim::run(const std::function<void()>& entry) {
  RG_ASSERT_MSG(!ran_, "a Sim can only run once");
  RG_ASSERT_MSG(g_tls_sim == nullptr, "nested simulations are not supported");
  ran_ = true;

  // Ambient recorder scope: all fibers run on this carrier thread, so one
  // thread-local install covers every simulated thread for the whole run.
  obs::FlightRecorder* const prev_ambient = obs::ambient();
  obs::set_ambient(recorder_);

  const ThreadId main_tid = runtime_.register_thread(
      config_.main_thread_name, kNoThread, support::kUnknownSite);
  RG_ASSERT(main_tid == kMainThread);

  g_tls_sim = this;
  sched_.run(main_tid, entry);
  g_tls_sim = nullptr;

  runtime_.thread_exited(main_tid);
  runtime_.finish();
  obs::set_ambient(prev_ambient);

  SimResult result;
  result.outcome = sched_.outcome();
  result.steps = sched_.steps();
  result.fast_path_steps = sched_.fast_path_steps();
  result.virtual_time = sched_.virtual_time();
  result.access_events = runtime_.access_events();
  result.sync_events = runtime_.sync_events();
  result.deadlock = sched_.deadlock();
  result.error = sched_.client_error();
  return result;
}

}  // namespace rg::rt
