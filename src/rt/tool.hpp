// The tool ("skin") interface.
//
// Mirrors Valgrind's core/tool split described in the paper (§2.3.1): the
// runtime core turns the program under test into a stream of callbacks and
// any number of registered tools consume it. Detection algorithms (Eraser,
// Helgrind, DJIT, deadlock checking) are tools; so are tracing or counting
// aids used in tests.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "rt/ids.hpp"
#include "support/site.hpp"

namespace rg::rt {

class Runtime;

/// Hot-path cache counters a tool may expose (all zero when a tool has no
/// such caches). Aggregated across tools by Runtime::tool_stats().
///
/// Every counter must appear in the `fields` table below: aggregation and
/// metrics export are driven by the table, so a counter missing from it
/// would silently vanish from both. The static_assert under the struct
/// ties the table's length to the struct's size — adding a member without
/// extending the table no longer compiles.
struct ToolStats {
  /// Per-thread effective-lockset cache (Helgrind / EraserBasic).
  std::uint64_t lockset_cache_hits = 0;
  std::uint64_t lockset_cache_misses = 0;
  /// Shadow-map last-page TLB.
  std::uint64_t shadow_tlb_hits = 0;
  std::uint64_t shadow_tlb_misses = 0;

  struct Field {
    const char* name;
    std::uint64_t ToolStats::*member;
  };
  static constexpr std::array<Field, 4> fields = {{
      {"lockset_cache_hits", &ToolStats::lockset_cache_hits},
      {"lockset_cache_misses", &ToolStats::lockset_cache_misses},
      {"shadow_tlb_hits", &ToolStats::shadow_tlb_hits},
      {"shadow_tlb_misses", &ToolStats::shadow_tlb_misses},
  }};

  ToolStats& operator+=(const ToolStats& o) {
    for (const Field& f : fields) this->*f.member += o.*f.member;
    return *this;
  }

  /// Publishes every field as `<prefix><field>` counters.
  void export_to(obs::MetricsRegistry& registry,
                 std::string_view prefix = "tool.") const {
    for (const Field& f : fields)
      registry.counter(std::string(prefix) + f.name).set(this->*f.member);
  }
};
// A new counter must be added to ToolStats::fields or aggregation drops it.
static_assert(sizeof(ToolStats) ==
                  ToolStats::fields.size() * sizeof(std::uint64_t),
              "ToolStats member missing from ToolStats::fields");

/// Base class for event consumers. All hooks default to no-ops so a tool
/// only overrides what it needs. Hooks are invoked serially (the scheduler
/// runs exactly one simulated thread at a time), so tools need no internal
/// locking.
class Tool {
 public:
  virtual ~Tool() = default;

  /// Called once when the tool is attached to a runtime.
  virtual void on_attach(Runtime& rt) { rt_ = &rt; }

  // --- thread lifecycle -------------------------------------------------
  /// `parent` is kNoThread for the initial thread.
  virtual void on_thread_start(ThreadId /*tid*/, ThreadId /*parent*/,
                               support::SiteId /*site*/) {}
  virtual void on_thread_exit(ThreadId /*tid*/) {}
  /// Raised after `joiner` has successfully joined `joined`.
  virtual void on_thread_join(ThreadId /*joiner*/, ThreadId /*joined*/,
                              support::SiteId /*site*/) {}

  // --- locks --------------------------------------------------------------
  virtual void on_lock_create(LockId /*lock*/, support::Symbol /*name*/,
                              bool /*is_rw*/) {}
  virtual void on_lock_destroy(LockId /*lock*/) {}
  /// Raised before the acquiring thread may block on the lock.
  virtual void on_pre_lock(ThreadId /*tid*/, LockId /*lock*/, LockMode /*mode*/,
                           support::SiteId /*site*/) {}
  /// Raised once the lock has been acquired.
  virtual void on_post_lock(ThreadId /*tid*/, LockId /*lock*/,
                            LockMode /*mode*/, support::SiteId /*site*/) {}
  virtual void on_unlock(ThreadId /*tid*/, LockId /*lock*/,
                         support::SiteId /*site*/) {}

  // --- condition variables / semaphores / message queues ----------------
  virtual void on_cond_signal(ThreadId /*tid*/, SyncId /*cond*/,
                              support::SiteId /*site*/) {}
  virtual void on_cond_wait_return(ThreadId /*tid*/, SyncId /*cond*/,
                                   LockId /*lock*/, support::SiteId /*site*/) {}
  /// `token` pairs a post with the wait it releases (FIFO order).
  virtual void on_sem_post(ThreadId /*tid*/, SyncId /*sem*/,
                           std::uint64_t /*token*/, support::SiteId /*site*/) {}
  virtual void on_sem_wait_return(ThreadId /*tid*/, SyncId /*sem*/,
                                  std::uint64_t /*token*/,
                                  support::SiteId /*site*/) {}
  /// `token` pairs a queue put with the get that receives the same element.
  virtual void on_queue_put(ThreadId /*tid*/, SyncId /*queue*/,
                            std::uint64_t /*token*/, support::SiteId /*site*/) {}
  virtual void on_queue_get(ThreadId /*tid*/, SyncId /*queue*/,
                            std::uint64_t /*token*/, support::SiteId /*site*/) {}

  // --- memory -------------------------------------------------------------
  virtual void on_access(const MemoryAccess& /*access*/) {}
  virtual void on_alloc(ThreadId /*tid*/, Addr /*addr*/, std::uint32_t /*size*/,
                        support::SiteId /*site*/) {}
  virtual void on_free(ThreadId /*tid*/, Addr /*addr*/, std::uint32_t /*size*/,
                       support::SiteId /*site*/) {}
  /// The client request emitted by the destructor annotation (the paper's
  /// VALGRIND_HG_DESTRUCT): `addr..addr+size` is about to be destroyed by
  /// `tid` and should be treated as exclusively owned by it.
  virtual void on_destruct_annotation(ThreadId /*tid*/, Addr /*addr*/,
                                      std::uint32_t /*size*/,
                                      support::SiteId /*site*/) {}

  /// End of the observed execution; tools flush summary state here.
  virtual void on_finish() {}

  /// Cache observability (lockset cache, shadow TLB); defaults to zeros.
  virtual ToolStats stats() const { return {}; }

  /// Short stable identifier used by the hook profiler and metrics export.
  virtual const char* name() const { return "tool"; }

 protected:
  Runtime* rt_ = nullptr;
};

}  // namespace rg::rt
