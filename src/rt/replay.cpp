#include "rt/replay.hpp"

#include <string>

#include "rt/runtime.hpp"
#include "rt/sim.hpp"

namespace rg::rt {

CycleReplayDriver::CycleReplayDriver(CycleSpec spec)
    : spec_(std::move(spec)),
      staged_(spec_.edges.size(), false),
      observed_(spec_.edges.size(), kNoThread) {}

void CycleReplayDriver::on_pre_lock(ThreadId tid, LockId lock,
                                    LockMode /*mode*/,
                                    support::SiteId /*site*/) {
  if (released_ || spec_.edges.empty()) return;
  // A thread that already carries one edge cannot carry another.
  for (std::size_t i = 0; i < spec_.edges.size(); ++i)
    if (staged_[i] && observed_[i] == tid) return;
  // The predicted tid is one witness of a *role*; any thread reproducing
  // the edge's acquisition pattern — requesting `second` with `first`
  // already held — can carry the edge. (In the proxy every worker runs the
  // same nesting, and the first to arrive may not be the predicted one.)
  std::size_t edge = spec_.edges.size();
  for (std::size_t i = 0; i < spec_.edges.size() && edge == spec_.edges.size();
       ++i) {
    if (staged_[i]) continue;
    if (spec_.edges[i].second != lock) continue;
    for (const HeldLock& held : rt_->held_locks(tid)) {
      if (held.lock == spec_.edges[i].first) {
        edge = i;
        break;
      }
    }
  }
  if (edge == spec_.edges.size()) return;
  staged_[edge] = true;
  observed_[edge] = tid;
  ++staged_count_;
  Sim* sim = Sim::current();
  if (sim == nullptr) return;  // native mode: nothing to steer
  if (staged_count_ == spec_.edges.size()) {
    // Last thread in: release the parked peers and fall through into the
    // acquisition; every cycle thread now requests its second lock while
    // holding its first.
    released_ = true;
    for (std::size_t i = 0; i < spec_.edges.size(); ++i)
      if (i != edge) sim->sched().unblock(observed_[i]);
    return;
  }
  // Park here — first lock held, second not yet requested — until the
  // whole cycle is staged. The wait itself carries no lock id: if the
  // remaining threads never arrive, the resulting stall must not read as
  // a confirmation.
  sim->sched().block("oracle: staged before acquiring '" +
                     std::string(rt_->lock_name(lock)) + "'");
}

bool CycleReplayDriver::confirmed(const DeadlockEvidence& evidence) const {
  if (!released_) return false;
  for (std::size_t i = 0; i < spec_.edges.size(); ++i) {
    bool matched = false;
    for (const DeadlockEvidence::BlockedThread& b : evidence.blocked) {
      if (b.tid == observed_[i] && b.waiting_lock == spec_.edges[i].second) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace rg::rt
