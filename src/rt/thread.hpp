// Instrumented thread handle.
//
// Under a Sim, constructs a simulated thread (raising on_thread_start /
// on_thread_exit / on_thread_join events, which drive the thread-segment
// graph of Fig. 2); outside a Sim, wraps a plain std::thread for the native
// baseline.
#pragma once

#include <functional>
#include <source_location>
#include <string>
#include <string_view>
#include <thread>

#include "rt/ids.hpp"
#include "rt/sim.hpp"

namespace rg::rt {

class thread {
 public:
  thread() = default;

  /// Starts the thread immediately (pthread_create semantics).
  explicit thread(
      std::function<void()> fn, std::string_view name = "worker",
      const std::source_location& loc = std::source_location::current());

  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;
  thread(thread&& other) noexcept;
  thread& operator=(thread&& other) noexcept;

  /// Joining an unjoined thread in the destructor keeps the joining-thread
  /// discipline (a thread is a scoped container); prefer explicit join().
  ~thread();

  bool joinable() const;

  /// Blocks until the thread finishes, then raises on_thread_join — the HB
  /// edge that ends the joined thread's last segment.
  void join(const std::source_location& loc = std::source_location::current());

  /// Gives up the handle; under a Sim the scheduler still drains the thread
  /// at end of run.
  void detach();

  /// Simulated thread id; kNoThread in native mode.
  ThreadId tid() const { return tid_; }

 private:
  Sim* sim_ = nullptr;
  ThreadId tid_ = kNoThread;
  bool joined_ = true;
  std::thread native_;
};

/// Yields/preempts: under a Sim this is a pure scheduling point; native mode
/// maps to std::this_thread::yield().
void yield();

/// Sleeps `ticks` of virtual time under a Sim; native mode sleeps `ticks`
/// milliseconds.
void sleep_ticks(std::uint64_t ticks);

}  // namespace rg::rt
