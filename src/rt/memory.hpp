// Tracked memory — the client-request surface of the instrumentation.
//
// Under Valgrind every load and store of the client binary is visible to the
// tool. At the library level we get the same effect by routing the shared
// state of the program under test through these wrappers, which raise
// on_access / on_alloc / on_free events carrying the *real* address of the
// data, so shadow memory indexes genuine pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <source_location>
#include <type_traits>
#include <utility>

#include "rt/ids.hpp"
#include "rt/sim.hpp"

namespace rg::rt {

// --- raw event helpers -------------------------------------------------------

/// Reports a plain read of [p, p+size). No-op outside a Sim.
void mem_read(const void* p, std::uint32_t size, const std::source_location& loc);

/// Reports a plain write.
void mem_write(const void* p, std::uint32_t size,
               const std::source_location& loc);

/// Reports a bus-locked (x86 LOCK prefix) write — the RMW half of an atomic
/// operation. Per the i386 spec only writes carry the prefix.
void mem_write_locked(const void* p, std::uint32_t size,
                      const std::source_location& loc);

/// Registers a heap block with the runtime (malloc/new intercept).
void mem_alloc(const void* p, std::uint32_t size,
               const std::source_location& loc);

/// Unregisters a heap block (free/delete intercept).
void mem_free(const void* p, const std::source_location& loc);

/// The paper's VALGRIND_HG_DESTRUCT client request: [p, p+size) is about to
/// be destroyed by the calling thread. Expands to nothing outside a Sim —
/// "a no-op under normal program execution with negligible execution time".
void mem_destruct(const void* p, std::uint32_t size,
                  const std::source_location& loc);

// --- tracked scalar ------------------------------------------------------------

/// A shared scalar whose every access is visible to the detector.
template <typename T>
class tracked {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  tracked() = default;
  explicit tracked(T v) : v_(v) {}

  // Deliberately non-copyable: copying shared state should be an explicit
  // load/store pair the detector can see.
  tracked(const tracked&) = delete;
  tracked& operator=(const tracked&) = delete;

  T load(const std::source_location& loc =
             std::source_location::current()) const {
    mem_read(&v_, sizeof(T), loc);
    return v_;
  }

  void store(T v, const std::source_location& loc =
                      std::source_location::current()) {
    mem_write(&v_, sizeof(T), loc);
    v_ = v;
  }

  /// Address identity used by shadow memory.
  const void* address() const { return &v_; }

  /// Uninstrumented snapshot read — NOT visible to the detector. Only for
  /// post-run export (metrics publishing): an instrumented load there
  /// would perturb the event stream relative to an export-free run.
  T peek() const { return v_; }

 private:
  T v_{};
};

// --- bus-locked cell -------------------------------------------------------------

/// An integer cell manipulated the way libstdc++'s COW string manipulates
/// its reference counter: RMW updates carry the LOCK prefix, while
/// predicate reads (is-shared checks) are plain unlocked loads. The
/// detector's treatment of this cell is exactly the Figs. 8/9 experiment.
///
/// The backing storage is a genuine std::atomic — exactly like the real
/// counter, which IS correct thanks to the bus lock; the detector only
/// sees the event stream. This also keeps teardown unwinding safe.
template <typename T>
class atomic_cell {
  static_assert(std::is_integral_v<T>);

 public:
  atomic_cell() = default;
  explicit atomic_cell(T v) : v_(v) {}

  atomic_cell(const atomic_cell&) = delete;
  atomic_cell& operator=(const atomic_cell&) = delete;

  /// Plain (non-LOCKed) read — the i386 spec does not require the prefix
  /// for reads, and compilers do not emit it.
  T load(const std::source_location& loc =
             std::source_location::current()) const {
    mem_read(&v_, sizeof(T), loc);
    return v_.load(std::memory_order_relaxed);
  }

  /// Bus-locked read-modify-write (lock xadd). Returns the old value.
  T fetch_add(T delta, const std::source_location& loc =
                           std::source_location::current()) {
    mem_write_locked(&v_, sizeof(T), loc);
    return v_.fetch_add(delta, std::memory_order_acq_rel);
  }

  /// Bus-locked store (xchg).
  void store(T v, const std::source_location& loc =
                      std::source_location::current()) {
    mem_write_locked(&v_, sizeof(T), loc);
    v_.store(v, std::memory_order_release);
  }

  const void* address() const { return &v_; }

 private:
  std::atomic<T> v_{};
};

// --- container access marker -------------------------------------------------------

/// Stand-in for the interior of a container: methods that read the
/// container touch the marker with a read, mutating methods with a write.
/// This is the granularity at which Helgrind effectively sees std::map
/// nodes in the paper's proxy.
class access_marker {
 public:
  void read(const std::source_location& loc =
                std::source_location::current()) const {
    mem_read(&body_, 1, loc);
  }
  void write(const std::source_location& loc =
                 std::source_location::current()) {
    mem_write(&body_, 1, loc);
  }
  const void* address() const { return &body_; }

 private:
  char body_ = 0;
};

// --- polymorphic object base ----------------------------------------------------

/// Base class for the program under test's polymorphic heap objects.
///
/// Emulates the two properties of real C++ objects the paper's DR
/// improvement is about: (1) `new`/`delete` are visible as alloc/free
/// events, and (2) each destructor in the chain rewrites the vptr — a
/// *write to the object's memory* that original Helgrind flags as a race.
/// Every class in an instrumented hierarchy calls `vptr_write()` in its
/// destructor body, giving each class its own warning site like the
/// compiler-generated default destructors in §4.2.1.
class instrumented_object {
 public:
  static void* operator new(std::size_t size);
  static void operator delete(void* p, std::size_t size);

  virtual ~instrumented_object();

 protected:
  instrumented_object(
      const std::source_location& loc = std::source_location::current());

  /// Emits the vptr-update write the compiler performs when destroying this
  /// level of the hierarchy.
  void vptr_write(
      const std::source_location& loc = std::source_location::current());

 public:
  /// Emits the vptr *read* every virtual call performs at its call site.
  /// This is what moves a polymorphic object's header into the SHARED
  /// state, setting up the destructor false positive of §4.2.1: call it at
  /// the top of virtual method bodies of the program under test.
  void virtual_dispatch(
      const std::source_location& loc = std::source_location::current()) const;
};

/// The paper's Fig. 4 helper: announce the memory about to be destroyed to
/// the race detector, then hand the pointer on to `delete`. Inserted
/// automatically by the rg-annotate instrumentation pass; callable by hand.
template <typename Type>
inline Type* annotate_destruct(
    Type* object,
    const std::source_location& loc = std::source_location::current()) {
  if (object != nullptr) mem_destruct(object, sizeof(Type), loc);
  return object;
}

// --- shadow call-stack frame -------------------------------------------------------

/// RAII marker pushing a frame on the current thread's shadow call stack so
/// reports can print Helgrind-style backtraces. Place one at the top of
/// interesting functions of the program under test (RG_FRAME()).
class FuncFrame {
 public:
  explicit FuncFrame(
      const std::source_location& loc = std::source_location::current());
  ~FuncFrame();

  FuncFrame(const FuncFrame&) = delete;
  FuncFrame& operator=(const FuncFrame&) = delete;

 private:
  Sim* sim_ = nullptr;
  ThreadId tid_ = kNoThread;
};

}  // namespace rg::rt

#define RG_FRAME() ::rg::rt::FuncFrame rg_frame_marker_ {}
