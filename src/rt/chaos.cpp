#include "rt/chaos.hpp"

#include "obs/recorder.hpp"
#include "rt/sim.hpp"
#include "rt/thread.hpp"

namespace rg::rt {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Duplicate:
      return "dup";
    case FaultKind::Delay:
      return "delay";
    case FaultKind::Reorder:
      return "reorder";
    case FaultKind::Stall:
      return "stall";
    case FaultKind::UpstreamDrop:
      return "up-drop";
    case FaultKind::UpstreamDelay:
      return "up-delay";
    case FaultKind::UpstreamError:
      return "up-error";
    case FaultKind::UpstreamStall:
      return "up-stall";
  }
  return "?";
}

ChaosEngine::ChaosEngine(const ChaosConfig& config) : config_(config) {}

std::uint64_t ChaosEngine::now() {
  Sim* sim = Sim::current();
  return sim != nullptr ? sim->sched().virtual_time() : 0;
}

support::Xoshiro256 ChaosEngine::stream(std::uint64_t target,
                                        std::uint32_t attempt,
                                        std::uint64_t salt) const {
  // Fold the identifiers into one splitmix state; each identifier passes
  // through the mixer so that (1,2) and (2,1) land in unrelated streams.
  std::uint64_t state = config_.seed;
  (void)support::splitmix64(state);
  state ^= target;
  (void)support::splitmix64(state);
  state ^= static_cast<std::uint64_t>(attempt);
  (void)support::splitmix64(state);
  state ^= salt;
  return support::Xoshiro256(support::splitmix64(state));
}

FaultDecision ChaosEngine::plan(std::uint64_t message_id,
                                std::uint32_t attempt) const {
  FaultDecision d;
  if (!config_.any_faults()) return d;
  support::Xoshiro256 rng = stream(message_id, attempt, /*salt=*/0x11);
  d.drop = rng.chance(config_.drop_permille, 1000);
  d.duplicate = !d.drop && rng.chance(config_.duplicate_permille, 1000);
  if (!d.drop && config_.max_delay_ticks != 0 &&
      rng.chance(config_.delay_permille, 1000))
    d.delay_ticks = rng.range(1, config_.max_delay_ticks);
  return d;
}

void ChaosEngine::record(FaultKind kind, std::uint64_t target,
                         std::uint32_t attempt, std::uint64_t detail) {
  std::lock_guard<std::mutex> guard(mu_);
  InjectionRecord rec;
  rec.seq = trace_.size();
  rec.vtime = now();
  rec.kind = kind;
  rec.target = target;
  rec.attempt = attempt;
  rec.detail = detail;
  trace_.push_back(rec);
  if (obs::FlightRecorder* fr = obs::ambient(); fr != nullptr) {
    Sim* sim = Sim::current();
    fr->record(obs::EventKind::ChaosInject, rec.vtime,
               sim != nullptr ? sim->sched().current() : kNoThread, target,
               detail, support::kUnknownSite, static_cast<std::uint8_t>(kind));
  }
  switch (kind) {
    case FaultKind::Drop:
      ++dropped_;
      break;
    case FaultKind::Duplicate:
      ++duplicated_;
      break;
    case FaultKind::Delay:
      ++delayed_;
      break;
    case FaultKind::Reorder:
      ++reordered_;
      break;
    case FaultKind::Stall:
      ++stalls_;
      break;
    case FaultKind::UpstreamDrop:
    case FaultKind::UpstreamDelay:
    case FaultKind::UpstreamError:
    case FaultKind::UpstreamStall:
      ++upstream_faults_;
      break;
  }
}

FaultDecision ChaosEngine::apply(std::uint64_t message_id,
                                 std::uint32_t attempt) {
  const FaultDecision d = plan(message_id, attempt);
  if (d.drop) record(FaultKind::Drop, message_id, attempt, 0);
  if (d.duplicate) record(FaultKind::Duplicate, message_id, attempt, 0);
  if (d.delay_ticks != 0)
    record(FaultKind::Delay, message_id, attempt, d.delay_ticks);
  return d;
}

UpstreamFault ChaosEngine::plan_upstream(std::uint64_t target_id,
                                         std::uint64_t request_id,
                                         std::uint32_t attempt) const {
  UpstreamFault f;
  if (!config_.any_upstream_faults()) return f;
  // Fold the target identity into the salt so each (target, request,
  // attempt) triple draws from its own decision stream — failover to a
  // different target re-rolls the dice, as a distinct server would.
  std::uint64_t salt_state = 0x44 ^ target_id;
  const std::uint64_t salt = support::splitmix64(salt_state);
  support::Xoshiro256 rng = stream(request_id, attempt, salt);
  f.drop = rng.chance(config_.upstream_drop_permille, 1000);
  if (!f.drop && rng.chance(config_.upstream_error_permille, 1000))
    f.error = true;
  if (!f.drop && config_.upstream_max_delay_ticks != 0 &&
      rng.chance(config_.upstream_delay_permille, 1000))
    f.delay_ticks = rng.range(1, config_.upstream_max_delay_ticks);
  if (config_.upstream_max_stall_ticks != 0 &&
      rng.chance(config_.upstream_stall_permille, 1000))
    f.stall_ticks = rng.range(1, config_.upstream_max_stall_ticks);
  return f;
}

UpstreamFault ChaosEngine::apply_upstream(std::uint64_t target_id,
                                          std::uint64_t request_id,
                                          std::uint32_t attempt) {
  const UpstreamFault f = plan_upstream(target_id, request_id, attempt);
  // detail layout: target id in the high 16 bits, ticks (when any) below.
  const std::uint64_t tag = target_id << 48;
  if (f.stall_ticks != 0)
    record(FaultKind::UpstreamStall, request_id, attempt,
           tag | f.stall_ticks);
  if (f.drop) record(FaultKind::UpstreamDrop, request_id, attempt, tag | 1);
  if (f.error) record(FaultKind::UpstreamError, request_id, attempt, tag | 1);
  if (f.delay_ticks != 0)
    record(FaultKind::UpstreamDelay, request_id, attempt,
           tag | f.delay_ticks);
  return f;
}

std::vector<std::size_t> ChaosEngine::delivery_order(std::uint64_t batch_id,
                                                     std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (n < 2) return order;
  support::Xoshiro256 rng = stream(batch_id, 0, /*salt=*/0x22);
  if (!rng.chance(config_.reorder_permille, 1000)) return order;
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[rng.below(i + 1)]);
  record(FaultKind::Reorder, batch_id, 0, n);
  return order;
}

void ChaosEngine::stall_point(std::uint64_t point_id) {
  if (config_.stall_permille == 0 || config_.max_stall_ticks == 0) return;
  support::Xoshiro256 rng = stream(point_id, 0, /*salt=*/0x33);
  if (!rng.chance(config_.stall_permille, 1000)) return;
  const std::uint64_t ticks = rng.range(1, config_.max_stall_ticks);
  record(FaultKind::Stall, point_id, 0, ticks);
  sleep_ticks(ticks);
}

std::string ChaosEngine::trace_text() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out;
  for (const InjectionRecord& r : trace_) {
    out += std::to_string(r.seq);
    out += " t=";
    out += std::to_string(r.vtime);
    out += ' ';
    out += to_string(r.kind);
    out += " target=";
    out += std::to_string(r.target);
    out += " attempt=";
    out += std::to_string(r.attempt);
    if (r.detail != 0) {
      out += " detail=";
      out += std::to_string(r.detail);
    }
    out += '\n';
  }
  return out;
}

}  // namespace rg::rt
