// The runtime core.
//
// Plays the role of the Valgrind core in the paper's architecture: it owns
// the registry of threads, locks and live allocations, tags every event with
// bookkeeping (held-lock sets, shadow call stacks) and fans events out to
// the attached tools. It performs no detection itself.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "rt/ids.hpp"
#include "rt/tool.hpp"
#include "support/assert.hpp"
#include "support/intern.hpp"
#include "support/small_vector.hpp"

namespace rg::rt {

/// One entry of a thread's held-lock multiset.
struct HeldLock {
  LockId lock = kNoLock;
  LockMode mode = LockMode::Exclusive;
  /// Recursion depth (rw-locks may be read-held multiple times in POSIX).
  std::uint32_t count = 1;
};

/// A live heap allocation known to the runtime.
struct AllocInfo {
  Addr base = 0;
  std::uint32_t size = 0;
  support::SiteId site = support::kUnknownSite;
  ThreadId thread = kNoThread;
  /// Monotonic allocation sequence number; distinguishes reuses of the same
  /// address range.
  std::uint64_t seq = 0;
};

/// Human-readable description of an address, mirroring Helgrind's
/// "Address A is N bytes inside a block of size S alloc'd by thread T".
struct AddrOrigin {
  bool known = false;
  std::uint64_t offset = 0;
  AllocInfo alloc;
  std::string describe() const;
};

/// O(1) address -> live-allocation map for the trace hot path. One slot per
/// 16-byte granule overlapped by a live allocation (malloc's alignment
/// guarantees a granule holds payload of at most one block), linear
/// probing with backward-shift deletion so long runs never accumulate
/// tombstones. Walking the live_allocs_ tree on every traced access would
/// dominate the recorder's cost budget.
class IdentTable {
 public:
  struct Slot {
    std::uint64_t key = 0;  // granule index (addr >> 4); 0 = empty
    Addr base = 0;
    std::uint64_t seq = 0;
    std::uint32_t size = 0;
  };

  IdentTable() : slots_(1u << 10) {}

  const Slot* lookup(Addr addr) const {
    const std::uint64_t key = addr >> kGranuleBits;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == 0) return nullptr;
      i = (i + 1) & mask;
    }
  }

  void insert(Addr base, std::uint32_t size, std::uint64_t seq);
  void erase(Addr base, std::uint32_t size);

 private:
  static constexpr unsigned kGranuleBits = 4;
  static std::size_t hash(std::uint64_t key) {
    key *= 0x9E3779B97F4A7C15ull;
    key ^= key >> 32;  // keep the high granule bits in the slot index
    return static_cast<std::size_t>(key);
  }
  void put(std::uint64_t key, Addr base, std::uint32_t size,
           std::uint64_t seq);
  void drop(std::uint64_t key);
  void grow();

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

/// Event::flags encoding of an access for the flight recorder.
inline std::uint8_t access_flags(const MemoryAccess& a) {
  std::uint8_t flags = 0;
  if (a.kind == AccessKind::Write) flags |= obs::kAccessWrite;
  if (a.bus_locked) flags |= obs::kAccessBusLocked;
  return flags;
}

class Runtime {
 public:
  Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- tool management ---------------------------------------------------
  /// Attaches a tool; the caller keeps ownership and must outlive the run.
  void attach(Tool& tool);
  std::size_t tool_count() const { return tools_.size(); }

  // --- observability -------------------------------------------------------
  /// Mirrors every runtime event into the flight recorder (nullptr = off;
  /// one branch per event). Attach before the run starts so the stream is
  /// complete.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }
  obs::FlightRecorder* recorder() const { return recorder_; }

  /// Wraps each tool-hook dispatch in a cycle stamp (nullptr = off). Tools
  /// already attached are registered immediately; later attaches register
  /// themselves, so set-then-attach and attach-then-set both work.
  void set_profiler(obs::HookProfiler* profiler);
  obs::HookProfiler* profiler() const { return profiler_; }

  // --- thread registry ---------------------------------------------------
  /// Registers a new thread and returns its dense id. Raises
  /// on_thread_start on all tools.
  ThreadId register_thread(std::string_view name, ThreadId parent,
                           support::SiteId site);
  void thread_exited(ThreadId tid);
  void thread_joined(ThreadId joiner, ThreadId joined, support::SiteId site);

  std::size_t thread_count() const { return threads_.size(); }
  std::string_view thread_name(ThreadId tid) const;
  bool thread_alive(ThreadId tid) const;

  // --- locks ---------------------------------------------------------------
  LockId register_lock(std::string_view name, bool is_rw);
  void lock_destroyed(LockId lock);
  void pre_lock(ThreadId tid, LockId lock, LockMode mode, support::SiteId site);
  void post_lock(ThreadId tid, LockId lock, LockMode mode,
                 support::SiteId site);
  void unlock(ThreadId tid, LockId lock, support::SiteId site);

  /// The Eraser locks_held(t): every lock currently held by `tid`, with the
  /// strongest mode it is held in.
  const support::small_vector<HeldLock, 4>& held_locks(ThreadId tid) const;
  std::string_view lock_name(LockId lock) const;
  std::size_t lock_count() const { return locks_.size(); }
  bool lock_is_rw(LockId lock) const { return locks_[lock].is_rw; }

  // --- other sync objects --------------------------------------------------
  SyncId register_sync(std::string_view name);
  std::string_view sync_name(SyncId id) const;
  void cond_signal(ThreadId tid, SyncId cond, support::SiteId site);
  void cond_wait_return(ThreadId tid, SyncId cond, LockId lock,
                        support::SiteId site);
  void sem_post(ThreadId tid, SyncId sem, std::uint64_t token,
                support::SiteId site);
  void sem_wait_return(ThreadId tid, SyncId sem, std::uint64_t token,
                       support::SiteId site);
  void queue_put(ThreadId tid, SyncId queue, std::uint64_t token,
                 support::SiteId site);
  void queue_get(ThreadId tid, SyncId queue, std::uint64_t token,
                 support::SiteId site);

  // --- memory ----------------------------------------------------------------
  void access(const MemoryAccess& a);
  void alloc(ThreadId tid, Addr addr, std::uint32_t size, support::SiteId site);
  void free(ThreadId tid, Addr addr, support::SiteId site);
  void destruct_annotation(ThreadId tid, Addr addr, std::uint32_t size,
                           support::SiteId site);

  /// Locates the live (or most recent) allocation containing `addr`.
  AddrOrigin origin_of(Addr addr) const;

  // --- shadow call stacks --------------------------------------------------
  void push_frame(ThreadId tid, support::SiteId site);
  void pop_frame(ThreadId tid);
  /// Innermost-first call stack of `tid` (most recent frame at index 0).
  std::vector<support::SiteId> stack_of(ThreadId tid) const;

  // --- run lifecycle ---------------------------------------------------------
  /// Signals end-of-execution to all tools.
  void finish();

  // --- statistics --------------------------------------------------------------
  std::uint64_t access_events() const { return access_events_; }
  std::uint64_t sync_events() const { return sync_events_; }
  /// Cache counters summed over every attached tool.
  ToolStats tool_stats() const;

 private:
  struct ThreadInfo {
    std::string name;
    ThreadId parent = kNoThread;
    bool alive = true;
    support::small_vector<HeldLock, 4> held;
    support::small_vector<support::SiteId, 16> stack;
  };

  struct LockInfo {
    support::Symbol name = 0;
    bool is_rw = false;
    bool alive = true;
  };

  /// Fans one event out to every tool, stamping each handler with cycles
  /// when a profiler is attached. `call` receives the tool pointer.
  template <typename F>
  void dispatch(obs::Hook hook, F&& call) {
    if (profiler_ == nullptr) {
      for (Tool* t : tools_) call(t);
      return;
    }
    for (std::size_t i = 0; i < tools_.size(); ++i) {
      const std::uint64_t t0 = obs::cycle_now();
      call(tools_[i]);
      profiler_->add(i, hook, obs::cycle_now() - t0);
    }
  }

  /// Mirrors one event into the flight recorder (no-op when detached).
  void trace(obs::EventKind kind, ThreadId tid, std::uint64_t a,
             std::uint64_t b, support::SiteId site = support::kUnknownSite,
             std::uint8_t flags = 0) {
    if (recorder_ != nullptr) recorder_->record_now(kind, tid, a, b, site, flags);
  }

 public:
  /// Replay-stable identity of `addr` for trace normalisation: inside a
  /// live tracked allocation it is (allocation seq, offset) — immune to
  /// the allocator reusing a freed address differently across runs — and 0
  /// (= "normalise the raw address") everywhere else. Runs on every traced
  /// access: a single-entry cache of the last allocation hit in front of
  /// the O(1) granule table (untracked stack/global addresses probe
  /// straight to an empty slot).
  std::uint64_t trace_identity(Addr addr) const {
    if (addr - ident_base_ < ident_size_)
      return (1ull << 63) | (ident_seq_ << 32) | (addr - ident_base_);
    const IdentTable::Slot* s = ident_table_.lookup(addr);
    if (s == nullptr || addr - s->base >= s->size) return 0;
    ident_base_ = s->base;
    ident_size_ = s->size;
    ident_seq_ = s->seq;
    return (1ull << 63) | (s->seq << 32) | (addr - s->base);
  }

  /// trace() for address-bearing events: attaches trace_identity(addr) so
  /// the recorder's normalisation keys on allocation identity. Used by the
  /// runtime's own memory events and by tools recording detector
  /// milestones (DetectorShare / DetectorWarning).
  void trace_addr(obs::EventKind kind, ThreadId tid, Addr addr,
                  std::uint64_t b, support::SiteId site = support::kUnknownSite,
                  std::uint8_t flags = 0) {
    if (recorder_ == nullptr) return;
    recorder_->record_now(kind, tid, addr, b, site, flags,
                          trace_identity(addr));
  }

 private:

  ThreadInfo& thread(ThreadId tid) {
    RG_ASSERT_MSG(tid < threads_.size(), "unknown thread id");
    return threads_[tid];
  }
  const ThreadInfo& thread(ThreadId tid) const {
    RG_ASSERT_MSG(tid < threads_.size(), "unknown thread id");
    return threads_[tid];
  }

  std::vector<Tool*> tools_;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::HookProfiler* profiler_ = nullptr;
  std::vector<ThreadInfo> threads_;
  std::vector<LockInfo> locks_;
  std::vector<support::Symbol> syncs_;
  // Live allocations keyed by base address; dead_ keeps the most recent
  // freed allocation per base so reports on stale pointers still resolve.
  std::map<Addr, AllocInfo> live_allocs_;
  std::map<Addr, AllocInfo> dead_allocs_;
  // trace_identity: granule table mirroring live_allocs_, plus a
  // single-entry cache of the last allocation hit (invalidated when that
  // allocation is freed).
  IdentTable ident_table_;
  mutable Addr ident_base_ = 0;
  mutable std::uint64_t ident_size_ = 0;
  mutable std::uint64_t ident_seq_ = 0;
  std::uint64_t alloc_seq_ = 0;
  std::uint64_t access_events_ = 0;
  std::uint64_t sync_events_ = 0;
};

}  // namespace rg::rt
