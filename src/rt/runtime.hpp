// The runtime core.
//
// Plays the role of the Valgrind core in the paper's architecture: it owns
// the registry of threads, locks and live allocations, tags every event with
// bookkeeping (held-lock sets, shadow call stacks) and fans events out to
// the attached tools. It performs no detection itself.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rt/ids.hpp"
#include "rt/tool.hpp"
#include "support/assert.hpp"
#include "support/intern.hpp"
#include "support/small_vector.hpp"

namespace rg::rt {

/// One entry of a thread's held-lock multiset.
struct HeldLock {
  LockId lock = kNoLock;
  LockMode mode = LockMode::Exclusive;
  /// Recursion depth (rw-locks may be read-held multiple times in POSIX).
  std::uint32_t count = 1;
};

/// A live heap allocation known to the runtime.
struct AllocInfo {
  Addr base = 0;
  std::uint32_t size = 0;
  support::SiteId site = support::kUnknownSite;
  ThreadId thread = kNoThread;
  /// Monotonic allocation sequence number; distinguishes reuses of the same
  /// address range.
  std::uint64_t seq = 0;
};

/// Human-readable description of an address, mirroring Helgrind's
/// "Address A is N bytes inside a block of size S alloc'd by thread T".
struct AddrOrigin {
  bool known = false;
  std::uint64_t offset = 0;
  AllocInfo alloc;
  std::string describe() const;
};

class Runtime {
 public:
  Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- tool management ---------------------------------------------------
  /// Attaches a tool; the caller keeps ownership and must outlive the run.
  void attach(Tool& tool);
  std::size_t tool_count() const { return tools_.size(); }

  // --- thread registry ---------------------------------------------------
  /// Registers a new thread and returns its dense id. Raises
  /// on_thread_start on all tools.
  ThreadId register_thread(std::string_view name, ThreadId parent,
                           support::SiteId site);
  void thread_exited(ThreadId tid);
  void thread_joined(ThreadId joiner, ThreadId joined, support::SiteId site);

  std::size_t thread_count() const { return threads_.size(); }
  std::string_view thread_name(ThreadId tid) const;
  bool thread_alive(ThreadId tid) const;

  // --- locks ---------------------------------------------------------------
  LockId register_lock(std::string_view name, bool is_rw);
  void lock_destroyed(LockId lock);
  void pre_lock(ThreadId tid, LockId lock, LockMode mode, support::SiteId site);
  void post_lock(ThreadId tid, LockId lock, LockMode mode,
                 support::SiteId site);
  void unlock(ThreadId tid, LockId lock, support::SiteId site);

  /// The Eraser locks_held(t): every lock currently held by `tid`, with the
  /// strongest mode it is held in.
  const support::small_vector<HeldLock, 4>& held_locks(ThreadId tid) const;
  std::string_view lock_name(LockId lock) const;
  std::size_t lock_count() const { return locks_.size(); }
  bool lock_is_rw(LockId lock) const { return locks_[lock].is_rw; }

  // --- other sync objects --------------------------------------------------
  SyncId register_sync(std::string_view name);
  std::string_view sync_name(SyncId id) const;
  void cond_signal(ThreadId tid, SyncId cond, support::SiteId site);
  void cond_wait_return(ThreadId tid, SyncId cond, LockId lock,
                        support::SiteId site);
  void sem_post(ThreadId tid, SyncId sem, std::uint64_t token,
                support::SiteId site);
  void sem_wait_return(ThreadId tid, SyncId sem, std::uint64_t token,
                       support::SiteId site);
  void queue_put(ThreadId tid, SyncId queue, std::uint64_t token,
                 support::SiteId site);
  void queue_get(ThreadId tid, SyncId queue, std::uint64_t token,
                 support::SiteId site);

  // --- memory ----------------------------------------------------------------
  void access(const MemoryAccess& a);
  void alloc(ThreadId tid, Addr addr, std::uint32_t size, support::SiteId site);
  void free(ThreadId tid, Addr addr, support::SiteId site);
  void destruct_annotation(ThreadId tid, Addr addr, std::uint32_t size,
                           support::SiteId site);

  /// Locates the live (or most recent) allocation containing `addr`.
  AddrOrigin origin_of(Addr addr) const;

  // --- shadow call stacks --------------------------------------------------
  void push_frame(ThreadId tid, support::SiteId site);
  void pop_frame(ThreadId tid);
  /// Innermost-first call stack of `tid` (most recent frame at index 0).
  std::vector<support::SiteId> stack_of(ThreadId tid) const;

  // --- run lifecycle ---------------------------------------------------------
  /// Signals end-of-execution to all tools.
  void finish();

  // --- statistics --------------------------------------------------------------
  std::uint64_t access_events() const { return access_events_; }
  std::uint64_t sync_events() const { return sync_events_; }
  /// Cache counters summed over every attached tool.
  ToolStats tool_stats() const;

 private:
  struct ThreadInfo {
    std::string name;
    ThreadId parent = kNoThread;
    bool alive = true;
    support::small_vector<HeldLock, 4> held;
    support::small_vector<support::SiteId, 16> stack;
  };

  struct LockInfo {
    support::Symbol name = 0;
    bool is_rw = false;
    bool alive = true;
  };

  ThreadInfo& thread(ThreadId tid) {
    RG_ASSERT_MSG(tid < threads_.size(), "unknown thread id");
    return threads_[tid];
  }
  const ThreadInfo& thread(ThreadId tid) const {
    RG_ASSERT_MSG(tid < threads_.size(), "unknown thread id");
    return threads_[tid];
  }

  std::vector<Tool*> tools_;
  std::vector<ThreadInfo> threads_;
  std::vector<LockInfo> locks_;
  std::vector<support::Symbol> syncs_;
  // Live allocations keyed by base address; dead_ keeps the most recent
  // freed allocation per base so reports on stale pointers still resolve.
  std::map<Addr, AllocInfo> live_allocs_;
  std::map<Addr, AllocInfo> dead_allocs_;
  std::uint64_t alloc_seq_ = 0;
  std::uint64_t access_events_ = 0;
  std::uint64_t sync_events_ = 0;
};

}  // namespace rg::rt
