#include "rt/sched.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/small_vector.hpp"

namespace rg::rt {

namespace {
/// OS-thread-local simulated-thread identity. Unlike `current_` (which
/// tracks the baton), this stays correct during teardown, when every
/// simulated thread unwinds concurrently.
thread_local ThreadId g_tls_tid = kNoThread;
}  // namespace

std::string DeadlockEvidence::describe() const {
  std::string out = "application deadlock: ";
  out += std::to_string(blocked.size());
  out += " thread(s) blocked with no runnable thread left\n";
  for (const auto& b : blocked) {
    out += "  thread ";
    out += std::to_string(b.tid);
    out += ": ";
    out += b.reason;
    out += '\n';
  }
  return out;
}

Scheduler::Scheduler(const SchedConfig& config)
    : config_(config), rng_(config.seed) {}

Scheduler::~Scheduler() {
  for (auto& t : threads_)
    if (t->sys.joinable()) t->sys.join();
}

Scheduler::SimThread& Scheduler::slot(ThreadId tid) {
  RG_ASSERT_MSG(tid < threads_.size(), "unknown simulated thread");
  return *threads_[tid];
}

void Scheduler::run(ThreadId main_tid, const std::function<void()>& entry) {
  {
    std::unique_lock lock(mu_);
    RG_ASSERT_MSG(threads_.empty(), "scheduler already ran");
    auto main = std::make_unique<SimThread>();
    main->id = main_tid;
    main->state = RunState::Running;
    main->baton = true;
    threads_.push_back(std::move(main));
    main_tid_ = main_tid;
    current_ = main_tid;
  }
  g_tls_tid = main_tid;

  try {
    entry();
  } catch (const SimAbort&) {
    // Outcome was already recorded by global_abort_locked.
  } catch (const std::exception& e) {
    std::unique_lock lock(mu_);
    if (!aborting_) global_abort_locked(SimOutcome::ClientError, e.what());
  }

  {
    std::unique_lock lock(mu_);
    finish_thread_locked(slot(main_tid));
    controller_cv_.wait(lock, [&] {
      return std::all_of(threads_.begin(), threads_.end(), [](const auto& t) {
        return t->state == RunState::Finished;
      });
    });
  }

  for (auto& t : threads_)
    if (t->sys.joinable()) t->sys.join();
  g_tls_tid = kNoThread;
}

void Scheduler::spawn(ThreadId tid, std::function<void()> fn) {
  std::unique_lock lock(mu_);
  RG_ASSERT_MSG(!aborting_, "spawn during teardown");
  RG_ASSERT_MSG(tid == threads_.size(),
                "thread ids must be registered in creation order");
  auto t = std::make_unique<SimThread>();
  t->id = tid;
  t->state = RunState::Runnable;
  t->fn = std::move(fn);
  SimThread* raw = t.get();
  threads_.push_back(std::move(t));
  raw->sys = std::thread([this, tid] { trampoline(tid); });
}

void Scheduler::trampoline(ThreadId tid) {
  if (thread_tls_hook) thread_tls_hook();
  g_tls_tid = tid;
  bool aborted_before_start = false;
  {
    std::unique_lock lock(mu_);
    SimThread& me = slot(tid);
    wait_for_baton(lock, me);
    aborted_before_start = me.abort;
  }
  if (!aborted_before_start) {
    SimThread& me = slot(tid);
    try {
      me.fn();
    } catch (const SimAbort&) {
      // Teardown in progress; fall through to finish.
    } catch (const std::exception& e) {
      std::unique_lock lock(mu_);
      if (!aborting_) global_abort_locked(SimOutcome::ClientError, e.what());
    }
  }
  std::unique_lock lock(mu_);
  finish_thread_locked(slot(tid));
}

void Scheduler::preempt() {
  std::unique_lock lock(mu_);
  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_) {
    // Raise the teardown exception once; while it is unwinding, RAII
    // destructors may re-enter the scheduler and must pass through freely.
    if (std::uncaught_exceptions() == 0 && me.state != RunState::Finished)
      throw SimAbort{client_error_};
    return;
  }
  ++steps_;
  ++vtime_;
  ++since_switch_;
  if (steps_ > config_.max_steps) {
    global_abort_locked(SimOutcome::StepLimit, "scheduler step limit reached");
    if (g_tls_tid == main_tid_) wait_workers_finished_locked(lock);
    throw SimAbort{"step limit"};
  }
  service_sleepers_locked();
  SimThread* next = pick_next_locked(&me, /*allow_current=*/true);
  if (next == nullptr || next == &me) return;
  me.state = RunState::Runnable;
  me.baton = false;
  since_switch_ = 0;
  give_baton_locked(*next);
  wait_for_baton(lock, me);
  if (me.abort) throw SimAbort{client_error_};
}

void Scheduler::block(const std::string& reason) {
  std::unique_lock lock(mu_);
  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_) {
    if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
    return;
  }
  me.state = RunState::Blocked;
  me.block_reason = reason;
  me.baton = false;
  schedule_out_locked(lock, me);
}

void Scheduler::unblock(ThreadId tid) {
  std::unique_lock lock(mu_);
  SimThread& t = slot(tid);
  if (t.state == RunState::Blocked) t.state = RunState::Runnable;
}

void Scheduler::sleep(std::uint64_t ticks) {
  std::unique_lock lock(mu_);
  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_) {
    if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
    return;
  }
  me.state = RunState::Sleeping;
  me.wake_at = vtime_ + ticks;
  me.block_reason = "sleeping";
  me.baton = false;
  schedule_out_locked(lock, me);
}

void Scheduler::wait_finish(ThreadId target) {
  std::unique_lock lock(mu_);
  SimThread& me = slot(g_tls_tid);
  while (slot(target).state != RunState::Finished) {
    if (me.abort || aborting_) {
      if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
      return;  // Teardown: the scheduler's epilogue joins the OS thread.
    }
    slot(target).join_waiters.push_back(me.id);
    me.state = RunState::Blocked;
    me.block_reason = "joining thread " + std::to_string(target);
    me.baton = false;
    schedule_out_locked(lock, me);
  }
}

bool Scheduler::finished(ThreadId tid) const {
  std::unique_lock lock(mu_);
  RG_ASSERT(tid < threads_.size());
  return threads_[tid]->state == RunState::Finished;
}

bool Scheduler::tearing_down() const {
  std::unique_lock lock(mu_);
  return aborting_;
}

ThreadId Scheduler::current() const { return g_tls_tid; }

void Scheduler::schedule_out_locked(std::unique_lock<std::mutex>& lock,
                                    SimThread& me) {
  service_sleepers_locked();
  SimThread* next = pick_next_locked(nullptr, /*allow_current=*/false);
  if (next == nullptr) {
    // Nothing runnable and nothing due to wake: the program under test is
    // deadlocked.
    DeadlockEvidence ev;
    for (const auto& t : threads_)
      if (t->state == RunState::Blocked || t->state == RunState::Sleeping)
        ev.blocked.push_back({t->id, t->block_reason});
    deadlock_ = std::move(ev);
    global_abort_locked(SimOutcome::Deadlocked, "deadlock");
    if (g_tls_tid == main_tid_) wait_workers_finished_locked(lock);
    throw SimAbort{"deadlock"};
  }
  give_baton_locked(*next);
  wait_for_baton(lock, me);
  if (me.abort) throw SimAbort{client_error_};
}

void Scheduler::finish_thread_locked(SimThread& me) {
  me.state = RunState::Finished;
  me.baton = false;
  for (ThreadId waiter : me.join_waiters) unblock_locked(waiter);
  me.join_waiters.clear();

  const bool all_finished =
      std::all_of(threads_.begin(), threads_.end(), [](const auto& t) {
        return t->state == RunState::Finished;
      });
  if (all_finished) {
    controller_cv_.notify_all();
    return;
  }
  if (aborting_) {
    // Remaining workers are unwinding on their own; release main once the
    // last one finishes.
    maybe_release_main_locked();
    controller_cv_.notify_all();
    return;
  }
  service_sleepers_locked();
  SimThread* next = pick_next_locked(nullptr, /*allow_current=*/false);
  if (next != nullptr) {
    give_baton_locked(*next);
    return;
  }
  // Threads remain but none can ever run again.
  DeadlockEvidence ev;
  for (const auto& t : threads_)
    if (t->state == RunState::Blocked || t->state == RunState::Sleeping)
      ev.blocked.push_back({t->id, t->block_reason});
  deadlock_ = std::move(ev);
  global_abort_locked(SimOutcome::Deadlocked, "deadlock");
}

void Scheduler::unblock_locked(ThreadId tid) {
  SimThread& t = slot(tid);
  if (t.state == RunState::Blocked) t.state = RunState::Runnable;
}

void Scheduler::service_sleepers_locked() {
  for (;;) {
    bool any_runnable = false;
    bool any_sleeping = false;
    std::uint64_t earliest = ~0ULL;
    for (const auto& t : threads_) {
      if (t->state == RunState::Sleeping) {
        if (t->wake_at <= vtime_) {
          t->state = RunState::Runnable;
          any_runnable = true;
        } else {
          any_sleeping = true;
          earliest = std::min(earliest, t->wake_at);
        }
      } else if (t->state == RunState::Runnable ||
                 t->state == RunState::Running) {
        any_runnable = true;
      }
    }
    if (any_runnable || !any_sleeping) return;
    // Everyone is asleep: jump virtual time to the first deadline.
    vtime_ = earliest;
  }
}

Scheduler::SimThread* Scheduler::pick_next_locked(SimThread* current,
                                                  bool allow_current) {
  support::small_vector<SimThread*, 16> runnable;
  for (const auto& t : threads_)
    if (t->state == RunState::Runnable) runnable.push_back(t.get());

  if (runnable.empty()) {
    if (allow_current && current != nullptr) return current;
    return nullptr;
  }

  switch (config_.strategy) {
    case SchedStrategy::RoundRobin: {
      if (allow_current && current != nullptr &&
          since_switch_ < config_.switch_period)
        return current;
      // Next runnable id after the current one, wrapping.
      const ThreadId cur = current != nullptr ? current->id : ThreadId{0};
      SimThread* best = nullptr;
      SimThread* wrap = runnable[0];
      for (SimThread* t : runnable) {
        if (t->id > cur && (best == nullptr || t->id < best->id)) best = t;
        if (t->id < wrap->id) wrap = t;
      }
      return best != nullptr ? best : wrap;
    }
    case SchedStrategy::Random: {
      if (allow_current && current != nullptr &&
          !rng_.chance(static_cast<std::uint64_t>(
                           config_.switch_probability * 1'000'000),
                       1'000'000))
        return current;
      return runnable[rng_.below(runnable.size())];
    }
  }
  RG_UNREACHABLE("bad strategy");
}

void Scheduler::give_baton_locked(SimThread& next) {
  RG_ASSERT(next.state == RunState::Runnable);
  next.state = RunState::Running;
  next.baton = true;
  current_ = next.id;
  next.cv.notify_one();
}

void Scheduler::wait_for_baton(std::unique_lock<std::mutex>& lock,
                               SimThread& me) {
  me.cv.wait(lock, [&] { return me.baton || me.abort; });
}

void Scheduler::global_abort_locked(SimOutcome outcome, std::string reason) {
  if (aborting_) return;
  aborting_ = true;
  outcome_ = outcome;
  client_error_ = std::move(reason);
  for (const auto& t : threads_) {
    if (t->state == RunState::Finished) continue;
    if (t->id == main_tid_) continue;  // main unwinds after every worker
    t->abort = true;
    t->cv.notify_one();
  }
  maybe_release_main_locked();
}

void Scheduler::maybe_release_main_locked() {
  if (!aborting_) return;
  for (const auto& t : threads_)
    if (t->id != main_tid_ && t->state != RunState::Finished) return;
  SimThread& main = slot(main_tid_);
  if (main.state != RunState::Finished) {
    main.abort = true;
    main.cv.notify_one();
  }
  controller_cv_.notify_all();
}

void Scheduler::wait_workers_finished_locked(
    std::unique_lock<std::mutex>& lock) {
  controller_cv_.wait(lock, [&] {
    for (const auto& t : threads_)
      if (t->id != main_tid_ && t->state != RunState::Finished) return false;
    return true;
  });
}

}  // namespace rg::rt
