#include "rt/sched.hpp"

#include <algorithm>
#include <exception>

#include "support/assert.hpp"
#include "support/small_vector.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define RG_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RG_ASAN_FIBERS 1
#endif
#endif

#if defined(RG_ASAN_FIBERS)
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace rg::rt {

namespace {
/// Carrier-thread-local simulated-thread identity, updated at every fiber
/// switch. Valid even during teardown, when fibers unwind in turn.
thread_local ThreadId g_tls_tid = kNoThread;

/// Fiber stack size. Fibers run real proxy/request code, so leave ample
/// headroom; pages are only committed when touched.
constexpr std::size_t kFiberStackSize = 256 * 1024;

/// Upper bound on one fast-path grant; keeps the Random pre-count loop and
/// the drain replay loop short. Budgets regrant at the next slow step.
constexpr std::uint64_t kMaxFastGrant = 4096;
}  // namespace

std::string DeadlockEvidence::describe() const {
  std::string out = "application deadlock: ";
  out += std::to_string(blocked.size());
  out += " thread(s) blocked with no runnable thread left\n";
  for (const auto& b : blocked) {
    out += "  thread ";
    out += std::to_string(b.tid);
    out += ": ";
    out += b.reason;
    out += '\n';
  }
  return out;
}

Scheduler::Scheduler(const SchedConfig& config)
    : config_(config),
      rng_(config.seed),
      switch_chance_num_(
          static_cast<std::uint64_t>(config.switch_probability * 1'000'000)) {}

Scheduler::~Scheduler() = default;

Scheduler::SimThread& Scheduler::slot(ThreadId tid) {
  RG_ASSERT_MSG(tid < threads_.size(), "unknown simulated thread");
  return *threads_[tid];
}

const Scheduler::SimThread& Scheduler::slot(ThreadId tid) const {
  RG_ASSERT_MSG(tid < threads_.size(), "unknown simulated thread");
  return *threads_[tid];
}

bool Scheduler::all_finished() const {
  return std::all_of(threads_.begin(), threads_.end(), [](const auto& t) {
    return t->state == RunState::Finished;
  });
}

void Scheduler::run(ThreadId main_tid, const std::function<void()>& entry) {
  RG_ASSERT_MSG(threads_.empty(), "scheduler already ran");
  auto main = std::make_unique<SimThread>();
  main->id = main_tid;
  main->state = RunState::Running;
#if defined(RG_ASAN_FIBERS)
  {
    // The carrier's native stack bounds, for fiber-switch annotations.
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* base = nullptr;
      std::size_t size = 0;
      if (pthread_attr_getstack(&attr, &base, &size) == 0) {
        main->stack_bottom = base;
        main->stack_size = size;
      }
      pthread_attr_destroy(&attr);
    }
  }
#endif
  threads_.push_back(std::move(main));
  main_tid_ = main_tid;
  current_ = main_tid;
  g_tls_tid = main_tid;

  try {
    entry();
  } catch (const SimAbort&) {
    // Outcome was already recorded by global_abort.
  } catch (const std::exception& e) {
    if (!aborting_.load(std::memory_order_relaxed))
      global_abort(SimOutcome::ClientError, e.what());
  }

  SimThread& me = slot(main_tid);
  finish_thread(me);
  // Main's entry has returned but other threads may still have work (or
  // need to unwind). Keep scheduling them from here until everyone is done;
  // fibers transfer control back to this frame when nothing remains.
  while (!all_finished()) {
    if (!aborting_.load(std::memory_order_relaxed)) {
      service_sleepers();
      SimThread* next = pick_next(nullptr, /*allow_current=*/false);
      if (next == nullptr) {
        record_deadlock();
        global_abort(SimOutcome::Deadlocked, "deadlock");
        continue;
      }
      hand_off(me, *next);
      continue;
    }
    // Teardown: resume unfinished workers so each unwinds in turn.
    SimThread* next = nullptr;
    for (const auto& t : threads_)
      if (t->id != main_tid_ && t->state != RunState::Finished) {
        next = t.get();
        break;
      }
    RG_ASSERT_MSG(next != nullptr, "unfinished run with no threads left");
    jump(me, *next, /*from_dying=*/false);
  }
  g_tls_tid = kNoThread;
}

void Scheduler::fiber_main_trampoline(unsigned hi, unsigned lo, unsigned tid) {
  auto self = reinterpret_cast<Scheduler*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->fiber_main(static_cast<ThreadId>(tid));
}

void Scheduler::spawn(ThreadId tid, std::function<void()> fn) {
  RG_ASSERT_MSG(!aborting_.load(std::memory_order_relaxed),
                "spawn during teardown");
  RG_ASSERT_MSG(tid == threads_.size(),
                "thread ids must be registered in creation order");
  drain_fast_budget();  // the new thread changes the runnable set
  auto t = std::make_unique<SimThread>();
  t->id = tid;
  t->state = RunState::Runnable;
  t->fn = std::move(fn);
  // Default-initialized (not zeroed): pages commit only when touched.
  t->stack.reset(new char[kFiberStackSize]);
  t->stack_bottom = t->stack.get();
  t->stack_size = kFiberStackSize;
  RG_ASSERT_MSG(getcontext(&t->ctx) == 0, "getcontext failed");
  t->ctx.uc_stack.ss_sp = t->stack.get();
  t->ctx.uc_stack.ss_size = kFiberStackSize;
  t->ctx.uc_link = nullptr;  // fibers exit via fiber_exit, never by return
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&t->ctx, reinterpret_cast<void (*)()>(&fiber_main_trampoline), 3,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu),
              static_cast<unsigned>(tid));
  threads_.push_back(std::move(t));
}

void Scheduler::fiber_main(ThreadId tid) {
#if defined(RG_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  if (thread_tls_hook) thread_tls_hook();
  SimThread& me = slot(tid);
  if (!me.abort) {
    try {
      me.fn();
    } catch (const SimAbort&) {
      // Teardown in progress; fall through to finish.
    } catch (const std::exception& e) {
      if (!aborting_.load(std::memory_order_relaxed))
        global_abort(SimOutcome::ClientError, e.what());
    }
  }
  fiber_exit(me);
}

void Scheduler::fiber_exit(SimThread& me) {
  finish_thread(me);
  SimThread* next = nullptr;
  bool resume_only = false;  // plain resume (teardown/return-to-main)
  if (!aborting_.load(std::memory_order_relaxed) && !all_finished()) {
    service_sleepers();
    next = pick_next(nullptr, /*allow_current=*/false);
    if (next == nullptr) {
      // Threads remain but none can ever run again.
      record_deadlock();
      global_abort(SimOutcome::Deadlocked, "deadlock");
    }
  }
  if (next == nullptr) {
    resume_only = true;
    if (aborting_.load(std::memory_order_relaxed)) {
      // Unwind chain: workers in id order, main strictly last.
      for (const auto& t : threads_)
        if (t->id != main_tid_ && t->state != RunState::Finished) {
          next = t.get();
          break;
        }
    }
    if (next == nullptr) next = &slot(main_tid_);
  }
  // This fiber can never run again; park its stack for the next exiting
  // fiber to free (it is still in use until the jump below completes).
  retiring_stack_ = std::move(me.stack);
  if (resume_only) {
    jump(me, *next, /*from_dying=*/true);
  } else {
    next->state = RunState::Running;
    grant_fast_budget();
    jump(me, *next, /*from_dying=*/true);
  }
  RG_UNREACHABLE("finished fiber resumed");
}

void Scheduler::jump(SimThread& from, SimThread& to, bool from_dying) {
  current_ = to.id;
  g_tls_tid = to.id;
#if defined(RG_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &fake_stack,
                                 to.stack_bottom, to.stack_size);
#else
  (void)from_dying;
#endif
  swapcontext(&from.ctx, &to.ctx);
#if defined(RG_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#endif
  // Resumed: whoever switched back restored our identity already.
}

void Scheduler::hand_off(SimThread& from, SimThread& next) {
  RG_ASSERT(next.state == RunState::Runnable);
  next.state = RunState::Running;
  if (recorder_ != nullptr)
    recorder_->record(obs::EventKind::SchedSwitch,
                      vtime_.load(std::memory_order_relaxed), next.id,
                      from.id, 0);
  // Precompute the incoming thread's no-switch budget while the scheduler
  // state is settled; it consumes the budget without re-entering here.
  grant_fast_budget();
  jump(from, next, /*from_dying=*/false);
}

void Scheduler::preempt() {
  // Fast path: a prior scheduling decision proved that the next
  // fast_remaining_ preemption points cannot switch threads, wake a due
  // sleeper, or trip the step cap — skip the strategy logic entirely.
  const std::int64_t rem = fast_remaining_.load(std::memory_order_relaxed);
  if (rem > 0 && !aborting_.load(std::memory_order_relaxed)) {
    fast_remaining_.store(rem - 1, std::memory_order_relaxed);
    steps_.fetch_add(1, std::memory_order_relaxed);
    vtime_.fetch_add(1, std::memory_order_relaxed);
    fast_steps_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_.load(std::memory_order_relaxed)) {
    // Raise the teardown exception once; while it is unwinding, RAII
    // destructors may re-enter the scheduler and must pass through freely.
    if (std::uncaught_exceptions() == 0 && me.state != RunState::Finished) {
      if (me.id == main_tid_) unwind_workers(me);
      throw SimAbort{client_error_};
    }
    return;
  }
  drain_fast_budget();
  const std::uint64_t steps_now =
      steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  vtime_.fetch_add(1, std::memory_order_relaxed);
  ++since_switch_;
  if (steps_now > config_.max_steps) {
    global_abort(SimOutcome::StepLimit, "scheduler step limit reached");
    if (me.id == main_tid_) unwind_workers(me);
    throw SimAbort{"step limit"};
  }
  service_sleepers();
  SimThread* next = pick_next(&me, /*allow_current=*/true);
  if (next == nullptr || next == &me) {
    grant_fast_budget();
    return;
  }
  me.state = RunState::Runnable;
  since_switch_ = 0;
  hand_off(me, *next);
  if (me.abort) {
    if (me.id == main_tid_) unwind_workers(me);
    throw SimAbort{client_error_};
  }
}

void Scheduler::drain_fast_budget() {
  if (fast_granted_ == 0) return;
  const std::int64_t rem_raw = fast_remaining_.load(std::memory_order_relaxed);
  const std::uint64_t rem =
      rem_raw > 0 ? static_cast<std::uint64_t>(rem_raw) : 0;
  const std::uint64_t consumed = fast_granted_ - rem;
  // Fast steps bumped steps_/vtime_ themselves; reconcile the rest here.
  since_switch_ += static_cast<std::uint32_t>(consumed);
  if (fast_grant_draws_)
    // Advance the PRNG by exactly the draws the slow path would have made
    // for the steps actually taken (the grant rolled its counting back).
    for (std::uint64_t i = 0; i < consumed; ++i)
      (void)rng_.chance(switch_chance_num_, 1'000'000);
  fast_granted_ = 0;
  fast_grant_draws_ = false;
  fast_remaining_.store(0, std::memory_order_relaxed);
}

void Scheduler::grant_fast_budget() {
  if (!config_.fast_path || aborting_.load(std::memory_order_relaxed)) return;
  RG_ASSERT_MSG(fast_granted_ == 0, "granting over an undrained budget");
  const std::uint64_t steps_now = steps_.load(std::memory_order_relaxed);
  // The step that trips the cap must take the slow path.
  if (steps_now >= config_.max_steps) return;
  std::uint64_t budget = std::min(kMaxFastGrant, config_.max_steps - steps_now);

  bool other_runnable = false;
  bool any_sleeping = false;
  std::uint64_t earliest = ~0ULL;
  for (const auto& t : threads_) {
    if (t->state == RunState::Runnable) {
      other_runnable = true;
    } else if (t->state == RunState::Sleeping) {
      any_sleeping = true;
      earliest = std::min(earliest, t->wake_at);
    }
  }

  if (!other_runnable) {
    // Running alone: the slow path would consume no PRNG draws and could
    // not switch until a sleeper comes due (the step that wakes it must
    // be slow — it changes the runnable set and, under Random, starts
    // consuming draws). spawn()/unblock() invalidate the budget.
    if (any_sleeping) {
      const std::uint64_t vt = vtime_.load(std::memory_order_relaxed);
      if (earliest <= vt + 1) return;
      budget = std::min(budget, earliest - vt - 1);
    }
    fast_grant_draws_ = false;
  } else {
    switch (config_.strategy) {
      case SchedStrategy::RoundRobin: {
        // Steps strictly before the period boundary cannot switch. A
        // sleeper waking mid-budget is woken (identically) by the
        // service_sleepers call of the next slow step.
        if (since_switch_ + 1 >= config_.switch_period) return;
        budget = std::min<std::uint64_t>(
            budget, config_.switch_period - since_switch_ - 1);
        fast_grant_draws_ = false;
        break;
      }
      case SchedStrategy::Random: {
        // The runnable set is non-empty and only the running thread can
        // change it (via entry points that drain), so the slow path would
        // consume exactly one switch draw per step. Count the run of
        // no-switch draws against a snapshot, then roll back: the drain
        // replays the consumed prefix, keeping the stream bit-identical.
        const support::Xoshiro256 snapshot = rng_;
        std::uint64_t falses = 0;
        while (falses < budget && !rng_.chance(switch_chance_num_, 1'000'000))
          ++falses;
        rng_ = snapshot;
        if (falses == 0) return;
        budget = falses;
        fast_grant_draws_ = true;
        break;
      }
    }
  }

  fast_granted_ = budget;
  fast_remaining_.store(static_cast<std::int64_t>(budget),
                        std::memory_order_relaxed);
}

void Scheduler::block(const std::string& reason, std::uint64_t waiting_lock) {
  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_.load(std::memory_order_relaxed)) {
    if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
    return;
  }
  me.state = RunState::Blocked;
  me.block_reason = reason;
  me.block_lock = waiting_lock;
  schedule_out(me);
  me.block_lock = kNoWaitingLock;
}

void Scheduler::unblock(ThreadId tid) {
  drain_fast_budget();  // the target joins the runnable set
  SimThread& t = slot(tid);
  if (t.state == RunState::Blocked) t.state = RunState::Runnable;
}

void Scheduler::sleep(std::uint64_t ticks) {
  SimThread& me = slot(g_tls_tid);
  if (me.abort || aborting_.load(std::memory_order_relaxed)) {
    if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
    return;
  }
  me.state = RunState::Sleeping;
  me.wake_at = vtime_.load(std::memory_order_relaxed) + ticks;
  me.block_reason = "sleeping";
  schedule_out(me);
}

void Scheduler::wait_finish(ThreadId target) {
  SimThread& me = slot(g_tls_tid);
  while (slot(target).state != RunState::Finished) {
    if (me.abort || aborting_.load(std::memory_order_relaxed)) {
      if (std::uncaught_exceptions() == 0) throw SimAbort{client_error_};
      return;  // Teardown: the remaining fibers unwind via the abort chain.
    }
    slot(target).join_waiters.push_back(me.id);
    me.state = RunState::Blocked;
    me.block_reason = "joining thread " + std::to_string(target);
    schedule_out(me);
  }
}

bool Scheduler::finished(ThreadId tid) const {
  return slot(tid).state == RunState::Finished;
}

bool Scheduler::tearing_down() const {
  // Checked by every instrumented primitive before raising an event; a
  // plain flag read, no scheduler work.
  return aborting_.load(std::memory_order_relaxed);
}

ThreadId Scheduler::current() const { return g_tls_tid; }

void Scheduler::schedule_out(SimThread& me) {
  drain_fast_budget();
  service_sleepers();
  SimThread* next = pick_next(nullptr, /*allow_current=*/false);
  if (next == nullptr) {
    // Nothing runnable and nothing due to wake: the program under test is
    // deadlocked.
    record_deadlock();
    global_abort(SimOutcome::Deadlocked, "deadlock");
    if (me.id == main_tid_) unwind_workers(me);
    throw SimAbort{"deadlock"};
  }
  hand_off(me, *next);
  if (me.abort) {
    if (me.id == main_tid_) unwind_workers(me);
    throw SimAbort{client_error_};
  }
}

void Scheduler::record_deadlock() {
  DeadlockEvidence ev;
  for (const auto& t : threads_)
    if (t->state == RunState::Blocked || t->state == RunState::Sleeping)
      ev.blocked.push_back({t->id, t->block_reason, t->block_lock});
  deadlock_ = std::move(ev);
}

void Scheduler::finish_thread(SimThread& me) {
  drain_fast_budget();
  me.state = RunState::Finished;
  for (ThreadId waiter : me.join_waiters) make_runnable(waiter);
  me.join_waiters.clear();
}

void Scheduler::unwind_workers(SimThread& me) {
  // Resume unfinished workers so their SimAbort unwinds before main's
  // stack (which owns the objects they may still reference) goes away.
  // Each resumed fiber chains to the next via fiber_exit; control returns
  // here once only main is left.
  for (;;) {
    SimThread* w = nullptr;
    for (const auto& t : threads_)
      if (t->id != main_tid_ && t->state != RunState::Finished) {
        w = t.get();
        break;
      }
    if (w == nullptr) return;
    jump(me, *w, /*from_dying=*/false);
  }
}

void Scheduler::make_runnable(ThreadId tid) {
  SimThread& t = slot(tid);
  if (t.state == RunState::Blocked) t.state = RunState::Runnable;
}

void Scheduler::service_sleepers() {
  for (;;) {
    bool any_runnable = false;
    bool any_sleeping = false;
    std::uint64_t earliest = ~0ULL;
    const std::uint64_t vt = vtime_.load(std::memory_order_relaxed);
    for (const auto& t : threads_) {
      if (t->state == RunState::Sleeping) {
        if (t->wake_at <= vt) {
          t->state = RunState::Runnable;
          any_runnable = true;
        } else {
          any_sleeping = true;
          earliest = std::min(earliest, t->wake_at);
        }
      } else if (t->state == RunState::Runnable ||
                 t->state == RunState::Running) {
        any_runnable = true;
      }
    }
    if (any_runnable || !any_sleeping) return;
    // Everyone is asleep: jump virtual time to the first deadline.
    vtime_.store(earliest, std::memory_order_relaxed);
  }
}

Scheduler::SimThread* Scheduler::pick_next(SimThread* current,
                                           bool allow_current) {
  support::small_vector<SimThread*, 16> runnable;
  for (const auto& t : threads_)
    if (t->state == RunState::Runnable) runnable.push_back(t.get());

  if (runnable.empty()) {
    if (allow_current && current != nullptr) return current;
    return nullptr;
  }

  switch (config_.strategy) {
    case SchedStrategy::RoundRobin: {
      if (allow_current && current != nullptr &&
          since_switch_ < config_.switch_period)
        return current;
      // Next runnable id after the current one, wrapping.
      const ThreadId cur = current != nullptr ? current->id : ThreadId{0};
      SimThread* best = nullptr;
      SimThread* wrap = runnable[0];
      for (SimThread* t : runnable) {
        if (t->id > cur && (best == nullptr || t->id < best->id)) best = t;
        if (t->id < wrap->id) wrap = t;
      }
      return best != nullptr ? best : wrap;
    }
    case SchedStrategy::Random: {
      if (allow_current && current != nullptr &&
          !rng_.chance(switch_chance_num_, 1'000'000))
        return current;
      return runnable[rng_.below(runnable.size())];
    }
  }
  RG_UNREACHABLE("bad strategy");
}

void Scheduler::global_abort(SimOutcome outcome, std::string reason) {
  if (aborting_.load(std::memory_order_relaxed)) return;
  aborting_.store(true, std::memory_order_relaxed);
  fast_remaining_.store(0, std::memory_order_relaxed);
  outcome_ = outcome;
  client_error_ = std::move(reason);
  for (const auto& t : threads_)
    if (t->state != RunState::Finished) t->abort = true;
}

}  // namespace rg::rt
