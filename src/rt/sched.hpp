// Deterministic simulated-thread scheduler.
//
// Valgrind executes the client program on a single carrier thread, context-
// switching between client threads at instrumentation points (the paper,
// §3.3: "the virtual machine in itself is single-threaded"). We reproduce
// that: simulated threads are real std::threads, but a baton guarantees that
// exactly one of them executes at any moment, and every instrumented
// operation is a preemption point where a *seeded* strategy picks the next
// runnable thread. Given a seed, an execution — and therefore the set of
// warnings a detector derives from it — is exactly reproducible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "rt/ids.hpp"
#include "support/prng.hpp"

namespace rg::rt {

/// Thrown inside a simulated thread when the run is being torn down
/// (deadlock detected, step limit hit, or leaked threads at exit).
struct SimAbort {
  std::string reason;
};

/// Interleaving strategies.
enum class SchedStrategy : std::uint8_t {
  /// Switch to the next runnable thread (by id) every `switch_period` steps.
  RoundRobin,
  /// At each step, switch to a uniformly random runnable thread with
  /// probability `switch_probability`.
  Random,
};

struct SchedConfig {
  std::uint64_t seed = 1;
  SchedStrategy strategy = SchedStrategy::Random;
  std::uint32_t switch_period = 3;
  double switch_probability = 0.25;
  /// Hard cap on preemption points; exceeding it aborts the run (guards
  /// against livelock in a buggy program under test).
  std::uint64_t max_steps = 100'000'000;
};

/// Why a run ended.
enum class SimOutcome : std::uint8_t {
  Completed,
  Deadlocked,
  StepLimit,
  ClientError,
};

struct DeadlockEvidence {
  struct BlockedThread {
    ThreadId tid = kNoThread;
    std::string reason;
  };
  std::vector<BlockedThread> blocked;
  std::string describe() const;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedConfig& config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `entry` as simulated thread `main_tid` on the *calling* thread.
  /// Returns once every spawned thread has finished (or the run aborted).
  void run(ThreadId main_tid, const std::function<void()>& entry);

  /// Spawns a new simulated thread. Must be called from a running simulated
  /// thread. The new thread starts runnable but does not run until
  /// scheduled.
  void spawn(ThreadId tid, std::function<void()> fn);

  /// Preemption point: gives the strategy a chance to switch threads.
  /// Called by every instrumented operation.
  void preempt();

  /// Blocks the calling thread until `unblock(tid)` makes it runnable
  /// again. `reason` feeds deadlock evidence.
  void block(const std::string& reason);

  /// Marks a blocked thread runnable (does not transfer control).
  void unblock(ThreadId tid);

  /// Blocks the calling thread for `ticks` of virtual time. Virtual time
  /// advances by one per preemption point and jumps forward when every
  /// thread is asleep.
  void sleep(std::uint64_t ticks);

  /// Blocks the calling thread until `target` has finished (thread join).
  void wait_finish(ThreadId target);

  /// True once `tid` has finished executing.
  bool finished(ThreadId tid) const;

  /// True once the run is being torn down (deadlock / step limit / client
  /// error). Instrumented primitives become non-blocking no-ops then, so
  /// destructors can unwind without re-entering the scheduler.
  bool tearing_down() const;

  /// Id of the calling simulated thread (thread-local identity, valid even
  /// during teardown when the baton discipline is suspended).
  ThreadId current() const;

  std::uint64_t steps() const { return steps_; }
  std::uint64_t virtual_time() const { return vtime_; }
  SimOutcome outcome() const { return outcome_; }
  const DeadlockEvidence& deadlock() const { return deadlock_; }
  const std::string& client_error() const { return client_error_; }

  /// Installed by Sim so spawned threads inherit the ambient context.
  std::function<void()> thread_tls_hook;

 private:
  enum class RunState : std::uint8_t {
    Runnable,
    Running,
    Blocked,
    Sleeping,
    Finished,
  };

  struct SimThread {
    ThreadId id = kNoThread;
    std::thread sys;  // not joined-through for the bootstrap thread
    RunState state = RunState::Runnable;
    std::condition_variable cv;
    bool baton = false;
    bool abort = false;
    std::uint64_t wake_at = 0;
    std::string block_reason;
    std::function<void()> fn;
    std::vector<ThreadId> join_waiters;
  };

  SimThread& slot(ThreadId tid);

  /// Picks the next thread to run; returns nullptr when none is runnable
  /// after waking due sleepers.
  SimThread* pick_next_locked(SimThread* current, bool allow_current);

  /// Hands control to some runnable thread (or declares deadlock) and parks
  /// the calling thread until it is scheduled again.
  void schedule_out_locked(std::unique_lock<std::mutex>& lock, SimThread& me);

  /// Marks `me` finished, wakes joiners, and keeps the run going (or
  /// completes / aborts it).
  void finish_thread_locked(SimThread& me);

  void unblock_locked(ThreadId tid);

  /// Wakes sleepers whose deadline has passed; when nothing is runnable but
  /// sleepers exist, advances virtual time to the earliest deadline.
  void service_sleepers_locked();

  /// Declares the whole run dead: wakes every worker with the abort flag.
  /// The main thread is deliberately released *last* (see
  /// maybe_release_main_locked) so that objects owned by its stack frame
  /// survive until every worker has unwound.
  void global_abort_locked(SimOutcome outcome, std::string reason);

  /// During teardown: once every non-main thread has finished, wakes main.
  void maybe_release_main_locked();

  /// Parks the calling (main) thread until every worker finished; used
  /// before letting SimAbort unwind main's stack.
  void wait_workers_finished_locked(std::unique_lock<std::mutex>& lock);

  void give_baton_locked(SimThread& next);
  void wait_for_baton(std::unique_lock<std::mutex>& lock, SimThread& me);

  void trampoline(ThreadId tid);

  SchedConfig config_;
  support::Xoshiro256 rng_;

  mutable std::mutex mu_;
  std::condition_variable controller_cv_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId main_tid_ = kNoThread;
  ThreadId current_ = kNoThread;
  std::uint64_t steps_ = 0;
  std::uint64_t vtime_ = 0;
  std::uint32_t since_switch_ = 0;
  bool aborting_ = false;
  SimOutcome outcome_ = SimOutcome::Completed;
  DeadlockEvidence deadlock_;
  std::string client_error_;
};

}  // namespace rg::rt
