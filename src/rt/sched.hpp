// Deterministic simulated-thread scheduler.
//
// Valgrind executes the client program on a single carrier thread, context-
// switching between client threads at instrumentation points (the paper,
// §3.3: "the virtual machine in itself is single-threaded"). We reproduce
// that literally: simulated threads are ucontext fibers multiplexed on the
// one OS thread that called run(), so a context switch is a userspace
// register swap instead of a futex round-trip through the kernel. Every
// instrumented operation is a preemption point where a *seeded* strategy
// picks the next runnable thread. Given a seed, an execution — and
// therefore the set of warnings a detector derives from it — is exactly
// reproducible.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "rt/ids.hpp"
#include "support/prng.hpp"

namespace rg::rt {

/// Thrown inside a simulated thread when the run is being torn down
/// (deadlock detected, step limit hit, or leaked threads at exit).
struct SimAbort {
  std::string reason;
};

/// Interleaving strategies.
enum class SchedStrategy : std::uint8_t {
  /// Switch to the next runnable thread (by id) every `switch_period` steps.
  RoundRobin,
  /// At each step, switch to a uniformly random runnable thread with
  /// probability `switch_probability`.
  Random,
};

struct SchedConfig {
  std::uint64_t seed = 1;
  SchedStrategy strategy = SchedStrategy::Random;
  std::uint32_t switch_period = 3;
  double switch_probability = 0.25;
  /// Hard cap on preemption points; exceeding it aborts the run (guards
  /// against livelock in a buggy program under test).
  std::uint64_t max_steps = 100'000'000;
  /// No-switch fast path: at every scheduling decision the scheduler
  /// precomputes how many upcoming preemption points cannot switch threads
  /// and lets them run on a counter decrement, skipping the strategy logic.
  /// Schedules are bit-identical with the fast path on or off (the PRNG
  /// draws are precounted against a snapshot and replayed); off only for
  /// the equivalence tests and perf comparison.
  bool fast_path = true;
};

/// Why a run ended.
enum class SimOutcome : std::uint8_t {
  Completed,
  Deadlocked,
  StepLimit,
  ClientError,
};

/// Sentinel for DeadlockEvidence::BlockedThread::waiting_lock: the thread
/// is blocked on something other than a lock acquisition (join, condvar,
/// semaphore, sleep, oracle staging).
constexpr std::uint64_t kNoWaitingLock = ~0ull;

struct DeadlockEvidence {
  struct BlockedThread {
    ThreadId tid = kNoThread;
    std::string reason;
    /// LockId the thread was blocked acquiring, kNoWaitingLock otherwise.
    /// The replay oracle matches a predicted cycle against this: confirmed
    /// means every cycle thread is blocked on exactly its second lock.
    std::uint64_t waiting_lock = kNoWaitingLock;
  };
  std::vector<BlockedThread> blocked;
  std::string describe() const;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedConfig& config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `entry` as simulated thread `main_tid` on the *calling* thread.
  /// Returns once every spawned thread has finished (or the run aborted).
  void run(ThreadId main_tid, const std::function<void()>& entry);

  /// Spawns a new simulated thread. Must be called from a running simulated
  /// thread. The new thread starts runnable but does not run until
  /// scheduled.
  void spawn(ThreadId tid, std::function<void()> fn);

  /// Preemption point: gives the strategy a chance to switch threads.
  /// Called by every instrumented operation.
  void preempt();

  /// Blocks the calling thread until `unblock(tid)` makes it runnable
  /// again. `reason` feeds deadlock evidence; `waiting_lock` is the LockId
  /// being acquired when the block is a lock wait (kNoWaitingLock
  /// otherwise), so deadlock evidence stays machine-checkable.
  void block(const std::string& reason,
             std::uint64_t waiting_lock = kNoWaitingLock);

  /// Marks a blocked thread runnable (does not transfer control).
  void unblock(ThreadId tid);

  /// Blocks the calling thread for `ticks` of virtual time. Virtual time
  /// advances by one per preemption point and jumps forward when every
  /// thread is asleep.
  void sleep(std::uint64_t ticks);

  /// Blocks the calling thread until `target` has finished (thread join).
  void wait_finish(ThreadId target);

  /// True once `tid` has finished executing.
  bool finished(ThreadId tid) const;

  /// True once the run is being torn down (deadlock / step limit / client
  /// error). Instrumented primitives become non-blocking no-ops then, so
  /// destructors can unwind without re-entering the scheduler.
  bool tearing_down() const;

  /// Id of the calling simulated thread (thread-local identity, valid even
  /// during teardown).
  ThreadId current() const;

  std::uint64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }
  std::uint64_t virtual_time() const {
    return vtime_.load(std::memory_order_relaxed);
  }
  /// Preemption points that took the no-switch fast path (observability).
  std::uint64_t fast_path_steps() const {
    return fast_steps_.load(std::memory_order_relaxed);
  }
  SimOutcome outcome() const { return outcome_; }
  const DeadlockEvidence& deadlock() const { return deadlock_; }
  const std::string& client_error() const { return client_error_; }

  /// Mirrors every context switch into the flight recorder (nullptr = off).
  /// Recording happens only in hand_off — the no-switch fast path stays a
  /// counter decrement.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// The virtual-time counter, for FlightRecorder::set_clock. Stable for
  /// the scheduler's lifetime.
  const std::atomic<std::uint64_t>* vtime_source() const { return &vtime_; }

  /// Installed by Sim so fibers inherit the ambient context. Called at
  /// fiber start (idempotent on a single carrier thread).
  std::function<void()> thread_tls_hook;

 private:
  enum class RunState : std::uint8_t {
    Runnable,
    Running,
    Blocked,
    Sleeping,
    Finished,
  };

  struct SimThread {
    ThreadId id = kNoThread;
    RunState state = RunState::Runnable;
    bool abort = false;
    std::uint64_t wake_at = 0;
    std::string block_reason;
    std::uint64_t block_lock = kNoWaitingLock;
    std::function<void()> fn;
    std::vector<ThreadId> join_waiters;
    ucontext_t ctx{};
    /// Fiber stack; null for the bootstrap (main) thread, which runs on
    /// the carrier's native stack.
    std::unique_ptr<char[]> stack;
    /// Stack bounds for sanitizer fiber annotations.
    const void* stack_bottom = nullptr;
    std::size_t stack_size = 0;
  };

  SimThread& slot(ThreadId tid);
  const SimThread& slot(ThreadId tid) const;

  bool all_finished() const;

  /// Picks the next thread to run; returns nullptr when none is runnable
  /// after waking due sleepers.
  SimThread* pick_next(SimThread* current, bool allow_current);

  /// Raw fiber switch from `from` to `to` (no state changes). `from_dying`
  /// marks `from`'s stack as never resumed again (sanitizer hint).
  void jump(SimThread& from, SimThread& to, bool from_dying);

  /// Marks `next` running, grants it a fast-path budget, and switches to
  /// it. Returns when `from` is scheduled again.
  void hand_off(SimThread& from, SimThread& next);

  /// Parks `me` (already marked Blocked/Sleeping) and hands control to some
  /// runnable thread, or declares deadlock.
  void schedule_out(SimThread& me);

  /// Entry point of every spawned fiber.
  void fiber_main(ThreadId tid);
  /// makecontext-compatible shim: reassembles (Scheduler*, tid) from ints.
  static void fiber_main_trampoline(unsigned hi, unsigned lo, unsigned tid);

  /// Terminal continuation of a fiber: marks it finished, wakes joiners,
  /// and transfers control to the next thread (or back to run()).
  [[noreturn]] void fiber_exit(SimThread& me);

  void make_runnable(ThreadId tid);

  /// Marks `me` finished and wakes its joiners (no control transfer).
  void finish_thread(SimThread& me);

  /// Wakes sleepers whose deadline has passed; when nothing is runnable but
  /// sleepers exist, advances virtual time to the earliest deadline.
  void service_sleepers();

  /// Declares the whole run dead: flags every unfinished thread so it
  /// throws SimAbort at its next scheduling point. Unwinding is driven by
  /// resuming each fiber in turn; main is deliberately resumed *last* so
  /// that objects owned by its stack frame survive until every worker has
  /// unwound.
  void global_abort(SimOutcome outcome, std::string reason);

  /// During teardown, called by main: resumes every unfinished worker (in
  /// id order) until only main remains, so main's SimAbort unwinds last.
  void unwind_workers(SimThread& me);

  void record_deadlock();

  /// Precomputes the fast-path budget: the number of upcoming preemption
  /// points guaranteed to keep the current thread running. For the Random
  /// strategy the run of no-switch draws is counted against a PRNG
  /// snapshot and rolled back; drain_fast_budget() replays exactly the
  /// consumed draws, so the PRNG stream — and therefore the schedule — is
  /// bit-identical to the slow path.
  void grant_fast_budget();

  /// Reconciles counters (since_switch_, PRNG position) after fast-path
  /// steps; must run at the top of every scheduling entry point.
  void drain_fast_budget();

  SchedConfig config_;
  obs::FlightRecorder* recorder_ = nullptr;
  support::Xoshiro256 rng_;
  /// switch_probability as the chance() numerator, fixed at construction.
  std::uint64_t switch_chance_num_ = 0;

  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId main_tid_ = kNoThread;
  ThreadId current_ = kNoThread;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> vtime_{0};
  std::atomic<std::uint64_t> fast_steps_{0};
  std::uint32_t since_switch_ = 0;
  std::atomic<bool> aborting_{false};
  SimOutcome outcome_ = SimOutcome::Completed;
  DeadlockEvidence deadlock_;
  std::string client_error_;

  /// Stack of the most recently finished fiber. A fiber cannot free its
  /// own stack while still running on it, so it parks the stack here; the
  /// next fiber to exit overwrites (and thereby frees) it.
  std::unique_ptr<char[]> retiring_stack_;

  // Fast-path budget. Only the single running simulated thread consumes
  // it; atomics keep the counters readable from monitoring code.
  std::atomic<std::int64_t> fast_remaining_{0};
  std::uint64_t fast_granted_ = 0;
  /// Whether the active grant pre-counted Random-strategy draws that the
  /// drain must replay.
  bool fast_grant_draws_ = false;
};

}  // namespace rg::rt
