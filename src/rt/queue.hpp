// Instrumented bounded message queue.
//
// This is the "put/get" hand-off primitive of the thread-pool pattern in
// Figs. 10/11: accesses to a message are clearly separated by the put and
// get operations, but the baseline lockset algorithm does not know that.
// Each element carries a token pairing its put with the get that receives
// it, so the extended detector (hb_message_passing) can derive the ordering
// the paper lists as future work.
#pragma once

#include <deque>
#include <source_location>
#include <string>
#include <string_view>
#include <utility>

#include "rt/ids.hpp"
#include "rt/sim.hpp"
#include "rt/sync.hpp"

namespace rg::rt {

template <typename T>
class message_queue {
 public:
  explicit message_queue(std::string_view name = "queue",
                         std::size_t capacity = SIZE_MAX)
      : name_(name), capacity_(capacity), sim_(Sim::current()) {
    if (sim_ != nullptr) id_ = sim_->runtime().register_sync(name_);
  }

  message_queue(const message_queue&) = delete;
  message_queue& operator=(const message_queue&) = delete;

  /// Blocks while the queue is full. Raises on_queue_put.
  void put(T value,
           const std::source_location& loc = std::source_location::current()) {
    if (sim_ == nullptr) {
      std::unique_lock lock(native_mu_);
      native_cv_.wait(lock, [&] { return items_.size() < capacity_; });
      items_.emplace_back(0, std::move(value));
      native_cv_.notify_all();
      return;
    }
    if (sim_->sched().tearing_down()) return;  // unwind tolerance
    const ThreadId me = Sim::current_thread();
    sim_->sched().preempt();
    while (items_.size() >= capacity_) {
      put_waiters_.push_back(me);
      sim_->sched().block("queue '" + name_ + "' full");
    }
    const std::uint64_t token = next_token_++;
    items_.emplace_back(token, std::move(value));
    sim_->runtime().queue_put(me, id_, token, site_of(loc));
    wake(get_waiters_);
    sim_->sched().preempt();
  }

  /// Blocks while the queue is empty; returns false once the queue is
  /// closed and drained. Raises on_queue_get with the matching put token.
  bool get(T& out,
           const std::source_location& loc = std::source_location::current()) {
    if (sim_ == nullptr) {
      std::unique_lock lock(native_mu_);
      native_cv_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return false;
      out = std::move(items_.front().second);
      items_.pop_front();
      native_cv_.notify_all();
      return true;
    }
    if (sim_->sched().tearing_down()) return false;  // unwind tolerance
    const ThreadId me = Sim::current_thread();
    sim_->sched().preempt();
    while (items_.empty()) {
      if (closed_) return false;
      get_waiters_.push_back(me);
      sim_->sched().block("queue '" + name_ + "' empty");
    }
    auto [token, value] = std::move(items_.front());
    items_.pop_front();
    out = std::move(value);
    sim_->runtime().queue_get(me, id_, token, site_of(loc));
    wake(put_waiters_);
    return true;
  }

  /// Unblocks all getters; subsequent get() on an empty queue returns
  /// false.
  void close() {
    if (sim_ == nullptr) {
      std::lock_guard lock(native_mu_);
      closed_ = true;
      native_cv_.notify_all();
      return;
    }
    if (sim_->sched().tearing_down()) return;  // unwind tolerance
    closed_ = true;
    wake(get_waiters_);
    sim_->sched().preempt();
  }

  std::size_t size() const {
    if (sim_ == nullptr) {
      std::lock_guard lock(native_mu_);
      return items_.size();
    }
    return items_.size();
  }

 private:
  void wake(std::vector<ThreadId>& queue) {
    for (ThreadId tid : queue) sim_->sched().unblock(tid);
    queue.clear();
  }

  std::string name_;
  std::size_t capacity_;
  Sim* sim_ = nullptr;
  SyncId id_ = 0;
  std::uint64_t next_token_ = 1;
  std::deque<std::pair<std::uint64_t, T>> items_;
  bool closed_ = false;
  std::vector<ThreadId> put_waiters_;
  std::vector<ThreadId> get_waiters_;
  mutable std::mutex native_mu_;
  std::condition_variable native_cv_;
};

}  // namespace rg::rt
