// Sim — one observed execution of a program under test.
//
// Couples a Runtime (event fan-out to tools) with a Scheduler (deterministic
// interleaving) and provides the ambient context the instrumented primitives
// look up. When no Sim is current on a thread, the primitives fall back to
// plain native synchronisation with zero event traffic — that mode is the
// "no Valgrind" baseline of the §4.5 performance experiment.
#pragma once

#include <functional>
#include <string>

#include "rt/runtime.hpp"
#include "rt/sched.hpp"

namespace rg::rt {

struct SimConfig {
  SchedConfig sched;
  std::string main_thread_name = "main";
};

/// Outcome of one simulated execution.
struct SimResult {
  SimOutcome outcome = SimOutcome::Completed;
  std::uint64_t steps = 0;
  /// Preemption points resolved by the scheduler's no-switch fast path.
  std::uint64_t fast_path_steps = 0;
  std::uint64_t virtual_time = 0;
  std::uint64_t access_events = 0;
  std::uint64_t sync_events = 0;
  DeadlockEvidence deadlock;
  std::string error;

  bool completed() const { return outcome == SimOutcome::Completed; }
  bool deadlocked() const { return outcome == SimOutcome::Deadlocked; }
};

class Sim {
 public:
  explicit Sim(const SimConfig& config = {});

  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;

  Runtime& runtime() { return runtime_; }
  Scheduler& sched() { return sched_; }
  const SimConfig& config() const { return config_; }

  /// Attaches a detection tool; caller keeps ownership.
  void attach(Tool& tool) { runtime_.attach(tool); }

  /// Attaches a flight recorder for the whole execution: its clock becomes
  /// the scheduler's virtual time, the runtime and scheduler mirror their
  /// events into it, and run() installs it as the ambient recorder so
  /// layers above the runtime (SIP transactions, breakers) can record too.
  /// Must be called before run(); caller keeps ownership.
  void set_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
    if (recorder != nullptr) recorder->set_clock(sched_.vtime_source());
    runtime_.set_recorder(recorder);
    sched_.set_recorder(recorder);
  }
  obs::FlightRecorder* recorder() const { return recorder_; }

  /// Attaches a per-tool hook profiler (see Runtime::set_profiler).
  void set_profiler(obs::HookProfiler* profiler) {
    runtime_.set_profiler(profiler);
  }

  /// Executes `entry` as the main simulated thread on the calling OS
  /// thread; returns when every simulated thread has finished.
  SimResult run(const std::function<void()>& entry);

  /// The Sim governing the calling OS thread, or nullptr when the thread is
  /// not simulated (native mode).
  static Sim* current();

  /// ThreadId of the calling simulated thread. Only valid under a Sim.
  static ThreadId current_thread();

 private:
  friend class thread;

  SimConfig config_;
  Runtime runtime_;
  Scheduler sched_;
  obs::FlightRecorder* recorder_ = nullptr;
  bool ran_ = false;
};

}  // namespace rg::rt
