#include "rt/memory.hpp"

#include <new>

#include "support/assert.hpp"

namespace rg::rt {

namespace {

void emit_access(const void* p, std::uint32_t size, AccessKind kind,
                 bool bus_locked, const std::source_location& loc) {
  Sim* sim = Sim::current();
  if (sim == nullptr) return;
  if (sim->sched().tearing_down()) return;
  sim->sched().preempt();
  MemoryAccess a;
  a.thread = sim->sched().current();
  a.addr = reinterpret_cast<Addr>(p);
  a.size = size;
  a.kind = kind;
  a.bus_locked = bus_locked;
  a.site = site_of(loc);
  sim->runtime().access(a);
}

/// operator new cannot see the construction site; it parks the block here
/// for the instrumented_object constructor (same thread, immediately after)
/// to register with a meaningful site.
thread_local struct {
  void* ptr = nullptr;
  std::size_t size = 0;
} g_pending_alloc;

}  // namespace

void mem_read(const void* p, std::uint32_t size,
              const std::source_location& loc) {
  emit_access(p, size, AccessKind::Read, /*bus_locked=*/false, loc);
}

void mem_write(const void* p, std::uint32_t size,
               const std::source_location& loc) {
  emit_access(p, size, AccessKind::Write, /*bus_locked=*/false, loc);
}

void mem_write_locked(const void* p, std::uint32_t size,
                      const std::source_location& loc) {
  emit_access(p, size, AccessKind::Write, /*bus_locked=*/true, loc);
}

void mem_alloc(const void* p, std::uint32_t size,
               const std::source_location& loc) {
  Sim* sim = Sim::current();
  if (sim == nullptr || sim->sched().tearing_down()) return;
  sim->runtime().alloc(sim->sched().current(), reinterpret_cast<Addr>(p), size,
                       site_of(loc));
}

void mem_free(const void* p, const std::source_location& loc) {
  Sim* sim = Sim::current();
  if (sim == nullptr || sim->sched().tearing_down()) return;
  sim->runtime().free(sim->sched().current(), reinterpret_cast<Addr>(p),
                      site_of(loc));
}

void mem_destruct(const void* p, std::uint32_t size,
                  const std::source_location& loc) {
  Sim* sim = Sim::current();
  if (sim == nullptr || sim->sched().tearing_down()) return;
  sim->runtime().destruct_annotation(sim->sched().current(),
                                     reinterpret_cast<Addr>(p), size,
                                     site_of(loc));
}

// --- instrumented_object ------------------------------------------------------

void* instrumented_object::operator new(std::size_t size) {
  void* p = ::operator new(size);
  g_pending_alloc.ptr = p;
  g_pending_alloc.size = size;
  return p;
}

void instrumented_object::operator delete(void* p, std::size_t size) {
  mem_free(p, std::source_location::current());
  (void)size;
  ::operator delete(p);
}

instrumented_object::instrumented_object(const std::source_location& loc) {
  // Register the whole most-derived block if we were just heap-allocated.
  if (g_pending_alloc.ptr == static_cast<void*>(this)) {
    mem_alloc(g_pending_alloc.ptr,
              static_cast<std::uint32_t>(g_pending_alloc.size), loc);
    g_pending_alloc.ptr = nullptr;
    g_pending_alloc.size = 0;
  }
}

instrumented_object::~instrumented_object() { vptr_write(); }

void instrumented_object::vptr_write(const std::source_location& loc) {
  // The compiler resets the vptr (the first word of the object) when
  // entering each destructor of the chain.
  mem_write(this, sizeof(void*), loc);
}

void instrumented_object::virtual_dispatch(
    const std::source_location& loc) const {
  mem_read(this, sizeof(void*), loc);
}

// --- FuncFrame ------------------------------------------------------------------

FuncFrame::FuncFrame(const std::source_location& loc) {
  sim_ = Sim::current();
  if (sim_ == nullptr || sim_->sched().tearing_down()) {
    sim_ = nullptr;
    return;
  }
  tid_ = sim_->sched().current();
  sim_->runtime().push_frame(tid_, site_of(loc));
}

FuncFrame::~FuncFrame() {
  if (sim_ == nullptr || sim_->sched().tearing_down()) return;
  sim_->runtime().pop_frame(tid_);
}

}  // namespace rg::rt
