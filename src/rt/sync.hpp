// Instrumented synchronisation primitives.
//
// These mirror the POSIX-Threads objects the paper's detector intercepts:
// mutexes, read-write locks, condition variables and semaphores. Under a Sim
// each operation is a scheduling point and raises the corresponding tool
// event; outside a Sim they delegate to std:: primitives so the same client
// code doubles as the native baseline for the §4.5 overhead experiment.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "rt/ids.hpp"
#include "rt/sim.hpp"
#include "support/small_vector.hpp"

namespace rg::rt {

/// Non-recursive mutual exclusion (pthread_mutex).
class mutex {
 public:
  explicit mutex(std::string_view name = "mutex");
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock(const std::source_location& loc = std::source_location::current());
  bool try_lock(
      const std::source_location& loc = std::source_location::current());
  void unlock(
      const std::source_location& loc = std::source_location::current());

  /// Detector-visible identity; kNoLock in native mode.
  LockId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class condition_variable;

  std::string name_;
  Sim* sim_ = nullptr;
  LockId id_ = kNoLock;
  // Simulated state (only touched while holding the scheduler baton).
  ThreadId owner_ = kNoThread;
  std::vector<ThreadId> wait_queue_;
  // Native state.
  std::mutex native_;
};

/// Read-write lock (pthread_rwlock). Support for this object in the
/// detector is part of the paper's HWLC improvement.
class rw_mutex {
 public:
  explicit rw_mutex(std::string_view name = "rwlock");
  rw_mutex(const rw_mutex&) = delete;
  rw_mutex& operator=(const rw_mutex&) = delete;

  void lock(const std::source_location& loc = std::source_location::current());
  void lock_shared(
      const std::source_location& loc = std::source_location::current());
  /// POSIX-style unified unlock: releases whichever side the caller holds.
  void unlock(
      const std::source_location& loc = std::source_location::current());

  LockId id() const { return id_; }

 private:
  std::string name_;
  Sim* sim_ = nullptr;
  LockId id_ = kNoLock;
  ThreadId writer_ = kNoThread;
  support::small_vector<ThreadId, 8> readers_;
  std::vector<ThreadId> wait_queue_;
  std::shared_mutex native_;
};

/// RAII guards in the CP.20 style.
template <typename Lockable>
class lock_guard {
 public:
  explicit lock_guard(
      Lockable& l,
      const std::source_location& loc = std::source_location::current())
      : lock_(l), loc_(loc) {
    lock_.lock(loc_);
  }
  ~lock_guard() { lock_.unlock(loc_); }
  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  Lockable& lock_;
  std::source_location loc_;
};

class shared_lock_guard {
 public:
  explicit shared_lock_guard(
      rw_mutex& l,
      const std::source_location& loc = std::source_location::current())
      : lock_(l), loc_(loc) {
    lock_.lock_shared(loc_);
  }
  ~shared_lock_guard() { lock_.unlock(loc_); }
  shared_lock_guard(const shared_lock_guard&) = delete;
  shared_lock_guard& operator=(const shared_lock_guard&) = delete;

 private:
  rw_mutex& lock_;
  std::source_location loc_;
};

/// Condition variable (pthread_cond). Note that — as the paper stresses in
/// its critique of [12] — Helgrind derives no happens-before edges from
/// signal/wait; the events exist so extended tools can.
class condition_variable {
 public:
  explicit condition_variable(std::string_view name = "cond");
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  /// Caller must hold `m`. Atomically releases it and waits for a signal,
  /// then reacquires. No spurious wakeups in simulated mode.
  void wait(mutex& m,
            const std::source_location& loc = std::source_location::current());

  template <typename Pred>
  void wait_until(
      mutex& m, Pred pred,
      const std::source_location& loc = std::source_location::current()) {
    while (!pred()) {
      if (sim_ != nullptr && sim_->sched().tearing_down()) return;
      wait(m, loc);
    }
  }

  void notify_one(
      const std::source_location& loc = std::source_location::current());
  void notify_all(
      const std::source_location& loc = std::source_location::current());

 private:
  std::string name_;
  Sim* sim_ = nullptr;
  SyncId id_ = 0;
  std::deque<ThreadId> waiters_;
  std::condition_variable_any native_;
};

/// Counting semaphore. Post/wait carry FIFO pairing tokens so extended
/// tools can build happens-before edges over them (the paper's "higher
/// level synchronization" future work).
class semaphore {
 public:
  explicit semaphore(std::uint32_t initial = 0,
                     std::string_view name = "sem");
  semaphore(const semaphore&) = delete;
  semaphore& operator=(const semaphore&) = delete;

  void post(const std::source_location& loc = std::source_location::current());
  void wait(const std::source_location& loc = std::source_location::current());

 private:
  std::string name_;
  Sim* sim_ = nullptr;
  SyncId id_ = 0;
  std::deque<std::uint64_t> tokens_;
  std::uint64_t next_token_ = 1;
  std::vector<ThreadId> wait_queue_;
  // Native state.
  std::mutex native_mu_;
  std::condition_variable native_cv_;
  std::uint32_t native_count_ = 0;
};

}  // namespace rg::rt
