// CycleReplayDriver — the replay-to-deadlock oracle.
//
// A predicted lock cycle is a claim about a run nobody has seen: "some
// interleaving of this program deadlocks". The oracle tests the claim by
// re-running the program under the deterministic scheduler with a tool
// that *steers* the schedule: each cycle thread is parked at the pre-lock
// hook of its second acquisition — first lock held, second not yet
// requested — and once every cycle thread is staged, all are released
// together. If the prediction is real, each thread then blocks on a lock
// held by the next and the scheduler declares an actual deadlock whose
// evidence (thread, waited-on lock) matches the cycle edge for edge.
// Predicted vs. confirmed is the headline metric.
#pragma once

#include <cstddef>
#include <vector>

#include "rt/sched.hpp"
#include "rt/tool.hpp"

namespace rg::rt {

/// One edge of the cycle under test: some thread must acquire `second`
/// while holding `first`. `tid` records the predicted witness thread, but
/// the witness is one representative of a role — the driver stages
/// whichever thread first reproduces the acquisition pattern (at most one
/// edge per thread).
struct CycleEdgeSpec {
  ThreadId tid = kNoThread;
  LockId first = kNoLock;
  LockId second = kNoLock;
};

struct CycleSpec {
  std::vector<CycleEdgeSpec> edges;
};

class CycleReplayDriver : public Tool {
 public:
  explicit CycleReplayDriver(CycleSpec spec);
  const char* name() const override { return "replay-oracle"; }

  void on_pre_lock(ThreadId tid, LockId lock, LockMode mode,
                   support::SiteId site) override;

  /// Cycle threads currently (or ever) staged at their second acquisition.
  std::size_t staged_count() const { return staged_count_; }
  /// True once every cycle thread staged and the group was released.
  bool released() const { return released_; }

  /// True when the deadlock evidence shows every cycle thread blocked on
  /// exactly its second lock — the prediction reproduced structurally.
  bool confirmed(const DeadlockEvidence& evidence) const;

 private:
  CycleSpec spec_;
  std::vector<bool> staged_;
  /// The thread actually carrying each staged edge.
  std::vector<ThreadId> observed_;
  std::size_t staged_count_ = 0;
  bool released_ = false;
};

}  // namespace rg::rt
