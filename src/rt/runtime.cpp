#include "rt/runtime.hpp"

#include <algorithm>

namespace rg::rt {

std::string AddrOrigin::describe() const {
  if (!known) return "in unallocated or untracked memory";
  std::string out = "is " + std::to_string(offset) +
                    " bytes inside a block of size " +
                    std::to_string(alloc.size) + " alloc'd by thread " +
                    std::to_string(alloc.thread) + " at " +
                    support::global_sites().describe(alloc.site);
  return out;
}

Runtime::Runtime() = default;

void Runtime::attach(Tool& tool) {
  tools_.push_back(&tool);
  tool.on_attach(*this);
}

ThreadId Runtime::register_thread(std::string_view name, ThreadId parent,
                                  support::SiteId site) {
  const auto tid = static_cast<ThreadId>(threads_.size());
  ThreadInfo info;
  info.name = std::string(name);
  info.parent = parent;
  threads_.push_back(std::move(info));
  for (Tool* t : tools_) t->on_thread_start(tid, parent, site);
  return tid;
}

void Runtime::thread_exited(ThreadId tid) {
  thread(tid).alive = false;
  for (Tool* t : tools_) t->on_thread_exit(tid);
}

void Runtime::thread_joined(ThreadId joiner, ThreadId joined,
                            support::SiteId site) {
  for (Tool* t : tools_) t->on_thread_join(joiner, joined, site);
}

std::string_view Runtime::thread_name(ThreadId tid) const {
  return thread(tid).name;
}

bool Runtime::thread_alive(ThreadId tid) const { return thread(tid).alive; }

LockId Runtime::register_lock(std::string_view name, bool is_rw) {
  const auto id = static_cast<LockId>(locks_.size());
  locks_.push_back(LockInfo{support::intern(name), is_rw, true});
  for (Tool* t : tools_) t->on_lock_create(id, locks_.back().name, is_rw);
  return id;
}

void Runtime::lock_destroyed(LockId lock) {
  RG_ASSERT(lock < locks_.size());
  locks_[lock].alive = false;
  for (Tool* t : tools_) t->on_lock_destroy(lock);
}

void Runtime::pre_lock(ThreadId tid, LockId lock, LockMode mode,
                       support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_pre_lock(tid, lock, mode, site);
}

void Runtime::post_lock(ThreadId tid, LockId lock, LockMode mode,
                        support::SiteId site) {
  auto& held = thread(tid).held;
  auto it = std::find_if(held.begin(), held.end(),
                         [&](const HeldLock& h) { return h.lock == lock; });
  if (it != held.end()) {
    ++it->count;
    // Upgrades are not modelled; keep the strongest mode seen.
    if (mode == LockMode::Exclusive) it->mode = LockMode::Exclusive;
  } else {
    held.push_back(HeldLock{lock, mode, 1});
  }
  for (Tool* t : tools_) t->on_post_lock(tid, lock, mode, site);
}

void Runtime::unlock(ThreadId tid, LockId lock, support::SiteId site) {
  ++sync_events_;
  auto& held = thread(tid).held;
  auto it = std::find_if(held.begin(), held.end(),
                         [&](const HeldLock& h) { return h.lock == lock; });
  RG_ASSERT_MSG(it != held.end(), "unlock of a lock not held");
  if (--it->count == 0) {
    *it = held.back();
    held.pop_back();
  }
  for (Tool* t : tools_) t->on_unlock(tid, lock, site);
}

const support::small_vector<HeldLock, 4>& Runtime::held_locks(
    ThreadId tid) const {
  return thread(tid).held;
}

std::string_view Runtime::lock_name(LockId lock) const {
  RG_ASSERT(lock < locks_.size());
  return support::symbol_text(locks_[lock].name);
}

SyncId Runtime::register_sync(std::string_view name) {
  const auto id = static_cast<SyncId>(syncs_.size());
  syncs_.push_back(support::intern(name));
  return id;
}

std::string_view Runtime::sync_name(SyncId id) const {
  RG_ASSERT(id < syncs_.size());
  return support::symbol_text(syncs_[id]);
}

void Runtime::cond_signal(ThreadId tid, SyncId cond, support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_cond_signal(tid, cond, site);
}

void Runtime::cond_wait_return(ThreadId tid, SyncId cond, LockId lock,
                               support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_cond_wait_return(tid, cond, lock, site);
}

void Runtime::sem_post(ThreadId tid, SyncId sem, std::uint64_t token,
                       support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_sem_post(tid, sem, token, site);
}

void Runtime::sem_wait_return(ThreadId tid, SyncId sem, std::uint64_t token,
                              support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_sem_wait_return(tid, sem, token, site);
}

void Runtime::queue_put(ThreadId tid, SyncId queue, std::uint64_t token,
                        support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_queue_put(tid, queue, token, site);
}

void Runtime::queue_get(ThreadId tid, SyncId queue, std::uint64_t token,
                        support::SiteId site) {
  ++sync_events_;
  for (Tool* t : tools_) t->on_queue_get(tid, queue, token, site);
}

void Runtime::access(const MemoryAccess& a) {
  ++access_events_;
  for (Tool* t : tools_) t->on_access(a);
}

void Runtime::alloc(ThreadId tid, Addr addr, std::uint32_t size,
                    support::SiteId site) {
  AllocInfo info{addr, size, site, tid, ++alloc_seq_};
  live_allocs_[addr] = info;
  for (Tool* t : tools_) t->on_alloc(tid, addr, size, site);
}

void Runtime::free(ThreadId tid, Addr addr, support::SiteId site) {
  auto it = live_allocs_.find(addr);
  RG_ASSERT_MSG(it != live_allocs_.end(), "free of unknown allocation");
  const std::uint32_t size = it->second.size;
  dead_allocs_[addr] = it->second;
  live_allocs_.erase(it);
  for (Tool* t : tools_) t->on_free(tid, addr, size, site);
}

void Runtime::destruct_annotation(ThreadId tid, Addr addr, std::uint32_t size,
                                  support::SiteId site) {
  for (Tool* t : tools_) t->on_destruct_annotation(tid, addr, size, site);
}

AddrOrigin Runtime::origin_of(Addr addr) const {
  AddrOrigin out;
  auto locate = [&](const std::map<Addr, AllocInfo>& allocs) -> bool {
    auto it = allocs.upper_bound(addr);
    if (it == allocs.begin()) return false;
    --it;
    const AllocInfo& a = it->second;
    if (addr >= a.base + a.size) return false;
    out.known = true;
    out.offset = addr - a.base;
    out.alloc = a;
    return true;
  };
  if (!locate(live_allocs_)) locate(dead_allocs_);
  return out;
}

void Runtime::push_frame(ThreadId tid, support::SiteId site) {
  thread(tid).stack.push_back(site);
}

void Runtime::pop_frame(ThreadId tid) {
  auto& stack = thread(tid).stack;
  RG_ASSERT_MSG(!stack.empty(), "frame pop on empty shadow stack");
  stack.pop_back();
}

std::vector<support::SiteId> Runtime::stack_of(ThreadId tid) const {
  const auto& stack = thread(tid).stack;
  std::vector<support::SiteId> out(stack.size());
  // Innermost first, like a backtrace.
  for (std::size_t i = 0; i < stack.size(); ++i)
    out[i] = stack[stack.size() - 1 - i];
  return out;
}

void Runtime::finish() {
  for (Tool* t : tools_) t->on_finish();
}

ToolStats Runtime::tool_stats() const {
  ToolStats total;
  for (const Tool* t : tools_) total += t->stats();
  return total;
}

}  // namespace rg::rt
