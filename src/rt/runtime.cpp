#include "rt/runtime.hpp"

#include <algorithm>

namespace rg::rt {

std::string AddrOrigin::describe() const {
  if (!known) return "in unallocated or untracked memory";
  std::string out = "is " + std::to_string(offset) +
                    " bytes inside a block of size " +
                    std::to_string(alloc.size) + " alloc'd by thread " +
                    std::to_string(alloc.thread) + " at " +
                    support::global_sites().describe(alloc.site);
  return out;
}

Runtime::Runtime() = default;

void Runtime::attach(Tool& tool) {
  tools_.push_back(&tool);
  // Register the row before on_attach: a tool that creates locks in its
  // attach hook re-enters dispatch() and needs its profiler cell to exist.
  if (profiler_ != nullptr) profiler_->register_tool(tool.name());
  tool.on_attach(*this);
}

void Runtime::set_profiler(obs::HookProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ == nullptr) return;
  for (const Tool* t : tools_) profiler_->register_tool(t->name());
}

ThreadId Runtime::register_thread(std::string_view name, ThreadId parent,
                                  support::SiteId site) {
  const auto tid = static_cast<ThreadId>(threads_.size());
  ThreadInfo info;
  info.name = std::string(name);
  info.parent = parent;
  threads_.push_back(std::move(info));
  if (recorder_ != nullptr) {
    recorder_->note_thread_name(tid, std::string(name));
    recorder_->record_now(obs::EventKind::ThreadStart, tid, parent, 0, site);
  }
  dispatch(obs::Hook::ThreadStart,
           [&](Tool* t) { t->on_thread_start(tid, parent, site); });
  return tid;
}

void Runtime::thread_exited(ThreadId tid) {
  thread(tid).alive = false;
  trace(obs::EventKind::ThreadExit, tid, 0, 0);
  dispatch(obs::Hook::ThreadExit, [&](Tool* t) { t->on_thread_exit(tid); });
}

void Runtime::thread_joined(ThreadId joiner, ThreadId joined,
                            support::SiteId site) {
  trace(obs::EventKind::ThreadJoin, joiner, joined, 0, site);
  dispatch(obs::Hook::ThreadJoin,
           [&](Tool* t) { t->on_thread_join(joiner, joined, site); });
}

std::string_view Runtime::thread_name(ThreadId tid) const {
  return thread(tid).name;
}

bool Runtime::thread_alive(ThreadId tid) const { return thread(tid).alive; }

LockId Runtime::register_lock(std::string_view name, bool is_rw) {
  const auto id = static_cast<LockId>(locks_.size());
  locks_.push_back(LockInfo{support::intern(name), is_rw, true});
  if (recorder_ != nullptr) {
    recorder_->note_lock_name(id, std::string(name));
    recorder_->record_now(obs::EventKind::LockCreate, kNoThread, id,
                          is_rw ? 1 : 0);
  }
  dispatch(obs::Hook::LockCreate,
           [&, name_sym = locks_.back().name](Tool* t) {
             t->on_lock_create(id, name_sym, is_rw);
           });
  return id;
}

void Runtime::lock_destroyed(LockId lock) {
  RG_ASSERT(lock < locks_.size());
  locks_[lock].alive = false;
  trace(obs::EventKind::LockDestroy, kNoThread, lock, 0);
  dispatch(obs::Hook::LockDestroy, [&](Tool* t) { t->on_lock_destroy(lock); });
}

void Runtime::pre_lock(ThreadId tid, LockId lock, LockMode mode,
                       support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::PreLock, tid, lock, 0, site,
        static_cast<std::uint8_t>(mode));
  dispatch(obs::Hook::PreLock,
           [&](Tool* t) { t->on_pre_lock(tid, lock, mode, site); });
}

void Runtime::post_lock(ThreadId tid, LockId lock, LockMode mode,
                        support::SiteId site) {
  auto& held = thread(tid).held;
  auto it = std::find_if(held.begin(), held.end(),
                         [&](const HeldLock& h) { return h.lock == lock; });
  if (it != held.end()) {
    ++it->count;
    // Upgrades are not modelled; keep the strongest mode seen.
    if (mode == LockMode::Exclusive) it->mode = LockMode::Exclusive;
  } else {
    held.push_back(HeldLock{lock, mode, 1});
  }
  trace(obs::EventKind::PostLock, tid, lock, 0, site,
        static_cast<std::uint8_t>(mode));
  dispatch(obs::Hook::PostLock,
           [&](Tool* t) { t->on_post_lock(tid, lock, mode, site); });
}

void Runtime::unlock(ThreadId tid, LockId lock, support::SiteId site) {
  ++sync_events_;
  auto& held = thread(tid).held;
  auto it = std::find_if(held.begin(), held.end(),
                         [&](const HeldLock& h) { return h.lock == lock; });
  RG_ASSERT_MSG(it != held.end(), "unlock of a lock not held");
  if (--it->count == 0) {
    *it = held.back();
    held.pop_back();
  }
  trace(obs::EventKind::Unlock, tid, lock, 0, site);
  dispatch(obs::Hook::Unlock, [&](Tool* t) { t->on_unlock(tid, lock, site); });
}

const support::small_vector<HeldLock, 4>& Runtime::held_locks(
    ThreadId tid) const {
  return thread(tid).held;
}

std::string_view Runtime::lock_name(LockId lock) const {
  RG_ASSERT(lock < locks_.size());
  return support::symbol_text(locks_[lock].name);
}

SyncId Runtime::register_sync(std::string_view name) {
  const auto id = static_cast<SyncId>(syncs_.size());
  syncs_.push_back(support::intern(name));
  return id;
}

std::string_view Runtime::sync_name(SyncId id) const {
  RG_ASSERT(id < syncs_.size());
  return support::symbol_text(syncs_[id]);
}

void Runtime::cond_signal(ThreadId tid, SyncId cond, support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::CondSignal, tid, cond, 0, site);
  dispatch(obs::Hook::CondSignal,
           [&](Tool* t) { t->on_cond_signal(tid, cond, site); });
}

void Runtime::cond_wait_return(ThreadId tid, SyncId cond, LockId lock,
                               support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::CondWait, tid, cond, lock, site);
  dispatch(obs::Hook::CondWait,
           [&](Tool* t) { t->on_cond_wait_return(tid, cond, lock, site); });
}

void Runtime::sem_post(ThreadId tid, SyncId sem, std::uint64_t token,
                       support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::SemPost, tid, sem, token, site);
  dispatch(obs::Hook::SemPost,
           [&](Tool* t) { t->on_sem_post(tid, sem, token, site); });
}

void Runtime::sem_wait_return(ThreadId tid, SyncId sem, std::uint64_t token,
                              support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::SemWait, tid, sem, token, site);
  dispatch(obs::Hook::SemWait,
           [&](Tool* t) { t->on_sem_wait_return(tid, sem, token, site); });
}

void Runtime::queue_put(ThreadId tid, SyncId queue, std::uint64_t token,
                        support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::QueuePut, tid, queue, token, site);
  dispatch(obs::Hook::QueuePut,
           [&](Tool* t) { t->on_queue_put(tid, queue, token, site); });
}

void Runtime::queue_get(ThreadId tid, SyncId queue, std::uint64_t token,
                        support::SiteId site) {
  ++sync_events_;
  trace(obs::EventKind::QueueGet, tid, queue, token, site);
  dispatch(obs::Hook::QueueGet,
           [&](Tool* t) { t->on_queue_get(tid, queue, token, site); });
}

void Runtime::access(const MemoryAccess& a) {
  // Deliberately not traced here: with the schedule, sync ops and
  // allocations recorded, raw accesses are a deterministic function of the
  // program — re-recording each would add the dominant cost of the stream
  // but no information. The detector records the accesses that matter (the
  // ones that change shadow state) as EventKind::Access from its hook.
  ++access_events_;
  dispatch(obs::Hook::Access, [&](Tool* t) { t->on_access(a); });
}

void Runtime::alloc(ThreadId tid, Addr addr, std::uint32_t size,
                    support::SiteId site) {
  AllocInfo info{addr, size, site, tid, ++alloc_seq_};
  live_allocs_[addr] = info;
  ident_table_.insert(addr, size, info.seq);
  trace_addr(obs::EventKind::Alloc, tid, addr, size, site);
  dispatch(obs::Hook::Alloc,
           [&](Tool* t) { t->on_alloc(tid, addr, size, site); });
}

void Runtime::free(ThreadId tid, Addr addr, support::SiteId site) {
  auto it = live_allocs_.find(addr);
  RG_ASSERT_MSG(it != live_allocs_.end(), "free of unknown allocation");
  const std::uint32_t size = it->second.size;
  // Trace while the allocation is still live so the event carries the
  // allocation-seq identity, matching the block's accesses.
  trace_addr(obs::EventKind::Free, tid, addr, size, site);
  dead_allocs_[addr] = it->second;
  live_allocs_.erase(it);
  ident_table_.erase(addr, size);
  if (addr == ident_base_) ident_size_ = 0;
  dispatch(obs::Hook::Free,
           [&](Tool* t) { t->on_free(tid, addr, size, site); });
}

void Runtime::destruct_annotation(ThreadId tid, Addr addr, std::uint32_t size,
                                  support::SiteId site) {
  trace_addr(obs::EventKind::Destruct, tid, addr, size, site);
  dispatch(obs::Hook::Destruct,
           [&](Tool* t) { t->on_destruct_annotation(tid, addr, size, site); });
}

void IdentTable::put(std::uint64_t key, Addr base, std::uint32_t size,
                     std::uint64_t seq) {
  if ((count_ + 1) * 10 >= slots_.size() * 7) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash(key) & mask;
  while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask;
  if (slots_[i].key == 0) ++count_;
  slots_[i] = Slot{key, base, seq, size};
}

void IdentTable::drop(std::uint64_t key) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash(key) & mask;
  while (slots_[i].key != key) {
    if (slots_[i].key == 0) return;
    i = (i + 1) & mask;
  }
  // Backward-shift deletion: close the hole by pulling back any later
  // entry of the probe chain that may no longer be reachable across it.
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (slots_[j].key == 0) break;
    const std::size_t home = hash(slots_[j].key) & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      slots_[i] = slots_[j];
      i = j;
    }
  }
  slots_[i] = Slot{};
  --count_;
}

void IdentTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.key == 0) continue;
    std::size_t i = hash(s.key) & mask;
    while (slots_[i].key != 0) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

void IdentTable::insert(Addr base, std::uint32_t size, std::uint64_t seq) {
  if (size == 0) return;
  const std::uint64_t g1 = (base + size - 1) >> 4;
  for (std::uint64_t g = base >> 4; g <= g1; ++g) put(g, base, size, seq);
}

void IdentTable::erase(Addr base, std::uint32_t size) {
  if (size == 0) return;
  const std::uint64_t g1 = (base + size - 1) >> 4;
  for (std::uint64_t g = base >> 4; g <= g1; ++g) drop(g);
}

AddrOrigin Runtime::origin_of(Addr addr) const {
  AddrOrigin out;
  auto locate = [&](const std::map<Addr, AllocInfo>& allocs) -> bool {
    auto it = allocs.upper_bound(addr);
    if (it == allocs.begin()) return false;
    --it;
    const AllocInfo& a = it->second;
    if (addr >= a.base + a.size) return false;
    out.known = true;
    out.offset = addr - a.base;
    out.alloc = a;
    return true;
  };
  if (!locate(live_allocs_)) locate(dead_allocs_);
  return out;
}

void Runtime::push_frame(ThreadId tid, support::SiteId site) {
  thread(tid).stack.push_back(site);
}

void Runtime::pop_frame(ThreadId tid) {
  auto& stack = thread(tid).stack;
  RG_ASSERT_MSG(!stack.empty(), "frame pop on empty shadow stack");
  stack.pop_back();
}

std::vector<support::SiteId> Runtime::stack_of(ThreadId tid) const {
  const auto& stack = thread(tid).stack;
  std::vector<support::SiteId> out(stack.size());
  // Innermost first, like a backtrace.
  for (std::size_t i = 0; i < stack.size(); ++i)
    out[i] = stack[stack.size() - 1 - i];
  return out;
}

void Runtime::finish() {
  dispatch(obs::Hook::Finish, [&](Tool* t) { t->on_finish(); });
}

ToolStats Runtime::tool_stats() const {
  ToolStats total;
  for (const Tool* t : tools_) total += t->stats();
  return total;
}

}  // namespace rg::rt
