// Identifier vocabulary shared by the runtime, the shadow state and the
// detection tools.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>

#include "support/site.hpp"

namespace rg::rt {

/// Dense thread id; the initial (main) simulated thread is 0.
using ThreadId = std::uint32_t;
constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();
constexpr ThreadId kMainThread = 0;

/// Dense id for a lock object (mutex or rw-mutex).
using LockId = std::uint32_t;
constexpr LockId kNoLock = std::numeric_limits<LockId>::max();

/// Dense id for non-lock synchronisation objects (condvars, semaphores,
/// message queues).
using SyncId = std::uint32_t;

/// Byte address in the program under test. Tracked cells use their real
/// object address, so shadow memory maps genuine pointers.
using Addr = std::uint64_t;

/// How a lock is held. Shared is the read side of a rw-lock (and, in the
/// HWLC model, the implicit read side of the hardware bus lock).
enum class LockMode : std::uint8_t { Exclusive, Shared };

enum class AccessKind : std::uint8_t { Read, Write };

/// A single memory access event as seen by a detection tool.
struct MemoryAccess {
  ThreadId thread = kNoThread;
  Addr addr = 0;
  std::uint32_t size = 0;
  AccessKind kind = AccessKind::Read;
  /// True when the access carries the x86 LOCK prefix (bus-locked RMW).
  /// Per the i386 specification only writes ever carry it.
  bool bus_locked = false;
  support::SiteId site = support::kUnknownSite;
};

inline const char* to_string(AccessKind k) {
  return k == AccessKind::Read ? "read" : "write";
}

inline const char* to_string(LockMode m) {
  return m == LockMode::Exclusive ? "exclusive" : "shared";
}

/// Interns a std::source_location into the global site registry. The
/// instrumented API takes defaulted source_location parameters so every
/// event carries the client code position, like Valgrind's debug-info
/// lookup does for Helgrind.
inline support::SiteId site_of(const std::source_location& loc) {
  return support::site_id(loc.function_name(), loc.file_name(), loc.line());
}

}  // namespace rg::rt

