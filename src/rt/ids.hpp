// Identifier vocabulary shared by the runtime, the shadow state and the
// detection tools.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>

#include "support/site.hpp"

namespace rg::rt {

/// Dense thread id; the initial (main) simulated thread is 0.
using ThreadId = std::uint32_t;
constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();
constexpr ThreadId kMainThread = 0;

/// Dense id for a lock object (mutex or rw-mutex).
using LockId = std::uint32_t;
constexpr LockId kNoLock = std::numeric_limits<LockId>::max();

/// Dense id for non-lock synchronisation objects (condvars, semaphores,
/// message queues).
using SyncId = std::uint32_t;

/// Byte address in the program under test. Tracked cells use their real
/// object address, so shadow memory maps genuine pointers.
using Addr = std::uint64_t;

/// How a lock is held. Shared is the read side of a rw-lock (and, in the
/// HWLC model, the implicit read side of the hardware bus lock).
enum class LockMode : std::uint8_t { Exclusive, Shared };

enum class AccessKind : std::uint8_t { Read, Write };

/// A single memory access event as seen by a detection tool.
struct MemoryAccess {
  ThreadId thread = kNoThread;
  Addr addr = 0;
  std::uint32_t size = 0;
  AccessKind kind = AccessKind::Read;
  /// True when the access carries the x86 LOCK prefix (bus-locked RMW).
  /// Per the i386 specification only writes ever carry it.
  bool bus_locked = false;
  support::SiteId site = support::kUnknownSite;
};

inline const char* to_string(AccessKind k) {
  return k == AccessKind::Read ? "read" : "write";
}

inline const char* to_string(LockMode m) {
  return m == LockMode::Exclusive ? "exclusive" : "shared";
}

/// Interns a std::source_location into the global site registry. The
/// instrumented API takes defaulted source_location parameters so every
/// event carries the client code position, like Valgrind's debug-info
/// lookup does for Helgrind.
inline support::SiteId site_of(const std::source_location& loc) {
  // Per-thread memo keyed by the location's string-literal pointers (stable
  // per call site): repeat events skip the interner and registry locks.
  // Distinct literals with equal text fall through to site_id(), which
  // dedupes by content, so collisions only cost a probe — never a wrong id.
  struct CacheEntry {
    const char* function = nullptr;
    const char* file = nullptr;
    std::uint32_t line = 0;
    support::SiteId id = 0;
  };
  constexpr std::size_t kSlots = 512;  // power of two
  thread_local CacheEntry cache[kSlots];
  const char* function = loc.function_name();
  const char* file = loc.file_name();
  const std::uint32_t line = loc.line();
  const std::size_t h =
      (reinterpret_cast<std::uintptr_t>(function) >> 4) * 31u ^
      (reinterpret_cast<std::uintptr_t>(file) >> 4) ^ line;
  CacheEntry& e = cache[h & (kSlots - 1)];
  if (e.function == function && e.file == file && e.line == line) return e.id;
  const support::SiteId id = support::site_id(function, file, line);
  e = CacheEntry{function, file, line, id};
  return id;
}

}  // namespace rg::rt

