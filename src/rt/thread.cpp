#include "rt/thread.hpp"

#include <chrono>
#include <utility>

#include "support/assert.hpp"

namespace rg::rt {

thread::thread(std::function<void()> fn, std::string_view name,
               const std::source_location& loc) {
  sim_ = Sim::current();
  joined_ = false;
  if (sim_ == nullptr) {
    native_ = std::thread(std::move(fn));
    return;
  }
  if (sim_->sched().tearing_down()) {
    // Unwind tolerance: no new threads during teardown.
    joined_ = true;
    return;
  }
  const ThreadId parent = Sim::current_thread();
  const support::SiteId site = site_of(loc);
  tid_ = sim_->runtime().register_thread(name, parent, site);
  Sim* sim = sim_;
  const ThreadId tid = tid_;
  sim_->sched().spawn(tid_, [sim, tid, fn = std::move(fn)] {
    fn();
    sim->runtime().thread_exited(tid);
  });
}

thread::thread(thread&& other) noexcept
    : sim_(other.sim_),
      tid_(other.tid_),
      joined_(other.joined_),
      native_(std::move(other.native_)) {
  other.joined_ = true;
  other.sim_ = nullptr;
  other.tid_ = kNoThread;
}

thread& thread::operator=(thread&& other) noexcept {
  if (this != &other) {
    RG_ASSERT_MSG(joined_, "assigning over an unjoined thread");
    sim_ = other.sim_;
    tid_ = other.tid_;
    joined_ = other.joined_;
    native_ = std::move(other.native_);
    other.joined_ = true;
    other.sim_ = nullptr;
    other.tid_ = kNoThread;
  }
  return *this;
}

thread::~thread() {
  if (!joined_) join();
}

bool thread::joinable() const { return !joined_; }

void thread::join(const std::source_location& loc) {
  RG_ASSERT_MSG(!joined_, "join of a joined/empty thread");
  joined_ = true;
  if (sim_ == nullptr) {
    native_.join();
    return;
  }
  sim_->sched().wait_finish(tid_);
  if (sim_->sched().tearing_down()) return;
  sim_->runtime().thread_joined(Sim::current_thread(), tid_, site_of(loc));
}

void thread::detach() {
  RG_ASSERT_MSG(!joined_, "detach of a joined/empty thread");
  joined_ = true;
  if (sim_ == nullptr) native_.detach();
  // Under a Sim the scheduler drains unjoined threads at end of run.
}

void yield() {
  if (Sim* sim = Sim::current()) {
    sim->sched().preempt();
  } else {
    std::this_thread::yield();
  }
}

void sleep_ticks(std::uint64_t ticks) {
  if (Sim* sim = Sim::current()) {
    sim->sched().sleep(ticks);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ticks));
  }
}

}  // namespace rg::rt
