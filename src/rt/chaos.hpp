// Deterministic fault injection — the chaos layer of the robustness tier.
//
// C11Tester-style reproducibility: every adverse event (message drop,
// duplication, delay, reordering, thread stall) is a pure function of a
// user-visible seed and stable identifiers, never of wall-clock time or of
// the order in which threads happen to ask. Under a Sim the injected delays
// and stalls are spent in *virtual* time, so the same (scheduler seed,
// chaos seed) pair replays an adverse execution bit-identically — including
// the injection trace, which records what was injected, where, and at what
// virtual instant.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/prng.hpp"

namespace rg::rt {

/// What the plan decided to do to one delivery attempt.
enum class FaultKind : std::uint8_t {
  Drop,       // the message never reaches the server
  Duplicate,  // the message arrives twice (UDP duplication)
  Delay,      // delivery is postponed by some virtual ticks
  Reorder,    // a batch is delivered in a permuted order
  Stall,      // the injecting thread sleeps at an injection point
  // Proxy <-> upstream hop (the forwarding path of the resilience layer).
  UpstreamDrop,   // request or response lost: the attempt times out
  UpstreamDelay,  // upstream answers late by some virtual ticks
  UpstreamError,  // upstream answers 500 Server Internal Error
  UpstreamStall,  // the forwarding worker stalls mid-attempt
};

const char* to_string(FaultKind kind);

/// Chaos intensity knobs. All probabilities are per-mille so configurations
/// are exact integers (no float drift across platforms). Zero everywhere
/// means the engine is a transparent pass-through.
struct ChaosConfig {
  std::uint64_t seed = 1;

  std::uint32_t drop_permille = 0;
  std::uint32_t duplicate_permille = 0;
  std::uint32_t delay_permille = 0;
  /// Injected delays are uniform in [1, max_delay_ticks] virtual ticks.
  std::uint64_t max_delay_ticks = 200;
  /// Probability that a batch of messages is delivered in permuted order.
  std::uint32_t reorder_permille = 0;
  std::uint32_t stall_permille = 0;
  /// Injected stalls are uniform in [1, max_stall_ticks] virtual ticks.
  std::uint64_t max_stall_ticks = 50;

  // --- proxy <-> upstream hop --------------------------------------------
  // The client-hop knobs above shape traffic the UA sends at the proxy; the
  // knobs below shape the proxy's own forwarding attempts at its upstream
  // targets. They are independent decision streams so a fault mix can be
  // hostile on one hop and calm on the other.
  std::uint32_t upstream_drop_permille = 0;
  std::uint32_t upstream_delay_permille = 0;
  /// Injected upstream delays are uniform in [1, upstream_max_delay_ticks].
  std::uint64_t upstream_max_delay_ticks = 80;
  /// Probability that the upstream answers 500 instead of serving.
  std::uint32_t upstream_error_permille = 0;
  std::uint32_t upstream_stall_permille = 0;
  std::uint64_t upstream_max_stall_ticks = 30;

  bool any_faults() const {
    return drop_permille != 0 || duplicate_permille != 0 ||
           delay_permille != 0 || reorder_permille != 0 ||
           stall_permille != 0;
  }

  bool any_upstream_faults() const {
    return upstream_drop_permille != 0 || upstream_delay_permille != 0 ||
           upstream_error_permille != 0 || upstream_stall_permille != 0;
  }

  /// Pass-through (used to validate the harness itself).
  static ChaosConfig none(std::uint64_t seed = 1) {
    ChaosConfig c;
    c.seed = seed;
    return c;
  }

  /// Mild UDP weather: occasional loss, duplication and jitter.
  static ChaosConfig light(std::uint64_t seed = 1) {
    ChaosConfig c;
    c.seed = seed;
    c.drop_permille = 50;
    c.duplicate_permille = 50;
    c.delay_permille = 100;
    c.max_delay_ticks = 100;
    c.reorder_permille = 200;
    return c;
  }

  /// Hostile network: heavy loss, duplication, jitter and stalls.
  static ChaosConfig heavy(std::uint64_t seed = 1) {
    ChaosConfig c;
    c.seed = seed;
    c.drop_permille = 250;
    c.duplicate_permille = 150;
    c.delay_permille = 300;
    c.max_delay_ticks = 300;
    c.reorder_permille = 500;
    c.stall_permille = 100;
    c.max_stall_ticks = 80;
    return c;
  }
};

/// The plan for one delivery attempt of one message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  std::uint64_t delay_ticks = 0;

  bool clean() const { return !drop && !duplicate && delay_ticks == 0; }
};

/// The plan for one forwarding attempt on the proxy <-> upstream hop.
struct UpstreamFault {
  bool drop = false;            // attempt times out (request/response lost)
  bool error = false;           // upstream answers 500
  std::uint64_t delay_ticks = 0;  // response latency added before answering
  std::uint64_t stall_ticks = 0;  // forwarding worker stalled mid-attempt

  bool clean() const {
    return !drop && !error && delay_ticks == 0 && stall_ticks == 0;
  }
};

/// One line of the injection trace.
struct InjectionRecord {
  std::uint64_t seq = 0;       // position in the trace
  std::uint64_t vtime = 0;     // virtual time when injected (0 natively)
  FaultKind kind = FaultKind::Drop;
  std::uint64_t target = 0;    // message / batch / stall-point id
  std::uint32_t attempt = 0;   // delivery attempt (0 = first send)
  std::uint64_t detail = 0;    // delay/stall ticks, permutation size
};

/// Seed-driven fault planner plus trace recorder.
///
/// plan() is stateless and order-independent: the decision for
/// (message, attempt) depends only on the seed, so concurrent callers can
/// consult the plan in any interleaving and still see the same faults.
/// apply()/reorder()/stall_point() additionally record what was injected;
/// under a deterministic scheduler the trace is itself reproducible.
class ChaosEngine {
 public:
  explicit ChaosEngine(const ChaosConfig& config);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  const ChaosConfig& config() const { return config_; }

  /// Pure fault plan for delivery attempt `attempt` of `message_id`.
  FaultDecision plan(std::uint64_t message_id, std::uint32_t attempt) const;

  /// plan() plus trace recording. The per-fault counters are updated too.
  FaultDecision apply(std::uint64_t message_id, std::uint32_t attempt);

  /// Pure fault plan for forwarding attempt `attempt` of `request_id` at
  /// upstream `target_id`. Like plan(), order-independent: concurrent
  /// forwarding workers can consult it in any interleaving.
  UpstreamFault plan_upstream(std::uint64_t target_id,
                              std::uint64_t request_id,
                              std::uint32_t attempt) const;

  /// plan_upstream() plus trace recording (the new fault site of the
  /// resilience layer). The trace `target` field holds the request id;
  /// `detail` packs the upstream target id in its high bits.
  UpstreamFault apply_upstream(std::uint64_t target_id,
                               std::uint64_t request_id,
                               std::uint32_t attempt);

  /// Seeded delivery order for a batch of `n` messages: identity when the
  /// reorder fault does not fire, a Fisher-Yates permutation otherwise.
  std::vector<std::size_t> delivery_order(std::uint64_t batch_id,
                                          std::size_t n);

  /// Injection point for thread stalls: with probability
  /// `stall_permille` the calling thread sleeps a seeded number of virtual
  /// ticks. Stable `point_id`s keep the plan order-independent.
  void stall_point(std::uint64_t point_id);

  // Trace access ----------------------------------------------------------
  const std::vector<InjectionRecord>& trace() const { return trace_; }
  /// Canonical one-line-per-injection rendering; two runs replay
  /// identically iff these strings are equal.
  std::string trace_text() const;

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t reordered_batches() const { return reordered_; }
  std::uint64_t stalls() const { return stalls_; }
  std::uint64_t upstream_faults() const { return upstream_faults_; }

 private:
  /// Independent decision stream for (target, attempt, salt).
  support::Xoshiro256 stream(std::uint64_t target, std::uint32_t attempt,
                             std::uint64_t salt) const;
  void record(FaultKind kind, std::uint64_t target, std::uint32_t attempt,
              std::uint64_t detail);
  static std::uint64_t now();

  ChaosConfig config_;
  mutable std::mutex mu_;  // native-mode safety; a Sim serialises anyway
  std::vector<InjectionRecord> trace_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t upstream_faults_ = 0;
};

}  // namespace rg::rt
