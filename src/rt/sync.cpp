#include "rt/sync.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rg::rt {

namespace {
/// Wakes every thread queued on a primitive; they re-check the admission
/// condition when scheduled (barging semantics, as POSIX allows).
void wake_all(Sim& sim, std::vector<ThreadId>& queue) {
  for (ThreadId tid : queue) sim.sched().unblock(tid);
  queue.clear();
}
}  // namespace

// --- mutex ------------------------------------------------------------------

mutex::mutex(std::string_view name) : name_(name), sim_(Sim::current()) {
  if (sim_ != nullptr) id_ = sim_->runtime().register_lock(name_, /*is_rw=*/false);
}

void mutex::lock(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.lock();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  const support::SiteId site = site_of(loc);
  RG_ASSERT_MSG(owner_ != me, "recursive lock of a non-recursive mutex");
  sim_->runtime().pre_lock(me, id_, LockMode::Exclusive, site);
  sim_->sched().preempt();
  while (owner_ != kNoThread) {
    wait_queue_.push_back(me);
    sim_->sched().block("waiting for mutex '" + name_ + "' held by thread " +
                            std::to_string(owner_),
                        id_);
  }
  owner_ = me;
  sim_->runtime().post_lock(me, id_, LockMode::Exclusive, site);
}

bool mutex::try_lock(const std::source_location& loc) {
  if (sim_ == nullptr) return native_.try_lock();
  if (sim_->sched().tearing_down()) return true;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  sim_->sched().preempt();
  if (owner_ != kNoThread) return false;
  const support::SiteId site = site_of(loc);
  sim_->runtime().pre_lock(me, id_, LockMode::Exclusive, site);
  owner_ = me;
  sim_->runtime().post_lock(me, id_, LockMode::Exclusive, site);
  return true;
}

void mutex::unlock(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.unlock();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  RG_ASSERT_MSG(owner_ == me, "unlock of a mutex not held by this thread");
  owner_ = kNoThread;
  sim_->runtime().unlock(me, id_, site_of(loc));
  wake_all(*sim_, wait_queue_);
  sim_->sched().preempt();
}

// --- rw_mutex ---------------------------------------------------------------

rw_mutex::rw_mutex(std::string_view name) : name_(name), sim_(Sim::current()) {
  if (sim_ != nullptr) id_ = sim_->runtime().register_lock(name_, /*is_rw=*/true);
}

void rw_mutex::lock(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.lock();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  const support::SiteId site = site_of(loc);
  sim_->runtime().pre_lock(me, id_, LockMode::Exclusive, site);
  sim_->sched().preempt();
  while (writer_ != kNoThread || !readers_.empty()) {
    wait_queue_.push_back(me);
    sim_->sched().block("waiting for write lock '" + name_ + "'", id_);
  }
  writer_ = me;
  sim_->runtime().post_lock(me, id_, LockMode::Exclusive, site);
}

void rw_mutex::lock_shared(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.lock_shared();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  const support::SiteId site = site_of(loc);
  sim_->runtime().pre_lock(me, id_, LockMode::Shared, site);
  sim_->sched().preempt();
  while (writer_ != kNoThread) {
    wait_queue_.push_back(me);
    sim_->sched().block("waiting for read lock '" + name_ + "'", id_);
  }
  readers_.push_back(me);
  sim_->runtime().post_lock(me, id_, LockMode::Shared, site);
}

void rw_mutex::unlock(const std::source_location& loc) {
  if (sim_ == nullptr) {
    // POSIX-style unified unlock is not expressible on std::shared_mutex
    // without tracking the side; native mode tracks nothing, so we require
    // the writer side convention for untracked use.
    native_.unlock();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  if (writer_ == me) {
    writer_ = kNoThread;
  } else {
    auto it = std::find(readers_.begin(), readers_.end(), me);
    RG_ASSERT_MSG(it != readers_.end(), "rwlock unlock by a non-holder");
    *it = readers_.back();
    readers_.pop_back();
  }
  sim_->runtime().unlock(me, id_, site_of(loc));
  wake_all(*sim_, wait_queue_);
  sim_->sched().preempt();
}

// --- condition_variable -------------------------------------------------------

condition_variable::condition_variable(std::string_view name)
    : name_(name), sim_(Sim::current()) {
  if (sim_ != nullptr) id_ = sim_->runtime().register_sync(name_);
}

void condition_variable::wait(mutex& m, const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.wait(m);
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  waiters_.push_back(me);
  m.unlock(loc);
  // Block until a signal removes us from the waiter queue.
  while (std::find(waiters_.begin(), waiters_.end(), me) != waiters_.end())
    sim_->sched().block("waiting on condvar '" + name_ + "'");
  m.lock(loc);
  sim_->runtime().cond_wait_return(me, id_, m.id(), site_of(loc));
}

void condition_variable::notify_one(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.notify_one();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  sim_->runtime().cond_signal(me, id_, site_of(loc));
  if (!waiters_.empty()) {
    const ThreadId woken = waiters_.front();
    waiters_.pop_front();
    sim_->sched().unblock(woken);
  }
  sim_->sched().preempt();
}

void condition_variable::notify_all(const std::source_location& loc) {
  if (sim_ == nullptr) {
    native_.notify_all();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  sim_->runtime().cond_signal(me, id_, site_of(loc));
  while (!waiters_.empty()) {
    sim_->sched().unblock(waiters_.front());
    waiters_.pop_front();
  }
  sim_->sched().preempt();
}

// --- semaphore -----------------------------------------------------------------

semaphore::semaphore(std::uint32_t initial, std::string_view name)
    : name_(name), sim_(Sim::current()), native_count_(initial) {
  if (sim_ != nullptr) {
    id_ = sim_->runtime().register_sync(name_);
    // Initial tokens have no posting thread; token 0 = unpaired.
    for (std::uint32_t i = 0; i < initial; ++i) tokens_.push_back(0);
  }
}

void semaphore::post(const std::source_location& loc) {
  if (sim_ == nullptr) {
    std::lock_guard lock(native_mu_);
    ++native_count_;
    native_cv_.notify_one();
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  const std::uint64_t token = next_token_++;
  tokens_.push_back(token);
  sim_->runtime().sem_post(me, id_, token, site_of(loc));
  wake_all(*sim_, wait_queue_);
  sim_->sched().preempt();
}

void semaphore::wait(const std::source_location& loc) {
  if (sim_ == nullptr) {
    std::unique_lock lock(native_mu_);
    native_cv_.wait(lock, [&] { return native_count_ > 0; });
    --native_count_;
    return;
  }
  if (sim_->sched().tearing_down()) return;  // unwind tolerance
  const ThreadId me = Sim::current_thread();
  sim_->sched().preempt();
  while (tokens_.empty()) {
    wait_queue_.push_back(me);
    sim_->sched().block("waiting on semaphore '" + name_ + "'");
  }
  const std::uint64_t token = tokens_.front();
  tokens_.pop_front();
  sim_->runtime().sem_wait_return(me, id_, token, site_of(loc));
}

}  // namespace rg::rt
