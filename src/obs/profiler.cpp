#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "support/table.hpp"

namespace rg::obs {

const char* to_string(Hook hook) {
  switch (hook) {
    case Hook::ThreadStart: return "thread_start";
    case Hook::ThreadExit: return "thread_exit";
    case Hook::ThreadJoin: return "thread_join";
    case Hook::LockCreate: return "lock_create";
    case Hook::LockDestroy: return "lock_destroy";
    case Hook::PreLock: return "pre_lock";
    case Hook::PostLock: return "post_lock";
    case Hook::Unlock: return "unlock";
    case Hook::CondSignal: return "cond_signal";
    case Hook::CondWait: return "cond_wait";
    case Hook::SemPost: return "sem_post";
    case Hook::SemWait: return "sem_wait";
    case Hook::QueuePut: return "queue_put";
    case Hook::QueueGet: return "queue_get";
    case Hook::Access: return "access";
    case Hook::Alloc: return "alloc";
    case Hook::Free: return "free";
    case Hook::Destruct: return "destruct";
    case Hook::Finish: return "finish";
  }
  return "?";
}

std::size_t HookProfiler::register_tool(std::string name) {
  tools_.push_back(std::move(name));
  cells_.resize(tools_.size() * kHookCount);
  return tools_.size() - 1;
}

std::uint64_t HookProfiler::total_events(std::size_t tool) const {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < kHookCount; ++h)
    n += cells_[tool * kHookCount + h].events;
  return n;
}

std::uint64_t HookProfiler::total_cycles(std::size_t tool) const {
  std::uint64_t n = 0;
  for (std::size_t h = 0; h < kHookCount; ++h)
    n += cells_[tool * kHookCount + h].cycles;
  return n;
}

std::string HookProfiler::render() const {
  support::Table table("per-tool hook profile");
  table.header({"tool", "hook", "events", "cycles", "cycles/event"});
  struct Row {
    std::size_t tool;
    Hook hook;
    std::uint64_t events;
    std::uint64_t cycles;
  };
  std::vector<Row> rows;
  for (std::size_t t = 0; t < tools_.size(); ++t) {
    for (std::size_t h = 0; h < kHookCount; ++h) {
      const Cell& c = cells_[t * kHookCount + h];
      if (c.events == 0) continue;
      rows.push_back({t, static_cast<Hook>(h), c.events, c.cycles});
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    return x.cycles > y.cycles;
  });
  for (const Row& r : rows) {
    char per[32];
    std::snprintf(per, sizeof per, "%.1f",
                  static_cast<double>(r.cycles) / static_cast<double>(r.events));
    table.add_row({tools_[r.tool], to_string(r.hook), std::to_string(r.events),
                   std::to_string(r.cycles), per});
  }
  for (std::size_t t = 0; t < tools_.size(); ++t) {
    table.add_row({tools_[t], "TOTAL", std::to_string(total_events(t)),
                   std::to_string(total_cycles(t)), ""});
  }
  return table.render();
}

void HookProfiler::export_to(MetricsRegistry& registry) const {
  for (std::size_t t = 0; t < tools_.size(); ++t) {
    const std::string base = "profiler." + tools_[t];
    for (std::size_t h = 0; h < kHookCount; ++h) {
      const Cell& c = cells_[t * kHookCount + h];
      if (c.events == 0) continue;
      const std::string hook = to_string(static_cast<Hook>(h));
      registry.counter(base + "." + hook + ".events").set(c.events);
      registry.counter(base + "." + hook + ".cycles").set(c.cycles);
    }
    registry.counter(base + ".total.events").set(total_events(t));
    registry.counter(base + ".total.cycles").set(total_cycles(t));
  }
}

}  // namespace rg::obs
