// The flight recorder — one observability spine for the whole stack.
//
// A fixed-capacity ring buffer of virtual-time-stamped binary events:
// scheduler switches, lock operations, memory accesses, chaos injections,
// circuit-breaker transitions, detector state changes and SIP transaction
// milestones all land in the same stream, in the order the (deterministic)
// scheduler produced them. Three contracts make it more than a debug aid:
//
//  * Determinism. Timestamps are scheduler virtual time, identities are
//    dense ids or interned symbols, and raw heap addresses are normalised
//    to first-appearance dense ids before they reach any output — so two
//    runs with the same seed produce byte-identical Chrome traces and an
//    identical stream hash. The hash covers *every* event ever recorded
//    (not just the survivors of ring wraparound), which makes the recorder
//    an equivalence oracle: equal hashes == the two executions raised the
//    same events in the same order.
//
//  * Bounded cost. record() is a seq bump, one slot store and a few
//    multiply-xor rounds for the stream hash; the ring never allocates
//    after construction (the address-normalisation table grows by plain
//    malloc, invisible to the detectors). No locks, no scheduling points:
//    attaching the recorder cannot perturb a schedule.
//
//  * Provenance. Every filed warning captures the recorder cursor at the
//    moment it fired; explain() walks backwards from a cursor and returns
//    the accesses on the racing address plus the lock operations of the
//    threads involved — the events that drove the lockset to ∅.
//
// The exporter emits Chrome trace-event JSON (Perfetto-loadable).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/ids.hpp"
#include "support/site.hpp"

namespace rg::obs {

enum class EventKind : std::uint8_t {
  // Scheduler / thread lifecycle.
  SchedSwitch,  // a = previous thread; tid = incoming thread
  ThreadStart,  // a = parent thread
  ThreadExit,
  ThreadJoin,   // a = joined thread
  // Locks (a = lock id; flags = LockMode for the lock ops).
  LockCreate,   // b = is_rw
  LockDestroy,
  PreLock,
  PostLock,
  Unlock,
  // Condvars / semaphores / message queues (a = sync id, b = token).
  CondSignal,
  CondWait,
  SemPost,
  SemWait,
  QueuePut,
  QueueGet,
  // Memory (a = address [normalised on export], b = size).
  Access,       // a detector-state-changing access (lockset refinement /
                // shared transition); steady-state accesses are implied by
                // the recorded schedule. flags = kAccessWrite | kAccessBusLocked
  Alloc,
  Free,
  Destruct,     // the VALGRIND_HG_DESTRUCT annotation
  // Robustness tier.
  ChaosInject,        // a = message/request id, b = detail; flags = FaultKind
  BreakerTransition,  // a = target, b = pack_breaker(from, to, cooldown)
  TxnState,           // a = interned branch symbol, b = new TxState
  // Detector milestones.
  DetectorShare,      // a = address, b = new shadow state (first share only)
  DetectorWarning,    // a = address, b = distinct locations so far
  // Lock-order graph milestones (recorded only while the lock-graph tool
  // is attached, so classic streams keep their hashes).
  DeadlockAcquire,    // a = lock being acquired, b = held-lock count
  DeadlockCycle,      // a = first lock of the predicted cycle, b = length
  Custom,
};
constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::Custom) + 1;

const char* to_string(EventKind kind);

/// Event::flags bits for EventKind::Access.
constexpr std::uint8_t kAccessWrite = 0x1;
constexpr std::uint8_t kAccessBusLocked = 0x2;

/// Packs a breaker transition into Event::b (states are 4-bit enums, the
/// cooldown dominates the low bits).
constexpr std::uint64_t pack_breaker(std::uint8_t from, std::uint8_t to,
                                     std::uint64_t cooldown) {
  return (static_cast<std::uint64_t>(from) << 60) |
         (static_cast<std::uint64_t>(to) << 56) |
         (cooldown & 0x00FF'FFFF'FFFF'FFFFull);
}

/// One recorded event. POD, 48 bytes; `norm` is the first-appearance dense
/// id of `a` for address-bearing kinds (kNoNorm otherwise) — the value the
/// hash and the exporter use instead of the raw, ASLR-dependent address.
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t vtime = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  support::SiteId site = support::kUnknownSite;
  std::uint32_t norm = 0;
  rt::ThreadId tid = rt::kNoThread;
  EventKind kind = EventKind::Custom;
  std::uint8_t flags = 0;
};

constexpr std::uint32_t kNoNorm = 0xFFFF'FFFFu;

struct RecorderConfig {
  /// Ring capacity in events; rounded up to a power of two. Wraparound
  /// overwrites the oldest events (and counts them as dropped) — a flight
  /// recorder keeps the *last* N events, like its aviation namesake.
  std::size_t capacity = 1u << 16;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const RecorderConfig& config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Virtual-time source (the scheduler's tick counter). Unset == native
  /// mode; record_now() stamps 0 then.
  void set_clock(const std::atomic<std::uint64_t>* vtime) { clock_ = vtime; }
  std::uint64_t now() const {
    return clock_ != nullptr ? clock_->load(std::memory_order_relaxed) : 0;
  }

  /// Appends one event. Single-producer (the Sim carrier thread, or one
  /// native thread); readers only run once the recording has stopped.
  ///
  /// `ident` (address-bearing kinds only): a caller-supplied stable
  /// identity for `a` — e.g. the runtime's (allocation seq, offset) pair —
  /// used *instead of* the raw address for normalisation. Heap addresses
  /// alone are not replay-stable: the allocator may reuse a freed address
  /// in one run and not in the other, which changes the first-appearance
  /// pattern even though the executions are equivalent. 0 = no identity;
  /// normalise the raw address.
  void record(EventKind kind, std::uint64_t vtime, rt::ThreadId tid,
              std::uint64_t a, std::uint64_t b,
              support::SiteId site = support::kUnknownSite,
              std::uint8_t flags = 0, std::uint64_t ident = 0);
              // (defined inline below the class: it runs on every traced
              // event, so it must inline into the runtime's hot paths)

  /// record() stamped with the clock's current virtual time.
  void record_now(EventKind kind, rt::ThreadId tid, std::uint64_t a,
                  std::uint64_t b,
                  support::SiteId site = support::kUnknownSite,
                  std::uint8_t flags = 0, std::uint64_t ident = 0) {
    record(kind, now(), tid, a, b, site, flags, ident);
  }

  // --- stream accounting ---------------------------------------------------
  /// Sequence number the *next* event will get; a warning's provenance
  /// cursor (events with seq < cursor lead up to it).
  std::uint64_t cursor() const { return next_seq_; }
  /// Total events ever recorded (== cursor()).
  std::uint64_t recorded() const { return cursor(); }
  /// Events lost to ring wraparound (recorded() - surviving).
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  std::size_t capacity() const { return capacity_; }
  /// Stream hash over every event ever recorded (address-normalised).
  /// Deterministic per seed; equal hashes == equivalent executions.
  std::uint64_t hash() const { return hash_; }

  // --- name side-tables (exporter labels; not part of the hashed stream) ---
  void note_thread_name(rt::ThreadId tid, std::string name);
  void note_lock_name(std::uint64_t lock, std::string name);
  const std::string* thread_name(rt::ThreadId tid) const;
  const std::string* lock_name(std::uint64_t lock) const;

  // --- queries (offline; run after recording stopped) ----------------------
  /// Surviving events, oldest first.
  std::vector<Event> snapshot() const;

  /// The newest `limit` events with seq < `cursor` matching `filter`,
  /// returned in chronological order.
  std::vector<Event> last_events(std::uint64_t cursor,
                                 const std::function<bool(const Event&)>& filter,
                                 std::size_t limit) const;

  /// Warning provenance, chronological: every event on the racing address
  /// with seq < `cursor` (accesses overlapping [addr, addr+size) and
  /// detector milestones — the detector records only state-changing
  /// accesses, so these are few), padded up to `limit` with the newest
  /// lock operations of the threads that made those accesses.
  std::vector<Event> explain(std::uint64_t addr, std::uint32_t size,
                             std::uint64_t cursor, std::size_t limit) const;

  /// One human-readable line for an event (sites resolved through the
  /// global registry, locks/threads through the name side-tables).
  std::string describe(const Event& e) const;

  /// Chrome trace-event JSON of the surviving events ("traceEvents"
  /// instants plus thread-name metadata). Deterministic per seed:
  /// addresses appear as their normalised ids only.
  std::string chrome_trace_json() const;

 private:
  /// Open-addressed first-appearance map: raw address -> dense id. Covers
  /// the full stream (it is consulted at record time, before wraparound can
  /// lose events), so the hash never sees a raw pointer.
  struct AddrMap {
    struct Slot {
      std::uint64_t key = 0;
      std::uint32_t id = 0;
    };
    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t size = 0;
    std::uint32_t next_id = 1;  // 0 is reserved for the null address

    AddrMap();

    /// Slot hash. The xor-fold matters: allocation-identity keys differ in
    /// bits >= 32 (the seq field), and multiply-then-mask alone would
    /// throw those bits away — every identity with the same offset would
    /// land in one linear-probe chain.
    static std::size_t slot_hash(std::uint64_t key) {
      key *= 0x9E3779B97F4A7C15ull;
      key ^= key >> 32;
      return static_cast<std::size_t>(key);
    }

    std::uint32_t id_of(std::uint64_t addr) {
      if (addr == 0) return 0;
      std::size_t i = slot_hash(addr) & mask;
      while (true) {
        Slot& s = slots[i];
        if (s.key == addr) return s.id;
        if (s.key == 0) {
          s.key = addr;
          s.id = next_id++;
          if (++size * 10 >= slots.size() * 7) grow();
          return s.id;
        }
        i = (i + 1) & mask;
      }
    }

    void grow();
  };

  static bool address_kind(EventKind kind) {
    return kind == EventKind::Access || kind == EventKind::Alloc ||
           kind == EventKind::Free || kind == EventKind::Destruct ||
           kind == EventKind::DetectorShare ||
           kind == EventKind::DetectorWarning;
  }

  std::size_t capacity_ = 0;  // power of two
  std::size_t mask_ = 0;
  std::vector<Event> ring_;
  // Plain counter, not atomic: record() is single-producer by contract and
  // a lock-prefixed increment is a full fence — it drains the store buffer
  // (busy with shadow-memory writes) on every traced event.
  std::uint64_t next_seq_ = 0;
  std::uint64_t hash_ = 0x9E3779B97F4A7C15ull;
  const std::atomic<std::uint64_t>* clock_ = nullptr;
  AddrMap addr_map_;
  std::unordered_map<std::uint32_t, std::string> thread_names_;
  std::unordered_map<std::uint64_t, std::string> lock_names_;
};

inline void FlightRecorder::record(EventKind kind, std::uint64_t vtime,
                                   rt::ThreadId tid, std::uint64_t a,
                                   std::uint64_t b, support::SiteId site,
                                   std::uint8_t flags, std::uint64_t ident) {
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t norm =
      address_kind(kind) ? addr_map_.id_of(ident != 0 ? ident : a) : kNoNorm;
  ring_[seq & mask_] = Event{seq, vtime, a, b, site, norm, tid, kind, flags};
  // Stream hash: order-sensitive polynomial accumulate over an address-
  // normalised digest of the event, so it is reproducible across runs
  // despite ASLR/heap-layout differences. The per-field multiplies are
  // independent (they pipeline); only the final accumulate extends the
  // loop-carried dependency chain.
  std::uint64_t d = vtime * 0x9E3779B97F4A7C15ull;
  d ^= ((static_cast<std::uint64_t>(kind) << 40) |
        (static_cast<std::uint64_t>(flags) << 32) | tid) *
       0xBF58476D1CE4E5B9ull;
  d ^= (norm != kNoNorm ? norm : a) * 0x94D049BB133111EBull;
  d ^= b * 0x2545F4914F6CDD1Dull;
  d ^= static_cast<std::uint64_t>(site) * 0xD6E8FEB86659FD93ull;
  d ^= d >> 32;
  hash_ = hash_ * 0xD1B54A32D192ED03ull + d;
}

/// Escapes a string for embedding in a JSON literal (quotes, backslashes,
/// control characters).
std::string json_escape(std::string_view text);

// --- ambient recorder --------------------------------------------------------
// The recorder governing the calling OS thread (simulated threads all run
// on the one carrier thread, so one thread-local covers a whole Sim).
// Installed by Sim::run around the execution; layers that are not plumbed
// through the Runtime (SIP transactions, breaker logs) record through it.
FlightRecorder* ambient();
void set_ambient(FlightRecorder* recorder);

}  // namespace rg::obs
