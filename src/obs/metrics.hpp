// MetricsRegistry — one named home for every counter in the stack.
//
// Before this subsystem the repo grew three parallel stats systems:
// `rt::ToolStats` (detector cache counters), the `sip::ProxyStats` atomic
// watermark gauges, and the `support::Accumulator` summaries the benches
// keep. The registry unifies them behind one insertion-ordered JSON
// export: tools export through `ToolStats::export_to`, the proxy's
// infra gauges are registry-backed storage with the old accessors kept as
// thin shims, and bench accumulators publish via `export_accumulator`.
//
// Counters and gauges are plain relaxed atomics — never detector-visible,
// never a scheduling point — so binding a registry cannot perturb the
// experiment event stream (the same contract the ProxyStats overload
// gauges always had). Registration takes a mutex; updates are lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rg::support {
class Accumulator;
}

namespace rg::obs {

/// Monotone counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Snapshot-style overwrite (used when mirroring an external total).
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Up/down gauge with a monotone-max helper (watermarks).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Returns the post-update value (inflight-style scopes want it).
  std::int64_t add(std::int64_t d) {
    return v_.fetch_add(d, std::memory_order_relaxed) + d;
  }
  /// Keeps the largest value ever set (CAS loop, relaxed).
  void update_max(std::int64_t v) {
    std::int64_t prev = v_.load(std::memory_order_relaxed);
    while (v > prev &&
           !v_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket catches
/// everything above the last bound. Bounds are fixed at registration so
/// exports are comparable across runs.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the overflow bucket).
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Stable addresses: entries are never removed,
  /// so a returned reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` only applies on first registration (must be ascending).
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds);

  bool has(std::string_view name) const;
  std::size_t size() const;

  /// JSON object, one entry per metric in registration order — counters
  /// and gauges as numbers, histograms as {bounds, counts, count, sum,
  /// min, max, mean}. Deterministic given the same registration and
  /// update history.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  enum class Type : std::uint8_t { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Type type = Type::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_add(std::string_view name, Type type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Publishes a bench-side support::Accumulator into the registry as
/// `<name>.count/mean/min/max/stddev` gauges — the bridge that puts the
/// third legacy stats system behind the same JSON export. Doubles are
/// scaled to microseconds (1e6) so gauges stay integral.
void export_accumulator(MetricsRegistry& registry, std::string_view name,
                        const support::Accumulator& acc);

}  // namespace rg::obs
