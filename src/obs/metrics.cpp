#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace rg::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  RG_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(std::uint64_t v) {
  const std::size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = min_.load(std::memory_order_relaxed);
  while (v < prev &&
         !min_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

MetricsRegistry::Entry& MetricsRegistry::find_or_add(std::string_view name,
                                                     Type type) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    RG_ASSERT_MSG(e.type == type, "metric re-registered with another type");
    return e;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->type = type;
  entries_.push_back(std::move(entry));
  index_[entries_.back()->name] = entries_.size() - 1;
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Entry& e = find_or_add(name, Type::Counter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Entry& e = find_or_add(name, Type::Gauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds) {
  Entry& e = find_or_add(name, Type::Histogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

bool MetricsRegistry::has(std::string_view name) const {
  std::lock_guard<std::mutex> guard(mu_);
  return index_.contains(std::string(name));
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.size();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "{";
  bool first = true;
  auto fmt_double = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  for (const auto& entry : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + entry->name + "\": ";
    switch (entry->type) {
      case Type::Counter:
        out += std::to_string(entry->counter->value());
        break;
      case Type::Gauge:
        out += std::to_string(entry->gauge->value());
        break;
      case Type::Histogram: {
        const Histogram& h = *entry->histogram;
        out += "{\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i)
          out += (i != 0 ? "," : "") + std::to_string(h.bounds()[i]);
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < h.bucket_count(); ++i)
          out += (i != 0 ? "," : "") + std::to_string(h.bucket(i));
        out += "], \"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + std::to_string(h.sum()) +
               ", \"min\": " + std::to_string(h.min()) +
               ", \"max\": " + std::to_string(h.max()) +
               ", \"mean\": " + fmt_double(h.mean()) + "}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

void export_accumulator(MetricsRegistry& registry, std::string_view name,
                        const support::Accumulator& acc) {
  const std::string base(name);
  auto micros = [](double v) {
    return static_cast<std::int64_t>(v * 1e6);
  };
  registry.gauge(base + ".count").set(static_cast<std::int64_t>(acc.count()));
  registry.gauge(base + ".mean_us").set(micros(acc.mean()));
  registry.gauge(base + ".min_us").set(micros(acc.min()));
  registry.gauge(base + ".max_us").set(micros(acc.max()));
  registry.gauge(base + ".stddev_us").set(micros(acc.stddev()));
}

}  // namespace rg::obs
