#include "obs/recorder.hpp"

#include <algorithm>
#include <iterator>

namespace rg::obs {

namespace {

thread_local FlightRecorder* g_ambient = nullptr;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder* ambient() { return g_ambient; }
void set_ambient(FlightRecorder* recorder) { g_ambient = recorder; }

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SchedSwitch: return "sched-switch";
    case EventKind::ThreadStart: return "thread-start";
    case EventKind::ThreadExit: return "thread-exit";
    case EventKind::ThreadJoin: return "thread-join";
    case EventKind::LockCreate: return "lock-create";
    case EventKind::LockDestroy: return "lock-destroy";
    case EventKind::PreLock: return "pre-lock";
    case EventKind::PostLock: return "post-lock";
    case EventKind::Unlock: return "unlock";
    case EventKind::CondSignal: return "cond-signal";
    case EventKind::CondWait: return "cond-wait";
    case EventKind::SemPost: return "sem-post";
    case EventKind::SemWait: return "sem-wait";
    case EventKind::QueuePut: return "queue-put";
    case EventKind::QueueGet: return "queue-get";
    case EventKind::Access: return "access";
    case EventKind::Alloc: return "alloc";
    case EventKind::Free: return "free";
    case EventKind::Destruct: return "destruct";
    case EventKind::ChaosInject: return "chaos-inject";
    case EventKind::BreakerTransition: return "breaker";
    case EventKind::TxnState: return "txn-state";
    case EventKind::DetectorShare: return "detector-share";
    case EventKind::DetectorWarning: return "detector-warning";
    case EventKind::DeadlockAcquire: return "deadlock-acquire";
    case EventKind::DeadlockCycle: return "deadlock-cycle";
    case EventKind::Custom: return "custom";
  }
  return "?";
}

// --- AddrMap -----------------------------------------------------------------

FlightRecorder::AddrMap::AddrMap() {
  slots.resize(1u << 12);
  mask = slots.size() - 1;
}

void FlightRecorder::AddrMap::grow() {
  std::vector<Slot> old = std::move(slots);
  slots.assign(old.size() * 2, Slot{});
  mask = slots.size() - 1;
  for (const Slot& s : old) {
    if (s.key == 0) continue;
    std::size_t i = slot_hash(s.key) & mask;
    while (slots[i].key != 0) i = (i + 1) & mask;
    slots[i] = s;
  }
}

// --- FlightRecorder ------------------------------------------------------------

FlightRecorder::FlightRecorder(const RecorderConfig& config)
    : capacity_(round_up_pow2(std::max<std::size_t>(config.capacity, 8))),
      mask_(capacity_ - 1),
      ring_(capacity_) {}

void FlightRecorder::note_thread_name(rt::ThreadId tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

void FlightRecorder::note_lock_name(std::uint64_t lock, std::string name) {
  lock_names_[lock] = std::move(name);
}

const std::string* FlightRecorder::thread_name(rt::ThreadId tid) const {
  auto it = thread_names_.find(tid);
  return it == thread_names_.end() ? nullptr : &it->second;
}

const std::string* FlightRecorder::lock_name(std::uint64_t lock) const {
  auto it = lock_names_.find(lock);
  return it == lock_names_.end() ? nullptr : &it->second;
}

std::vector<Event> FlightRecorder::snapshot() const {
  const std::uint64_t end = cursor();
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t s = begin; s < end; ++s)
    out.push_back(ring_[s & mask_]);
  return out;
}

std::vector<Event> FlightRecorder::last_events(
    std::uint64_t cursor, const std::function<bool(const Event&)>& filter,
    std::size_t limit) const {
  const std::uint64_t end = std::min(cursor, this->cursor());
  const std::uint64_t floor =
      this->cursor() > capacity_ ? this->cursor() - capacity_ : 0;
  std::vector<Event> out;
  for (std::uint64_t s = end; s > floor && out.size() < limit;) {
    const Event& e = ring_[--s & mask_];
    if (filter(e)) out.push_back(e);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Event> FlightRecorder::explain(std::uint64_t addr,
                                           std::uint32_t size,
                                           std::uint64_t cursor,
                                           std::size_t limit) const {
  const std::uint64_t hi = addr + std::max<std::uint32_t>(size, 1);
  auto overlaps = [&](const Event& e) {
    if (e.kind == EventKind::Access || e.kind == EventKind::Alloc ||
        e.kind == EventKind::Free || e.kind == EventKind::Destruct) {
      const std::uint64_t e_hi = e.a + std::max<std::uint64_t>(e.b, 1);
      return e.a < hi && addr < e_hi;
    }
    if (e.kind == EventKind::DetectorShare ||
        e.kind == EventKind::DetectorWarning)
      return e.a >= addr && e.a < hi;
    return false;
  };
  // The events on the racing address are the spine of the story (the
  // detector records state changes, not steady-state accesses, so there
  // are few): keep them all, then spend the remaining budget on the most
  // recent lock operations of the threads involved — what the lockset
  // intersection ran over.
  std::vector<Event> on_addr = last_events(cursor, overlaps, limit);
  std::vector<rt::ThreadId> tids;
  for (const Event& e : on_addr)
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end())
      tids.push_back(e.tid);
  auto lock_op = [&](const Event& e) {
    switch (e.kind) {
      case EventKind::PreLock:
      case EventKind::PostLock:
      case EventKind::Unlock:
      case EventKind::LockCreate:
        return std::find(tids.begin(), tids.end(), e.tid) != tids.end();
      default:
        return false;
    }
  };
  const std::size_t lock_budget =
      limit > on_addr.size() ? limit - on_addr.size() : 0;
  std::vector<Event> locks = last_events(cursor, lock_op, lock_budget);
  std::vector<Event> out;
  out.reserve(on_addr.size() + locks.size());
  std::merge(on_addr.begin(), on_addr.end(), locks.begin(), locks.end(),
             std::back_inserter(out),
             [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::string FlightRecorder::describe(const Event& e) const {
  std::string out = "#" + std::to_string(e.seq) + " t=" +
                    std::to_string(e.vtime) + " T" + std::to_string(e.tid);
  if (const std::string* n = thread_name(e.tid)) out += "(" + *n + ")";
  out += " ";
  out += to_string(e.kind);
  auto lock_label = [&](std::uint64_t lock) {
    std::string s = " L" + std::to_string(lock);
    if (const std::string* n = lock_name(lock)) s += "(" + *n + ")";
    return s;
  };
  switch (e.kind) {
    case EventKind::SchedSwitch:
      out += " from T" + std::to_string(e.a);
      break;
    case EventKind::ThreadStart:
      if (e.a != rt::kNoThread) out += " parent T" + std::to_string(e.a);
      break;
    case EventKind::ThreadJoin:
      out += " joined T" + std::to_string(e.a);
      break;
    case EventKind::LockCreate:
    case EventKind::LockDestroy:
      out += lock_label(e.a);
      if (e.kind == EventKind::LockCreate && e.b != 0) out += " rw";
      break;
    case EventKind::PreLock:
    case EventKind::PostLock:
    case EventKind::Unlock:
      out += lock_label(e.a);
      if (e.kind != EventKind::Unlock)
        out += e.flags != 0 ? " shared" : " exclusive";
      break;
    case EventKind::Access:
      out += (e.flags & kAccessWrite) != 0 ? " write" : " read";
      if ((e.flags & kAccessBusLocked) != 0) out += " bus-locked";
      out += " obj#" + std::to_string(e.norm) + " size " + std::to_string(e.b);
      break;
    case EventKind::Alloc:
    case EventKind::Free:
    case EventKind::Destruct:
      out += " obj#" + std::to_string(e.norm) + " size " + std::to_string(e.b);
      break;
    case EventKind::ChaosInject:
      out += " msg " + std::to_string(e.a) + " detail " + std::to_string(e.b);
      break;
    case EventKind::BreakerTransition:
      out += " target " + std::to_string(e.a) + " " +
             std::to_string(e.b >> 60) + "->" + std::to_string(e.b >> 56 & 0xF);
      break;
    case EventKind::TxnState:
      out += " txn sym" + std::to_string(e.a) + " -> state " +
             std::to_string(e.b);
      break;
    case EventKind::DetectorShare:
      out += " obj#" + std::to_string(e.norm) + " -> state " +
             std::to_string(e.b);
      break;
    case EventKind::DetectorWarning:
      out += " obj#" + std::to_string(e.norm) + " (location " +
             std::to_string(e.b) + ")";
      break;
    case EventKind::DeadlockAcquire:
      out += lock_label(e.a);
      out += " holding " + std::to_string(e.b) + " lock(s)";
      break;
    case EventKind::DeadlockCycle:
      out += " predicted cycle through" + lock_label(e.a) + " (" +
             std::to_string(e.b) + " locks)";
      break;
    default:
      out += " a=" + std::to_string(e.a) + " b=" + std::to_string(e.b);
      break;
  }
  if (e.site != support::kUnknownSite)
    out += " at " + support::global_sites().describe(e.site);
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FlightRecorder::chrome_trace_json() const {
  // Chrome trace-event format ("JSON Object Format"): metadata events name
  // the threads, every recorded event becomes a thread-scoped instant.
  // Timestamps are virtual ticks presented as microseconds. Addresses
  // appear only as their normalised ids, so two same-seed runs serialise
  // byte-identically.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += "\n" + obj;
  };

  // Thread-name metadata, in thread-id order for determinism.
  std::vector<std::pair<std::uint32_t, std::string>> names(
      thread_names_.begin(), thread_names_.end());
  std::sort(names.begin(), names.end());
  for (const auto& [tid, name] : names)
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");

  for (const Event& e : snapshot()) {
    std::string args = "\"seq\":" + std::to_string(e.seq);
    auto add_lock = [&](std::uint64_t lock) {
      args += ",\"lock\":" + std::to_string(lock);
      if (const std::string* n = lock_name(lock))
        args += ",\"lock_name\":\"" + json_escape(*n) + "\"";
    };
    std::string name = to_string(e.kind);
    const char* cat = "misc";
    switch (e.kind) {
      case EventKind::SchedSwitch:
        cat = "sched";
        args += ",\"from\":" + std::to_string(e.a);
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadExit:
      case EventKind::ThreadJoin:
        cat = "sched";
        args += ",\"other\":" + std::to_string(e.a);
        break;
      case EventKind::LockCreate:
      case EventKind::LockDestroy:
      case EventKind::PreLock:
      case EventKind::PostLock:
      case EventKind::Unlock:
        cat = "lock";
        add_lock(e.a);
        args += ",\"mode\":" + std::to_string(e.flags);
        break;
      case EventKind::CondSignal:
      case EventKind::CondWait:
      case EventKind::SemPost:
      case EventKind::SemWait:
      case EventKind::QueuePut:
      case EventKind::QueueGet:
        cat = "sync";
        args += ",\"sync\":" + std::to_string(e.a) +
                ",\"token\":" + std::to_string(e.b);
        break;
      case EventKind::Access:
      case EventKind::Alloc:
      case EventKind::Free:
      case EventKind::Destruct:
        cat = "mem";
        args += ",\"obj\":" + std::to_string(e.norm) +
                ",\"size\":" + std::to_string(e.b) +
                ",\"flags\":" + std::to_string(e.flags);
        break;
      case EventKind::ChaosInject:
        cat = "chaos";
        args += ",\"target\":" + std::to_string(e.a) +
                ",\"detail\":" + std::to_string(e.b) +
                ",\"fault\":" + std::to_string(e.flags);
        break;
      case EventKind::BreakerTransition:
        cat = "sip";
        args += ",\"target\":" + std::to_string(e.a) +
                ",\"from\":" + std::to_string(e.b >> 60) +
                ",\"to\":" + std::to_string(e.b >> 56 & 0xF) +
                ",\"cooldown\":" +
                std::to_string(e.b & 0x00FF'FFFF'FFFF'FFFFull);
        break;
      case EventKind::TxnState:
        cat = "sip";
        args += ",\"txn\":" + std::to_string(e.a) +
                ",\"state\":" + std::to_string(e.b);
        break;
      case EventKind::DetectorShare:
      case EventKind::DetectorWarning:
        cat = "detector";
        args += ",\"obj\":" + std::to_string(e.norm) +
                ",\"detail\":" + std::to_string(e.b);
        break;
      default:
        args += ",\"a\":" + std::to_string(e.a) +
                ",\"b\":" + std::to_string(e.b);
        break;
    }
    if (e.site != support::kUnknownSite)
      args += ",\"site\":\"" +
              json_escape(support::global_sites().describe(e.site)) + "\"";
    emit("{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
         std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.vtime) +
         ",\"name\":\"" + json_escape(name) + "\",\"cat\":\"" + cat +
         "\",\"args\":{" + args + "}}");
  }
  out += "\n]}\n";
  return out;
}

}  // namespace rg::obs
