// Per-tool event profiler — the runtime Fig. 5.
//
// The paper attributes the detector's slowdown to its instrumentation
// phases; this profiler produces the same attribution live. The Runtime
// wraps every tool-hook dispatch in a cycle stamp, so after a run the
// profiler holds, per attached tool and per hook, the number of events
// delivered and the cycles spent inside the tool's handler. Rendered as a
// table (tools x hooks) or exported into a MetricsRegistry.
//
// Cycle counts use the TSC on x86-64 (a steady-clock fallback elsewhere);
// they are *measurements*, not part of the deterministic trace — the
// flight-recorder hash never sees them.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace rg::obs {

class MetricsRegistry;

/// The Tool hook vocabulary (mirrors rt::Tool's virtual interface).
enum class Hook : std::uint8_t {
  ThreadStart,
  ThreadExit,
  ThreadJoin,
  LockCreate,
  LockDestroy,
  PreLock,
  PostLock,
  Unlock,
  CondSignal,
  CondWait,
  SemPost,
  SemWait,
  QueuePut,
  QueueGet,
  Access,
  Alloc,
  Free,
  Destruct,
  Finish,
};
constexpr std::size_t kHookCount = static_cast<std::size_t>(Hook::Finish) + 1;

const char* to_string(Hook hook);

/// Cheap cycle stamp for the dispatch wrapper.
inline std::uint64_t cycle_now() {
#if defined(__x86_64__) || defined(_M_X64)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class HookProfiler {
 public:
  /// Registers a tool row; returns its index. The Runtime registers tools
  /// in attach order, so indices match its tool list.
  std::size_t register_tool(std::string name);

  /// Accounts one delivered event and the cycles its handler consumed.
  void add(std::size_t tool, Hook hook, std::uint64_t cycles) {
    Cell& c = cells_[tool * kHookCount + static_cast<std::size_t>(hook)];
    ++c.events;
    c.cycles += cycles;
  }

  std::size_t tool_count() const { return tools_.size(); }
  const std::string& tool_name(std::size_t tool) const { return tools_[tool]; }
  std::uint64_t events(std::size_t tool, Hook hook) const {
    return cells_[tool * kHookCount + static_cast<std::size_t>(hook)].events;
  }
  std::uint64_t cycles(std::size_t tool, Hook hook) const {
    return cells_[tool * kHookCount + static_cast<std::size_t>(hook)].cycles;
  }
  std::uint64_t total_events(std::size_t tool) const;
  std::uint64_t total_cycles(std::size_t tool) const;

  /// Fig. 5-style table: one row per (tool, hook) with events, cycles and
  /// cycles/event, hooks that saw no events omitted, ordered by cycles.
  std::string render() const;

  /// Publishes `profiler.<tool>.<hook>.events/cycles` counters (plus
  /// per-tool totals) into the registry.
  void export_to(MetricsRegistry& registry) const;

 private:
  struct Cell {
    std::uint64_t events = 0;
    std::uint64_t cycles = 0;
  };

  std::vector<std::string> tools_;
  std::vector<Cell> cells_;  // tools_ x kHookCount, row-major
};

}  // namespace rg::obs
