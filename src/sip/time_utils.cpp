#include "sip/time_utils.hpp"

#include <cstdio>

#include "rt/memory.hpp"

namespace rg::sip {

std::string format_ticks(std::uint64_t ticks) {
  // Fictitious wall clock: ticks since epoch, rendered hh:mm:ss.mmm.
  const std::uint64_t ms = ticks % 1000;
  const std::uint64_t s = ticks / 1000 % 60;
  const std::uint64_t m = ticks / 60000 % 60;
  const std::uint64_t h = ticks / 3600000 % 24;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02llu:%02llu:%02llu.%03llu",
                static_cast<unsigned long long>(h),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(ms));
  return buf;
}

namespace {
struct StaticTimeBuffer {
  rt::access_marker marker;
  std::string text;
};
StaticTimeBuffer g_ctime_buffer;
}  // namespace

const char* unsafe_ctime(std::uint64_t ticks,
                         const std::source_location& loc) {
  // Static-data write visible to the detector: concurrent callers race.
  g_ctime_buffer.marker.write(loc);
  g_ctime_buffer.text = format_ticks(ticks);
  return g_ctime_buffer.text.c_str();
}

void safe_ctime(std::uint64_t ticks, std::string& out) {
  out = format_ticks(ticks);
}

}  // namespace rg::sip
