// Application-level deadlock handling: the seeded-racy watchdog and the
// non-racy recovery path.
//
// The paper: "Deadlocks on Mutex locks are detected by the application
// using a timeout while trying to acquire a lock inside the lock-function"
// and "one of the first reported data races was in the application's
// deadlock detection code. Unfortunately, this code was not easy to change
// … Therefore, it was disabled for further experiments." The watchdog
// below is that seeded defect: per-slot acquisition bookkeeping that
// worker threads update without synchronisation while a watchdog thread
// scans concurrently. It stays behind FaultConfig::racy_deadlock_monitor
// and exists only as detector workload — it never recovers anything.
//
// The recovery the original *claimed* to do ("a timeout while trying to
// acquire a lock inside the lock-function") is provided separately by
// with_ordered_locks_recovering(): try-lock the inner lock under a
// virtual-time deadline, and on timeout release everything, back off a
// seeded-jitter beat and retry. It is race-free (no shared bookkeeping)
// and deadlock-free by construction — the caller never blocks on the
// inner lock while holding the outer — so soak and resilience paths
// default to it instead of the watchdog.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <source_location>
#include <string>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"

namespace rg::sip {

class DeadlockMonitor {
 public:
  static constexpr std::size_t kSlots = 4;

  /// `timeout_ticks`: hold time after which the watchdog flags a slot.
  explicit DeadlockMonitor(std::uint64_t timeout_ticks = 500);
  ~DeadlockMonitor();

  /// Starts the watchdog thread. Must run inside a Sim.
  void start(const std::source_location& loc =
                 std::source_location::current());
  /// Stops and joins the watchdog.
  void stop(const std::source_location& loc =
                std::source_location::current());

  /// Workers call these around lock acquisition — unsynchronised writes,
  /// the seeded defect.
  void note_acquire(std::size_t slot, std::uint64_t now,
                    const std::source_location& loc =
                        std::source_location::current());
  void note_release(std::size_t slot,
                    const std::source_location& loc =
                        std::source_location::current());

  std::uint64_t alarms(const std::source_location& loc =
                           std::source_location::current()) const;

  bool running() const { return watchdog_.joinable(); }

  /// Non-racy recovery: locks `outer`, then try-locks `inner` until
  /// `deadline_ticks` of virtual time pass (a spin-count fallback outside
  /// a Sim). On timeout it releases `outer`, sleeps a jittered beat drawn
  /// from `jitter_seed` and retries, so an opposite-order holder can make
  /// progress. Runs `fn` with both locks held. Returns the number of
  /// back-offs taken (0 = clean nested acquisition).
  static std::uint32_t with_ordered_locks_recovering(
      rt::mutex& outer, rt::mutex& inner, std::uint64_t deadline_ticks,
      std::uint64_t jitter_seed, const std::function<void()>& fn);

 private:
  void watchdog_loop();

  struct Slot {
    rt::tracked<std::uint64_t> acquired_at;
    rt::tracked<std::uint32_t> holder;  // 0 = free, else thread id + 1
  };

  std::uint64_t timeout_ticks_;
  std::array<Slot, kSlots> slots_;
  rt::tracked<std::uint8_t> stop_flag_;
  rt::tracked<std::uint64_t> alarms_;
  rt::thread watchdog_;
};

}  // namespace rg::sip
