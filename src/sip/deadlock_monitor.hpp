// Application-level deadlock watchdog — itself racy (§4.1).
//
// The paper: "Deadlocks on Mutex locks are detected by the application
// using a timeout while trying to acquire a lock inside the lock-function"
// and "one of the first reported data races was in the application's
// deadlock detection code. Unfortunately, this code was not easy to change
// … Therefore, it was disabled for further experiments." The monitor keeps
// per-slot acquisition bookkeeping that worker threads update without
// synchronisation and a watchdog thread scans concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <source_location>
#include <string>

#include "rt/memory.hpp"
#include "rt/thread.hpp"

namespace rg::sip {

class DeadlockMonitor {
 public:
  static constexpr std::size_t kSlots = 4;

  /// `timeout_ticks`: hold time after which the watchdog flags a slot.
  explicit DeadlockMonitor(std::uint64_t timeout_ticks = 500);
  ~DeadlockMonitor();

  /// Starts the watchdog thread. Must run inside a Sim.
  void start(const std::source_location& loc =
                 std::source_location::current());
  /// Stops and joins the watchdog.
  void stop(const std::source_location& loc =
                std::source_location::current());

  /// Workers call these around lock acquisition — unsynchronised writes,
  /// the seeded defect.
  void note_acquire(std::size_t slot, std::uint64_t now,
                    const std::source_location& loc =
                        std::source_location::current());
  void note_release(std::size_t slot,
                    const std::source_location& loc =
                        std::source_location::current());

  std::uint64_t alarms(const std::source_location& loc =
                           std::source_location::current()) const;

  bool running() const { return watchdog_.joinable(); }

 private:
  void watchdog_loop();

  struct Slot {
    rt::tracked<std::uint64_t> acquired_at;
    rt::tracked<std::uint32_t> holder;  // 0 = free, else thread id + 1
  };

  std::uint64_t timeout_ticks_;
  std::array<Slot, kSlots> slots_;
  rt::tracked<std::uint8_t> stop_flag_;
  rt::tracked<std::uint64_t> alarms_;
  rt::thread watchdog_;
};

}  // namespace rg::sip
