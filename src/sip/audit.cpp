#include "sip/audit.hpp"

#include <new>

namespace rg::sip {

AuditLog::AuditLog(std::string_view name, ObjectPool& pool)
    : name_(name), pool_(pool), mu_(std::string(name) + "-mutex") {}

AuditLog::~AuditLog() {
  for (Entry* e : entries_) {
    e->~Entry();
    pool_.release(e, sizeof(Entry));
  }
}

void AuditLog::append(std::uint64_t value, std::uint32_t kind,
                      const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  auto* entry = new (pool_.acquire(sizeof(Entry))) Entry;
  entry->value.store(value);
  entry->kind.store(kind);
  entries_.push_back(entry);
}

void AuditLog::trim(std::size_t keep, const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  while (entries_.size() > keep) {
    Entry* e = entries_.front();
    entries_.pop_front();
    // Aggregate the entry into the running totals before discarding it —
    // these reads (typically from the reaper thread) are what leave the
    // recycled block in a SHARED state with this log's lockset.
    flushed_total_ += e->value.load();
    (void)e->kind.load();
    e->~Entry();
    pool_.release(e, sizeof(Entry));
  }
}

std::size_t AuditLog::size() const {
  rt::lock_guard guard(mu_);
  return entries_.size();
}

}  // namespace rg::sip
