// cow_string — a copy-on-write string with a bus-locked reference counter.
//
// Models the GNU libstdc++-v3 COW std::string of the paper's era precisely
// enough to reproduce the Figs. 8/9 false positive: copying "sometimes
// requires modifying the source object by adding the new reference" — a
// LOCK-prefixed increment — while the shareability predicates read the
// counter with plain unlocked loads. Under the mutex bus-lock model the
// lockset of the counter intersects to ∅; under the paper's rw-lock model
// it does not.
#pragma once

#include <source_location>
#include <string>
#include <string_view>

#include "rt/memory.hpp"

namespace rg::sip {

class cow_string {
 public:
  cow_string();
  explicit cow_string(
      std::string_view text,
      const std::source_location& loc = std::source_location::current());

  /// _M_grab: plain read of the refcount (leak check) followed by a
  /// bus-locked increment.
  cow_string(const cow_string& other,
             const std::source_location& loc = std::source_location::current());

  cow_string& operator=(const cow_string& other);

  cow_string(cow_string&& other) noexcept;
  cow_string& operator=(cow_string&& other) noexcept;

  /// _M_dispose: bus-locked decrement; frees the rep at zero.
  ~cow_string();

  /// Reads the character data (shared read of the rep).
  std::string str(
      const std::source_location& loc = std::source_location::current()) const;

  std::size_t size(
      const std::source_location& loc = std::source_location::current()) const;

  bool empty(
      const std::source_location& loc = std::source_location::current()) const {
    return size(loc) == 0;
  }

  /// Forces a private copy before mutation (the COW part), then appends.
  void append(
      std::string_view text,
      const std::source_location& loc = std::source_location::current());

  bool equals(
      std::string_view text,
      const std::source_location& loc = std::source_location::current()) const;

  /// Current reference count (plain read, like _M_is_shared()).
  int use_count(
      const std::source_location& loc = std::source_location::current()) const;

 private:
  struct Rep {
    rt::atomic_cell<int> refcount;
    rt::access_marker chars;
    std::string data;

    explicit Rep(std::string_view text) : refcount(1), data(text) {}
  };

  static Rep* make_rep(std::string_view text, const std::source_location& loc);
  void dispose(const std::source_location& loc);

  Rep* rep_;
};

}  // namespace rg::sip
