// SIP message model.
//
// The program under test is a Session Initiation Protocol signalling proxy
// (paper §3.3). Messages form a small polymorphic hierarchy rooted in
// rt::instrumented_object so their construction, virtual dispatch and
// destruction produce exactly the alloc / vptr-read / vptr-write event
// patterns whose misinterpretation the paper's DR improvement fixes.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "rt/memory.hpp"
#include "sip/cow_string.hpp"

namespace rg::sip {

enum class Method : std::uint8_t {
  Invite,
  Ack,
  Bye,
  Cancel,
  Options,
  Register,
  Info,
  Unknown,
};

Method parse_method(std::string_view text);
const char* to_string(Method m);

/// Canonical status phrases for the responses the proxy emits.
std::string_view reason_phrase(int status);

/// One header field. Values are cow_strings: sharing them between messages
/// and server state is what drives the reference-counter traffic of the
/// Figs. 8/9 experiment.
struct Header {
  std::string name;  // canonical lower-case
  cow_string value;
};

/// Root of the instrumented object hierarchy of the program under test.
class SipObject : public rt::instrumented_object {
 public:
  ~SipObject() override { vptr_write(); }
};

/// Per-message parse metadata (compact-form flags, framing info). A heap
/// subobject of every message: virtually dispatched whenever the message is
/// serialised and destroyed with its owner — one more destructor-chain
/// member of the §4.2.1 class.
class MessageMeta final : public SipObject {
 public:
  MessageMeta();
  ~MessageMeta() override;

  /// Notes one serialisation pass (vptr read + counter bump).
  virtual void note_serialized(
      const std::source_location& loc = std::source_location::current()) const;
  std::uint32_t serialized_count() const;

 private:
  mutable rt::tracked<std::uint32_t> serialized_;
};

class SipMessage : public SipObject {
 public:
  ~SipMessage() override;

  virtual bool is_request() const = 0;
  virtual std::string start_line() const = 0;

  void add_header(std::string_view name, cow_string value,
                  const std::source_location& loc =
                      std::source_location::current());
  bool has_header(std::string_view name,
                  const std::source_location& loc =
                      std::source_location::current()) const;
  /// Copy of the first header value with this name (empty if absent).
  cow_string header(std::string_view name,
                    const std::source_location& loc =
                        std::source_location::current()) const;
  /// Every value for a repeatable header (e.g. Via), topmost first.
  std::vector<cow_string> headers(std::string_view name,
                                  const std::source_location& loc =
                                      std::source_location::current()) const;
  /// Removes the first (topmost) header with this name; false if absent.
  bool remove_top_header(std::string_view name,
                         const std::source_location& loc =
                             std::source_location::current());
  /// Prepends a header (Via stacking).
  void push_header_front(std::string_view name, cow_string value,
                         const std::source_location& loc =
                             std::source_location::current());

  std::size_t header_count() const { return headers_.size(); }

  void set_body(cow_string body,
                const std::source_location& loc =
                    std::source_location::current());
  cow_string body(const std::source_location& loc =
                      std::source_location::current()) const;

  /// Renders the full message (start line, headers, Content-Length, body).
  std::string serialize() const;

 protected:
  SipMessage();

  std::vector<Header> headers_;
  cow_string body_;
  MessageMeta* meta_;
  /// Container interior as the detector sees it.
  mutable rt::access_marker headers_marker_;
};

class SipRequest final : public SipMessage {
 public:
  SipRequest() = default;
  SipRequest(Method method, std::string_view uri);
  ~SipRequest() override { vptr_write(); }

  bool is_request() const override;
  std::string start_line() const override;

  Method method() const { return method_; }
  std::string uri(const std::source_location& loc =
                      std::source_location::current()) const {
    return uri_.str(loc);
  }
  void set_method(Method m) { method_ = m; }
  void set_uri(cow_string uri) { uri_ = std::move(uri); }

 private:
  Method method_ = Method::Unknown;
  cow_string uri_;
};

class SipResponse final : public SipMessage {
 public:
  SipResponse() = default;
  explicit SipResponse(int status);
  SipResponse(int status, std::string_view reason);
  ~SipResponse() override { vptr_write(); }

  bool is_request() const override;
  std::string start_line() const override;

  int status() const { return status_; }
  std::string reason(const std::source_location& loc =
                         std::source_location::current()) const {
    return reason_.str(loc);
  }

 private:
  int status_ = 0;
  cow_string reason_;
};

}  // namespace rg::sip
