// Request dispatchers — the two concurrency patterns of Figs. 10/11.
//
// Thread-per-request (the proxy as measured in the paper): ownership of the
// request data passes to the worker at thread creation and back at join, so
// the thread-segment algorithm keeps it EXCLUSIVE and stays silent.
//
// Thread-pool (the planned pattern, §4.2.3): workers are created *before*
// the job data is initialised, and ownership hand-off happens through queue
// put/get operations the baseline lockset algorithm knows nothing about —
// so it reports false positives on the first worker write to each job. The
// hb_message_passing detector extension removes them.
#pragma once

#include <memory>
#include <source_location>
#include <string>
#include <vector>

#include "rt/memory.hpp"
#include "rt/queue.hpp"
#include "rt/thread.hpp"

namespace rg::sip {

class Proxy;

/// One unit of work handed to a worker.
struct Job {
  explicit Job(std::string wire_text);

  std::string wire;  // request text (immutable after construction)
  /// 0 = submitted, 1 = in progress, 2 = done. Written by producer and
  /// worker — the hand-off field the Fig. 11 warning lands on.
  rt::tracked<std::uint32_t> state;
  std::string response;
  rt::access_marker response_marker;
};

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Feeds every request through the proxy; returns the responses in
  /// arbitrary order ("" for absorbed requests like ACK).
  virtual std::vector<std::string> dispatch(Proxy& proxy,
                                            const std::vector<std::string>&
                                                wires) = 0;

  virtual const char* name() const = 0;
};

/// Fig. 10: one thread per request, joined in batches.
class ThreadPerRequestDispatcher final : public Dispatcher {
 public:
  explicit ThreadPerRequestDispatcher(std::size_t max_parallel = 8);

  std::vector<std::string> dispatch(
      Proxy& proxy, const std::vector<std::string>& wires) override;
  const char* name() const override { return "thread-per-request"; }

 private:
  std::size_t max_parallel_;
};

/// Fig. 11: a fixed worker pool fed through a message queue.
class ThreadPoolDispatcher final : public Dispatcher {
 public:
  explicit ThreadPoolDispatcher(std::size_t workers = 4);

  std::vector<std::string> dispatch(
      Proxy& proxy, const std::vector<std::string>& wires) override;
  const char* name() const override { return "thread-pool"; }

 private:
  std::size_t workers_;
};

}  // namespace rg::sip
