#include "sip/dialog.hpp"

#include "annotate/runtime.hpp"

namespace rg::sip {

MediaSession::MediaSession(cow_string sdp)
    : sdp_(std::move(sdp)), updates_(0) {}

MediaSession::~MediaSession() { vptr_write(); }

void MediaSession::update(cow_string sdp, const std::source_location& loc) {
  virtual_dispatch(loc);
  sdp_ = std::move(sdp);
  updates_.store(updates_.load() + 1);
}

cow_string MediaSession::sdp(const std::source_location& loc) const {
  virtual_dispatch(loc);
  return cow_string(sdp_);
}

std::uint32_t MediaSession::updates(const std::source_location& /*loc*/) const {
  return updates_.load();
}

BillingRecord::BillingRecord(std::uint64_t start) : start_(start), end_(0) {}

BillingRecord::~BillingRecord() { vptr_write(); }

void BillingRecord::close(std::uint64_t end, const std::source_location& loc) {
  virtual_dispatch(loc);
  end_.store(end);
}

std::uint64_t BillingRecord::duration(
    const std::source_location& /*loc*/) const {
  const std::uint64_t end = end_.load();
  const std::uint64_t start = start_.load();
  return end > start ? end - start : 0;
}

RouteSet::RouteSet(cow_string route) : route_(std::move(route)) {}

RouteSet::~RouteSet() { vptr_write(); }

cow_string RouteSet::next_hop(const std::source_location& loc) const {
  virtual_dispatch(loc);
  return cow_string(route_);
}

CallStats::CallStats() : messages_(0) {}

CallStats::~CallStats() { vptr_write(); }

void CallStats::bump(const std::source_location& loc) {
  virtual_dispatch(loc);
  messages_.store(messages_.load() + 1);
}

std::uint32_t CallStats::messages() const { return messages_.load(); }

Dialog::Dialog(std::string id, cow_string sdp, std::uint64_t now)
    : id_(std::move(id)),
      mu_("dialog-mutex:" + id_),
      state_(DialogState::Early),
      media_(new MediaSession(std::move(sdp))),
      billing_(new BillingRecord(now)),
      routes_(new RouteSet(cow_string("sip:core.example.com;lr"))),
      call_stats_(new CallStats) {}

Dialog::~Dialog() {
  vptr_write();
  delete annotate::ca_deletor_single(media_);
  delete annotate::ca_deletor_single(billing_);
  delete annotate::ca_deletor_single(routes_);
  delete annotate::ca_deletor_single(call_stats_);
}

void Dialog::confirm(const std::source_location& loc) {
  virtual_dispatch(loc);
  // The answer SDP and route set are consulted when the dialog confirms.
  (void)media_->sdp();
  (void)routes_->next_hop();
  rt::lock_guard guard(mu_);
  call_stats_->bump();
  if (state_.load() == DialogState::Early)
    state_.store(DialogState::Confirmed);
}

void Dialog::terminate(std::uint64_t now, const std::source_location& loc) {
  virtual_dispatch(loc);
  // Final SDP and route set feed the call detail record.
  (void)media_->sdp();
  (void)routes_->next_hop();
  rt::lock_guard guard(mu_);
  call_stats_->bump();
  state_.store(DialogState::Terminated);
  billing_->close(now);
}

DialogState Dialog::state(const std::source_location& /*loc*/) const {
  rt::lock_guard guard(mu_);
  return state_.load();
}

DialogTable::DialogTable() : mu_("dialog-table-mutex") {}

namespace {
/// Shared-ownership deleter carrying the Fig. 4 annotation: whichever
/// thread drops the last reference announces the destruction.
void annotated_delete(Dialog* d) { delete annotate::ca_deletor_single(d); }
}  // namespace

DialogTable::~DialogTable() { dialogs_.clear(); }

std::shared_ptr<Dialog> DialogTable::create(const std::string& id,
                                            cow_string sdp, std::uint64_t now,
                                            const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.write();
  auto it = dialogs_.find(id);
  if (it != dialogs_.end()) return it->second;
  std::shared_ptr<Dialog> d(new Dialog(id, std::move(sdp), now),
                            &annotated_delete);
  dialogs_.emplace(id, d);
  return d;
}

std::shared_ptr<Dialog> DialogTable::find(const std::string& id,
                                          const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.read();
  auto it = dialogs_.find(id);
  return it == dialogs_.end() ? nullptr : it->second;
}

bool DialogTable::terminate(const std::string& id, std::uint64_t now,
                            const std::source_location& /*loc*/) {
  RG_FRAME();
  std::shared_ptr<Dialog> d;
  {
    rt::lock_guard guard(mu_);
    marker_.write();
    auto it = dialogs_.find(id);
    if (it == dialogs_.end()) return false;
    d = std::move(it->second);
    dialogs_.erase(it);
  }
  // Terminate outside the table lock (the original's pattern: don't hold
  // the table mutex across billing teardown). The annotated delete runs
  // when the last concurrent user releases the dialog.
  d->terminate(now);
  return true;
}

void DialogTable::clear(const std::source_location& /*loc*/) {
  rt::lock_guard guard(mu_);
  marker_.write();
  dialogs_.clear();
}

std::size_t DialogTable::size() const {
  rt::lock_guard guard(mu_);
  marker_.read();
  return dialogs_.size();
}

}  // namespace rg::sip
