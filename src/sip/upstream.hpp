// Upstream resilience layer — deterministic failover under chaos.
//
// The paper's proxy forwards signalling to upstream servers that fail, time
// out and come back; this module reproduces that hop inside the simulator.
// An UpstreamPool holds N simulated targets, each wrapped in a three-state
// circuit breaker (closed -> open -> half-open with a single probe).
// Forwarding retries across targets with capped exponential backoff plus
// decorrelated jitter drawn from a seeded PRNG, bounded by a per-request
// deadline budget propagated from the client's timer B. Every sleep is spent
// in the scheduler's *virtual* time and every random draw flows from stable
// identifiers, so a (scheduler seed, chaos seed, pool seed) triple replays
// the whole adverse execution bit-identically — breaker transitions
// included. Targets are SipObject-derived and torn down concurrently at
// shutdown, feeding the §4.2.1 destructor workload.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rt/chaos.hpp"
#include "rt/sync.hpp"
#include "sip/message.hpp"
#include "support/prng.hpp"

namespace rg::sip {

class ProxyStats;
class UpstreamPool;

// --- circuit breaker ---------------------------------------------------------

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* to_string(BreakerState s);

struct BreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  std::uint32_t failure_threshold = 3;
  /// Base open cooldown; each reopen without an intervening close doubles
  /// it (capped), so a flapping target is probed less and less often.
  std::uint64_t open_cooldown_ticks = 200;
  std::uint64_t max_cooldown_ticks = 1600;
};

/// One recorded breaker transition (the soak tier asserts the log is
/// monotone: virtual time never decreases, every edge is a legal one and
/// reopen cooldowns only grow until a close resets them).
struct BreakerTransition {
  std::uint64_t vtime = 0;
  std::uint32_t target = 0;
  BreakerState from = BreakerState::Closed;
  BreakerState to = BreakerState::Closed;
  /// Cooldown armed by this transition (non-zero only when opening).
  std::uint64_t cooldown = 0;
};

/// Three-state circuit breaker. Pure state machine over an explicit clock:
/// callers pass `now` (virtual ticks) and synchronise externally (the
/// owning target's mutex), which keeps the machine unit-testable without a
/// Sim and keeps its bookkeeping out of the detector event stream.
class CircuitBreaker {
 public:
  enum class Admit : std::uint8_t {
    Allow,   // closed: request may proceed
    Probe,   // half-open: this caller carries the single probe
    Reject,  // open, or a probe is already in flight
  };

  explicit CircuitBreaker(const BreakerConfig& config);

  Admit admit(std::uint64_t now);
  void on_success(std::uint64_t now);
  void on_failure(std::uint64_t now);

  BreakerState state() const { return state_; }
  std::uint64_t open_until() const { return open_until_; }
  std::uint64_t cooldown() const { return cooldown_; }
  std::uint32_t consecutive_failures() const { return failures_; }
  /// Times this breaker opened since the last successful close.
  std::uint32_t reopen_streak() const { return opens_streak_; }

  /// Transition observer (target id is supplied by the owner).
  using Listener = void (*)(void* ctx, BreakerState from, BreakerState to,
                            std::uint64_t now, std::uint64_t cooldown);
  void set_listener(Listener listener, void* ctx) {
    listener_ = listener;
    listener_ctx_ = ctx;
  }

 private:
  void open(std::uint64_t now);
  void transition(BreakerState to, std::uint64_t now, std::uint64_t cooldown);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  std::uint32_t failures_ = 0;      // consecutive failures while closed
  std::uint32_t opens_streak_ = 0;  // opens since the last close
  std::uint64_t open_until_ = 0;
  std::uint64_t cooldown_ = 0;
  bool probe_inflight_ = false;
  Listener listener_ = nullptr;
  void* listener_ctx_ = nullptr;
};

// --- upstream targets --------------------------------------------------------

/// What one forwarding attempt at one target came back with.
struct ServeOutcome {
  bool timed_out = false;
  int status = 0;

  bool ok() const { return !timed_out && status != 0 && status < 500; }
};

struct UpstreamConfig {
  /// Simulated upstream targets; 0 disables forwarding entirely (the
  /// classic experiment paths then see a bit-identical event stream).
  std::size_t targets = 0;
  /// Seed of the backoff-jitter streams (independent of the chaos seed).
  std::uint64_t seed = 1;
  /// Attempt ceiling per request, failover included.
  std::uint32_t max_attempts = 4;
  /// One attempt times out after this many virtual ticks.
  std::uint64_t per_try_timeout_ticks = 60;
  /// Per-request deadline budget in virtual ticks; retries stop when the
  /// next backoff would overrun it. 0 = unbounded (the experiment harness
  /// propagates the ChaosClient's timer-B budget here).
  std::uint64_t request_budget_ticks = 0;
  /// Decorrelated-jitter backoff: sleep ~ U[base, min(cap, prev * 3)].
  std::uint64_t backoff_base_ticks = 8;
  std::uint64_t backoff_cap_ticks = 120;
  /// Healthy-target service latency (virtual ticks).
  std::uint64_t service_ticks = 2;
  /// Virtual-tick length of one advertised Retry-After second.
  std::uint64_t ticks_per_second = 10;
  BreakerConfig breaker;

  bool enabled() const { return targets != 0; }
};

/// One simulated upstream server. Polymorphic + shared between forwarding
/// workers + deleted concurrently at shutdown: the destructor-annotation
/// workload class of §4.2.1, now on the forwarding path.
class UpstreamTarget : public SipObject {
 public:
  UpstreamTarget(std::uint32_t id, const UpstreamConfig& config,
                 UpstreamPool* pool);
  ~UpstreamTarget() override;

  std::uint32_t id() const { return id_; }

  /// Serves one forwarding attempt, consulting the chaos engine for the
  /// proxy<->upstream fault plan. Sleeps service/fault latency in virtual
  /// time. Does not touch the breaker: the pool settles that from the
  /// outcome so the admit/serve/settle sequence stays explicit.
  virtual ServeOutcome serve(std::uint64_t request_id, std::uint32_t attempt,
                             rt::ChaosEngine* chaos);

  /// Breaker gate for one attempt (may transition open -> half-open).
  CircuitBreaker::Admit admit(std::uint64_t now);
  /// Settles the attempt the breaker admitted.
  void settle(std::uint64_t now, bool success);

  BreakerState breaker_state() const;
  std::uint64_t breaker_open_until() const;
  std::uint64_t breaker_cooldown() const;

  std::uint64_t served() const;
  std::uint64_t failed() const;

  /// The target's breaker guard, exposed for the seeded lock-order hazard
  /// scenarios. Never call the locking accessors above while holding it.
  rt::mutex& lock_handle() const { return mu_; }

 private:
  static void breaker_listener(void* ctx, BreakerState from, BreakerState to,
                               std::uint64_t now, std::uint64_t cooldown);

  std::uint32_t id_;
  const UpstreamConfig& config_;
  UpstreamPool* pool_;
  mutable rt::mutex mu_;
  CircuitBreaker breaker_;            // guarded by mu_
  rt::tracked<std::uint64_t> served_;  // guarded by mu_
  rt::tracked<std::uint64_t> failed_;  // guarded by mu_
};

// --- the pool ---------------------------------------------------------------

enum class ForwardOutcome : std::uint8_t {
  Disabled,   // no targets configured: forwarding is a pass-through
  Forwarded,  // an upstream target answered
  Exhausted,  // attempts/deadline budget spent without an answer
  AllOpen,    // every breaker rejected the request
};

const char* to_string(ForwardOutcome o);

struct ForwardResult {
  ForwardOutcome outcome = ForwardOutcome::Disabled;
  int status = 0;            // upstream answer when Forwarded
  std::uint32_t attempts = 0;
  std::uint32_t target = 0;  // serving target id when Forwarded
  bool failover = false;     // served by a retry or a non-preferred target
  /// Backoff-derived Retry-After (seconds) to advertise on a shed 503.
  std::uint32_t retry_after_s = 1;
};

/// Stable identity of a request on the upstream hop (FNV-1a of the Via
/// branch): retransmissions of one transaction re-roll nothing.
std::uint64_t request_key(std::string_view branch);

class UpstreamPool {
 public:
  UpstreamPool(const UpstreamConfig& config, ProxyStats* stats);
  ~UpstreamPool();

  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  bool enabled() const { return config_.enabled(); }
  const UpstreamConfig& config() const { return config_; }

  /// Creates the targets (no-op when disabled).
  void start();
  /// Concurrent teardown: several teardown threads delete the shared
  /// polymorphic targets with annotated deletes (§4.2.1). Idempotent.
  void shutdown();

  /// Chaos engine consulted on the proxy<->upstream hop (may be null).
  void set_chaos(rt::ChaosEngine* chaos) { chaos_ = chaos; }

  /// Forwards one request: retry with failover, capped decorrelated-jitter
  /// backoff in virtual time, per-request deadline budget.
  ForwardResult forward(std::uint64_t request_id);

  std::size_t size() const { return targets_.size(); }
  UpstreamTarget* target(std::size_t i) { return targets_[i]; }

  /// Min remaining open cooldown across targets, as advertised seconds
  /// (>= 1); the base cooldown when nothing is open.
  std::uint32_t retry_after_hint_s(std::uint64_t now) const;

  /// Trips every breaker open at `now` (tests / drills).
  void force_open_all(std::uint64_t now);

  // Breaker transition log --------------------------------------------------
  std::vector<BreakerTransition> transitions() const;
  /// Canonical rendering; two runs replay identically iff equal.
  std::string transitions_text() const;
  std::uint64_t breaker_opens() const;

 private:
  friend class UpstreamTarget;
  void record_transition(std::uint32_t target, BreakerState from,
                         BreakerState to, std::uint64_t now,
                         std::uint64_t cooldown);
  static std::uint64_t now();

  UpstreamConfig config_;
  ProxyStats* stats_;
  rt::ChaosEngine* chaos_ = nullptr;
  std::vector<UpstreamTarget*> targets_;
  // Infrastructure bookkeeping (never detector-visible, like the chaos
  // trace): a plain mutex so the log adds no scheduling points.
  mutable std::mutex log_mu_;
  std::vector<BreakerTransition> log_;
  std::uint64_t opens_ = 0;
};

/// Checks a transition log for monotonicity: non-decreasing virtual time,
/// legal edges only, per-target reopen cooldowns non-decreasing until a
/// close resets them. Fills `error` with the first violation.
bool validate_transitions(const std::vector<BreakerTransition>& log,
                          std::string* error);

}  // namespace rg::sip
