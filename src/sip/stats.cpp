#include "sip/stats.hpp"

namespace rg::sip {

ProxyStats::ProxyStats(bool unprotected, obs::MetricsRegistry* registry)
    : unprotected_(unprotected), mu_("stats-mutex") {
  if (registry == nullptr) {
    own_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_.get();
  }
  registry_ = registry;
  sheds_ = &registry_->counter("proxy.sheds");
  inflight_ = &registry_->gauge("proxy.inflight");
  tx_peak_ = &registry_->gauge("proxy.tx_peak");
  upstream_forwards_ = &registry_->counter("proxy.upstream_forwards");
  upstream_retries_ = &registry_->counter("proxy.upstream_retries");
  failovers_ = &registry_->counter("proxy.failovers");
  degraded_ = &registry_->counter("proxy.degraded_serves");
  upstream_sheds_ = &registry_->counter("proxy.upstream_sheds");
  breaker_opens_ = &registry_->counter("proxy.breaker_opens");
  too_many_hops_ = &registry_->counter("proxy.too_many_hops");
  deadlock_recoveries_ = &registry_->counter("proxy.deadlock_recoveries");
}

void ProxyStats::count_request(const std::source_location& /*loc*/) {
  guarded([&] { requests_.store(requests_.load() + 1); });
}

void ProxyStats::count_response(int status, const std::source_location& /*loc*/) {
  guarded([&] {
    if (status >= 200 && status < 300)
      responses_2xx_.store(responses_2xx_.load() + 1);
    else if (status >= 400 && status < 500)
      responses_4xx_.store(responses_4xx_.load() + 1);
    else if (status >= 500 && status < 600)
      responses_5xx_.store(responses_5xx_.load() + 1);
  });
}

void ProxyStats::count_forward(const std::source_location& /*loc*/) {
  guarded([&] { forwards_.store(forwards_.load() + 1); });
}

void ProxyStats::count_parse_error(const std::source_location& /*loc*/) {
  guarded([&] { parse_errors_.store(parse_errors_.load() + 1); });
}

std::uint64_t ProxyStats::requests(const std::source_location& /*loc*/) const {
  return requests_.load();
}
std::uint64_t ProxyStats::responses_2xx(
    const std::source_location& /*loc*/) const {
  return responses_2xx_.load();
}
std::uint64_t ProxyStats::responses_4xx(
    const std::source_location& /*loc*/) const {
  return responses_4xx_.load();
}
std::uint64_t ProxyStats::responses_5xx(
    const std::source_location& /*loc*/) const {
  return responses_5xx_.load();
}
std::uint64_t ProxyStats::forwards(const std::source_location& /*loc*/) const {
  return forwards_.load();
}
std::uint64_t ProxyStats::parse_errors(const std::source_location& /*loc*/) const {
  return parse_errors_.load();
}

void ProxyStats::publish_totals() {
  // peek(): uninstrumented snapshots, so publishing cannot add accesses to
  // the event stream — metrics-on and metrics-off runs stay bit-identical.
  registry_->counter("proxy.requests").set(requests_.peek());
  registry_->counter("proxy.responses_2xx").set(responses_2xx_.peek());
  registry_->counter("proxy.responses_4xx").set(responses_4xx_.peek());
  registry_->counter("proxy.responses_5xx").set(responses_5xx_.peek());
  registry_->counter("proxy.forwards").set(forwards_.peek());
  registry_->counter("proxy.parse_errors").set(parse_errors_.peek());
}

}  // namespace rg::sip
