#include "sip/stats.hpp"

namespace rg::sip {

ProxyStats::ProxyStats(bool unprotected)
    : unprotected_(unprotected), mu_("stats-mutex") {}

void ProxyStats::count_request(const std::source_location& /*loc*/) {
  guarded([&] { requests_.store(requests_.load() + 1); });
}

void ProxyStats::count_response(int status, const std::source_location& /*loc*/) {
  guarded([&] {
    if (status >= 200 && status < 300)
      responses_2xx_.store(responses_2xx_.load() + 1);
    else if (status >= 400 && status < 500)
      responses_4xx_.store(responses_4xx_.load() + 1);
    else if (status >= 500 && status < 600)
      responses_5xx_.store(responses_5xx_.load() + 1);
  });
}

void ProxyStats::count_forward(const std::source_location& /*loc*/) {
  guarded([&] { forwards_.store(forwards_.load() + 1); });
}

void ProxyStats::count_parse_error(const std::source_location& /*loc*/) {
  guarded([&] { parse_errors_.store(parse_errors_.load() + 1); });
}

std::uint64_t ProxyStats::requests(const std::source_location& /*loc*/) const {
  return requests_.load();
}
std::uint64_t ProxyStats::responses_2xx(
    const std::source_location& /*loc*/) const {
  return responses_2xx_.load();
}
std::uint64_t ProxyStats::responses_4xx(
    const std::source_location& /*loc*/) const {
  return responses_4xx_.load();
}
std::uint64_t ProxyStats::responses_5xx(
    const std::source_location& /*loc*/) const {
  return responses_5xx_.load();
}
std::uint64_t ProxyStats::forwards(const std::source_location& /*loc*/) const {
  return forwards_.load();
}
std::uint64_t ProxyStats::parse_errors(const std::source_location& /*loc*/) const {
  return parse_errors_.load();
}

}  // namespace rg::sip
