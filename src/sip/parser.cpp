#include "sip/parser.hpp"

#include <charconv>

#include "support/strings.hpp"

namespace rg::sip {

namespace {

using support::split_once;
using support::starts_with;
using support::trim;

/// Pops one line (up to CRLF or LF) off `rest`.
std::string_view next_line(std::string_view& rest) {
  const std::size_t nl = rest.find('\n');
  std::string_view line;
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

bool parse_status_line(std::string_view line, int& status,
                       std::string& reason) {
  // SIP/2.0 SP status SP reason
  if (!starts_with(line, "SIP/2.0 ")) return false;
  line.remove_prefix(8);
  const auto [code, rest] = split_once(line, ' ');
  std::uint32_t value = 0;
  if (!support::parse_u32(trim(code), value) || value < 100 || value > 699)
    return false;
  status = static_cast<int>(value);
  reason = std::string(trim(rest));
  return true;
}

bool parse_request_line(std::string_view line, Method& method,
                        std::string& uri) {
  const auto [method_text, rest] = split_once(line, ' ');
  const auto [uri_text, version] = split_once(rest, ' ');
  if (trim(version) != "SIP/2.0") return false;
  method = parse_method(method_text);
  uri = std::string(trim(uri_text));
  return !uri.empty();
}

}  // namespace

ParseResult parse_message(std::string_view wire) {
  ParseResult result;
  std::string_view rest = wire;
  const std::string_view start = next_line(rest);
  if (trim(start).empty()) {
    result.error = "empty start line";
    return result;
  }

  std::unique_ptr<SipMessage> msg;
  if (starts_with(start, "SIP/2.0")) {
    int status = 0;
    std::string reason;
    if (!parse_status_line(start, status, reason)) {
      result.error = "malformed status line: " + std::string(start);
      return result;
    }
    msg = std::make_unique<SipResponse>(status, reason);
  } else {
    Method method = Method::Unknown;
    std::string uri;
    if (!parse_request_line(start, method, uri)) {
      result.error = "malformed request line: " + std::string(start);
      return result;
    }
    auto req = std::make_unique<SipRequest>(method, uri);
    msg = std::move(req);
  }

  // Headers until the blank line; honour RFC 2822 folding (continuation
  // lines start with whitespace).
  std::string pending_name;
  std::string pending_value;
  auto flush = [&] {
    if (!pending_name.empty())
      msg->add_header(pending_name, cow_string(pending_value));
    pending_name.clear();
    pending_value.clear();
  };
  std::size_t content_length = 0;
  bool have_length = false;
  for (;;) {
    if (rest.empty()) break;
    const std::string_view line = next_line(rest);
    if (line.empty()) break;  // end of headers
    if (line.front() == ' ' || line.front() == '\t') {
      if (pending_name.empty()) {
        result.error = "continuation line before any header";
        return result;
      }
      pending_value += ' ';
      pending_value += trim(line);
      continue;
    }
    flush();
    const auto [name, value] = split_once(line, ':');
    if (value.data() == nullptr) {
      result.error = "header line without colon: " + std::string(line);
      return result;
    }
    pending_name = std::string(trim(name));
    pending_value = std::string(trim(value));
    if (pending_name.empty()) {
      result.error = "empty header name";
      return result;
    }
    if (support::iequals(pending_name, "content-length")) {
      std::uint32_t v = 0;
      if (!support::parse_u32(pending_value, v)) {
        result.error = "bad Content-Length: " + pending_value;
        return result;
      }
      content_length = v;
      have_length = true;
      pending_name.clear();  // framing header is regenerated on serialize
      pending_value.clear();
    }
  }
  flush();

  // Mandatory header sanity for requests (RFC 3261 8.1.1).
  if (msg->is_request()) {
    for (const char* required : {"via", "from", "to", "call-id", "cseq"}) {
      if (!msg->has_header(required)) {
        result.error = std::string("missing mandatory header: ") + required;
        return result;
      }
    }
  }

  if (have_length) {
    if (rest.size() < content_length) {
      result.error = "truncated body";
      return result;
    }
    if (content_length > 0)
      msg->set_body(cow_string(rest.substr(0, content_length)));
  } else if (!trim(rest).empty()) {
    msg->set_body(cow_string(rest));
  }

  result.message = std::move(msg);
  return result;
}

SipUri parse_uri(std::string_view text) {
  SipUri uri;
  text = trim(text);
  if (starts_with(text, "sip:")) {
    uri.scheme = "sip";
    text.remove_prefix(4);
  } else if (starts_with(text, "sips:")) {
    uri.scheme = "sips";
    text.remove_prefix(5);
  } else {
    return uri;
  }
  const auto [addr, params] = split_once(text, ';');
  uri.params = std::string(params);
  const auto [userinfo, hostport] = [&]() {
    const std::size_t at = addr.find('@');
    if (at == std::string_view::npos)
      return std::make_pair(std::string_view{}, addr);
    return std::make_pair(addr.substr(0, at), addr.substr(at + 1));
  }();
  uri.user = std::string(split_once(userinfo, ':').first);  // drop password
  const auto [host, port] = split_once(hostport, ':');
  uri.host = std::string(host);
  if (uri.host.empty()) return uri;
  if (!port.empty()) {
    std::uint32_t p = 0;
    if (!support::parse_u32(port, p) || p == 0 || p > 65535) return uri;
    uri.port = static_cast<std::uint16_t>(p);
  }
  uri.valid = true;
  return uri;
}

SipUri parse_name_addr(std::string_view value) {
  const std::size_t lt = value.find('<');
  if (lt != std::string_view::npos) {
    const std::size_t gt = value.find('>', lt);
    if (gt == std::string_view::npos) return SipUri{};
    return parse_uri(value.substr(lt + 1, gt - lt - 1));
  }
  // addr-spec form: strip header params.
  return parse_uri(split_once(value, ';').first);
}

std::string header_tag(std::string_view value) {
  // Parameters of the name-addr, after the closing '>' if present.
  const std::size_t gt = value.find('>');
  std::string_view params =
      gt == std::string_view::npos ? value : value.substr(gt + 1);
  for (std::string_view piece : support::split(params, ';')) {
    const auto [key, val] = split_once(trim(piece), '=');
    if (support::iequals(trim(key), "tag")) return std::string(trim(val));
  }
  return {};
}

CSeq parse_cseq(std::string_view text) {
  CSeq out;
  const auto [num, method] = split_once(trim(text), ' ');
  if (!support::parse_u32(trim(num), out.seq)) return out;
  out.method = parse_method(trim(method));
  out.valid = out.method != Method::Unknown;
  return out;
}

std::string via_branch(std::string_view via_value) {
  for (std::string_view piece : support::split(via_value, ';')) {
    const auto [key, val] = split_once(trim(piece), '=');
    if (support::iequals(trim(key), "branch")) return std::string(trim(val));
  }
  return {};
}

}  // namespace rg::sip
