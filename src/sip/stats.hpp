// Proxy statistics counters.
//
// With `benign_stats_races` the counters are bumped without any lock — the
// classic "benign race" triage load the paper mentions ("not always easy to
// decide whether a reported warning is a true defect, a false warning or
// just a benign race"). With the fault off, a mutex guards them.
//
// Two tiers with different contracts:
//
//  * The traffic counters (requests, responses, forwards, parse errors) are
//    rt::tracked cells — *detector-visible by design*; they are the benign-
//    race workload itself and must stay exactly as they are.
//
//  * The infra gauges (overload control, upstream resilience) are plain
//    relaxed atomics, never detector-visible and never a scheduling point.
//    Their storage now lives in an obs::MetricsRegistry — pass one via the
//    constructor to share it (one JSON export for the whole run), or let
//    ProxyStats own a private registry. The old accessors remain as thin
//    shims over the registry entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <source_location>

#include "obs/metrics.hpp"
#include "rt/memory.hpp"
#include "rt/sync.hpp"

namespace rg::sip {

class ProxyStats {
 public:
  /// `registry` receives the infra gauges (and publish_totals snapshots);
  /// nullptr = ProxyStats owns a private registry.
  explicit ProxyStats(bool unprotected,
                      obs::MetricsRegistry* registry = nullptr);

  void count_request(const std::source_location& loc =
                         std::source_location::current());
  void count_response(int status,
                      const std::source_location& loc =
                          std::source_location::current());
  void count_forward(const std::source_location& loc =
                         std::source_location::current());
  void count_parse_error(const std::source_location& loc =
                             std::source_location::current());

  // Overload-control / graceful-degradation gauges. Registry-backed relaxed
  // atomics (never detector-visible, never a scheduling point): the
  // overload machinery is correct-by-design infrastructure and must not
  // perturb the experiment event stream or add warning sites of its own.
  /// A request was shed with 503 Service Unavailable.
  void count_shed() { sheds_->inc(); }
  std::uint64_t sheds() const { return sheds_->value(); }
  /// Tracks the number of requests currently inside handle().
  std::uint32_t enter_inflight() {
    return static_cast<std::uint32_t>(inflight_->add(1));
  }
  void leave_inflight() { inflight_->add(-1); }
  std::uint32_t inflight() const {
    return static_cast<std::uint32_t>(inflight_->value());
  }
  /// Records a transaction-table size observation; keeps the peak.
  void note_transactions(std::size_t n) {
    tx_peak_->update_max(static_cast<std::int64_t>(n));
  }
  std::uint64_t transaction_peak() const {
    return static_cast<std::uint64_t>(tx_peak_->value());
  }

  // Upstream-resilience gauges (same contract as the overload set above).
  /// A request was answered by an upstream target.
  void count_upstream_forward() { upstream_forwards_->inc(); }
  std::uint64_t upstream_forwards() const {
    return upstream_forwards_->value();
  }
  /// A forwarding attempt was retried after backoff.
  void count_upstream_retry() { upstream_retries_->inc(); }
  std::uint64_t upstream_retries() const { return upstream_retries_->value(); }
  /// A request was served by a retry or a non-preferred target.
  void count_failover() { failovers_->inc(); }
  std::uint64_t failovers() const { return failovers_->value(); }
  /// Upstream unavailable but the request was served from registrar data.
  void count_degraded() { degraded_->inc(); }
  std::uint64_t degraded_serves() const { return degraded_->value(); }
  /// Upstream unavailable and nothing cached: 503 + Retry-After.
  void count_upstream_shed() { upstream_sheds_->inc(); }
  std::uint64_t upstream_sheds() const { return upstream_sheds_->value(); }
  /// A circuit breaker tripped open.
  void count_breaker_open() { breaker_opens_->inc(); }
  std::uint64_t breaker_opens() const { return breaker_opens_->value(); }
  /// A request was refused with 483 Too Many Hops.
  void count_too_many_hops() { too_many_hops_->inc(); }
  std::uint64_t too_many_hops() const { return too_many_hops_->value(); }
  /// A nested acquisition recovered from a potential deadlock: the
  /// try-lock deadline expired, held locks were released and the
  /// acquisition retried after backoff.
  void count_deadlock_recoveries(std::uint32_t n) {
    deadlock_recoveries_->inc(n);
  }
  std::uint64_t deadlock_recoveries() const {
    return deadlock_recoveries_->value();
  }

  std::uint64_t requests(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t responses_2xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t responses_4xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t responses_5xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t forwards(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t parse_errors(const std::source_location& loc =
                                 std::source_location::current()) const;

  /// Snapshots the tracked traffic counters into `proxy.requests` etc.
  /// registry counters so the JSON export covers both tiers. Reads the
  /// tracked cells — call it *outside* the simulated run (after Sim::run
  /// returns the loads are native pass-throughs with zero event traffic).
  void publish_totals();

  /// The registry holding the infra gauges (shared or private).
  obs::MetricsRegistry& registry() { return *registry_; }

 private:
  template <typename Fn>
  void guarded(Fn&& fn) {
    if (unprotected_) {
      fn();
    } else {
      rt::lock_guard guard(mu_);
      fn();
    }
  }

  bool unprotected_;
  mutable rt::mutex mu_;
  rt::tracked<std::uint64_t> requests_;
  rt::tracked<std::uint64_t> responses_2xx_;
  rt::tracked<std::uint64_t> responses_4xx_;
  rt::tracked<std::uint64_t> responses_5xx_;
  rt::tracked<std::uint64_t> forwards_;
  rt::tracked<std::uint64_t> parse_errors_;

  std::unique_ptr<obs::MetricsRegistry> own_;  // fallback storage
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* sheds_ = nullptr;
  obs::Gauge* inflight_ = nullptr;
  obs::Gauge* tx_peak_ = nullptr;
  obs::Counter* upstream_forwards_ = nullptr;
  obs::Counter* upstream_retries_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Counter* upstream_sheds_ = nullptr;
  obs::Counter* breaker_opens_ = nullptr;
  obs::Counter* too_many_hops_ = nullptr;
  obs::Counter* deadlock_recoveries_ = nullptr;
};

}  // namespace rg::sip
