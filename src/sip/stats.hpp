// Proxy statistics counters.
//
// With `benign_stats_races` the counters are bumped without any lock — the
// classic "benign race" triage load the paper mentions ("not always easy to
// decide whether a reported warning is a true defect, a false warning or
// just a benign race"). With the fault off, a mutex guards them.
#pragma once

#include <atomic>
#include <cstdint>
#include <source_location>

#include "rt/memory.hpp"
#include "rt/sync.hpp"

namespace rg::sip {

class ProxyStats {
 public:
  explicit ProxyStats(bool unprotected);

  void count_request(const std::source_location& loc =
                         std::source_location::current());
  void count_response(int status,
                      const std::source_location& loc =
                          std::source_location::current());
  void count_forward(const std::source_location& loc =
                         std::source_location::current());
  void count_parse_error(const std::source_location& loc =
                             std::source_location::current());

  // Overload-control / graceful-degradation gauges. These are plain
  // std::atomic (never detector-visible, never a scheduling point): the
  // overload machinery is correct-by-design infrastructure and must not
  // perturb the experiment event stream or add warning sites of its own.
  /// A request was shed with 503 Service Unavailable.
  void count_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }
  /// Tracks the number of requests currently inside handle().
  std::uint32_t enter_inflight() {
    return inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void leave_inflight() { inflight_.fetch_sub(1, std::memory_order_relaxed); }
  std::uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// Records a transaction-table size observation; keeps the peak.
  void note_transactions(std::size_t n) {
    std::uint64_t prev = tx_peak_.load(std::memory_order_relaxed);
    while (n > prev &&
           !tx_peak_.compare_exchange_weak(prev, n,
                                           std::memory_order_relaxed)) {
    }
  }
  std::uint64_t transaction_peak() const {
    return tx_peak_.load(std::memory_order_relaxed);
  }

  // Upstream-resilience gauges (same contract as the overload set above:
  // plain atomics, never detector-visible, never a scheduling point).
  /// A request was answered by an upstream target.
  void count_upstream_forward() {
    upstream_forwards_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t upstream_forwards() const {
    return upstream_forwards_.load(std::memory_order_relaxed);
  }
  /// A forwarding attempt was retried after backoff.
  void count_upstream_retry() {
    upstream_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t upstream_retries() const {
    return upstream_retries_.load(std::memory_order_relaxed);
  }
  /// A request was served by a retry or a non-preferred target.
  void count_failover() {
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// Upstream unavailable but the request was served from registrar data.
  void count_degraded() {
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t degraded_serves() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Upstream unavailable and nothing cached: 503 + Retry-After.
  void count_upstream_shed() {
    upstream_sheds_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t upstream_sheds() const {
    return upstream_sheds_.load(std::memory_order_relaxed);
  }
  /// A circuit breaker tripped open.
  void count_breaker_open() {
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }
  /// A request was refused with 483 Too Many Hops.
  void count_too_many_hops() {
    too_many_hops_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t too_many_hops() const {
    return too_many_hops_.load(std::memory_order_relaxed);
  }

  std::uint64_t requests(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t responses_2xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t responses_4xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t responses_5xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t forwards(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t parse_errors(const std::source_location& loc =
                                 std::source_location::current()) const;

 private:
  template <typename Fn>
  void guarded(Fn&& fn) {
    if (unprotected_) {
      fn();
    } else {
      rt::lock_guard guard(mu_);
      fn();
    }
  }

  bool unprotected_;
  mutable rt::mutex mu_;
  rt::tracked<std::uint64_t> requests_;
  rt::tracked<std::uint64_t> responses_2xx_;
  rt::tracked<std::uint64_t> responses_4xx_;
  rt::tracked<std::uint64_t> responses_5xx_;
  rt::tracked<std::uint64_t> forwards_;
  rt::tracked<std::uint64_t> parse_errors_;
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint32_t> inflight_{0};
  std::atomic<std::uint64_t> tx_peak_{0};
  std::atomic<std::uint64_t> upstream_forwards_{0};
  std::atomic<std::uint64_t> upstream_retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> upstream_sheds_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> too_many_hops_{0};
};

}  // namespace rg::sip
