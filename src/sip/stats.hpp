// Proxy statistics counters.
//
// With `benign_stats_races` the counters are bumped without any lock — the
// classic "benign race" triage load the paper mentions ("not always easy to
// decide whether a reported warning is a true defect, a false warning or
// just a benign race"). With the fault off, a mutex guards them.
#pragma once

#include <cstdint>
#include <source_location>

#include "rt/memory.hpp"
#include "rt/sync.hpp"

namespace rg::sip {

class ProxyStats {
 public:
  explicit ProxyStats(bool unprotected);

  void count_request(const std::source_location& loc =
                         std::source_location::current());
  void count_response(int status,
                      const std::source_location& loc =
                          std::source_location::current());
  void count_forward(const std::source_location& loc =
                         std::source_location::current());
  void count_parse_error(const std::source_location& loc =
                             std::source_location::current());

  std::uint64_t requests(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t responses_2xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t responses_4xx(const std::source_location& loc =
                                  std::source_location::current()) const;
  std::uint64_t forwards(const std::source_location& loc =
                             std::source_location::current()) const;
  std::uint64_t parse_errors(const std::source_location& loc =
                                 std::source_location::current()) const;

 private:
  template <typename Fn>
  void guarded(Fn&& fn) {
    if (unprotected_) {
      fn();
    } else {
      rt::lock_guard guard(mu_);
      fn();
    }
  }

  bool unprotected_;
  mutable rt::mutex mu_;
  rt::tracked<std::uint64_t> requests_;
  rt::tracked<std::uint64_t> responses_2xx_;
  rt::tracked<std::uint64_t> responses_4xx_;
  rt::tracked<std::uint64_t> forwards_;
  rt::tracked<std::uint64_t> parse_errors_;
};

}  // namespace rg::sip
