// SIP wire-format parser (RFC 3261 subset).
//
// Parses requests and responses: start line, headers with folding,
// Content-Length framing, plus the URI and CSeq micro-grammars the proxy
// needs for routing and transaction matching. The parser itself runs inside
// worker threads of the program under test; the *objects* it produces are
// instrumented, the parsing scratch state is thread-local by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sip/message.hpp"

namespace rg::sip {

struct ParseResult {
  std::unique_ptr<SipMessage> message;  // null on error
  std::string error;

  bool ok() const { return message != nullptr; }
};

/// Parses one complete SIP message from wire text (CRLF or LF line ends).
ParseResult parse_message(std::string_view wire);

/// "sip:user@host:port;params" — enough of the grammar for registration
/// and routing.
struct SipUri {
  bool valid = false;
  std::string scheme;  // sip / sips
  std::string user;
  std::string host;
  std::uint16_t port = 5060;
  std::string params;  // everything after the first ';'

  /// user@host (the address-of-record key the registrar uses).
  std::string aor() const { return user + "@" + host; }
};

SipUri parse_uri(std::string_view text);

/// Extracts the URI from a header value like `"Bob" <sip:bob@b.com>;tag=x`.
SipUri parse_name_addr(std::string_view value);

/// The `tag=` parameter of a From/To header value (empty if absent).
std::string header_tag(std::string_view value);

/// "314159 INVITE"
struct CSeq {
  bool valid = false;
  std::uint32_t seq = 0;
  Method method = Method::Unknown;
};

CSeq parse_cseq(std::string_view text);

/// The `branch=` parameter of a Via value — the RFC 3261 transaction key.
std::string via_branch(std::string_view via_value);

}  // namespace rg::sip
