#include "sip/proxy.hpp"

#include "annotate/runtime.hpp"
#include "rt/sim.hpp"
#include "sip/parser.hpp"
#include "sip/time_utils.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rg::sip {

// --- handlers -----------------------------------------------------------------

class RegisterHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "RegisterHandler"; }
  ~RegisterHandler() override { vptr_write(); }
};

class InviteHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "InviteHandler"; }
  ~InviteHandler() override { vptr_write(); }
};

class AckHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "AckHandler"; }
  ~AckHandler() override { vptr_write(); }
};

class ByeHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "ByeHandler"; }
  ~ByeHandler() override { vptr_write(); }
};

class CancelHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "CancelHandler"; }
  ~CancelHandler() override { vptr_write(); }
};

/// OPTIONS/INFO come from the "third-party codec module" whose source the
/// instrumentation pass cannot see (§3.1: "Parts of the program where the
/// source code is not available will not benefit from this annotation").
class OptionsHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "OptionsHandler"; }
  ~OptionsHandler() override { vptr_write(); }
};

class InfoHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "InfoHandler"; }
  ~InfoHandler() override { vptr_write(); }
};

class DefaultHandler final : public RequestHandler {
 public:
  std::unique_ptr<SipResponse> handle(Proxy& proxy, const SipRequest& request,
                                      const std::source_location& loc) override;
  const char* name() const override { return "DefaultHandler"; }
  ~DefaultHandler() override { vptr_write(); }
};

// --- proxy --------------------------------------------------------------------

Proxy::Proxy(const ProxyConfig& config)
    : config_(config),
      pool_(/*force_new=*/!config.faults.pooled_allocator_reuse),
      stats_(config.faults.benign_stats_races, config.metrics),
      upstreams_(config.upstream, &stats_),
      request_log_("request-log", pool_),
      transaction_log_("transaction-log", pool_),
      stop_mu_("proxy-stop-mutex"),
      hazard_gate_("hazard-gate"),
      stop_flag_(0),
      reaper_interval_(0),
      handled_count_(0),
      server_header_("RaceGuard-SIP-Proxy/1.0"),
      allow_header_("INVITE, ACK, BYE, CANCEL, OPTIONS, REGISTER, INFO") {}

Proxy::~Proxy() {
  if (started_) shutdown();
  for (RequestHandler* h : handlers_) delete h;
}

std::uint64_t Proxy::now() const {
  rt::Sim* sim = rt::Sim::current();
  return sim != nullptr ? sim->sched().virtual_time() : 0;
}

void Proxy::start(const std::source_location& /*loc*/) {
  RG_FRAME();
  RG_ASSERT_MSG(!started_, "proxy already started");
  started_ = true;

  modules_.add_domain(config_.domain, "sip:core." + config_.domain + ";lr",
                      70);
  for (const std::string& d : config_.extra_domains)
    modules_.add_domain(d, "sip:core." + d + ";lr", 70);

  handlers_[static_cast<std::size_t>(Method::Register)] = new RegisterHandler;
  handlers_[static_cast<std::size_t>(Method::Invite)] = new InviteHandler;
  handlers_[static_cast<std::size_t>(Method::Ack)] = new AckHandler;
  handlers_[static_cast<std::size_t>(Method::Bye)] = new ByeHandler;
  handlers_[static_cast<std::size_t>(Method::Cancel)] = new CancelHandler;
  handlers_[static_cast<std::size_t>(Method::Options)] = new OptionsHandler;
  handlers_[static_cast<std::size_t>(Method::Info)] = new InfoHandler;
  handlers_[static_cast<std::size_t>(Method::Unknown)] = new DefaultHandler;

  // Upstream targets come up with the proxy (no-op when not configured).
  upstreams_.start();

  if (config_.faults.racy_deadlock_monitor) monitor_.start();

  if (config_.faults.init_order_race) {
    // §4.1.1: the reaper starts *before* its configuration is written.
    reaper_ = rt::thread([this] { reaper_loop(); }, "expiry-reaper");
    reaper_interval_.store(config_.reaper_interval);
  } else {
    reaper_interval_.store(config_.reaper_interval);
    reaper_ = rt::thread([this] { reaper_loop(); }, "expiry-reaper");
  }
}

void Proxy::shutdown(const std::source_location& /*loc*/) {
  RG_FRAME();
  // Idempotent: a second shutdown, or a shutdown before start(), is a
  // no-op so teardown paths (destructors, error unwinds, chaos harnesses)
  // can call it unconditionally.
  if (!started_) return;
  started_ = false;

  if (config_.faults.shutdown_order_race) {
    // §4.1.1: "a data structure was destroyed before a thread using it
    // terminated" — tear down domain data while the reaper still runs.
    modules_.unsafe_shutdown_touch();
    modules_.clear(/*annotated=*/true);
  }

  if (config_.hazards.shutdown_inversion) {
    // Hazard family B: raise the stop flag and touch registrar state in
    // one stop-mutex section — the opposite nesting of the reaper's stop
    // check (registrar-lock → stop-mutex).
    auto raise = [&] {
      if (config_.hazards.recover) {
        const std::uint32_t backoffs =
            DeadlockMonitor::with_ordered_locks_recovering(
                stop_mu_, registrar_.lock_handle(), /*deadline_ticks=*/64,
                config_.upstream.seed ^ 0x5ca1ab1eull,
                [&] { stop_flag_.store(1); });
        if (backoffs != 0) stats_.count_deadlock_recoveries(backoffs);
      } else {
        rt::lock_guard guard(stop_mu_);
        stop_flag_.store(1);
        rt::lock_guard reg(registrar_.lock_handle());
      }
    };
    if (config_.hazards.gate_locked) {
      rt::lock_guard gate(hazard_gate_);
      raise();
    } else {
      raise();
    }
  } else {
    rt::lock_guard guard(stop_mu_);
    stop_flag_.store(1);
  }
  if (reaper_.joinable()) reaper_.join();

  if (!config_.faults.shutdown_order_race)
    modules_.clear(/*annotated=*/true);

  if (monitor_.running()) monitor_.stop();

  // Upstream targets are torn down by concurrent teardown threads (the
  // §4.2.1 destructor workload on the forwarding path).
  upstreams_.shutdown();

  dialogs_.clear();
  transactions_.clear();
  registrar_.clear();

  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    RequestHandler* h = handlers_[i];
    if (h == nullptr) continue;
    const auto method = static_cast<Method>(i);
    const bool third_party =
        config_.faults.third_party_unannotated_deletes &&
        (method == Method::Options || method == Method::Info);
    if (third_party)
      delete h;  // binary-only module: no annotation possible
    else
      delete annotate::ca_deletor_single(h);
    handlers_[i] = nullptr;
  }
}

void Proxy::reaper_loop() {
  RG_FRAME();
  for (;;) {
    if (config_.hazards.shutdown_inversion) {
      // Hazard family B: the stop check runs under the registrar lock —
      // inverted against shutdown's stop-mutex → registrar-lock nesting.
      bool stop = false;
      auto check = [&] {
        rt::lock_guard reg(registrar_.lock_handle());
        rt::lock_guard guard(stop_mu_);
        stop = stop_flag_.load() != 0;
      };
      if (config_.hazards.gate_locked) {
        rt::lock_guard gate(hazard_gate_);
        check();
      } else {
        check();
      }
      if (stop) return;
    } else {
      rt::lock_guard guard(stop_mu_);
      if (stop_flag_.load() != 0) return;
    }
    // With the init-order fault, this read races with the post-create
    // store in start().
    const std::uint64_t interval = reaper_interval_.load();
    rt::sleep_ticks(interval == 0 ? 50 : interval);
    hazard_probe_reaper();
    registrar_.expire(now());
    transactions_.reap();
    // The reaper consults domain data each round; during a faulty
    // shutdown this races with the unlocked teardown touch.
    (void)modules_.find_domain(config_.domain);
    request_log_.trim(8);
    transaction_log_.trim(8);
  }
}

void Proxy::hazard_probe_worker() {
  if (!config_.hazards.registrar_vs_upstream || upstreams_.size() == 0) return;
  rt::mutex& reg = registrar_.lock_handle();
  rt::mutex& tgt = upstreams_.target(0)->lock_handle();
  if (config_.hazards.recover) {
    // Non-racy recovery instead of blocking nested acquisition: the
    // worker never blocks on the target lock while holding the registrar
    // lock, so the inversion cannot complete a cycle.
    const std::uint32_t backoffs =
        DeadlockMonitor::with_ordered_locks_recovering(
            reg, tgt, /*deadline_ticks=*/64,
            config_.upstream.seed ^
                (static_cast<std::uint64_t>(rt::Sim::current_thread()) << 32),
            [] {});
    if (backoffs != 0) stats_.count_deadlock_recoveries(backoffs);
    return;
  }
  auto nest = [&] {
    rt::lock_guard a(reg);
    rt::lock_guard b(tgt);
  };
  if (config_.hazards.gate_locked) {
    rt::lock_guard gate(hazard_gate_);
    nest();
  } else {
    nest();
  }
}

void Proxy::hazard_probe_reaper() {
  if (!config_.hazards.registrar_vs_upstream || upstreams_.size() == 0) return;
  auto nest = [&] {
    rt::lock_guard b(upstreams_.target(0)->lock_handle());
    rt::lock_guard a(registrar_.lock_handle());
  };
  if (config_.hazards.gate_locked) {
    rt::lock_guard gate(hazard_gate_);
    nest();
  } else {
    nest();
  }
}

bool Proxy::overloaded() const {
  const OverloadConfig& ol = config_.overload;
  if (ol.tx_watermark != 0 && transactions_.size() >= ol.tx_watermark)
    return true;
  if (ol.inflight_watermark != 0 && stats_.inflight() > ol.inflight_watermark)
    return true;
  return false;
}

RequestHandler* Proxy::handler_for(Method m) const {
  const auto idx = static_cast<std::size_t>(m);
  RequestHandler* h =
      idx < handlers_.size() ? handlers_[idx] : nullptr;
  return h != nullptr
             ? h
             : handlers_[static_cast<std::size_t>(Method::Unknown)];
}

std::unique_ptr<SipResponse> Proxy::make_response(
    int status, const SipRequest& request, const std::source_location& /*loc*/) {
  auto response = std::make_unique<SipResponse>(status);
  // 8.2.6.2: copy Via chain, From, Call-ID, CSeq; To gains a tag.
  for (cow_string& via : request.headers("via"))
    response->add_header("via", std::move(via));
  response->add_header("from", request.header("from"));
  cow_string to = request.header("to");
  if (status != 100 && header_tag(to.str()).empty())
    to.append(";tag=rg-" + std::to_string(now()));
  response->add_header("to", std::move(to));
  response->add_header("call-id", request.header("call-id"));
  response->add_header("cseq", request.header("cseq"));
  // Shared server identity string: one COW rep for the whole proxy, copied
  // here by every concurrent worker (the Figs. 8/9 counter pattern).
  response->add_header("server", cow_string(server_header_));
  return response;
}

namespace {

/// Scoped in-flight accounting; engaged only when overload control is on so
/// classic runs see no difference at all.
class InflightScope {
 public:
  explicit InflightScope(ProxyStats* stats) : stats_(stats) {
    if (stats_ != nullptr) stats_->enter_inflight();
  }
  ~InflightScope() {
    if (stats_ != nullptr) stats_->leave_inflight();
  }
  InflightScope(const InflightScope&) = delete;
  InflightScope& operator=(const InflightScope&) = delete;

 private:
  ProxyStats* stats_;
};

}  // namespace

std::shared_ptr<const SipResponse> Proxy::handle(
    std::shared_ptr<const SipRequest> request,
    const std::source_location& /*loc*/) {
  RG_FRAME();
  const bool overload_on = config_.overload.enabled();
  InflightScope inflight(overload_on ? &stats_ : nullptr);
  stats_.count_request();
  request_log_.append(now(), static_cast<std::uint32_t>(request->method()));

  if (config_.faults.unsafe_time_function) {
    // §4.1.3: non-reentrant time formatting from worker threads.
    (void)unsafe_ctime(now());
  }

  const cow_string via = request->header("via");
  const std::string branch = via_branch(via.str());
  if (branch.empty())
    return std::shared_ptr<SipResponse>(make_response(400, *request));

  // CANCEL matches the *INVITE* transaction with the same branch.
  std::shared_ptr<ServerTransaction> tx;
  if (request->method() == Method::Cancel ||
      request->method() == Method::Ack) {
    tx = transactions_.find(branch);
  } else {
    // §21.5.4-style local shedding: refuse new work instead of letting
    // the transaction table and in-flight set grow without bound. The
    // in-flight watermark is checked up front; the transaction watermark
    // is enforced atomically inside find_or_create so concurrent workers
    // can never overshoot it. Shed requests are answered statelessly — no
    // transaction is created.
    if (overload_on && overloaded()) {
      stats_.count_shed();
      auto shed = make_response(503, *request);
      shed->add_header("retry-after",
                       cow_string(std::to_string(config_.overload.retry_after_s)));
      stats_.count_response(503);
      return std::shared_ptr<SipResponse>(std::move(shed));
    }
    bool created = false;
    tx = transactions_.find_or_create(branch, request->method(), created,
                                      config_.overload.tx_watermark);
    if (overload_on) stats_.note_transactions(transactions_.size());
    if (tx == nullptr) {
      // Lost the race for the last table slot: shed like above.
      stats_.count_shed();
      auto shed = make_response(503, *request);
      shed->add_header("retry-after",
                       cow_string(std::to_string(config_.overload.retry_after_s)));
      stats_.count_response(503);
      return std::shared_ptr<SipResponse>(std::move(shed));
    }
    transaction_log_.append(now(),
                            static_cast<std::uint32_t>(request->method()));
    if (created) {
      // §17.2: the transaction retains the request that created it, so
      // later messages can be matched against it.
      tx->retain_request(request);
    } else if (tx->on_request(request->method())) {
      // Retransmission: verify against the retained original (a virtual
      // call on the shared message), then replay the retained response.
      if (auto original = tx->original_request())
        (void)original->start_line();
      return tx->last_response();
    }
  }

  RequestHandler* handler = handler_for(request->method());
  std::shared_ptr<SipResponse> response(
      handler->handle(*this, *request).release(), [](SipResponse* r) {
        delete annotate::ca_deletor_single(r);
      });

  if (response != nullptr) {
    if (tx != nullptr) {
      tx->on_response(response->status());
      // §17.2: retain the response for retransmission replay.
      tx->retain_response(response);
    }
    stats_.count_response(response->status());
  }

  // Periodic in-line reaping, like the original's housekeeping.
  std::uint32_t handled = 0;
  {
    rt::lock_guard guard(stop_mu_);
    handled = handled_count_.load() + 1;
    handled_count_.store(handled);
  }
  if (config_.reap_every != 0 && handled % config_.reap_every == 0)
    transactions_.reap();

  return response;
}

std::string Proxy::handle_wire(std::string_view wire,
                               const std::source_location& /*loc*/) {
  RG_FRAME();
  ParseResult parsed = parse_message(wire);
  if (!parsed.ok()) {
    stats_.count_parse_error();
    SipResponse bad(400);
    return bad.serialize();
  }
  if (!parsed.message->is_request()) {
    // Responses would be forwarded upstream; our scenarios are
    // client-driven, so they are absorbed.
    return {};
  }
  // The annotated build wraps this delete like any other (the pass runs
  // on preprocessed source, so the instantiated deleter is covered).
  std::shared_ptr<const SipMessage> message(
      parsed.message.release(), [](const SipMessage* m) {
        delete annotate::ca_deletor_single(m);
      });
  auto request = std::static_pointer_cast<const SipRequest>(message);
  std::shared_ptr<const SipResponse> response = handle(std::move(request));
  return response == nullptr ? std::string{} : response->serialize();
}

// --- handler implementations ---------------------------------------------------

std::unique_ptr<SipResponse> RegisterHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  const SipUri aor = parse_name_addr(request.header("to").str());
  if (!aor.valid) return proxy.make_response(400, request);
  const cow_string contact_hdr = request.header("contact");
  if (contact_hdr.empty()) return proxy.make_response(400, request);
  const SipUri contact = parse_name_addr(contact_hdr.str());
  if (!contact.valid) return proxy.make_response(400, request);

  std::uint32_t expires = 3600;
  if (request.has_header("expires")) {
    support::parse_u32(request.header("expires").str(), expires);
  }
  if (expires == 0) {
    // De-registration is modelled as immediate expiry.
    proxy.registrar().expire(~0ULL);
    return proxy.make_response(200, request);
  }

  auto contacts = proxy.registrar().register_binding(
      aor.aor(), contact_hdr.str(),
      proxy.now() + proxy.config().binding_ttl);
  auto response = proxy.make_response(200, request);
  for (const cow_string& c : contacts)
    response->add_header("contact", cow_string(c));
  response->add_header("expires", cow_string(std::to_string(expires)));
  return response;
}

std::unique_ptr<SipResponse> InviteHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  const SipUri target = parse_uri(request.uri());
  if (!target.valid) return proxy.make_response(400, request);

  // Domain authorisation — through the Fig. 7 bug when seeded.
  DomainData* domain =
      proxy.config().faults.unprotected_domain_map
          ? proxy.modules().find_domain_unprotected(target.host)
          : proxy.modules().find_domain(target.host);
  if (domain == nullptr) return proxy.make_response(403, request);

  // Seeded hazard family A (worker side): registrar-lock → target-lock.
  proxy.hazard_probe_worker();

  // Max-Forwards enforcement (RFC 3261 §16.3): the effective hop budget is
  // the smaller of the domain policy and the request header, and a request
  // that arrives with no hops left is refused — 483 Too Many Hops — rather
  // than forwarded. (The seed parsed the header and then discarded it.)
  std::uint32_t max_forwards = domain->max_forwards();
  if (request.has_header("max-forwards")) {
    std::uint32_t mf = 0;
    if (support::parse_u32(request.header("max-forwards").str(), mf))
      max_forwards = std::min(max_forwards, mf);
  }
  if (max_forwards == 0) {
    proxy.stats().count_too_many_hops();
    return proxy.make_response(483, request);
  }

  const cow_string contact = proxy.registrar().lookup(target.aor());
  if (contact.empty()) return proxy.make_response(404, request);

  // Forward through the upstream resilience pool (retry + failover +
  // breakers, in virtual time). When every target is down, degrade
  // gracefully: the registrar's cached binding still answers the call.
  bool degraded = false;
  if (proxy.upstreams().enabled()) {
    const std::string branch = via_branch(request.header("via").str());
    const ForwardResult fwd = proxy.upstreams().forward(request_key(branch));
    if (fwd.outcome != ForwardOutcome::Forwarded) {
      proxy.stats().count_degraded();
      degraded = true;
    }
  }
  proxy.stats().count_forward();
  proxy.dialogs().create(request.header("call-id").str(),
                         request.body(), proxy.now());
  auto response = proxy.make_response(200, request);
  response->add_header("contact", cow_string(contact));
  // Record-Route from the shared domain route string (cow rep shared
  // across every worker thread — the Figs. 8/9 counter pattern).
  response->add_header("record-route", domain->route());
  if (degraded)
    response->add_header(
        "warning", cow_string("199 rg \"degraded: served from registrar\""));
  return response;
}

std::unique_ptr<SipResponse> AckHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  const cow_string via = request.header("via");
  const std::string branch = via_branch(via.str());
  if (auto tx = proxy.transactions().find(branch)) tx->on_request(Method::Ack);
  if (auto dialog = proxy.dialogs().find(request.header("call-id").str()))
    dialog->confirm();
  return nullptr;  // ACK is absorbed
}

std::unique_ptr<SipResponse> ByeHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  const SipUri target = parse_uri(request.uri());
  if (!target.valid) return proxy.make_response(400, request);
  // In-dialog: terminate the session and tear down its state inline.
  const bool known =
      proxy.dialogs().terminate(request.header("call-id").str(), proxy.now());
  return proxy.make_response(known ? 200 : 481, request);
}

std::unique_ptr<SipResponse> CancelHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  const cow_string via = request.header("via");
  const std::string branch = via_branch(via.str());
  std::shared_ptr<ServerTransaction> tx = proxy.transactions().find(branch);
  if (tx == nullptr) return proxy.make_response(481, request);
  tx->on_request(Method::Cancel);
  proxy.dialogs().terminate(request.header("call-id").str(), proxy.now());
  return proxy.make_response(200, request);
}

std::unique_ptr<SipResponse> OptionsHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  // Capability interrogation is answered by the upstream feature server
  // when one is configured. Unlike INVITE there is no registrar data to
  // fall back on, so when the pool is exhausted or every breaker is open
  // the proxy sheds: 503 with a backoff-derived Retry-After instead of
  // stalling the client.
  if (proxy.upstreams().enabled()) {
    const std::string branch = via_branch(request.header("via").str());
    const ForwardResult fwd = proxy.upstreams().forward(request_key(branch));
    if (fwd.outcome != ForwardOutcome::Forwarded) {
      proxy.stats().count_upstream_shed();
      auto shed = proxy.make_response(503, request);
      shed->add_header("retry-after",
                       cow_string(std::to_string(fwd.retry_after_s)));
      return shed;
    }
  }
  auto response = proxy.make_response(200, request);
  response->add_header("allow", cow_string(proxy.allow_header_));
  return response;
}

std::unique_ptr<SipResponse> InfoHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  // DTMF / media update on a live call renegotiates the media session.
  if (auto dialog = proxy.dialogs().find(request.header("call-id").str())) {
    if (!request.body().empty()) dialog->media().update(request.body());
  }
  return proxy.make_response(200, request);
}

std::unique_ptr<SipResponse> DefaultHandler::handle(
    Proxy& proxy, const SipRequest& request, const std::source_location& /*loc*/) {
  virtual_dispatch();
  RG_FRAME();
  auto response = proxy.make_response(405, request);
  response->add_header("allow", cow_string(proxy.allow_header_));
  return response;
}

}  // namespace rg::sip
