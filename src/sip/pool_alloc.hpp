// ObjectPool — a size-bucketed recycling allocator.
//
// Models the GNU Standard C++ Library allocation strategy the paper calls
// out in §4: "memory is reused internally and accesses to the reused memory
// regions are reported as data races, even though the accesses are
// separated by freeing and allocating, as Helgrind does not know anything
// about them." When recycling is on, acquire/release of a pooled block
// emits *no* alloc/free events, so the detector's shadow state survives
// across logical lifetimes. `force_new` is the GLIBCXX_FORCE_NEW analogue:
// every acquisition really allocates (with events) and every release really
// frees.
#pragma once

#include <cstddef>
#include <source_location>
#include <unordered_map>
#include <vector>

#include "rt/memory.hpp"
#include "rt/sync.hpp"

namespace rg::sip {

class ObjectPool {
 public:
  /// `force_new == true` disables recycling (the environment-variable fix
  /// the paper applies "prior to calling Helgrind").
  explicit ObjectPool(bool force_new);
  ~ObjectPool();

  void* acquire(std::size_t size,
                const std::source_location& loc =
                    std::source_location::current());
  void release(void* p, std::size_t size,
               const std::source_location& loc =
                   std::source_location::current());

  bool force_new() const { return force_new_; }
  std::size_t recycled_count() const { return recycled_; }

 private:
  bool force_new_;
  rt::mutex mu_;
  std::unordered_map<std::size_t, std::vector<void*>> free_lists_;
  std::size_t recycled_ = 0;
};

}  // namespace rg::sip
