// Time formatting helpers — the §4.1.3 defect class.
//
// "The four functions asctime(), ctime(), gmtime() and localtime() return a
// pointer to static data and hence are NOT thread-safe." unsafe_ctime
// reproduces that shape: it formats into a static buffer and returns a
// pointer to it; concurrent callers race on the buffer. safe_ctime is the
// reentrant _r-style fix.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>

namespace rg::sip {

/// Formats `ticks` into a static buffer and returns it — NOT thread-safe,
/// like glibc ctime(). Every call writes the shared buffer.
const char* unsafe_ctime(std::uint64_t ticks,
                         const std::source_location& loc =
                             std::source_location::current());

/// Reentrant variant writing into caller storage (ctime_r).
void safe_ctime(std::uint64_t ticks, std::string& out);

/// Formats without touching shared state (pure function, for tests).
std::string format_ticks(std::uint64_t ticks);

}  // namespace rg::sip
