#include "sip/message.hpp"

#include "annotate/runtime.hpp"
#include "support/strings.hpp"

namespace rg::sip {

Method parse_method(std::string_view text) {
  if (text == "INVITE") return Method::Invite;
  if (text == "ACK") return Method::Ack;
  if (text == "BYE") return Method::Bye;
  if (text == "CANCEL") return Method::Cancel;
  if (text == "OPTIONS") return Method::Options;
  if (text == "REGISTER") return Method::Register;
  if (text == "INFO") return Method::Info;
  return Method::Unknown;
}

const char* to_string(Method m) {
  switch (m) {
    case Method::Invite:
      return "INVITE";
    case Method::Ack:
      return "ACK";
    case Method::Bye:
      return "BYE";
    case Method::Cancel:
      return "CANCEL";
    case Method::Options:
      return "OPTIONS";
    case Method::Register:
      return "REGISTER";
    case Method::Info:
      return "INFO";
    case Method::Unknown:
      break;
  }
  return "UNKNOWN";
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 100:
      return "Trying";
    case 180:
      return "Ringing";
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 481:
      return "Call/Transaction Does Not Exist";
    case 482:
      return "Loop Detected";
    case 486:
      return "Busy Here";
    case 487:
      return "Request Terminated";
    case 500:
      return "Server Internal Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

MessageMeta::MessageMeta() : serialized_(0) {}

MessageMeta::~MessageMeta() { vptr_write(); }

void MessageMeta::note_serialized(const std::source_location& loc) const {
  virtual_dispatch(loc);
  // Framing flags are fixed at parse time; serialisation only reads them.
  (void)serialized_.load();
}

std::uint32_t MessageMeta::serialized_count() const {
  return serialized_.load();
}

SipMessage::SipMessage() : meta_(new MessageMeta) {}

SipMessage::~SipMessage() {
  vptr_write();
  delete annotate::ca_deletor_single(meta_);
}

void SipMessage::add_header(std::string_view name, cow_string value,
                            const std::source_location& loc) {
  headers_marker_.write(loc);
  headers_.push_back(Header{support::to_lower(name), std::move(value)});
}

bool SipMessage::has_header(std::string_view name,
                            const std::source_location& loc) const {
  headers_marker_.read(loc);
  const std::string key = support::to_lower(name);
  for (const Header& h : headers_)
    if (h.name == key) return true;
  return false;
}

cow_string SipMessage::header(std::string_view name,
                              const std::source_location& loc) const {
  headers_marker_.read(loc);
  const std::string key = support::to_lower(name);
  for (const Header& h : headers_)
    if (h.name == key) return cow_string(h.value, loc);
  return cow_string{};
}

std::vector<cow_string> SipMessage::headers(
    std::string_view name, const std::source_location& loc) const {
  headers_marker_.read(loc);
  const std::string key = support::to_lower(name);
  std::vector<cow_string> out;
  for (const Header& h : headers_)
    if (h.name == key) out.emplace_back(h.value, loc);
  return out;
}

bool SipMessage::remove_top_header(std::string_view name,
                                   const std::source_location& loc) {
  headers_marker_.write(loc);
  const std::string key = support::to_lower(name);
  for (auto it = headers_.begin(); it != headers_.end(); ++it) {
    if (it->name == key) {
      headers_.erase(it);
      return true;
    }
  }
  return false;
}

void SipMessage::push_header_front(std::string_view name, cow_string value,
                                   const std::source_location& loc) {
  headers_marker_.write(loc);
  headers_.insert(headers_.begin(),
                  Header{support::to_lower(name), std::move(value)});
}

void SipMessage::set_body(cow_string body, const std::source_location& loc) {
  headers_marker_.write(loc);
  body_ = std::move(body);
}

cow_string SipMessage::body(const std::source_location& loc) const {
  headers_marker_.read(loc);
  return cow_string(body_, loc);
}

namespace {
/// Canonical wire capitalisation for the common headers.
std::string wire_name(std::string_view canonical) {
  std::string out;
  bool upper = true;
  for (char c : canonical) {
    out += upper && c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c;
    upper = c == '-';
  }
  if (out == "Call-Id") out = "Call-ID";
  if (out == "Cseq") out = "CSeq";
  if (out == "Www-Authenticate") out = "WWW-Authenticate";
  return out;
}
}  // namespace

std::string SipMessage::serialize() const {
  meta_->note_serialized();
  std::string out = start_line();
  out += "\r\n";
  const std::string body_text = body_.str();
  for (const Header& h : headers_) {
    out += wire_name(h.name);
    out += ": ";
    out += h.value.str();
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body_text.size());
  out += "\r\n\r\n";
  out += body_text;
  return out;
}

SipRequest::SipRequest(Method method, std::string_view uri)
    : method_(method), uri_(uri) {}

bool SipRequest::is_request() const {
  virtual_dispatch();
  return true;
}

std::string SipRequest::start_line() const {
  virtual_dispatch();
  return std::string(to_string(method_)) + " " + uri_.str() + " SIP/2.0";
}

SipResponse::SipResponse(int status)
    : status_(status), reason_(reason_phrase(status)) {}

SipResponse::SipResponse(int status, std::string_view reason)
    : status_(status), reason_(reason) {}

bool SipResponse::is_request() const {
  virtual_dispatch();
  return false;
}

std::string SipResponse::start_line() const {
  virtual_dispatch();
  return "SIP/2.0 " + std::to_string(status_) + " " + reason_.str();
}

}  // namespace rg::sip
