// Registrar / location service.
//
// Stores REGISTER bindings (address-of-record -> contact) behind a mutex.
// Binding records are polymorphic instrumented objects shared between the
// registering thread, routing threads and the expiry reaper; their contact
// strings are cow_strings whose reps get copied concurrently — the natural
// in-proxy occurrence of the Figs. 8/9 reference-counter pattern.
#pragma once

#include <map>
#include <source_location>
#include <string>
#include <vector>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "sip/cow_string.hpp"
#include "sip/message.hpp"

namespace rg::sip {

/// One contact binding.
class Binding : public SipObject {
 public:
  Binding(std::string_view contact, std::uint64_t expires_at);
  ~Binding() override;

  /// Contact URI (shared cow rep: copied into responses by many threads).
  cow_string contact(const std::source_location& loc =
                         std::source_location::current()) const;
  std::uint64_t expires_at(const std::source_location& loc =
                               std::source_location::current()) const;
  void refresh(std::uint64_t expires_at,
               const std::source_location& loc =
                   std::source_location::current());

 private:
  cow_string contact_;
  rt::tracked<std::uint64_t> expires_at_;
};

class Registrar {
 public:
  Registrar();
  ~Registrar();

  /// Adds or refreshes a binding; returns the contact list for the 200 OK.
  std::vector<cow_string> register_binding(
      const std::string& aor, std::string_view contact,
      std::uint64_t expires_at,
      const std::source_location& loc = std::source_location::current());

  /// Looks up the current contact for an AOR (empty when unknown).
  cow_string lookup(const std::string& aor,
                    const std::source_location& loc =
                        std::source_location::current());

  /// Removes bindings expired at `now`; returns how many were deleted.
  /// Deletion is annotated (this module ships with source, cf. Fig. 4).
  std::size_t expire(std::uint64_t now,
                     const std::source_location& loc =
                         std::source_location::current());

  /// Deletes every binding (shutdown).
  void clear(const std::source_location& loc =
                 std::source_location::current());

  std::size_t size() const;

  /// The registrar's guard, exposed for the seeded lock-order hazard
  /// scenarios (they nest it against other subsystem locks). Never call
  /// the locking accessors above while holding it.
  rt::mutex& lock_handle() const { return mu_; }

 private:
  mutable rt::mutex mu_;
  std::map<std::string, Binding*> bindings_;
  mutable rt::access_marker marker_;
};

}  // namespace rg::sip
