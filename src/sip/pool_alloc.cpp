#include "sip/pool_alloc.hpp"

namespace rg::sip {

ObjectPool::ObjectPool(bool force_new)
    : force_new_(force_new), mu_("pool-mutex") {}

ObjectPool::~ObjectPool() {
  for (auto& [size, list] : free_lists_)
    for (void* p : list) ::operator delete(p);
}

void* ObjectPool::acquire(std::size_t size, const std::source_location& loc) {
  if (!force_new_) {
    rt::lock_guard guard(mu_, loc);
    auto& list = free_lists_[size];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++recycled_;
      // Deliberately NO alloc event: the detector keeps the previous
      // logical lifetime's shadow state (the §4 libstdc++ issue).
      return p;
    }
  }
  void* p = ::operator new(size);
  rt::mem_alloc(p, static_cast<std::uint32_t>(size), loc);
  return p;
}

void ObjectPool::release(void* p, std::size_t size,
                         const std::source_location& loc) {
  if (force_new_) {
    rt::mem_free(p, loc);
    ::operator delete(p);
    return;
  }
  rt::lock_guard guard(mu_, loc);
  // Deliberately NO free event.
  free_lists_[size].push_back(p);
}

}  // namespace rg::sip
