// The SIP proxy core — the program under test.
//
// A registrar + stateful forwarding proxy in the shape of the paper's
// 500 kLOC VoIP signalling server: polymorphic request handlers, a
// transaction layer, a registrar, per-domain configuration, statistics, an
// expiry reaper thread, and the application-level deadlock watchdog. The
// seeded FaultConfig reproduces every defect class of §4.1 and every
// false-positive source of §4.2.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <source_location>
#include <string>
#include <vector>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "rt/thread.hpp"
#include "sip/audit.hpp"
#include "sip/deadlock_monitor.hpp"
#include "sip/dialog.hpp"
#include "sip/domain_data.hpp"
#include "sip/faults.hpp"
#include "sip/message.hpp"
#include "sip/pool_alloc.hpp"
#include "sip/registrar.hpp"
#include "sip/stats.hpp"
#include "sip/transaction.hpp"
#include "sip/upstream.hpp"

namespace rg::sip {

class Proxy;

/// Polymorphic per-method handler (shared across all worker threads).
class RequestHandler : public SipObject {
 public:
  ~RequestHandler() override { vptr_write(); }
  /// Returns the response, or nullptr when the request is absorbed (ACK,
  /// retransmission).
  virtual std::unique_ptr<SipResponse> handle(
      Proxy& proxy, const SipRequest& request,
      const std::source_location& loc = std::source_location::current()) = 0;
  virtual const char* name() const = 0;
};

/// Overload-control watermarks (RFC 3261 §21.5.4 / RFC 5390 style local
/// shedding). All zero (the default) disables overload control entirely, so
/// the classic experiment paths see a bit-identical event stream.
struct OverloadConfig {
  /// Shed new transaction-creating requests once the transaction table
  /// holds this many entries. 0 = unlimited.
  std::size_t tx_watermark = 0;
  /// Shed once more than this many requests are inside handle() at once.
  /// 0 = unlimited.
  std::size_t inflight_watermark = 0;
  /// Advertised Retry-After (seconds) on shed 503 responses.
  std::uint32_t retry_after_s = 5;

  bool enabled() const { return tx_watermark != 0 || inflight_watermark != 0; }
};

struct ProxyConfig {
  FaultConfig faults;
  /// Seeded lock-inversion hazards (all off by default: classic runs see a
  /// bit-identical event stream).
  DeadlockHazards hazards;
  OverloadConfig overload;
  /// Upstream resilience layer. Zero targets (the default) disables
  /// forwarding entirely, so classic runs see a bit-identical event stream.
  UpstreamConfig upstream;
  std::string domain = "example.com";
  /// Additional domains the proxy serves.
  std::vector<std::string> extra_domains = {"voip.example.net",
                                            "pbx.example.org"};
  std::uint64_t binding_ttl = 100000;
  std::uint64_t reaper_interval = 200;
  /// Reap terminated transactions every N handled requests.
  std::uint32_t reap_every = 16;
  /// Shared metrics registry for the infra gauges (nullptr = the proxy's
  /// stats own a private registry). Caller keeps ownership; must outlive
  /// the proxy.
  obs::MetricsRegistry* metrics = nullptr;
};

class Proxy {
 public:
  explicit Proxy(const ProxyConfig& config);
  ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Brings up domain data, handlers, the reaper and (fault permitting)
  /// the deadlock watchdog. Must run inside a Sim to exhibit the seeded
  /// init-order race.
  void start(const std::source_location& loc =
                 std::source_location::current());

  /// Tears everything down; with the shutdown-order fault this destroys
  /// domain data before the reaper thread has stopped. Idempotent, and a
  /// no-op on a proxy that was never started.
  void shutdown(const std::source_location& loc =
                    std::source_location::current());

  /// Full request path from wire text: parse -> transaction -> handler ->
  /// serialize. Returns "" for absorbed requests, a 400 for parse errors.
  std::string handle_wire(std::string_view wire,
                          const std::source_location& loc =
                              std::source_location::current());

  /// Typed request path (used by handle_wire and tests). The proxy may
  /// retain the request in its transaction (RFC 3261 §17.2), hence shared
  /// ownership. Returns the (possibly replayed) response, or null when the
  /// request is absorbed.
  std::shared_ptr<const SipResponse> handle(
      std::shared_ptr<const SipRequest> request,
      const std::source_location& loc = std::source_location::current());

  Registrar& registrar() { return registrar_; }
  UpstreamPool& upstreams() { return upstreams_; }
  /// Chaos engine consulted on the proxy<->upstream hop (may be null).
  void set_chaos(rt::ChaosEngine* chaos) { upstreams_.set_chaos(chaos); }
  ServerModulesManagerImpl& modules() { return modules_; }
  TransactionTable& transactions() { return transactions_; }
  DialogTable& dialogs() { return dialogs_; }
  ProxyStats& stats() { return stats_; }
  DeadlockMonitor& monitor() { return monitor_; }
  ObjectPool& pool() { return pool_; }
  const ProxyConfig& config() const { return config_; }

  /// Current virtual time (0 outside a Sim).
  std::uint64_t now() const;

 private:
  friend class RegisterHandler;
  friend class InviteHandler;
  friend class AckHandler;
  friend class ByeHandler;
  friend class CancelHandler;
  friend class OptionsHandler;
  friend class InfoHandler;
  friend class DefaultHandler;

  RequestHandler* handler_for(Method m) const;
  /// True when a transaction-creating request must be shed (503).
  bool overloaded() const;
  void reaper_loop();
  /// Hazard family A, worker side: nests registrar-lock → upstream
  /// target-0 lock (or the recovery path when hazards.recover).
  void hazard_probe_worker();
  /// Hazard family A, reaper side: the opposite nesting.
  void hazard_probe_reaper();
  std::unique_ptr<SipResponse> make_response(
      int status, const SipRequest& request,
      const std::source_location& loc = std::source_location::current());

  ProxyConfig config_;
  ObjectPool pool_;
  Registrar registrar_;
  ServerModulesManagerImpl modules_;
  TransactionTable transactions_;
  DialogTable dialogs_;
  ProxyStats stats_;
  /// Must follow stats_ (the pool counts into it).
  UpstreamPool upstreams_;
  DeadlockMonitor monitor_;
  AuditLog request_log_;
  AuditLog transaction_log_;

  /// Method -> handler; fixed after start(), read concurrently.
  std::array<RequestHandler*, 8> handlers_{};

  // Reaper thread control. Guarded by stop_mu_ (correct by design — the
  // seeded races live elsewhere).
  rt::thread reaper_;
  mutable rt::mutex stop_mu_;
  /// Common gate for the hazards.gate_locked negative control.
  rt::mutex hazard_gate_;
  rt::tracked<std::uint8_t> stop_flag_;
  /// Read by the reaper; with the init-order fault this is written *after*
  /// the reaper already started (§4.1.1).
  rt::tracked<std::uint64_t> reaper_interval_;

  rt::tracked<std::uint32_t> handled_count_;
  /// Shared header constants, copied into every response by concurrent
  /// workers (COW reps with bus-locked reference counters — Figs. 8/9).
  cow_string server_header_;
  cow_string allow_header_;
  bool started_ = false;
};

}  // namespace rg::sip
