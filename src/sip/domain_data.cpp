#include "sip/domain_data.hpp"

#include "annotate/runtime.hpp"

namespace rg::sip {

DomainData::DomainData(std::string_view name, std::string_view route,
                       std::uint32_t max_forwards)
    : name_(name), route_(route), max_forwards_(max_forwards) {}

DomainData::~DomainData() { vptr_write(); }

cow_string DomainData::route(const std::source_location& /*loc*/) const {
  virtual_dispatch();
  return cow_string(route_);
}

std::uint32_t DomainData::max_forwards(const std::source_location& /*loc*/) const {
  return max_forwards_.load();
}

void DomainData::set_max_forwards(std::uint32_t value,
                                  const std::source_location& /*loc*/) {
  max_forwards_.store(value);
}

ServerModulesManagerImpl::ServerModulesManagerImpl()
    : mu_("domain-data-mutex") {}

ServerModulesManagerImpl::~ServerModulesManagerImpl() {
  for (auto& [name, d] : domains_) delete d;
  domains_.clear();
}

void ServerModulesManagerImpl::add_domain(std::string_view name,
                                          std::string_view route,
                                          std::uint32_t max_forwards,
                                          const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.write();
  const std::string key(name);
  auto it = domains_.find(key);
  if (it != domains_.end()) delete annotate::ca_deletor_single(it->second);
  domains_[key] = new DomainData(name, route, max_forwards);
}

DomainMap& ServerModulesManagerImpl::getDomainData(
    const std::source_location& /*loc*/) {
  RG_FRAME();
  // Fig. 7: "MutexPtr mut(m_pMutex); // Guard" — scoped to this function
  // body, useless to the caller.
  rt::lock_guard guard(mu_);
  return domains_;
}

DomainData* ServerModulesManagerImpl::find_domain(
    const std::string& name, const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.read();
  auto it = domains_.find(name);
  return it == domains_.end() ? nullptr : it->second;
}

DomainData* ServerModulesManagerImpl::find_domain_unprotected(
    const std::string& name, const std::source_location& /*loc*/) {
  RG_FRAME();
  DomainMap& map = getDomainData();
  // The guard is already gone: this read races with add_domain / clear.
  marker_.read();
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second;
}

void ServerModulesManagerImpl::clear(bool annotated,
                                     const std::source_location& /*loc*/) {
  rt::lock_guard guard(mu_);
  marker_.write();
  for (auto& [name, d] : domains_) {
    if (annotated)
      delete annotate::ca_deletor_single(d);
    else
      delete d;
  }
  domains_.clear();
}

void ServerModulesManagerImpl::unsafe_shutdown_touch(
    const std::source_location& /*loc*/) {
  RG_FRAME();
  // §4.1.1 shutdown-order defect: the teardown path resets the structure
  // without the lock while the reaper thread may still be reading it.
  marker_.write();
}

std::size_t ServerModulesManagerImpl::size() const {
  rt::lock_guard guard(mu_);
  marker_.read();
  return domains_.size();
}

}  // namespace rg::sip
