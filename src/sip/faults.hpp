// The seeded fault catalogue.
//
// The paper's proxy is proprietary; what matters for reproducing its
// evaluation is the *classes* of defects and detector-confusing patterns it
// exhibited. Each toggle below seeds one class from §4.1 (true positives)
// or §4.2 (false-positive sources); integration tests assert that each is
// detected exactly when enabled, and the Fig. 5/6 harness runs with the
// catalogue on.
#pragma once

#include <array>

namespace rg::sip {

struct FaultConfig {
  // --- §4.1 true positives ------------------------------------------------
  /// Fig. 7: getDomainData() returns a reference to the internal map after
  /// the guard is released; callers then use it unprotected.
  bool unprotected_domain_map = true;
  /// §4.1.1: the expiry-reaper thread is started before the structures it
  /// uses are fully initialised.
  bool init_order_race = true;
  /// §4.1.1: on shutdown, domain data is torn down before the thread using
  /// it has terminated.
  bool shutdown_order_race = true;
  /// §4.1.3: a ctime()-style helper returning a pointer to a static buffer
  /// is called from worker threads.
  bool unsafe_time_function = true;
  /// §4.1: "one of the first reported data races was in the application's
  /// deadlock detection code" — the watchdog reads lock bookkeeping that
  /// workers update without synchronisation.
  bool racy_deadlock_monitor = true;
  /// Unprotected monotonic statistics counters (benign races, but reported
  /// — part of "correctly reported data races" triage load).
  bool benign_stats_races = true;

  // --- §4.2 false-positive sources (beyond destructors / bus lock) --------
  /// "Parts of the program where the source code is not available will not
  /// benefit from this annotation": a third-party codec module deletes its
  /// objects with unannotated `delete`.
  bool third_party_unannotated_deletes = true;
  /// §4 libstdc++ allocator issue: registrar bindings come from an internal
  /// pool that recycles memory *without* free/alloc events. Setting
  /// `pool_force_new` (the GLIBCXX_FORCE_NEW analogue) disables the pool.
  bool pooled_allocator_reuse = false;

  /// Every toggle above, in declaration order. A new fault MUST be listed
  /// here; the static_assert below the struct catches a forgotten entry, so
  /// none()/any() cannot silently drift.
  static constexpr std::array<bool FaultConfig::*, 8> all_flags() {
    return {
        &FaultConfig::unprotected_domain_map,
        &FaultConfig::init_order_race,
        &FaultConfig::shutdown_order_race,
        &FaultConfig::unsafe_time_function,
        &FaultConfig::racy_deadlock_monitor,
        &FaultConfig::benign_stats_races,
        &FaultConfig::third_party_unannotated_deletes,
        &FaultConfig::pooled_allocator_reuse,
    };
  }

  /// True when any fault class is enabled.
  bool any() const {
    for (bool FaultConfig::*flag : all_flags())
      if (this->*flag) return true;
    return false;
  }

  /// Everything off — the "fixed" build used to verify detectors go quiet.
  static FaultConfig none() {
    FaultConfig f;
    for (bool FaultConfig::*flag : all_flags()) f.*flag = false;
    return f;
  }

  /// The paper's application as found: every §4.1/§4.2 class present.
  static FaultConfig paper() { return FaultConfig{}; }
};

// FaultConfig holds nothing but bool toggles, so its size equals the toggle
// count; adding a fault without extending all_flags() trips this.
static_assert(sizeof(FaultConfig) == FaultConfig::all_flags().size(),
              "every FaultConfig toggle must be listed in all_flags()");

/// Seeded lock-inversion hazards for the predictive deadlock experiments.
/// Kept apart from FaultConfig: these are ordering hazards for the
/// lock-order-graph tool, not §4.1 race classes, and every one defaults
/// off so classic runs see a bit-identical event stream.
struct DeadlockHazards {
  /// Family A: an INVITE worker nests registrar-lock → upstream target-0
  /// lock while the expiry reaper nests the opposite way.
  bool registrar_vs_upstream = false;
  /// Family B: shutdown nests stop-mutex → registrar-lock while the
  /// reaper's stop check nests registrar-lock → stop-mutex (shutdown-order
  /// inversion against in-flight teardown).
  bool shutdown_inversion = false;
  /// Wraps both sides of every enabled hazard in one gate lock: the
  /// inversion still exists textually but can never interleave into a
  /// deadlock — the negative control the refinements must not flag.
  bool gate_locked = false;
  /// Worker/shutdown sides use the non-racy try-lock + backoff recovery
  /// path (DeadlockMonitor::with_ordered_locks_recovering) instead of
  /// blocking nested acquisition, so soak runs survive the inversion.
  bool recover = false;

  bool any() const { return registrar_vs_upstream || shutdown_inversion; }
};

}  // namespace rg::sip
