#include "sip/registrar.hpp"

#include "annotate/runtime.hpp"

namespace rg::sip {

Binding::Binding(std::string_view contact, std::uint64_t expires_at)
    : contact_(contact), expires_at_(expires_at) {}

Binding::~Binding() { vptr_write(); }

cow_string Binding::contact(const std::source_location& /*loc*/) const {
  virtual_dispatch();
  return cow_string(contact_);
}

std::uint64_t Binding::expires_at(const std::source_location& /*loc*/) const {
  return expires_at_.load();
}

void Binding::refresh(std::uint64_t expires_at,
                      const std::source_location& /*loc*/) {
  expires_at_.store(expires_at);
}

Registrar::Registrar() : mu_("registrar-mutex") {}

Registrar::~Registrar() {
  for (auto& [aor, b] : bindings_) delete b;
  bindings_.clear();
}

std::vector<cow_string> Registrar::register_binding(
    const std::string& aor, std::string_view contact,
    std::uint64_t expires_at, const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.write();
  auto it = bindings_.find(aor);
  if (it != bindings_.end()) {
    it->second->refresh(expires_at);
  } else {
    it = bindings_.emplace(aor, new Binding(contact, expires_at)).first;
  }
  std::vector<cow_string> contacts;
  contacts.push_back(it->second->contact());
  return contacts;
}

cow_string Registrar::lookup(const std::string& aor,
                             const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.read();
  auto it = bindings_.find(aor);
  if (it == bindings_.end()) return cow_string{};
  return it->second->contact();
}

std::size_t Registrar::expire(std::uint64_t now,
                              const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.write();
  std::size_t removed = 0;
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    if (it->second->expires_at() <= now) {
      delete annotate::ca_deletor_single(it->second);
      it = bindings_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void Registrar::clear(const std::source_location& /*loc*/) {
  rt::lock_guard guard(mu_);
  marker_.write();
  for (auto& [aor, b] : bindings_) delete annotate::ca_deletor_single(b);
  bindings_.clear();
}

std::size_t Registrar::size() const {
  rt::lock_guard guard(mu_);
  marker_.read();
  return bindings_.size();
}

}  // namespace rg::sip
