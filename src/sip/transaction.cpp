#include "sip/transaction.hpp"

#include "annotate/runtime.hpp"
#include "obs/recorder.hpp"
#include "rt/sim.hpp"
#include "support/intern.hpp"

namespace rg::sip {

const char* to_string(TxState s) {
  switch (s) {
    case TxState::Trying:
      return "Trying";
    case TxState::Proceeding:
      return "Proceeding";
    case TxState::Completed:
      return "Completed";
    case TxState::Confirmed:
      return "Confirmed";
    case TxState::Terminated:
      return "Terminated";
  }
  return "?";
}

TimerState::TimerState() : generation_(0) {}

TimerState::~TimerState() { vptr_write(); }

void TimerState::arm(std::uint64_t generation,
                     const std::source_location& loc) {
  virtual_dispatch(loc);
  generation_.store(generation);
}

std::uint64_t TimerState::generation() const { return generation_.load(); }

ServerTransaction::ServerTransaction(std::string branch, Method method)
    : branch_(std::move(branch)),
      method_(method),
      mu_("tx-mutex:" + branch_),
      state_(TxState::Trying),
      retransmissions_(0),
      timers_(new TimerState) {}

ServerTransaction::~ServerTransaction() {
  vptr_write();
  delete annotate::ca_deletor_single(timers_);
}

TxState ServerTransaction::state(const std::source_location& /*loc*/) const {
  rt::lock_guard guard(mu_);
  return state_.load();
}

void ServerTransaction::set_state(TxState next,
                                  const std::source_location& /*loc*/) {
  // Caller holds mu_.
  state_.store(next);
  if (obs::FlightRecorder* fr = obs::ambient(); fr != nullptr)
    fr->record_now(obs::EventKind::TxnState,
                   rt::Sim::current() != nullptr
                       ? rt::Sim::current()->sched().current()
                       : rt::kNoThread,
                   support::intern(branch_), static_cast<std::uint64_t>(next));
  // Every state change re-arms the retransmission timers.
  timers_->arm(state_.load() == TxState::Terminated ? 0 : 1);
}

InviteServerTransaction::InviteServerTransaction(std::string branch)
    : ServerTransaction(std::move(branch), Method::Invite) {
  rt::lock_guard guard(mu_);
  set_state(TxState::Proceeding);
}

InviteServerTransaction::~InviteServerTransaction() { vptr_write(); }

bool InviteServerTransaction::on_request(Method method,
                                         const std::source_location& /*loc*/) {
  virtual_dispatch();
  rt::lock_guard guard(mu_);
  timers_->arm(2);  // retransmission re-arms timer G
  const TxState st = state_.load();
  switch (method) {
    case Method::Invite:
      // Retransmitted INVITE: absorbed in any state but Terminated.
      retransmissions_.store(retransmissions_.load() + 1);
      return st != TxState::Terminated;
    case Method::Ack:
      if (st == TxState::Completed) {
        set_state(TxState::Confirmed);
        // Absorb timer I immediately (no timers in the reproduction).
        set_state(TxState::Terminated);
      }
      return true;
    case Method::Cancel:
      if (st == TxState::Proceeding) set_state(TxState::Completed);
      return false;  // CANCEL gets its own response
    default:
      return false;
  }
}

void InviteServerTransaction::on_response(int status,
                                          const std::source_location& /*loc*/) {
  virtual_dispatch();
  rt::lock_guard guard(mu_);
  const TxState st = state_.load();
  if (st != TxState::Proceeding) return;
  if (status >= 200) {
    // 2xx terminates immediately (the TU owns retransmissions);
    // 3xx-6xx waits for ACK in Completed.
    set_state(status < 300 ? TxState::Terminated : TxState::Completed);
  }
}

NonInviteServerTransaction::NonInviteServerTransaction(std::string branch,
                                                       Method method)
    : ServerTransaction(std::move(branch), method) {}

NonInviteServerTransaction::~NonInviteServerTransaction() { vptr_write(); }

bool NonInviteServerTransaction::on_request(Method /*method*/,
                                            const std::source_location& /*loc*/) {
  virtual_dispatch();
  rt::lock_guard guard(mu_);
  timers_->arm(2);  // retransmission re-arms timer E
  const TxState st = state_.load();
  retransmissions_.store(retransmissions_.load() + 1);
  return st != TxState::Terminated;  // absorbed retransmission
}

void NonInviteServerTransaction::on_response(int status,
                                             const std::source_location& /*loc*/) {
  virtual_dispatch();
  rt::lock_guard guard(mu_);
  const TxState st = state_.load();
  if (st == TxState::Terminated) return;
  if (status < 200) {
    set_state(TxState::Proceeding);
  } else {
    set_state(TxState::Completed);
    // Timer J fires immediately in the reproduction.
    set_state(TxState::Terminated);
  }
}

void ServerTransaction::retain_request(
    std::shared_ptr<const SipRequest> request) {
  rt::lock_guard guard(mu_);
  original_ = std::move(request);
}

void ServerTransaction::retain_response(
    std::shared_ptr<const SipResponse> response) {
  rt::lock_guard guard(mu_);
  last_response_ = std::move(response);
}

std::shared_ptr<const SipRequest> ServerTransaction::original_request() const {
  rt::lock_guard guard(mu_);
  return original_;
}

std::shared_ptr<const SipResponse> ServerTransaction::last_response() const {
  rt::lock_guard guard(mu_);
  return last_response_;
}

TransactionTable::TransactionTable() : mu_("tx-table-mutex") {}

namespace {
/// The Fig. 4 annotated delete, run by whichever thread releases last.
void annotated_delete(ServerTransaction* tx) {
  delete annotate::ca_deletor_single(tx);
}
}  // namespace

TransactionTable::~TransactionTable() { table_.clear(); }

std::shared_ptr<ServerTransaction> TransactionTable::find_or_create(
    const std::string& branch, Method method, bool& created,
    std::size_t capacity, const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.read();
  auto it = table_.find(branch);
  if (it != table_.end()) {
    created = false;
    return it->second;
  }
  if (capacity != 0 && table_.size() >= capacity) {
    // Hard watermark: the caller sheds instead of growing the table.
    created = false;
    return nullptr;
  }
  created = true;
  std::shared_ptr<ServerTransaction> tx(
      method == Method::Invite
          ? static_cast<ServerTransaction*>(
                new InviteServerTransaction(branch))
          : static_cast<ServerTransaction*>(
                new NonInviteServerTransaction(branch, method)),
      &annotated_delete);
  marker_.write();
  table_.emplace(branch, tx);
  return tx;
}

std::shared_ptr<ServerTransaction> TransactionTable::find(
    const std::string& branch, const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  marker_.read();
  auto it = table_.find(branch);
  return it == table_.end() ? nullptr : it->second;
}

std::size_t TransactionTable::reap(const std::source_location& /*loc*/) {
  RG_FRAME();
  rt::lock_guard guard(mu_);
  std::size_t reaped = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second->terminated()) {
      marker_.write();
      it = table_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void TransactionTable::clear(const std::source_location& /*loc*/) {
  rt::lock_guard guard(mu_);
  marker_.write();
  table_.clear();
}

std::size_t TransactionTable::size() const {
  rt::lock_guard guard(mu_);
  marker_.read();
  return table_.size();
}

}  // namespace rg::sip
