// Domain data manager — carries the Fig. 7 defect.
//
//   map<string,DomainData*>& ServerModulesManagerImpl::getDomainData()
//   {
//     MutexPtr mut(m_pMutex); // Guard
//     return m_DomainData;
//   }
//
// The guard protects nothing: it is released when the reference is
// returned, and every caller then walks the map unsynchronised. "This bug
// requires to rewrite the function and all functions that use it" — the
// fixed accessors below are that rewrite, selected by FaultConfig.
#pragma once

#include <map>
#include <source_location>
#include <string>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "sip/cow_string.hpp"
#include "sip/message.hpp"

namespace rg::sip {

/// Per-domain routing configuration. Polymorphic + shared + deleted at
/// shutdown: another destructor-annotation workload.
class DomainData : public SipObject {
 public:
  DomainData(std::string_view name, std::string_view route,
             std::uint32_t max_forwards);
  ~DomainData() override;

  cow_string route(const std::source_location& loc =
                       std::source_location::current()) const;
  std::uint32_t max_forwards(const std::source_location& loc =
                                 std::source_location::current()) const;
  void set_max_forwards(std::uint32_t value,
                        const std::source_location& loc =
                            std::source_location::current());
  const std::string& name() const { return name_; }

 private:
  std::string name_;  // immutable after construction
  cow_string route_;
  rt::tracked<std::uint32_t> max_forwards_;
};

using DomainMap = std::map<std::string, DomainData*>;

class ServerModulesManagerImpl {
 public:
  ServerModulesManagerImpl();
  ~ServerModulesManagerImpl();

  void add_domain(std::string_view name, std::string_view route,
                  std::uint32_t max_forwards,
                  const std::source_location& loc =
                      std::source_location::current());

  /// The Fig. 7 accessor: momentary guard, then an unprotected reference.
  /// Callers that iterate the result race with add/remove.
  DomainMap& getDomainData(const std::source_location& loc =
                               std::source_location::current());

  /// The rewritten, correct accessor: lookup fully under the lock.
  DomainData* find_domain(const std::string& name,
                          const std::source_location& loc =
                              std::source_location::current());

  /// Walks the map through the buggy reference (no lock) — the call shape
  /// the tool flagged. Returns the matching domain or nullptr.
  DomainData* find_domain_unprotected(
      const std::string& name,
      const std::source_location& loc = std::source_location::current());

  /// Deletes all domain data. `annotated` selects the Fig. 4 path.
  void clear(bool annotated, const std::source_location& loc =
                                 std::source_location::current());

  /// Touches the map the way the shutdown path does when the
  /// shutdown-order fault is active: writes without taking the lock.
  void unsafe_shutdown_touch(const std::source_location& loc =
                                 std::source_location::current());

  std::size_t size() const;

 private:
  mutable rt::mutex mu_;
  DomainMap domains_;
  mutable rt::access_marker marker_;
};

}  // namespace rg::sip
