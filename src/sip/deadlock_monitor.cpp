#include "sip/deadlock_monitor.hpp"

#include "rt/sim.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace rg::sip {

std::uint32_t DeadlockMonitor::with_ordered_locks_recovering(
    rt::mutex& outer, rt::mutex& inner, std::uint64_t deadline_ticks,
    std::uint64_t jitter_seed, const std::function<void()>& fn) {
  rt::Sim* sim = rt::Sim::current();
  std::uint64_t jitter_state = jitter_seed;
  std::uint32_t backoffs = 0;
  for (;;) {
    outer.lock();
    const std::uint64_t start =
        sim != nullptr ? sim->sched().virtual_time() : 0;
    std::uint64_t spins = 0;
    bool acquired = false;
    for (;;) {
      if (inner.try_lock()) {
        acquired = true;
        break;
      }
      if (sim != nullptr) {
        if (sim->sched().virtual_time() - start >= deadline_ticks) break;
        rt::yield();
      } else {
        if (++spins >= deadline_ticks) break;
      }
    }
    if (acquired) {
      fn();
      inner.unlock();
      outer.unlock();
      return backoffs;
    }
    // Deadline expired: whoever holds `inner` may be waiting for `outer`.
    // Release what we hold, back off a jittered beat and retry — the
    // opposite-order holder can now drain.
    outer.unlock();
    ++backoffs;
    rt::sleep_ticks(1 + support::splitmix64(jitter_state) % 16);
  }
}

DeadlockMonitor::DeadlockMonitor(std::uint64_t timeout_ticks)
    : timeout_ticks_(timeout_ticks), stop_flag_(0), alarms_(0) {}

DeadlockMonitor::~DeadlockMonitor() {
  if (watchdog_.joinable()) stop();
}

void DeadlockMonitor::start(const std::source_location& loc) {
  RG_ASSERT_MSG(!watchdog_.joinable(), "monitor already running");
  stop_flag_.store(0);
  watchdog_ = rt::thread([this] { watchdog_loop(); }, "deadlock-watchdog",
                         loc);
}

void DeadlockMonitor::stop(const std::source_location& /*loc*/) {
  // The stop flag itself is part of the racy bookkeeping: a plain shared
  // write, as found in the original.
  stop_flag_.store(1);
  watchdog_.join();
}

void DeadlockMonitor::note_acquire(std::size_t slot, std::uint64_t now,
                                   const std::source_location& /*loc*/) {
  RG_ASSERT(slot < kSlots);
  // Unsynchronised: the watchdog reads these fields concurrently.
  slots_[slot].acquired_at.store(now);
  slots_[slot].holder.store(
      static_cast<std::uint32_t>(rt::Sim::current_thread()) + 1);
}

void DeadlockMonitor::note_release(std::size_t slot,
                                   const std::source_location& /*loc*/) {
  RG_ASSERT(slot < kSlots);
  slots_[slot].holder.store(0);
}

std::uint64_t DeadlockMonitor::alarms(const std::source_location& /*loc*/) const {
  return alarms_.load();
}

void DeadlockMonitor::watchdog_loop() {
  RG_FRAME();
  rt::Sim* sim = rt::Sim::current();
  while (stop_flag_.load() == 0) {
    const std::uint64_t now =
        sim != nullptr ? sim->sched().virtual_time() : 0;
    for (Slot& slot : slots_) {
      // Racy reads of worker-written bookkeeping.
      const std::uint32_t holder = slot.holder.load();
      if (holder == 0) continue;
      const std::uint64_t since = slot.acquired_at.load();
      if (now > since && now - since > timeout_ticks_)
        alarms_.store(alarms_.load() + 1);
    }
    rt::sleep_ticks(50);
  }
}

}  // namespace rg::sip
