// Dialog layer — per-call session state.
//
// A confirmed INVITE dialog owns a media session and a billing record.
// These are the proxy's churning polymorphic objects: created by the
// INVITE worker, virtually dispatched by the ACK/BYE workers of the same
// call (which run concurrently under load), and deleted inline by whichever
// worker terminates the call. Their destructor chains are the dominant
// source of §4.2.1 false positives — and of DR-annotation wins.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <source_location>
#include <string>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "sip/cow_string.hpp"
#include "sip/message.hpp"

namespace rg::sip {

enum class DialogState : std::uint8_t { Early, Confirmed, Terminated };

/// The record-route set learned during dialog establishment.
class RouteSet final : public SipObject {
 public:
  explicit RouteSet(cow_string route);
  ~RouteSet() override;

  virtual cow_string next_hop(
      const std::source_location& loc =
          std::source_location::current()) const;

 private:
  cow_string route_;
};

/// Per-call counters (messages seen, media updates).
class CallStats final : public SipObject {
 public:
  CallStats();
  ~CallStats() override;

  virtual void bump(const std::source_location& loc =
                        std::source_location::current());
  std::uint32_t messages() const;

 private:
  rt::tracked<std::uint32_t> messages_;
};

/// Negotiated media description for one call.
class MediaSession : public SipObject {
 public:
  explicit MediaSession(cow_string sdp);
  ~MediaSession() override;

  /// Renegotiation (re-INVITE / INFO DTMF); guarded by the dialog's lock.
  virtual void update(cow_string sdp,
                      const std::source_location& loc =
                          std::source_location::current());
  cow_string sdp(const std::source_location& loc =
                     std::source_location::current()) const;
  std::uint32_t updates(const std::source_location& loc =
                            std::source_location::current()) const;

 private:
  cow_string sdp_;
  rt::tracked<std::uint32_t> updates_;
};

/// Call detail record skeleton.
class BillingRecord : public SipObject {
 public:
  explicit BillingRecord(std::uint64_t start);
  ~BillingRecord() override;

  virtual void close(std::uint64_t end,
                     const std::source_location& loc =
                         std::source_location::current());
  std::uint64_t duration(const std::source_location& loc =
                             std::source_location::current()) const;

 private:
  rt::tracked<std::uint64_t> start_;
  rt::tracked<std::uint64_t> end_;
};

class Dialog : public SipObject {
 public:
  Dialog(std::string id, cow_string sdp, std::uint64_t now);
  /// Deletes the owned media session and billing record (annotated —
  /// this module ships with source).
  ~Dialog() override;

  const std::string& id() const { return id_; }

  virtual void confirm(const std::source_location& loc =
                           std::source_location::current());
  virtual void terminate(std::uint64_t now,
                         const std::source_location& loc =
                             std::source_location::current());
  DialogState state(const std::source_location& loc =
                        std::source_location::current()) const;

  MediaSession& media() { return *media_; }
  BillingRecord& billing() { return *billing_; }

 private:
  std::string id_;
  mutable rt::mutex mu_;
  rt::tracked<DialogState> state_;
  MediaSession* media_;
  BillingRecord* billing_;
  RouteSet* routes_;
  CallStats* call_stats_;
};

/// Call-ID -> dialog, guarded by one mutex; terminated dialogs are deleted
/// inline by the worker that ends the call.
class DialogTable {
 public:
  DialogTable();
  ~DialogTable();

  std::shared_ptr<Dialog> create(const std::string& id, cow_string sdp,
                                 std::uint64_t now,
                                 const std::source_location& loc =
                                     std::source_location::current());
  std::shared_ptr<Dialog> find(const std::string& id,
                               const std::source_location& loc =
                                   std::source_location::current());
  /// Terminates and unlinks the dialog; the worker dropping the last
  /// reference performs the (annotated) delete. Returns false if unknown.
  bool terminate(const std::string& id, std::uint64_t now,
                 const std::source_location& loc =
                     std::source_location::current());
  void clear(const std::source_location& loc =
                 std::source_location::current());
  std::size_t size() const;

 private:
  mutable rt::mutex mu_;
  std::map<std::string, std::shared_ptr<Dialog>> dialogs_;
  mutable rt::access_marker marker_;
};

}  // namespace rg::sip
