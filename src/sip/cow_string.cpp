#include "sip/cow_string.hpp"

namespace rg::sip {

cow_string::Rep* cow_string::make_rep(std::string_view text,
                                      const std::source_location& loc) {
  Rep* rep = new Rep(text);
  rt::mem_alloc(rep, sizeof(Rep), loc);
  return rep;
}

cow_string::cow_string() : rep_(nullptr) {}

cow_string::cow_string(std::string_view text, const std::source_location& loc)
    : rep_(make_rep(text, loc)) {}

cow_string::cow_string(const cow_string& other,
                       const std::source_location& loc)
    : rep_(other.rep_) {
  if (rep_ == nullptr) return;
  // _M_is_leaked(): a *plain* (non-LOCKed) read of the counter — the read
  // access "preceding this write ... not using the lock" of §4.2.2.
  (void)rep_->refcount.load(loc);
  // _M_grab / _M_refcopy: bus-locked increment.
  rep_->refcount.fetch_add(1, loc);
}

cow_string& cow_string::operator=(const cow_string& other) {
  if (this == &other) return *this;
  const std::source_location loc = std::source_location::current();
  Rep* grabbed = other.rep_;
  if (grabbed != nullptr) {
    (void)grabbed->refcount.load(loc);
    grabbed->refcount.fetch_add(1, loc);
  }
  dispose(loc);
  rep_ = grabbed;
  return *this;
}

cow_string::cow_string(cow_string&& other) noexcept : rep_(other.rep_) {
  other.rep_ = nullptr;
}

cow_string& cow_string::operator=(cow_string&& other) noexcept {
  if (this != &other) {
    dispose(std::source_location::current());
    rep_ = other.rep_;
    other.rep_ = nullptr;
  }
  return *this;
}

cow_string::~cow_string() { dispose(std::source_location::current()); }

void cow_string::dispose(const std::source_location& loc) {
  if (rep_ == nullptr) return;
  // _M_dispose: bus-locked decrement; the last owner frees the rep.
  const int old = rep_->refcount.fetch_add(-1, loc);
  if (old == 1) {
    rt::mem_free(rep_, loc);
    delete rep_;
  }
  rep_ = nullptr;
}

std::string cow_string::str(const std::source_location& loc) const {
  if (rep_ == nullptr) return {};
  rep_->chars.read(loc);
  return rep_->data;
}

std::size_t cow_string::size(const std::source_location& loc) const {
  if (rep_ == nullptr) return 0;
  rep_->chars.read(loc);
  return rep_->data.size();
}

void cow_string::append(std::string_view text,
                        const std::source_location& loc) {
  if (rep_ == nullptr) {
    rep_ = make_rep(text, loc);
    return;
  }
  // _M_mutate: reads the counter (plain), and if shared, unshares into a
  // private rep before writing.
  const int uses = rep_->refcount.load(loc);
  if (uses > 1) {
    Rep* fresh = make_rep(rep_->data, loc);
    rep_->chars.read(loc);
    fresh->data = rep_->data;
    dispose(loc);
    rep_ = fresh;
  }
  rep_->chars.write(loc);
  rep_->data.append(text);
}

bool cow_string::equals(std::string_view text,
                        const std::source_location& loc) const {
  if (rep_ == nullptr) return text.empty();
  rep_->chars.read(loc);
  return rep_->data == text;
}

int cow_string::use_count(const std::source_location& loc) const {
  if (rep_ == nullptr) return 0;
  return rep_->refcount.load(loc);
}

}  // namespace rg::sip
