// SIP transaction layer (RFC 3261 §17 subset).
//
// Server transactions absorb retransmissions and order responses. They are
// the proxy's central *shared, polymorphic, heap-allocated* objects: created
// by the worker handling the first request, matched by workers handling
// retransmissions/ACKs/CANCELs under the table mutex, and deleted on
// termination — the workload class whose destruction the paper's DR
// annotation de-falsifies.
#pragma once

#include <cstdint>
#include <memory>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/memory.hpp"
#include "rt/sync.hpp"
#include "sip/message.hpp"

namespace rg::sip {

enum class TxState : std::uint8_t {
  Trying,
  Proceeding,
  Completed,
  Confirmed,
  Terminated,
};

const char* to_string(TxState s);

/// Retransmission-timer bookkeeping for one transaction (timers A/B/G/H of
/// RFC 3261 §17, collapsed to one object in this testbed). Heap subobject,
/// virtually dispatched on every transaction event, destroyed with its
/// owner.
class TimerState final : public SipObject {
 public:
  TimerState();
  ~TimerState() override;

  virtual void arm(std::uint64_t generation,
                   const std::source_location& loc =
                       std::source_location::current());
  std::uint64_t generation() const;

 private:
  rt::tracked<std::uint64_t> generation_;
};

/// Base server transaction. State transitions are guarded by a per-object
/// mutex; virtual dispatch happens at the call sites (vptr reads outside
/// any lock — which is what shares the object header between threads).
class ServerTransaction : public SipObject {
 public:
  ServerTransaction(std::string branch, Method method);
  ~ServerTransaction() override;

  const std::string& branch() const { return branch_; }
  Method method() const { return method_; }

  TxState state(const std::source_location& loc =
                    std::source_location::current()) const;

  /// A request matching this transaction arrived (retransmission, ACK,
  /// CANCEL). Returns true when the request is absorbed (retransmission).
  virtual bool on_request(Method method,
                          const std::source_location& loc =
                              std::source_location::current()) = 0;

  /// The proxy core produced a response with this status.
  virtual void on_response(int status,
                           const std::source_location& loc =
                               std::source_location::current()) = 0;

  bool terminated(const std::source_location& loc =
                      std::source_location::current()) const {
    return state(loc) == TxState::Terminated;
  }

  /// RFC 3261 §17.2: the server transaction retains the request that
  /// created it and the last response sent, so retransmissions can be
  /// answered by replay. Both are therefore *shared* polymorphic objects.
  void retain_request(std::shared_ptr<const SipRequest> request);
  void retain_response(std::shared_ptr<const SipResponse> response);
  std::shared_ptr<const SipRequest> original_request() const;
  /// The retained response (null until one was sent).
  std::shared_ptr<const SipResponse> last_response() const;

 protected:
  void set_state(TxState next, const std::source_location& loc =
                                   std::source_location::current());

  std::string branch_;
  Method method_;
  mutable rt::mutex mu_;
  rt::tracked<TxState> state_;
  rt::tracked<std::uint32_t> retransmissions_;
  TimerState* timers_;
  std::shared_ptr<const SipRequest> original_;
  std::shared_ptr<const SipResponse> last_response_;
};

/// RFC 3261 §17.2.1 (INVITE): Proceeding -> Completed (final response) ->
/// Confirmed (ACK) -> Terminated.
class InviteServerTransaction final : public ServerTransaction {
 public:
  explicit InviteServerTransaction(std::string branch);
  ~InviteServerTransaction() override;

  bool on_request(Method method, const std::source_location& loc =
                                     std::source_location::current()) override;
  void on_response(int status, const std::source_location& loc =
                                   std::source_location::current()) override;
};

/// RFC 3261 §17.2.2 (non-INVITE): Trying -> Proceeding -> Completed ->
/// Terminated.
class NonInviteServerTransaction final : public ServerTransaction {
 public:
  NonInviteServerTransaction(std::string branch, Method method);
  ~NonInviteServerTransaction() override;

  bool on_request(Method method, const std::source_location& loc =
                                     std::source_location::current()) override;
  void on_response(int status, const std::source_location& loc =
                                   std::source_location::current()) override;
};

/// The transaction table: branch id -> live transaction, guarded by one
/// mutex. Terminated transactions are reaped with annotated deletes; shared
/// ownership keeps a reaped transaction alive while a concurrent worker
/// still holds it (the last release performs the annotated delete).
class TransactionTable {
 public:
  TransactionTable();
  ~TransactionTable();

  /// Finds the transaction for `branch`, or creates one of the right kind.
  /// `created` reports whether this call created it. A non-zero `capacity`
  /// makes the check-and-create atomic under the table mutex: when the
  /// table already holds `capacity` entries and `branch` is new, nothing is
  /// created and nullptr is returned (the overload-shedding path). Matching
  /// an existing branch always succeeds regardless of capacity.
  std::shared_ptr<ServerTransaction> find_or_create(
      const std::string& branch, Method method, bool& created,
      std::size_t capacity = 0,
      const std::source_location& loc = std::source_location::current());

  std::shared_ptr<ServerTransaction> find(
      const std::string& branch,
      const std::source_location& loc = std::source_location::current());

  /// Unlinks terminated transactions (annotated destruction at last
  /// release). Returns the number reaped.
  std::size_t reap(const std::source_location& loc =
                       std::source_location::current());

  /// Drops everything (shutdown).
  void clear(const std::source_location& loc =
                 std::source_location::current());

  std::size_t size() const;

 private:
  mutable rt::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ServerTransaction>> table_;
  mutable rt::access_marker marker_;
};

}  // namespace rg::sip
