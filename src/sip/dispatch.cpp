#include "sip/dispatch.hpp"

#include "sip/proxy.hpp"
#include "support/assert.hpp"

namespace rg::sip {

Job::Job(std::string wire_text) : wire(std::move(wire_text)), state(0) {}

ThreadPerRequestDispatcher::ThreadPerRequestDispatcher(std::size_t max_parallel)
    : max_parallel_(max_parallel == 0 ? 1 : max_parallel) {}

std::vector<std::string> ThreadPerRequestDispatcher::dispatch(
    Proxy& proxy, const std::vector<std::string>& wires) {
  RG_FRAME();
  std::vector<std::string> responses;
  responses.reserve(wires.size());

  for (std::size_t base = 0; base < wires.size(); base += max_parallel_) {
    const std::size_t count = std::min(max_parallel_, wires.size() - base);
    std::vector<std::unique_ptr<Job>> jobs;
    std::vector<rt::thread> threads;
    jobs.reserve(count);
    threads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      // The job is initialised *before* the worker thread exists, so the
      // child's first segment happens-after every write (Fig. 10).
      auto job = std::make_unique<Job>(wires[base + i]);
      rt::mem_alloc(job.get(), sizeof(Job), std::source_location::current());
      job->state.store(0);
      Job* raw = job.get();
      jobs.push_back(std::move(job));
      threads.emplace_back(
          [&proxy, raw] {
            RG_FRAME();
            raw->state.store(1);
            raw->response_marker.write();
            raw->response = proxy.handle_wire(raw->wire);
            raw->state.store(2);
          },
          "request-worker");
    }
    // "After a while the first thread waits for the second thread to finish,
    // before it uses the memory again." (joinable() guard: threads created
    // during post-deadlock teardown are empty handles.)
    for (rt::thread& t : threads)
      if (t.joinable()) t.join();
    for (auto& job : jobs) {
      RG_ASSERT(job->state.load() == 2);
      job->response_marker.read();
      responses.push_back(job->response);
      rt::mem_free(job.get(), std::source_location::current());
    }
  }
  return responses;
}

ThreadPoolDispatcher::ThreadPoolDispatcher(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {}

std::vector<std::string> ThreadPoolDispatcher::dispatch(
    Proxy& proxy, const std::vector<std::string>& wires) {
  RG_FRAME();
  rt::message_queue<Job*> requests("pool-requests");
  rt::message_queue<Job*> done("pool-done");

  // Workers are created BEFORE any job exists — the ownership pattern of
  // Fig. 11: create/join edges cannot order job accesses.
  std::vector<rt::thread> workers;
  workers.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    workers.emplace_back(
        [&proxy, &requests, &done] {
          RG_FRAME();
          Job* job = nullptr;
          while (requests.get(job)) {
            job->state.store(1);  // <- the Fig. 11 warning site
            job->response_marker.write();
            job->response = proxy.handle_wire(job->wire);
            job->state.store(2);
            done.put(job);
          }
        },
        "pool-worker");
  }

  for (const std::string& wire : wires) {
    auto* job = new Job(wire);
    rt::mem_alloc(job, sizeof(Job), std::source_location::current());
    job->state.store(0);  // initialised after the workers already run
    requests.put(job);
  }

  std::vector<std::string> responses;
  responses.reserve(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    Job* job = nullptr;
    const bool got = done.get(job);
    RG_ASSERT(got && job != nullptr);
    job->response_marker.read();
    responses.push_back(job->response);
    rt::mem_free(job, std::source_location::current());
    delete job;
  }

  requests.close();
  for (rt::thread& t : workers)
    if (t.joinable()) t.join();
  return responses;
}

}  // namespace rg::sip
